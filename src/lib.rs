//! # ftbarrier — multitolerant barrier synchronization
//!
//! A full reproduction of Kulkarni & Arora, *Low-cost Fault-tolerance in
//! Barrier Synchronizations* (ICPP 1998), as a Rust workspace. This umbrella
//! crate re-exports the member crates:
//!
//! * [`gcs`] — guarded-command simulation substrate (the paper's SIEFAST):
//!   fair interleaving, timed maximal parallelism, fault environments.
//! * [`topology`] — rings, two-rings, trees with leaves wired to the root,
//!   double trees, and spanning-tree embeddings (Fig 2).
//! * [`core`] — the paper's programs (CB, the token ring, the generalized
//!   RB/RB′/tree sweep, MB), the barrier specification oracle, the fault
//!   taxonomy, the §6.1 analytical model, and the experiment harness.
//! * [`gcl`] — the guarded-command *language*: programs in the paper's
//!   notation, parsed and executed directly (as SIEFAST did).
//! * [`mp`] — faulty channels and the executable threaded MB.
//! * [`protocols`] — barrier-adjacent sibling protocols (fault-tolerant
//!   Safra-style termination detection, Lenzen–Rybicki-style self-stabilizing
//!   synchronous counting) on the same guarded-command substrate.
//! * [`runtime`] — a production-style fault-tolerant barrier for
//!   `std::thread` workers, with repeat semantics, corruption recovery,
//!   failure policies, fuzzy barriers, and fault-intolerant baselines.
//!
//! ## Quick start
//!
//! ```
//! use ftbarrier::runtime::{FtBarrier, PhaseOutcome};
//!
//! let (_handle, participants) = FtBarrier::new(4);
//! let threads: Vec<_> = participants
//!     .into_iter()
//!     .map(|mut p| {
//!         std::thread::spawn(move || {
//!             let mut results = Vec::new();
//!             while p.phase() < 3 {
//!                 // ... execute the phase body ...
//!                 match p.arrive().unwrap() {
//!                     PhaseOutcome::Advance { phase } => results.push(phase),
//!                     PhaseOutcome::Repeat { .. } => { /* redo the phase */ }
//!                 }
//!             }
//!             results
//!         })
//!     })
//!     .collect();
//! for t in threads {
//!     assert_eq!(t.join().unwrap(), vec![1, 2, 3]);
//! }
//! ```
//!
//! To reproduce the paper's evaluation:
//! `cargo run --release -p ftbarrier-bench --bin repro -- all`.

pub use ftbarrier_core as core;
pub use ftbarrier_gcl as gcl;
pub use ftbarrier_gcs as gcs;
pub use ftbarrier_mp as mp;
pub use ftbarrier_protocols as protocols;
pub use ftbarrier_runtime as runtime;
pub use ftbarrier_topology as topology;

/// Convenience re-exports of the most used types.
pub mod prelude {
    pub use ftbarrier_core::analysis::AnalyticModel;
    pub use ftbarrier_core::cp::Cp;
    pub use ftbarrier_core::sim::{PhaseExperiment, RecoveryExperiment, TopologySpec};
    pub use ftbarrier_core::sn::Sn;
    pub use ftbarrier_core::spec::{Anchor, BarrierOracle, OracleConfig};
    pub use ftbarrier_core::sweep::SweepBarrier;
    pub use ftbarrier_gcs::{Engine, EngineConfig, Interleaving, InterleavingConfig};
    pub use ftbarrier_runtime::{
        BarrierError, FailurePolicy, FtBarrier, FtBarrierBuilder, Participant, PhaseOutcome,
    };
    pub use ftbarrier_topology::SweepDag;
}
