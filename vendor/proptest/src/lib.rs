//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no crates.io access, so external dependencies
//! are vendored as minimal API-compatible shims. This one keeps the
//! property-test surface the workspace uses — the `proptest!` macro with
//! `#![proptest_config]`, range/tuple/string/`Just`/`prop_oneof!` and
//! `collection::vec` strategies, `prop_map`, and the `prop_assert*!`
//! macros — generating deterministic pseudo-random cases. There is no
//! shrinking: a failing case panics like a plain `assert!`, and the
//! fixed per-test seed makes every failure reproducible.

pub mod test_runner {
    /// Run-shaping knobs; only `cases` is meaningful in this shim.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic generator stream (splitmix64). Each `proptest!` test
    /// gets one stream seeded from its fully-qualified name, so runs are
    /// reproducible and independent of sibling tests.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn for_test(name: &str) -> TestRng {
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                seed ^= u64::from(b);
                seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: seed }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, bound)`; 0 when `bound == 0`.
        pub fn below(&mut self, bound: u64) -> u64 {
            if bound == 0 {
                return 0;
            }
            // Multiply-shift bounded mapping; bias is irrelevant for test
            // case generation.
            ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { strategy: self, f }
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        strategy: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.strategy.generate(rng))
        }
    }

    /// The erased generator form `Union` stores.
    pub type Generator<T> = Box<dyn Fn(&mut TestRng) -> T>;

    /// Uniform choice among boxed sub-strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<Generator<T>>,
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<Generator<T>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len() as u64) as usize;
            (self.options[idx])(rng)
        }
    }

    /// Erase a strategy into the generator form `Union` stores.
    pub fn into_generator<S>(strategy: S) -> Generator<S::Value>
    where
        S: Strategy + 'static,
    {
        Box::new(move |rng| strategy.generate(rng))
    }

    macro_rules! int_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )+};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit() * (self.end - self.start)
        }
    }

    /// String patterns are treated as "arbitrary garbage up to the regex's
    /// upper repetition bound" — enough for totality/robustness fuzzing,
    /// with no real regex engine behind it.
    impl Strategy for &'static str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            let max = repeat_bound(self).unwrap_or(64);
            let len = rng.below(max as u64 + 1) as usize;
            const EXOTIC: &[char] = &['\n', '\t', 'λ', '⊥', '⊤', 'é', '中', '�'];
            (0..len)
                .map(|_| {
                    if rng.below(8) == 0 {
                        EXOTIC[rng.below(EXOTIC.len() as u64) as usize]
                    } else {
                        char::from(0x20 + rng.below(95) as u8)
                    }
                })
                .collect()
        }
    }

    fn repeat_bound(pattern: &str) -> Option<usize> {
        let (_, rest) = pattern.split_once('{')?;
        let (inner, _) = rest.split_once('}')?;
        let upper = inner.rsplit(',').next()?;
        upper.trim().parse().ok()
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// `proptest::collection::vec`: a vector whose length is drawn from
    /// `size` and whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.end.saturating_sub(self.size.start).max(1);
            let len = self.size.start + rng.below(span as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Define property tests. Each `name(arg in strategy, ...)` function runs
/// `config.cases` times with deterministically generated arguments. No
/// shrinking: a failure panics immediately with the plain assert message.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!{@funcs $cfg; $($rest)*}
    };
    (@funcs $cfg:expr; $(#[$meta:meta])* fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for _case in 0..__config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut __rng);)+
                $body
            }
        }
        $crate::proptest!{@funcs $cfg; $($rest)*}
    };
    (@funcs $cfg:expr;) => {};
    ($($rest:tt)*) => {
        $crate::proptest!{@funcs $crate::test_runner::ProptestConfig::default(); $($rest)*}
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::into_generator($strategy)),+
        ])
    };
}

pub mod prelude {
    pub use crate::strategy::{Just, Map, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64 })]
        #[test]
        fn ranges_stay_in_bounds(a in 3usize..9, b in -5i64..5, x in 0.25f64..0.75) {
            prop_assert!((3..9).contains(&a));
            prop_assert!((-5..5).contains(&b));
            prop_assert!((0.25..0.75).contains(&x));
        }

        #[test]
        fn combinators_compose(
            v in crate::collection::vec(prop_oneof![Just(1u32), 10u32..20], 2..6),
            s in ".{0,30}",
            doubled in (0u32..50).prop_map(|n| n * 2),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&e| e == 1 || (10..20).contains(&e)));
            prop_assert!(s.chars().count() <= 30);
            prop_assert_eq!(doubled % 2, 0);
        }
    }

    proptest! {
        #[test]
        fn default_config_form_compiles(n in 0u8..10) {
            prop_assert_ne!(n, 200);
        }
    }

    #[test]
    fn streams_are_deterministic_per_test_name() {
        use crate::test_runner::TestRng;
        let a: Vec<u64> = {
            let mut r = TestRng::for_test("x");
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::for_test("x");
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = TestRng::for_test("y");
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
