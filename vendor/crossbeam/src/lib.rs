//! Offline stand-in for the `crossbeam` crate.
//!
//! The build container has no crates.io access, so the external
//! dependencies are vendored as minimal API-compatible shims. This crate
//! covers the subset the workspace uses:
//!
//! - `crossbeam::scope` / scoped `spawn` (backed by [`std::thread::scope`]);
//! - `crossbeam::channel::{unbounded, Sender, Receiver, TryRecvError}`
//!   (backed by [`std::sync::mpsc`], whose implementation *is* the
//!   crossbeam channel since Rust 1.72);
//! - `crossbeam::utils::{Backoff, CachePadded}`.

use std::any::Any;

pub mod utils {
    use std::cell::Cell;
    use std::ops::{Deref, DerefMut};

    const SPIN_LIMIT: u32 = 6;
    const YIELD_LIMIT: u32 = 10;

    /// Exponential backoff for spin loops: spin briefly, then yield to the
    /// OS scheduler once spinning stops paying off.
    #[derive(Debug, Default)]
    pub struct Backoff {
        step: Cell<u32>,
    }

    impl Backoff {
        pub fn new() -> Backoff {
            Backoff { step: Cell::new(0) }
        }

        pub fn reset(&self) {
            self.step.set(0);
        }

        pub fn spin(&self) {
            for _ in 0..1u32 << self.step.get().min(SPIN_LIMIT) {
                std::hint::spin_loop();
            }
            if self.step.get() <= SPIN_LIMIT {
                self.step.set(self.step.get() + 1);
            }
        }

        pub fn snooze(&self) {
            if self.step.get() <= SPIN_LIMIT {
                for _ in 0..1u32 << self.step.get() {
                    std::hint::spin_loop();
                }
            } else {
                std::thread::yield_now();
            }
            if self.step.get() <= YIELD_LIMIT {
                self.step.set(self.step.get() + 1);
            }
        }

        pub fn is_completed(&self) -> bool {
            self.step.get() > YIELD_LIMIT
        }
    }

    /// Pads and aligns a value to (at least) a cache-line boundary so that
    /// adjacent values never share a line (no false sharing).
    #[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
    #[repr(align(128))]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        pub const fn new(value: T) -> CachePadded<T> {
            CachePadded { value }
        }

        pub fn into_inner(self) -> T {
            self.value
        }
    }

    impl<T> Deref for CachePadded<T> {
        type Target = T;

        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }

    impl<T> From<T> for CachePadded<T> {
        fn from(value: T) -> CachePadded<T> {
            CachePadded::new(value)
        }
    }
}

pub mod channel {
    //! Unbounded MPSC channel with crossbeam's `try_recv` error type,
    //! re-exported from `std::sync::mpsc` (which has been the ported
    //! crossbeam implementation since Rust 1.72).

    pub use std::sync::mpsc::{Receiver, SendError, Sender, TryRecvError};

    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

/// A scope handle mirroring `crossbeam::thread::Scope`: spawned closures
/// receive the scope again so they can spawn siblings.
#[derive(Debug, Clone, Copy)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let scope = *self;
        ScopedJoinHandle {
            inner: self.inner.spawn(move || f(&scope)),
        }
    }
}

impl<T> ScopedJoinHandle<'_, T> {
    pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
        self.inner.join()
    }
}

/// Create a scope for spawning threads that may borrow from the enclosing
/// stack frame. All threads are joined before `scope` returns. Unlike
/// crossbeam proper, an unjoined panicking child propagates its panic here
/// (std semantics) instead of surfacing through the returned `Result`.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|inner| f(&Scope { inner })))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_borrow_and_join() {
        let counter = AtomicUsize::new(0);
        let out = scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| s.spawn(|_| counter.fetch_add(1, Ordering::Relaxed)))
                .collect();
            let joined = handles.len();
            for h in handles {
                h.join().unwrap();
            }
            joined
        })
        .unwrap();
        assert_eq!(out, 4);
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let hits = AtomicUsize::new(0);
        scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| hits.fetch_add(1, Ordering::Relaxed));
            });
        })
        .unwrap();
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn channel_try_recv_matches_crossbeam_shape() {
        let (tx, rx) = channel::unbounded();
        assert!(matches!(rx.try_recv(), Err(channel::TryRecvError::Empty)));
        assert!(tx.send(9).is_ok());
        assert_eq!(rx.try_recv().unwrap(), 9);
        drop(tx);
        assert!(matches!(
            rx.try_recv(),
            Err(channel::TryRecvError::Disconnected)
        ));
    }

    #[test]
    fn backoff_completes_and_cache_padded_derefs() {
        let b = utils::Backoff::new();
        while !b.is_completed() {
            b.snooze();
        }
        let padded = utils::CachePadded::new(3usize);
        assert_eq!(*padded, 3);
        assert!(std::mem::align_of::<utils::CachePadded<u8>>() >= 128);
    }
}
