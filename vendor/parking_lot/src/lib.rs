//! Offline stand-in for the `parking_lot` crate.
//!
//! The container this workspace builds in has no access to a crates.io
//! mirror, so the handful of external dependencies are vendored as minimal
//! API-compatible shims (see `vendor/` in the workspace root). Only the
//! surface the workspace actually uses is provided: a `Mutex` whose
//! `lock()` returns the guard directly (no poisoning `Result`).

pub use std::sync::MutexGuard;

/// A mutex with `parking_lot`'s panic-free locking API, backed by
/// [`std::sync::Mutex`]. Poisoning is ignored: a poisoned lock still hands
/// out its guard, matching `parking_lot`'s "no poisoning" semantics.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Mutex<T> {
        Mutex::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_returns_guard_directly() {
        let m = Mutex::new(5);
        *m.lock() = 7;
        assert_eq!(*m.lock(), 7);
        assert_eq!(m.into_inner(), 7);
    }

    #[test]
    fn try_lock_contended_is_none() {
        let m = Mutex::new(1);
        let held = m.lock();
        assert!(m.try_lock().is_none());
        drop(held);
        assert!(m.try_lock().is_some());
    }
}
