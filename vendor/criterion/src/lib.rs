//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no crates.io access, so external dependencies
//! are vendored as minimal API-compatible shims. This one implements the
//! benchmarking surface the workspace's `benches/` use — `Criterion`,
//! `BenchmarkGroup`, `Bencher::iter`, `bench_with_input`, `Throughput`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros — with
//! honest wall-clock measurement (warmup, then a calibrated timed run) and
//! plain-text per-benchmark reports instead of HTML/statistics machinery.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How a benchmark's iteration count translates into a rate in reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A benchmark identifier: function name plus an input parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    parameter: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            name: name.into(),
            parameter: parameter.to_string(),
        }
    }
}

/// Passed to the benchmark closure; `iter` runs and times the payload.
pub struct Bencher {
    /// (iterations, total elapsed) of the measured run.
    measured: Option<(u64, Duration)>,
    /// Soft target for the measured run's total duration.
    target: Duration,
}

impl Bencher {
    fn new(target: Duration) -> Bencher {
        Bencher {
            measured: None,
            target,
        }
    }

    pub fn iter<R, F: FnMut() -> R>(&mut self, mut payload: F) {
        // Warmup + calibration: one untimed call, then scale the iteration
        // count so the measured run lasts roughly `target`.
        let start = Instant::now();
        black_box(payload());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters = (self.target.as_nanos() / once.as_nanos()).clamp(1, 1_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(payload());
        }
        self.measured = Some((iters, start.elapsed()));
    }
}

/// Top-level handle created by `criterion_main!`.
pub struct Criterion {
    target: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            target: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.target, None, f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
            target: Duration::from_millis(300),
        }
    }
}

/// A named group of related benchmarks sharing throughput/size settings.
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    target: Duration,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Real criterion interprets this as a statistical sample count; here it
    /// just scales the measured run's duration target (fewer samples ⇒
    /// cheaper benches ⇒ shorter run).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.target = Duration::from_millis(30).saturating_mul(n.clamp(1, 20) as u32);
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            &format!("{}/{}", self.name, name),
            self.target,
            self.throughput,
            f,
        );
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &format!("{}/{}/{}", self.name, id.name, id.parameter),
            self.target,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    target: Duration,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher::new(target);
    f(&mut bencher);
    let Some((iters, total)) = bencher.measured else {
        println!("{label:<55} (no measurement: closure never called iter)");
        return;
    };
    let per_iter = total.as_secs_f64() / iters as f64;
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!("  thrpt: {}/s", si(n as f64 / per_iter, "elem")),
        Throughput::Bytes(n) => format!("  thrpt: {}/s", si(n as f64 / per_iter, "B")),
    });
    println!(
        "{label:<55} time: {:>12}/iter{}",
        human_time(per_iter),
        rate.unwrap_or_default()
    );
}

fn human_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

fn si(rate: f64, unit: &str) -> String {
    if rate >= 1e9 {
        format!("{:.3} G{unit}", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.3} M{unit}", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.3} K{unit}", rate / 1e3)
    } else {
        format!("{rate:.1} {unit}")
    }
}

/// Collect benchmark functions into a runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point for `harness = false` bench binaries.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(1);
        group.throughput(Throughput::Elements(10));
        let mut ran = 0u64;
        group.bench_function("counts", |b| b.iter(|| ran += 1));
        group.bench_with_input(BenchmarkId::new("with_input", 3), &3usize, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
        assert!(ran >= 2, "warmup + at least one measured iteration");
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(human_time(2.0), "2.000 s");
        assert_eq!(human_time(2.5e-3), "2.500 ms");
        assert_eq!(human_time(2.5e-6), "2.500 µs");
        assert_eq!(human_time(5e-9), "5.0 ns");
        assert!(si(2.5e6, "elem").starts_with("2.500 M"));
    }
}
