//! The Byzantine corruption campaign: adversarial writes **beyond** the
//! in-domain scramble class the rest of this crate exercises.
//!
//! The self-stabilization audits ([`crate::campaign`]) draw corrupted states
//! from the program's own variable domains — the paper's undetectable-fault
//! class. A Byzantine process is stronger: it writes *out-of-domain* values
//! (forged sequence numbers beyond the `L`-window, phases beyond
//! `n_phases`), keeps rewriting within a budget, and on multi-position
//! topologies equivocates (each of its positions gets an independent
//! forgery). The claims audited here:
//!
//! * **Attribution soundness** ([`exhaustive_framing`]) — under the
//!   `good`-gated sweep ([`ftbarrier_core::byz::GoodGate`]), exhaustively
//!   over every interleaving of program actions and Byzantine writes by the
//!   attacker set, out-of-domain state only ever appears at the attacker's
//!   own positions. No correct process can be *framed*, so
//!   conviction-by-inspection (splice whoever holds out-of-domain state) is
//!   sound. The gating is load-bearing: the same search against the ungated
//!   fixture ([`crate::fixture::LeakyGate`]) finds a short framing — a
//!   forged `sn` laundered into a correct position by its own `RECV` — and
//!   shrinks it to a replayable event sequence ([`Framing`]).
//! * **Containment** ([`containment`]) — the full quarantine driver
//!   (`ftbarrier_core::byz::run_byz`) over seeded random scenarios on all
//!   five topology families: random sub-quorum Byzantine sets, budgets, and
//!   attack rates, with multi-position attackers equivocating. Every
//!   scenario must satisfy the containment gate (no wedge, no framed
//!   correct process, every targeted phase completed).
//!
//! Any violation serializes as replayable JSON via
//! [`crate::report::framing_to_json`] / [`ByzCampaignFailure::to_json`].

use crate::shrink::{Event, NONDET_SEED};
use ftbarrier_core::byz::{quorum, run_byz, ByzExperiment};
use ftbarrier_core::cp::Cp;
use ftbarrier_core::sim::TopologySpec;
use ftbarrier_core::sweep::{pos_in_domain, PosState, SweepBarrier};
use ftbarrier_core::Sn;
use ftbarrier_gcs::{Pid, Protocol, SimRng};
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt::Write as _;
use std::hash::Hash;

/// The forgery arsenal for a sweep instance: representative out-of-domain
/// writes — `sn` just past the window, `sn` far past it, `ph` past
/// `n_phases`, and a fully scrambled combination. These are exactly the
/// states [`pos_in_domain`] rejects, i.e. the detectable-Byzantine class.
pub fn forged_states(rb: &SweepBarrier) -> Vec<PosState> {
    let l = rb.sn_domain();
    let p = rb.n_phases();
    vec![
        PosState {
            sn: Sn::Val(l),
            ..PosState::start()
        },
        PosState {
            sn: Sn::Val(l.saturating_mul(17).saturating_add(3)),
            cp: Cp::Success,
            ..PosState::start()
        },
        PosState {
            ph: p,
            ..PosState::start()
        },
        PosState {
            sn: Sn::Val(l.saturating_add(1)),
            cp: Cp::Error,
            ph: p.saturating_add(p),
            done: false,
            post: false,
        },
    ]
}

/// Per-position fault domains for [`exhaustive_framing`]: the attacker
/// positions get the forgery arsenal, everyone else gets nothing (a correct
/// process never writes out-of-domain — that is the hypothesis under test).
pub fn byz_fault_domains(rb: &SweepBarrier, attackers: &[Pid]) -> Vec<Vec<PosState>> {
    let arsenal = forged_states(rb);
    (0..rb.dag().num_positions())
        .map(|p| {
            if attackers.contains(&p) {
                arsenal.clone()
            } else {
                Vec::new()
            }
        })
        .collect()
}

/// A minimized framing counterexample: from the initial state, `events`
/// (program actions interleaved with Byzantine writes from the fault
/// domains) lead to `state`, where the positions in `framed` — none of them
/// attacker positions — hold out-of-domain values.
#[derive(Debug, Clone, PartialEq)]
pub struct Framing<S> {
    pub events: Vec<Event>,
    pub state: Vec<S>,
    pub framed: Vec<Pid>,
}

/// Exhaustive framing search: BFS from `protocol`'s initial state over
/// program actions *and* Byzantine writes (`fault_domains[pid]`, empty for
/// correct pids), stopping at the first state where `framed` is non-empty.
///
/// `None` means the search exhausted the whole reachable-with-forgeries
/// closure without a framing — an exhaustive proof of attribution soundness
/// at this instance size. `Some` carries the *shortest* event sequence (BFS
/// layer order) with a deterministic tie-break (fixed edge order), replayable
/// through [`crate::shrink::replay`] with the same domains.
///
/// Panics if the closure exceeds `limit` states (a harness setup error).
pub fn exhaustive_framing<P: Protocol>(
    protocol: &P,
    fault_domains: &[Vec<P::State>],
    framed: impl Fn(&[P::State]) -> Vec<Pid>,
    limit: usize,
) -> Option<Framing<P::State>>
where
    P::State: Hash + Eq,
{
    let n = protocol.num_processes();
    assert_eq!(fault_domains.len(), n, "one fault domain per process");
    let initial = protocol.initial_state();
    assert!(
        framed(&initial).is_empty(),
        "the initial state must not already be a framing"
    );
    type ParentMap<S> = HashMap<Vec<S>, (Vec<S>, Event)>;
    let mut parent: ParentMap<P::State> = HashMap::new();
    let mut seen: HashSet<Vec<P::State>> = HashSet::new();
    let mut queue: VecDeque<Vec<P::State>> = VecDeque::new();
    seen.insert(initial.clone());
    queue.push_back(initial);

    let hit = 'bfs: loop {
        let Some(state) = queue.pop_front() else {
            // Exhausted: no reachable state frames a correct process.
            return None;
        };
        assert!(
            seen.len() <= limit,
            "framing BFS exceeded the state limit {limit}"
        );
        let mut push = |next: Vec<P::State>, event: Event| -> Option<Vec<P::State>> {
            if seen.insert(next.clone()) {
                parent.insert(next.clone(), (state.clone(), event));
                if !framed(&next).is_empty() {
                    return Some(next);
                }
                queue.push_back(next);
            }
            None
        };
        for pid in 0..n {
            for action in 0..protocol.num_actions(pid) {
                if !protocol.enabled(&state, pid, action) {
                    continue;
                }
                for sample in 0..crate::campaign::NONDET_SAMPLES {
                    let mut rng = SimRng::seed_from_u64(NONDET_SEED ^ sample as u64);
                    let mut next = state.clone();
                    next[pid] = protocol.execute(&state, pid, action, &mut rng);
                    let event = Event::Action {
                        pid,
                        action,
                        sample,
                    };
                    if let Some(hit) = push(next, event) {
                        break 'bfs hit;
                    }
                }
            }
        }
        for (pid, domain) in fault_domains.iter().enumerate() {
            for (index, value) in domain.iter().enumerate() {
                if state[pid] == *value {
                    continue;
                }
                let mut next = state.clone();
                next[pid] = value.clone();
                if let Some(hit) = push(next, Event::Fault { pid, index }) {
                    break 'bfs hit;
                }
            }
        }
    };

    let framed_pids = framed(&hit);
    let mut events = Vec::new();
    let mut cursor = hit.clone();
    while let Some((prev, event)) = parent.get(&cursor) {
        events.push(event.clone());
        cursor = prev.clone();
    }
    events.reverse();
    Some(Framing {
        events,
        state: hit,
        framed: framed_pids,
    })
}

/// The framing predicate for a sweep instance: positions outside the
/// attacker set holding out-of-domain state.
pub fn sweep_framed(rb: &SweepBarrier, attackers: &[Pid]) -> impl Fn(&[PosState]) -> Vec<Pid> {
    let (n_phases, sn_domain) = (rb.n_phases(), rb.sn_domain());
    let attackers = attackers.to_vec();
    move |g: &[PosState]| {
        g.iter()
            .enumerate()
            .filter(|&(p, s)| !attackers.contains(&p) && !pos_in_domain(s, n_phases, sn_domain))
            .map(|(p, _)| p)
            .collect()
    }
}

/// Configuration of the sampled containment campaign.
#[derive(Debug, Clone, Copy)]
pub struct ByzCampaignConfig {
    /// Seeded random scenarios to run.
    pub runs: u64,
    pub seed: u64,
    /// Phases every correct survivor must complete per scenario.
    pub target_phases: u64,
    /// Virtual-time horizon per scenario.
    pub horizon: f64,
}

impl ByzCampaignConfig {
    pub fn quick() -> ByzCampaignConfig {
        ByzCampaignConfig {
            runs: 10,
            seed: 0x0B5E_55ED,
            target_phases: 40,
            horizon: 400.0,
        }
    }

    pub fn full() -> ByzCampaignConfig {
        ByzCampaignConfig {
            runs: 40,
            seed: 0x0B5E_55ED,
            target_phases: 120,
            horizon: 1_000.0,
        }
    }
}

/// A passed containment campaign.
#[derive(Debug, Clone, Default)]
pub struct ByzCampaignOutcome {
    pub runs: u64,
    /// Byzantine corruption events fired across all scenarios.
    pub corruptions: u64,
    /// Processes quarantined across all scenarios (all of them Byzantine —
    /// a framed correct process fails the campaign).
    pub quarantines: u64,
    /// Scenarios whose attacker set included a multi-position (equivocating)
    /// process.
    pub equivocating_runs: u64,
}

/// A scenario that violated the containment gate, with everything needed to
/// replay it through `ftbarrier_core::byz::run_byz`.
#[derive(Debug, Clone)]
pub struct ByzCampaignFailure {
    pub seed: u64,
    pub topology: String,
    pub byzantine: Vec<usize>,
    pub budget: usize,
    pub phases: u64,
    pub target: u64,
    pub wedged: bool,
    pub correct_quarantined: Vec<usize>,
}

impl ByzCampaignFailure {
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"program\": \"byz-containment\",");
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        let _ = writeln!(
            out,
            "  \"topology\": \"{}\",",
            crate::report::escape(&self.topology)
        );
        let _ = writeln!(out, "  \"byzantine\": {:?},", self.byzantine);
        let _ = writeln!(out, "  \"budget\": {},", self.budget);
        let _ = writeln!(out, "  \"phases\": {},", self.phases);
        let _ = writeln!(out, "  \"target\": {},", self.target);
        let _ = writeln!(out, "  \"wedged\": {},", self.wedged);
        let _ = writeln!(
            out,
            "  \"correct_quarantined\": {:?}",
            self.correct_quarantined
        );
        out.push_str("}\n");
        out
    }
}

/// The five topology families the containment gate covers, at N = 16.
fn campaign_families() -> [TopologySpec; 5] {
    [
        TopologySpec::Ring { n: 16 },
        TopologySpec::Tree { n: 16, arity: 2 },
        TopologySpec::Dissemination { n: 16, radix: 2 },
        TopologySpec::Hypercube { n: 16 },
        TopologySpec::Butterfly { n: 16 },
    ]
}

/// Run the sampled containment campaign: each seeded scenario draws a
/// topology family, a sub-quorum Byzantine set (never the root), a budget,
/// and an attack rate, then requires the quarantine driver's containment
/// gate. Fails on the first violating scenario.
pub fn containment(cfg: ByzCampaignConfig) -> Result<ByzCampaignOutcome, ByzCampaignFailure> {
    let mut out = ByzCampaignOutcome::default();
    let families = campaign_families();
    for i in 0..cfg.runs {
        let seed = crate::campaign::sample_seed(cfg.seed, i);
        let mut rng = SimRng::seed_from_u64(seed);
        let topology = families[rng.below(families.len())];
        let n = topology.num_processes();
        // Strictly below quorum, and small enough that every scenario keeps
        // a healthy working set; the quorum boundary itself is pinned by the
        // `repro byz` grid.
        let f = 1 + rng.below(4);
        let mut byzantine: Vec<usize> = Vec::with_capacity(f);
        while byzantine.len() < f {
            let pid = 1 + rng.below(n - 1);
            if !byzantine.contains(&pid) {
                byzantine.push(pid);
            }
        }
        byzantine.sort_unstable();
        let dag = topology.build().expect("campaign family");
        if byzantine.iter().any(|&b| dag.positions_of(b).len() > 1) {
            out.equivocating_runs += 1;
        }
        let exp = ByzExperiment {
            topology,
            byzantine: byzantine.clone(),
            seed,
            target_phases: cfg.target_phases,
            horizon: cfg.horizon,
            budget: 1 + rng.below(3),
            attack_rate: 0.2 + rng.below(4) as f64 * 0.2,
            max_quarantined: quorum(n) - 1,
            ..ByzExperiment::default()
        };
        let m = run_byz(&exp);
        if !m.contained() {
            return Err(ByzCampaignFailure {
                seed,
                topology: topology.label().to_owned(),
                byzantine,
                budget: exp.budget,
                phases: m.phases,
                target: m.target,
                wedged: m.wedged,
                correct_quarantined: m.correct_quarantined,
            });
        }
        out.runs += 1;
        out.corruptions += m.budget_spent as u64;
        out.quarantines += m.quarantined.len() as u64;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixture::LeakyGate;
    use crate::shrink::replay;
    use ftbarrier_core::byz::GoodGate;
    use ftbarrier_topology::SweepDag;

    fn small_sweep() -> SweepBarrier {
        SweepBarrier::new(SweepDag::ring(3).unwrap(), 2)
            .try_with_sn_domain(4)
            .unwrap()
    }

    #[test]
    fn forged_states_are_out_of_domain_and_scrambles_are_not() {
        let rb = small_sweep();
        for s in forged_states(&rb) {
            assert!(!pos_in_domain(&s, rb.n_phases(), rb.sn_domain()), "{s:?}");
        }
        assert!(pos_in_domain(
            &PosState::start(),
            rb.n_phases(),
            rb.sn_domain()
        ));
    }

    #[test]
    fn gated_sweep_admits_no_framing_exhaustively() {
        let rb = small_sweep();
        let attackers = [1usize];
        let domains = byz_fault_domains(&rb, &attackers);
        let gate = GoodGate::new(small_sweep());
        let framing = exhaustive_framing(&gate, &domains, sweep_framed(&rb, &attackers), 4_000_000);
        assert!(
            framing.is_none(),
            "the good-gate must contain every forgery: {framing:?}"
        );
    }

    #[test]
    fn ungated_sweep_is_framed_and_the_witness_replays() {
        let rb = small_sweep();
        let attackers = [1usize];
        let domains = byz_fault_domains(&rb, &attackers);
        let leaky = LeakyGate::new(small_sweep());
        let framing =
            exhaustive_framing(&leaky, &domains, sweep_framed(&rb, &attackers), 4_000_000)
                .expect("without the gate, RECV launders the forged sn");
        assert!(!framing.framed.is_empty());
        assert!(
            framing.framed.iter().all(|p| !attackers.contains(p)),
            "framed positions are correct ones: {:?}",
            framing.framed
        );
        assert!(
            framing.events.len() <= 6,
            "BFS must find a short witness: {:?}",
            framing.events
        );
        assert!(
            framing
                .events
                .iter()
                .any(|e| matches!(e, Event::Fault { .. })),
            "a framing needs at least one forgery"
        );
        let end = replay(&leaky, &domains, &framing.events);
        assert_eq!(end, framing.state, "the witness replays exactly");
    }

    #[test]
    fn framing_search_is_deterministic() {
        let rb = small_sweep();
        let attackers = [1usize];
        let domains = byz_fault_domains(&rb, &attackers);
        let a = exhaustive_framing(
            &LeakyGate::new(small_sweep()),
            &domains,
            sweep_framed(&rb, &attackers),
            4_000_000,
        );
        let b = exhaustive_framing(
            &LeakyGate::new(small_sweep()),
            &domains,
            sweep_framed(&rb, &attackers),
            4_000_000,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn quick_containment_campaign_passes_with_equivocators() {
        let out = containment(ByzCampaignConfig {
            runs: 4,
            ..ByzCampaignConfig::quick()
        })
        .unwrap_or_else(|f| panic!("containment violated: {}", f.to_json()));
        assert_eq!(out.runs, 4);
        assert!(out.corruptions > 0, "the campaign must actually attack");
    }

    #[test]
    fn campaign_failure_json_is_wellformed() {
        let failure = ByzCampaignFailure {
            seed: 7,
            topology: "ring-16".to_owned(),
            byzantine: vec![3, 5],
            budget: 2,
            phases: 17,
            target: 40,
            wedged: true,
            correct_quarantined: vec![4],
        };
        let json = failure.to_json();
        let value = ftbarrier_telemetry::json::parse(&json).expect("well-formed JSON");
        let obj = value.as_object().unwrap();
        assert_eq!(obj.get("seed").and_then(|v| v.as_f64()), Some(7.0));
        assert!(json.contains("\"wedged\": true"));
    }
}
