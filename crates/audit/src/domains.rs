//! Corruption closures: the per-process variable domains of each program.
//!
//! An undetectable fault writes an *arbitrary domain value* into a process's
//! variables (§2: "the state of a process may be corrupted to an arbitrary
//! value"). The corruption closure of a program is therefore the full
//! cartesian product of its per-process domains — every global state any
//! burst of undetectable faults can produce. The exhaustive campaign
//! ([`crate::campaign::exhaustive`]) explores stabilization from *all* of
//! these states; the sampled campaign draws seeded random members for
//! instances too large to enumerate.

use ftbarrier_core::cb::{Cb, CbState};
use ftbarrier_core::cp::Cp;
use ftbarrier_core::sweep::{PosState, SweepBarrier};
use ftbarrier_core::token_ring::TokenRing;
use ftbarrier_core::Sn;
use ftbarrier_gcs::{Protocol, Time};

/// All values of one sequence-number variable: `{⊥, ⊤} ∪ {0..k-1}`.
pub fn sn_domain_values(k: u32) -> Vec<Sn> {
    let mut values = vec![Sn::Bot, Sn::Top];
    values.extend((0..k).map(Sn::Val));
    values
}

/// Per-process domains of the token ring: each process holds one `sn` over
/// `{⊥, ⊤} ∪ {0..K-1}`.
pub fn token_ring_domains(ring: &TokenRing) -> Vec<Vec<Sn>> {
    vec![sn_domain_values(ring.k); ring.n]
}

/// Per-process domains of program CB: `cp ∈ CB_DOMAIN × ph ∈ 0..n_phases ×
/// done ∈ {false, true}`.
pub fn cb_domains(cb: &Cb) -> Vec<Vec<CbState>> {
    let mut domain = Vec::new();
    for &cp in &Cp::CB_DOMAIN {
        for ph in 0..cb.n_phases {
            for done in [false, true] {
                domain.push(CbState { cp, ph, done });
            }
        }
    }
    vec![domain; cb.n_processes]
}

/// Per-position domains of the sweep program: `sn ∈ {⊥, ⊤} ∪ {0..L-1} ×
/// cp ∈ RB_DOMAIN × ph ∈ 0..n_phases × done ∈ {false, true}`.
///
/// The `post` bit is pinned to `true`: for non-fuzzy programs it is inert
/// (no action ever reads or clears it), so including both values would
/// double every position's domain without adding a single distinct
/// behaviour. Fuzzy programs (`post_work_cost > 0`) are rejected — their
/// audit needs the full bit and is not wired up here.
pub fn sweep_domains(rb: &SweepBarrier) -> Vec<Vec<PosState>> {
    assert!(
        rb.post_work_cost == Time::ZERO,
        "corruption closure for fuzzy sweep programs is not modeled"
    );
    let mut domain = Vec::new();
    for sn in sn_domain_values(rb.sn_domain) {
        for &cp in &Cp::RB_DOMAIN {
            for ph in 0..rb.n_phases {
                for done in [false, true] {
                    domain.push(PosState {
                        sn,
                        cp,
                        ph,
                        done,
                        post: true,
                    });
                }
            }
        }
    }
    vec![domain; rb.num_processes()]
}

/// The sweep program's recurring legal-operation marker: the quiescent
/// inter-phase point where every position is `ready` at the same phase with
/// the same ordinary sequence number. A fault-free run passes through it
/// once per phase, in *every* `(sn, ph)` correlation coset — which is
/// exactly why it (and not membership in the fault-free reachable set) is
/// the right exhaustive-audit goal for the sweep; see
/// [`crate::campaign::exhaustive`].
pub fn sweep_quiescent(g: &[PosState]) -> bool {
    g[0].sn.is_valid()
        && g.iter()
            .all(|s| s.cp == Cp::Ready && s.ph == g[0].ph && s.sn == g[0].sn)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftbarrier_topology::SweepDag;

    #[test]
    fn token_ring_domain_counts() {
        let ring = TokenRing::new(3); // k = 4
        let d = token_ring_domains(&ring);
        assert_eq!(d.len(), 3);
        assert_eq!(d[0].len(), 4 + 2);
        assert!(d[0].contains(&Sn::Bot) && d[0].contains(&Sn::Top));
    }

    #[test]
    fn cb_domain_counts() {
        let cb = Cb::new(2, 3);
        let d = cb_domains(&cb);
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].len(), 4 * 3 * 2);
    }

    #[test]
    fn sweep_domain_counts_and_post_pinned() {
        let rb = SweepBarrier::new(SweepDag::ring(2).unwrap(), 2)
            .try_with_sn_domain(3)
            .unwrap();
        let d = sweep_domains(&rb);
        assert_eq!(d.len(), 2);
        // (3 + 2) sn × 5 cp × 2 ph × 2 done.
        assert_eq!(d[0].len(), 5 * 5 * 2 * 2);
        assert!(d[0].iter().all(|s| s.post));
    }
}
