//! Counterexample shrinking: reduce any failing corruption run to a minimal
//! replayable event sequence.
//!
//! A failing run (a sampled start that never converged, or a stuck state
//! from the exhaustive audit) is rarely a good bug report: it names a large
//! instance, a random schedule, and dozens of irrelevant corrupted
//! variables. The shrinker ignores the accidental details and re-derives the
//! *minimal* witness directly:
//!
//! 1. **Minimize N** — retry the exhaustive audit at the smallest instance
//!    sizes first; the first size with any stuck state wins.
//! 2. **Minimize events** — breadth-first search from the program's initial
//!    state over *program actions plus single-process corruption events*,
//!    stopping at the first non-stabilizing state. BFS yields the shortest
//!    possible event count; a deterministic edge order makes the result
//!    independent of where (or with which seed) the original failure was
//!    found.
//!
//! The result replays exactly ([`replay`]) and its terminal state can be
//! re-certified as stuck ([`verify_stuck`]).

use crate::campaign::{exhaustive, ExhaustiveFailure, NONDET_SAMPLES};
use ftbarrier_gcs::{ActionId, Explorer, Pid, Protocol, SimRng, StuckKind};
use std::collections::{HashMap, HashSet, VecDeque};
use std::hash::Hash;

/// Seed base of the explorer's per-sample nondeterminism streams. Must match
/// `Explorer::successors` in `ftbarrier-gcs` (stream `s` is seeded
/// `0xE00E ^ s`) so that shrunk action events replay to the same states the
/// audit explored.
pub(crate) const NONDET_SEED: u64 = 0xE0_0E;

/// One event of a minimized counterexample.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// Undetectable fault: overwrite `pid`'s state with the `index`-th value
    /// of its domain.
    Fault { pid: Pid, index: usize },
    /// Program action `(pid, action)`, nondeterminism resolved by RNG stream
    /// `sample`.
    Action {
        pid: Pid,
        action: ActionId,
        sample: u32,
    },
}

/// A minimal counterexample: from the initial state of the `n`-process
/// instance, the events lead to `stuck`, from which no execution reaches the
/// goal again.
#[derive(Debug, Clone, PartialEq)]
pub struct Shrunk<S> {
    pub n: usize,
    pub events: Vec<Event>,
    pub stuck: Vec<S>,
    pub kind: StuckKind,
}

/// Shrink over an instance family: `family(n)` builds the `n`-process
/// protocol and its corruption-closure domains. Sizes are tried smallest
/// first; `None` means every size in the range stabilizes exhaustively (no
/// counterexample exists at these sizes).
///
/// Panics if a legal-set exploration truncates or a closure is not closed —
/// both are harness setup errors, not audit verdicts.
pub fn shrink_family<P, F>(
    family: F,
    sizes: std::ops::RangeInclusive<usize>,
    limit: usize,
) -> Option<Shrunk<P::State>>
where
    P: Protocol,
    P::State: Hash + Eq,
    F: Fn(usize) -> (P, Vec<Vec<P::State>>),
{
    for n in sizes {
        let (protocol, domains) = family(n);
        match exhaustive(&protocol, &domains, limit) {
            Ok(_) => continue,
            Err(ExhaustiveFailure::Stuck { stuck }) => {
                let kinds: HashMap<Vec<P::State>, StuckKind> = stuck.into_iter().collect();
                return Some(shortest_event_path(&protocol, &domains, &kinds, limit));
            }
            Err(other) => panic!("shrink harness setup error at n = {n}: {other}"),
        }
    }
    None
}

/// BFS predecessor map: state → (parent state, edge taken into it).
type ParentMap<S> = HashMap<Vec<S>, (Vec<S>, Event)>;

/// The BFS core: shortest event sequence from the initial state to any state
/// in `kinds`. Edge order is fixed (program actions by ascending `(pid,
/// action, sample)`, then faults by ascending `(pid, domain index)`), so the
/// result is a pure function of the protocol and its domains.
fn shortest_event_path<P: Protocol>(
    protocol: &P,
    domains: &[Vec<P::State>],
    kinds: &HashMap<Vec<P::State>, StuckKind>,
    limit: usize,
) -> Shrunk<P::State>
where
    P::State: Hash + Eq,
{
    let n = protocol.num_processes();
    let initial = protocol.initial_state();
    let mut parent: ParentMap<P::State> = HashMap::new();
    let mut seen: HashSet<Vec<P::State>> = HashSet::new();
    let mut queue: VecDeque<Vec<P::State>> = VecDeque::new();
    seen.insert(initial.clone());
    queue.push_back(initial.clone());

    let hit = 'bfs: loop {
        let Some(state) = queue.pop_front() else {
            unreachable!("faults reach the whole closure, which contains a stuck state");
        };
        if kinds.contains_key(&state) {
            break 'bfs state;
        }
        assert!(
            seen.len() <= limit,
            "shrink BFS exceeded the state limit {limit}"
        );
        let push = |next: Vec<P::State>,
                    event: Event,
                    seen: &mut HashSet<Vec<P::State>>,
                    queue: &mut VecDeque<Vec<P::State>>,
                    parent: &mut ParentMap<P::State>|
         -> Option<Vec<P::State>> {
            if seen.insert(next.clone()) {
                parent.insert(next.clone(), (state.clone(), event));
                if kinds.contains_key(&next) {
                    // Finish on discovery: BFS layer order still guarantees
                    // minimality, and the fixed edge order fixes the winner.
                    return Some(next);
                }
                queue.push_back(next);
            }
            None
        };
        for pid in 0..n {
            for action in 0..protocol.num_actions(pid) {
                if !protocol.enabled(&state, pid, action) {
                    continue;
                }
                for sample in 0..NONDET_SAMPLES {
                    let mut rng = SimRng::seed_from_u64(NONDET_SEED ^ sample as u64);
                    let new = protocol.execute(&state, pid, action, &mut rng);
                    let mut next = state.clone();
                    next[pid] = new;
                    let event = Event::Action {
                        pid,
                        action,
                        sample,
                    };
                    if let Some(hit) = push(next, event, &mut seen, &mut queue, &mut parent) {
                        break 'bfs hit;
                    }
                }
            }
        }
        for pid in 0..n {
            for (index, value) in domains[pid].iter().enumerate() {
                if state[pid] == *value {
                    continue;
                }
                let mut next = state.clone();
                next[pid] = value.clone();
                let event = Event::Fault { pid, index };
                if let Some(hit) = push(next, event, &mut seen, &mut queue, &mut parent) {
                    break 'bfs hit;
                }
            }
        }
    };

    let kind = kinds[&hit];
    let mut events = Vec::new();
    let mut cursor = hit.clone();
    while let Some((prev, event)) = parent.get(&cursor) {
        events.push(event.clone());
        cursor = prev.clone();
    }
    events.reverse();
    Shrunk {
        n,
        events,
        stuck: hit,
        kind,
    }
}

/// Replay a shrunk event sequence from the initial state; returns the final
/// global state (equal to [`Shrunk::stuck`] for an untampered
/// counterexample).
pub fn replay<P: Protocol>(
    protocol: &P,
    domains: &[Vec<P::State>],
    events: &[Event],
) -> Vec<P::State> {
    let mut state = protocol.initial_state();
    for event in events {
        match *event {
            Event::Fault { pid, index } => {
                state[pid] = domains[pid][index].clone();
            }
            Event::Action {
                pid,
                action,
                sample,
            } => {
                assert!(
                    protocol.enabled(&state, pid, action),
                    "replay diverged: action {action} at {pid} not enabled"
                );
                let mut rng = SimRng::seed_from_u64(NONDET_SEED ^ sample as u64);
                state[pid] = protocol.execute(&state, pid, action, &mut rng);
            }
        }
    }
    state
}

/// Re-certify a counterexample's terminal state: exhaustively confirm no
/// state reachable from it satisfies `goal`.
pub fn verify_stuck<P: Protocol>(
    protocol: &P,
    state: Vec<P::State>,
    goal: impl Fn(&[P::State]) -> bool,
    limit: usize,
) -> bool
where
    P::State: Hash + Eq,
{
    let explorer = Explorer::new(protocol).with_nondet_samples(NONDET_SAMPLES);
    let exploration = explorer
        .reachable(vec![state], limit)
        .require_complete()
        .expect("stuck verification must not truncate");
    !exploration.states.iter().any(|s| goal(s))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domains::token_ring_domains;
    use crate::fixture::BrokenRing;
    use ftbarrier_core::token_ring::TokenRing;

    fn broken_family(n: usize) -> (BrokenRing, Vec<Vec<ftbarrier_core::Sn>>) {
        let ring = TokenRing::new(n);
        let domains = token_ring_domains(&ring);
        (BrokenRing::new(ring), domains)
    }

    #[test]
    fn healthy_ring_has_no_counterexample() {
        let shrunk = shrink_family(
            |n| {
                let ring = TokenRing::new(n);
                let domains = token_ring_domains(&ring);
                (ring, domains)
            },
            2..=3,
            1_000_000,
        );
        assert!(shrunk.is_none(), "the paper's ring stabilizes: {shrunk:?}");
    }

    #[test]
    fn broken_ring_shrinks_to_two_fault_events() {
        let shrunk = shrink_family(broken_family, 2..=4, 1_000_000)
            .expect("the broken ring must produce a counterexample");
        assert_eq!(shrunk.n, 2, "minimal instance");
        assert!(
            shrunk.events.len() <= 5,
            "counterexample not minimal: {:?}",
            shrunk.events
        );
        assert!(
            shrunk
                .events
                .iter()
                .all(|e| matches!(e, Event::Fault { .. })),
            "pure corruption suffices: {:?}",
            shrunk.events
        );
        // Replay lands exactly on the recorded stuck state…
        let (protocol, domains) = broken_family(shrunk.n);
        let end = replay(&protocol, &domains, &shrunk.events);
        assert_eq!(end, shrunk.stuck);
        // …and that state really cannot recover a single valid token.
        let ring = TokenRing::new(shrunk.n);
        assert!(verify_stuck(
            &protocol,
            end,
            |g| ring.count_tokens(g) == 1 && g.iter().all(|s| s.is_valid()),
            1_000_000,
        ));
    }

    #[test]
    fn shrinking_is_deterministic() {
        let a = shrink_family(broken_family, 2..=4, 1_000_000).unwrap();
        let b = shrink_family(broken_family, 2..=4, 1_000_000).unwrap();
        assert_eq!(a, b);
    }
}
