//! A deliberately broken protocol to keep the shrinker honest.
//!
//! [`BrokenRing`] is the paper's token ring with T5 (`sn.0 = ⊤ → sn.0 := 0`)
//! "forgotten": the root never resets a ⊤ sequence number back into the
//! ordinary domain, so the ⊤ repair wave has nowhere to terminate. Once
//! every process holds ⊤ (or a state that inevitably leads there), no
//! action is enabled — the ring deadlocks instead of stabilizing.
//!
//! The exhaustive campaign must flag this, and the shrinker must reduce any
//! failing run to the tiny witness: a 2-process ring where two corruption
//! events (`sn.0 := ⊥`, `sn.1 := ⊤`) force the ⊤ wave with no reset.

use ftbarrier_core::sweep::{PosState, SweepBarrier};
use ftbarrier_core::token_ring::TokenRing;
use ftbarrier_core::Sn;
use ftbarrier_gcs::{ActionId, Pid, Protocol, ReaderSet, SimRng, Time};

/// The ring's T5 action index (see `ftbarrier_core::token_ring`).
const T5: ActionId = 4;

/// A token ring that forgets to reset `sn` on ⊤ (T5 is never enabled).
#[derive(Debug, Clone)]
pub struct BrokenRing {
    ring: TokenRing,
}

impl BrokenRing {
    pub fn new(ring: TokenRing) -> BrokenRing {
        BrokenRing { ring }
    }

    pub fn ring(&self) -> &TokenRing {
        &self.ring
    }
}

impl Protocol for BrokenRing {
    type State = Sn;

    fn num_processes(&self) -> usize {
        self.ring.num_processes()
    }

    fn num_actions(&self, pid: Pid) -> usize {
        self.ring.num_actions(pid)
    }

    fn action_name(&self, pid: Pid, action: ActionId) -> &'static str {
        self.ring.action_name(pid, action)
    }

    fn enabled(&self, g: &[Sn], pid: Pid, action: ActionId) -> bool {
        // The injected bug: the reset action is missing.
        action != T5 && self.ring.enabled(g, pid, action)
    }

    fn execute(&self, g: &[Sn], pid: Pid, action: ActionId, rng: &mut SimRng) -> Sn {
        self.ring.execute(g, pid, action, rng)
    }

    fn cost(&self, pid: Pid, action: ActionId) -> Time {
        self.ring.cost(pid, action)
    }

    fn initial_state(&self) -> Vec<Sn> {
        self.ring.initial_state()
    }

    fn arbitrary_state(&self, pid: Pid, rng: &mut SimRng) -> Sn {
        self.ring.arbitrary_state(pid, rng)
    }

    fn readers_of(&self, pid: Pid) -> ReaderSet {
        self.ring.readers_of(pid)
    }
}

/// A "gate that forgot to gate": the Byzantine analogue of [`BrokenRing`].
///
/// [`ftbarrier_core::byz::GoodGate`] superposes the paper's `good` auxiliary
/// on the sweep barrier, gating every action of a position on its own and
/// its predecessors' states being in-domain. `LeakyGate` wraps the same
/// program but delegates `enabled` straight through — the gating is
/// "forgotten". The Byzantine framing search
/// ([`crate::byz::exhaustive_framing`]) must find a short counterexample
/// against it (a forged `sn` laundered into a correct position by that
/// position's own `RECV`), proving the gate is load-bearing and the failure
/// pipeline detects planted Byzantine bugs end to end.
#[derive(Debug, Clone)]
pub struct LeakyGate {
    program: SweepBarrier,
}

impl LeakyGate {
    pub fn new(program: SweepBarrier) -> LeakyGate {
        LeakyGate { program }
    }

    pub fn program(&self) -> &SweepBarrier {
        &self.program
    }
}

impl Protocol for LeakyGate {
    type State = PosState;

    fn num_processes(&self) -> usize {
        self.program.num_processes()
    }

    fn num_actions(&self, pid: Pid) -> usize {
        self.program.num_actions(pid)
    }

    fn action_name(&self, pid: Pid, action: ActionId) -> &'static str {
        self.program.action_name(pid, action)
    }

    fn enabled(&self, g: &[PosState], pid: Pid, action: ActionId) -> bool {
        // The injected bug: no `good` gating — forged neighbor states are
        // read (and adopted) as if they were honest.
        self.program.enabled(g, pid, action)
    }

    fn execute(&self, g: &[PosState], pid: Pid, action: ActionId, rng: &mut SimRng) -> PosState {
        self.program.execute(g, pid, action, rng)
    }

    fn cost(&self, pid: Pid, action: ActionId) -> Time {
        self.program.cost(pid, action)
    }

    fn initial_state(&self) -> Vec<PosState> {
        self.program.initial_state()
    }

    fn arbitrary_state(&self, pid: Pid, rng: &mut SimRng) -> PosState {
        self.program.arbitrary_state(pid, rng)
    }

    fn readers_of(&self, pid: Pid) -> ReaderSet {
        self.program.readers_of(pid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t5_is_never_enabled() {
        let broken = BrokenRing::new(TokenRing::new(3));
        let g = vec![Sn::Top, Sn::Val(0), Sn::Val(0)];
        assert!(broken.ring().enabled(&g, 0, T5), "the healthy ring resets");
        assert!(!broken.enabled(&g, 0, T5), "the broken ring forgot to");
    }

    #[test]
    fn all_top_is_a_deadlock() {
        let broken = BrokenRing::new(TokenRing::new(3));
        let g = vec![Sn::Top; 3];
        for pid in 0..3 {
            for action in 0..broken.num_actions(pid) {
                assert!(!broken.enabled(&g, pid, action));
            }
        }
    }
}
