//! Adversarial undetectable-fault audit.
//!
//! The paper's central claim is *stabilization*: from **any** state — in
//! particular any state an undetectable fault can produce — the barrier
//! programs converge back to legal operation. This crate audits that claim
//! adversarially across all three backends of the repo:
//!
//! * [`byz`] — the Byzantine corruption campaign: out-of-domain adversarial
//!   writes and equivocating forgeries beyond the in-domain scramble class,
//!   an exhaustive no-framing proof for the `good`-gated sweep, and the
//!   sampled containment campaign over the quarantine driver.
//! * [`campaign`] — exhaustive and seeded-sampled audits over the
//!   *corruption closure* of the guarded-command programs (token ring, CB,
//!   sweep barriers over DAGs): every assignment of `sn`/`cp`/`ph` within
//!   domain for small instances, ≥ 10⁴ seeded corrupted starts for large
//!   ones, with convergence required within bounded fair rounds and stuck
//!   states classified as deadlock or livelock.
//! * [`mb`] — the same adversary through the simulated-network MB backend:
//!   scrambled states, scrambled local neighbor copies, and in-flight `sn`
//!   forged beyond the `L > 2N+1` window.
//! * [`rt`] — a live corruptor thread scribbling over the wall-clock
//!   barrier's shared words while a phase loop runs.
//! * [`shrink`] — any failure minimizes to a replayable counterexample
//!   (smallest instance, shortest event sequence) serialized by
//!   [`report`] as JSON under `results/`.
//! * [`fixture`] — a deliberately broken ring that keeps the shrinker
//!   honest end to end.
//!
//! `repro audit` drives the whole suite; see DESIGN.md §6.

pub mod byz;
pub mod campaign;
pub mod domains;
pub mod fixture;
pub mod mb;
pub mod report;
pub mod rt;
pub mod shrink;

pub use byz::{
    byz_fault_domains, containment, exhaustive_framing, forged_states, sweep_framed,
    ByzCampaignConfig, ByzCampaignFailure, ByzCampaignOutcome, Framing,
};
pub use campaign::{
    exhaustive, exhaustive_with_goal, sample_seed, sampled, ExhaustiveFailure, ExhaustiveOutcome,
    SampleConfig, SampleFailure, SampledOutcome, NONDET_SAMPLES,
};
pub use domains::{
    cb_domains, sn_domain_values, sweep_domains, sweep_quiescent, token_ring_domains,
};
pub use fixture::{BrokenRing, LeakyGate};
pub use mb::{MbCampaignConfig, MbCampaignFailure, MbCampaignOutcome};
pub use report::{framing_to_json, sample_failure_to_json, shrunk_to_json};
pub use rt::{RtCampaignConfig, RtCampaignOutcome};
pub use shrink::{replay, shrink_family, verify_stuck, Event, Shrunk};
