//! Corruption campaign over the simulated-network MB backend.
//!
//! The gcs campaigns ([`crate::campaign`]) audit the shared-memory programs;
//! this module drives the same adversary through the message-passing program
//! MB of §5: per seeded run, a deterministic fault plan mixes the three
//! *undetectable* injection classes —
//!
//! * `scrambles` — a process's whole state becomes arbitrary,
//! * `copy_scrambles` — only the cached neighbor copy is corrupted (a
//!   scrambled receive buffer),
//! * `forges` — the `sn` of every in-flight message on a link is rewritten
//!   to an arbitrary `u32`, possibly far beyond the `L > 2N+1` window —
//!
//! and the run must still reach its phase target (stabilization = renewed
//! progress; the interim may violate the specification, which is exactly the
//! paper's nonmasking guarantee). Every run is a pure function of its
//! config, so a failure is replayable from the serialized config alone.
//!
//! [`membership_campaign`] extends the adversary to the dynamic-membership
//! layer: forged epoch numbers on in-flight messages and scrambled local
//! membership views (epoch + routing), over runs with churn enabled and, in
//! half of them, a real crash-then-reboot underneath — the anti-entropy
//! check must repair the corruption and the run must still re-stabilize.

use crate::campaign::sample_seed;
use crate::report::escape;
use ftbarrier_gcs::SimRng;
use ftbarrier_mp::mb_sim::{run, ChurnConfig, CrashPlan, FaultPlan, SimMbConfig};
use std::fmt::Write as _;

/// Campaign shape: `runs` seeded runs of an `n`-process ring, each with
/// `injections` undetectable faults spread over the injection window.
#[derive(Debug, Clone, Copy)]
pub struct MbCampaignConfig {
    pub runs: u64,
    pub n: usize,
    pub injections: usize,
    pub base_seed: u64,
}

impl MbCampaignConfig {
    /// The full acceptance campaign (hundreds of runs, several injections
    /// each — thousands of undetectable faults overall).
    pub fn full() -> MbCampaignConfig {
        MbCampaignConfig {
            runs: 300,
            n: 16,
            injections: 6,
            base_seed: 0x5EED_BA5E,
        }
    }

    /// A CI-sized smoke campaign.
    pub fn quick() -> MbCampaignConfig {
        MbCampaignConfig {
            runs: 20,
            n: 4,
            injections: 4,
            base_seed: 0x5EED_BA5E,
        }
    }
}

/// A passed MB campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct MbCampaignOutcome {
    pub runs: u64,
    /// Undetectable faults injected across all runs.
    pub injections: u64,
    /// Virtual time from the *last* injection to run completion, per run —
    /// the stabilization span observable at this backend.
    pub recovery_spans: Vec<f64>,
}

/// A run that failed to re-stabilize: the exact config replays it.
#[derive(Debug, Clone)]
pub struct MbCampaignFailure {
    pub seed: u64,
    pub config: SimMbConfig,
    pub phases_completed: u64,
    /// The wedged run's causal flight record (`flightrec/v1`), ready for
    /// blame analysis without re-running the campaign.
    pub flight_dump: Option<String>,
}

/// Build the deterministic fault plan of run `seed`: `injections`
/// undetectable faults at distinct virtual times in `[1, 6)`, class and
/// victim drawn from the seed's own stream.
pub fn fault_plan(seed: u64, n: usize, injections: usize) -> FaultPlan {
    let mut rng = SimRng::seed_from_u64(seed ^ 0xFA_17);
    let mut plan = FaultPlan::default();
    for i in 0..injections {
        // Spread injections so each lands in a distinct phase window.
        let t = 1.0 + i as f64 * 5.0 / injections.max(1) as f64 + 0.3 * rng.unit();
        let victim = rng.below(n);
        match rng.below(3) {
            0 => plan.scrambles.push((t, victim)),
            1 => plan.copy_scrambles.push((t, victim)),
            _ => plan.forges.push((t, victim)),
        }
    }
    plan
}

/// The config of run `index` within the campaign.
pub fn run_config(cfg: MbCampaignConfig, index: u64) -> SimMbConfig {
    let seed = sample_seed(cfg.base_seed, index);
    SimMbConfig {
        n: cfg.n,
        target_phases: 16,
        seed,
        max_time: 5_000.0,
        plan: fault_plan(seed, cfg.n, cfg.injections),
        ..SimMbConfig::default()
    }
}

/// Build the deterministic *membership* fault plan of run `seed`:
/// `injections` corruptions of the reconfiguration layer itself — forged
/// epoch numbers on in-flight messages, scrambled local membership views
/// (epoch + routing), and classic state scrambles for interference — on top
/// of, in half the runs, a genuine crash-then-reboot that forces real
/// epoch bumps underneath the corruption.
pub fn membership_fault_plan(seed: u64, n: usize, injections: usize) -> FaultPlan {
    let mut rng = SimRng::seed_from_u64(seed ^ 0xE90C);
    let mut plan = FaultPlan::default();
    for i in 0..injections {
        let t = 1.0 + i as f64 * 5.0 / injections.max(1) as f64 + 0.3 * rng.unit();
        match rng.below(3) {
            0 => plan.epoch_forges.push((t, rng.below(n))),
            1 => plan.view_scrambles.push((t, rng.below(n))),
            _ => plan.scrambles.push((t, rng.below(n))),
        }
    }
    if rng.below(2) == 0 {
        let pid = 1 + rng.below(n - 1); // never the root
        let at = 2.0 + rng.unit();
        plan.crashes.push(CrashPlan {
            pid,
            at,
            reboot_at: at + 4.0 + rng.unit(),
        });
    }
    plan
}

/// The config of membership-campaign run `index`: same shape as
/// [`run_config`] but with churn enabled and the membership fault plan.
pub fn membership_run_config(cfg: MbCampaignConfig, index: u64) -> SimMbConfig {
    let seed = sample_seed(cfg.base_seed ^ 0xC1_1A17, index);
    SimMbConfig {
        n: cfg.n,
        target_phases: 16,
        seed,
        max_time: 5_000.0,
        plan: membership_fault_plan(seed, cfg.n, cfg.injections),
        churn: Some(ChurnConfig::default()),
        ..SimMbConfig::default()
    }
}

/// The membership corruption campaign: every run must re-stabilize — reach
/// its phase target despite forged epochs, scrambled views, and real
/// crash/reboot churn underneath. Failures serialize like the base
/// campaign's.
pub fn membership_campaign(
    cfg: MbCampaignConfig,
) -> Result<MbCampaignOutcome, Box<MbCampaignFailure>> {
    let mut injections = 0u64;
    let mut recovery_spans = Vec::with_capacity(cfg.runs as usize);
    for index in 0..cfg.runs {
        let run_cfg = membership_run_config(cfg, index);
        run_cfg.validate().expect("campaign configs are in-domain");
        let plan = &run_cfg.plan;
        injections +=
            (plan.epoch_forges.len() + plan.view_scrambles.len() + plan.scrambles.len()) as u64;
        let last_injection = plan
            .epoch_forges
            .iter()
            .chain(&plan.view_scrambles)
            .chain(&plan.scrambles)
            .map(|&(t, _)| t)
            .fold(0.0f64, f64::max);
        let report = run(run_cfg.clone());
        if !report.reached_target {
            return Err(Box::new(MbCampaignFailure {
                seed: run_cfg.seed,
                config: run_cfg,
                phases_completed: report.phases_completed,
                flight_dump: report.flight_dump,
            }));
        }
        recovery_spans.push((report.virtual_elapsed.as_f64() - last_injection).max(0.0));
    }
    Ok(MbCampaignOutcome {
        runs: cfg.runs,
        injections,
        recovery_spans,
    })
}

/// Run the campaign; fails on the first run that exhausts its virtual-time
/// budget without reaching the phase target.
pub fn campaign(cfg: MbCampaignConfig) -> Result<MbCampaignOutcome, Box<MbCampaignFailure>> {
    let mut injections = 0u64;
    let mut recovery_spans = Vec::with_capacity(cfg.runs as usize);
    for index in 0..cfg.runs {
        let run_cfg = run_config(cfg, index);
        run_cfg.validate().expect("campaign configs are in-domain");
        let plan = &run_cfg.plan;
        injections += (plan.scrambles.len() + plan.copy_scrambles.len() + plan.forges.len()) as u64;
        let last_injection = plan
            .scrambles
            .iter()
            .chain(&plan.copy_scrambles)
            .chain(&plan.forges)
            .map(|&(t, _)| t)
            .fold(0.0f64, f64::max);
        let report = run(run_cfg.clone());
        if !report.reached_target {
            return Err(Box::new(MbCampaignFailure {
                seed: run_cfg.seed,
                config: run_cfg,
                phases_completed: report.phases_completed,
                flight_dump: report.flight_dump,
            }));
        }
        recovery_spans.push((report.virtual_elapsed.as_f64() - last_injection).max(0.0));
    }
    Ok(MbCampaignOutcome {
        runs: cfg.runs,
        injections,
        recovery_spans,
    })
}

impl MbCampaignFailure {
    /// Serialize the failing run for `results/` (replay: feed the scalar
    /// fields back into `SimMbConfig` and re-run `mb_sim::run`). The wedged
    /// run's flight record is embedded verbatim under `"flight"`, so the
    /// artifact carries its own causal blame evidence.
    pub fn to_json(&self) -> String {
        let c = &self.config;
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"program\": \"simnet-mb\",");
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        let _ = writeln!(out, "  \"n\": {},", c.n);
        let _ = writeln!(out, "  \"n_phases\": {},", c.n_phases);
        let _ = writeln!(out, "  \"target_phases\": {},", c.target_phases);
        let _ = writeln!(out, "  \"max_time\": {},", c.max_time);
        let _ = writeln!(out, "  \"phases_completed\": {},", self.phases_completed);
        match &self.flight_dump {
            Some(dump) => {
                let _ = writeln!(out, "  \"plan\": \"{}\",", escape(&format!("{:?}", c.plan)));
                let _ = writeln!(out, "  \"flight\": {}", dump.trim_end());
            }
            None => {
                let _ = writeln!(out, "  \"plan\": \"{}\"", escape(&format!("{:?}", c.plan)));
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftbarrier_mp::mb_sim::run_with_telemetry;
    use ftbarrier_telemetry::{Telemetry, TimeDomain};

    #[test]
    fn quick_campaign_recovers_every_run() {
        let out = campaign(MbCampaignConfig::quick()).unwrap_or_else(|f| {
            panic!("MB run failed to re-stabilize:\n{}", f.to_json());
        });
        assert_eq!(out.runs, 20);
        assert_eq!(out.injections, 20 * 4);
        assert_eq!(out.recovery_spans.len(), 20);
        assert!(out.recovery_spans.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn fault_plans_are_deterministic_and_undetectable_only() {
        let a = fault_plan(99, 8, 6);
        let b = fault_plan(99, 8, 6);
        assert_eq!(a, b);
        assert_eq!(
            a.scrambles.len() + a.copy_scrambles.len() + a.forges.len(),
            6
        );
        assert!(a.poisons.is_empty(), "poisons are detectable — not ours");
        assert!(a.crashes.is_empty() && a.partitions.is_empty());
        assert!(a.epoch_forges.is_empty() && a.view_scrambles.is_empty());
        assert_eq!(a.poison_rate, 0.0);
    }

    #[test]
    fn membership_plans_are_deterministic_and_target_the_membership_layer() {
        let a = membership_fault_plan(99, 8, 6);
        let b = membership_fault_plan(99, 8, 6);
        assert_eq!(a, b);
        assert_eq!(
            a.epoch_forges.len() + a.view_scrambles.len() + a.scrambles.len(),
            6
        );
        assert!(a.poisons.is_empty() && a.partitions.is_empty());
        assert_eq!(a.poison_rate, 0.0);
        assert!(a.crashes.iter().all(|c| c.pid != 0), "root never crashes");
        // Across seeds, both membership-specific classes actually occur.
        let mut forges = 0;
        let mut scrambles = 0;
        for seed in 0..32u64 {
            let p = membership_fault_plan(seed, 8, 6);
            forges += p.epoch_forges.len();
            scrambles += p.view_scrambles.len();
        }
        assert!(forges > 0 && scrambles > 0);
    }

    #[test]
    fn quick_membership_campaign_restabilizes_every_run() {
        let out = membership_campaign(MbCampaignConfig::quick()).unwrap_or_else(|f| {
            panic!("membership run failed to re-stabilize:\n{}", f.to_json());
        });
        assert_eq!(out.runs, 20);
        assert_eq!(out.injections, 20 * 4);
        assert!(out.recovery_spans.iter().all(|&s| s >= 0.0));
    }

    /// Pinned: a run that fails to re-stabilize serializes *with* its
    /// causal flight record, and that record blames the wedging process.
    #[test]
    fn failed_run_serializes_with_a_blaming_flight_record() {
        use ftbarrier_mp::mb_sim::CrashPlan;
        use ftbarrier_telemetry::FlightDump;
        let config = SimMbConfig {
            n: 4,
            target_phases: 1000,
            seed: 7,
            max_time: 20.0,
            plan: FaultPlan {
                crashes: vec![CrashPlan {
                    pid: 2,
                    at: 1.0,
                    reboot_at: 1e9,
                }],
                ..FaultPlan::default()
            },
            ..SimMbConfig::default()
        };
        let report = run(config.clone());
        assert!(!report.reached_target, "the crash must wedge the run");
        let flight = report.flight_dump.clone().expect("wedged run dumps");
        let parsed = FlightDump::parse(&flight).expect("flight dump parses");
        parsed.replay().expect("flight dump replays consistently");
        assert_eq!(parsed.blamed, Some(2), "blame lands on the crashed pid");

        let failure = MbCampaignFailure {
            seed: 7,
            config,
            phases_completed: report.phases_completed,
            flight_dump: report.flight_dump,
        };
        let json = failure.to_json();
        let value = ftbarrier_telemetry::json::parse(&json).expect("well-formed JSON");
        let obj = value.as_object().unwrap();
        let embedded = obj
            .get("flight")
            .and_then(|v| v.as_object())
            .expect("failure artifact embeds its flight record");
        assert_eq!(
            embedded.get("schema").and_then(|v| v.as_str()),
            Some("flightrec/v1")
        );
        assert_eq!(embedded.get("blamed").and_then(|v| v.as_f64()), Some(2.0));
    }

    #[test]
    fn campaign_run_is_byte_identical_with_telemetry_on() {
        let cfg = run_config(MbCampaignConfig::quick(), 3);
        let off = run(cfg.clone());
        let tele = Telemetry::recording(TimeDomain::Virtual);
        let on = run_with_telemetry(cfg, &tele);
        assert_eq!(off.trace, on.trace, "telemetry perturbed the campaign");
        assert_eq!(off.phases_completed, on.phases_completed);
        assert!(!tele.snapshot().events.is_empty());
    }
}
