//! Corruption campaign over the simulated-network MB backend.
//!
//! The gcs campaigns ([`crate::campaign`]) audit the shared-memory programs;
//! this module drives the same adversary through the message-passing program
//! MB of §5: per seeded run, a deterministic fault plan mixes the three
//! *undetectable* injection classes —
//!
//! * `scrambles` — a process's whole state becomes arbitrary,
//! * `copy_scrambles` — only the cached neighbor copy is corrupted (a
//!   scrambled receive buffer),
//! * `forges` — the `sn` of every in-flight message on a link is rewritten
//!   to an arbitrary `u32`, possibly far beyond the `L > 2N+1` window —
//!
//! and the run must still reach its phase target (stabilization = renewed
//! progress; the interim may violate the specification, which is exactly the
//! paper's nonmasking guarantee). Every run is a pure function of its
//! config, so a failure is replayable from the serialized config alone.

use crate::campaign::sample_seed;
use crate::report::escape;
use ftbarrier_gcs::SimRng;
use ftbarrier_mp::mb_sim::{run, FaultPlan, SimMbConfig};
use std::fmt::Write as _;

/// Campaign shape: `runs` seeded runs of an `n`-process ring, each with
/// `injections` undetectable faults spread over the injection window.
#[derive(Debug, Clone, Copy)]
pub struct MbCampaignConfig {
    pub runs: u64,
    pub n: usize,
    pub injections: usize,
    pub base_seed: u64,
}

impl MbCampaignConfig {
    /// The full acceptance campaign (hundreds of runs, several injections
    /// each — thousands of undetectable faults overall).
    pub fn full() -> MbCampaignConfig {
        MbCampaignConfig {
            runs: 300,
            n: 16,
            injections: 6,
            base_seed: 0x5EED_BA5E,
        }
    }

    /// A CI-sized smoke campaign.
    pub fn quick() -> MbCampaignConfig {
        MbCampaignConfig {
            runs: 20,
            n: 4,
            injections: 4,
            base_seed: 0x5EED_BA5E,
        }
    }
}

/// A passed MB campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct MbCampaignOutcome {
    pub runs: u64,
    /// Undetectable faults injected across all runs.
    pub injections: u64,
    /// Virtual time from the *last* injection to run completion, per run —
    /// the stabilization span observable at this backend.
    pub recovery_spans: Vec<f64>,
}

/// A run that failed to re-stabilize: the exact config replays it.
#[derive(Debug, Clone)]
pub struct MbCampaignFailure {
    pub seed: u64,
    pub config: SimMbConfig,
    pub phases_completed: u64,
}

/// Build the deterministic fault plan of run `seed`: `injections`
/// undetectable faults at distinct virtual times in `[1, 6)`, class and
/// victim drawn from the seed's own stream.
pub fn fault_plan(seed: u64, n: usize, injections: usize) -> FaultPlan {
    let mut rng = SimRng::seed_from_u64(seed ^ 0xFA_17);
    let mut plan = FaultPlan::default();
    for i in 0..injections {
        // Spread injections so each lands in a distinct phase window.
        let t = 1.0 + i as f64 * 5.0 / injections.max(1) as f64 + 0.3 * rng.unit();
        let victim = rng.below(n);
        match rng.below(3) {
            0 => plan.scrambles.push((t, victim)),
            1 => plan.copy_scrambles.push((t, victim)),
            _ => plan.forges.push((t, victim)),
        }
    }
    plan
}

/// The config of run `index` within the campaign.
pub fn run_config(cfg: MbCampaignConfig, index: u64) -> SimMbConfig {
    let seed = sample_seed(cfg.base_seed, index);
    SimMbConfig {
        n: cfg.n,
        target_phases: 16,
        seed,
        max_time: 5_000.0,
        plan: fault_plan(seed, cfg.n, cfg.injections),
        ..SimMbConfig::default()
    }
}

/// Run the campaign; fails on the first run that exhausts its virtual-time
/// budget without reaching the phase target.
pub fn campaign(cfg: MbCampaignConfig) -> Result<MbCampaignOutcome, Box<MbCampaignFailure>> {
    let mut injections = 0u64;
    let mut recovery_spans = Vec::with_capacity(cfg.runs as usize);
    for index in 0..cfg.runs {
        let run_cfg = run_config(cfg, index);
        run_cfg.validate().expect("campaign configs are in-domain");
        let plan = &run_cfg.plan;
        injections += (plan.scrambles.len() + plan.copy_scrambles.len() + plan.forges.len()) as u64;
        let last_injection = plan
            .scrambles
            .iter()
            .chain(&plan.copy_scrambles)
            .chain(&plan.forges)
            .map(|&(t, _)| t)
            .fold(0.0f64, f64::max);
        let report = run(run_cfg.clone());
        if !report.reached_target {
            return Err(Box::new(MbCampaignFailure {
                seed: run_cfg.seed,
                config: run_cfg,
                phases_completed: report.phases_completed,
            }));
        }
        recovery_spans.push((report.virtual_elapsed.as_f64() - last_injection).max(0.0));
    }
    Ok(MbCampaignOutcome {
        runs: cfg.runs,
        injections,
        recovery_spans,
    })
}

impl MbCampaignFailure {
    /// Serialize the failing run for `results/` (replay: feed the scalar
    /// fields back into `SimMbConfig` and re-run `mb_sim::run`).
    pub fn to_json(&self) -> String {
        let c = &self.config;
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"program\": \"simnet-mb\",");
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        let _ = writeln!(out, "  \"n\": {},", c.n);
        let _ = writeln!(out, "  \"n_phases\": {},", c.n_phases);
        let _ = writeln!(out, "  \"target_phases\": {},", c.target_phases);
        let _ = writeln!(out, "  \"max_time\": {},", c.max_time);
        let _ = writeln!(out, "  \"phases_completed\": {},", self.phases_completed);
        let _ = writeln!(out, "  \"plan\": \"{}\"", escape(&format!("{:?}", c.plan)));
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftbarrier_mp::mb_sim::run_with_telemetry;
    use ftbarrier_telemetry::{Telemetry, TimeDomain};

    #[test]
    fn quick_campaign_recovers_every_run() {
        let out = campaign(MbCampaignConfig::quick()).unwrap_or_else(|f| {
            panic!("MB run failed to re-stabilize:\n{}", f.to_json());
        });
        assert_eq!(out.runs, 20);
        assert_eq!(out.injections, 20 * 4);
        assert_eq!(out.recovery_spans.len(), 20);
        assert!(out.recovery_spans.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn fault_plans_are_deterministic_and_undetectable_only() {
        let a = fault_plan(99, 8, 6);
        let b = fault_plan(99, 8, 6);
        assert_eq!(a, b);
        assert_eq!(
            a.scrambles.len() + a.copy_scrambles.len() + a.forges.len(),
            6
        );
        assert!(a.poisons.is_empty(), "poisons are detectable — not ours");
        assert!(a.crashes.is_empty() && a.partitions.is_empty());
        assert_eq!(a.poison_rate, 0.0);
    }

    #[test]
    fn campaign_run_is_byte_identical_with_telemetry_on() {
        let cfg = run_config(MbCampaignConfig::quick(), 3);
        let off = run(cfg.clone());
        let tele = Telemetry::recording(TimeDomain::Virtual);
        let on = run_with_telemetry(cfg, &tele);
        assert_eq!(off.trace, on.trace, "telemetry perturbed the campaign");
        assert_eq!(off.phases_completed, on.phases_completed);
        assert!(!tele.snapshot().events.is_empty());
    }
}
