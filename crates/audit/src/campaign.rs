//! The corruption campaign: exhaustive and seeded-sampled stabilization
//! audits over a program's corruption closure.
//!
//! **Exhaustive** (small instances): enumerate the *entire* corruption
//! closure (the cartesian product of per-process domains, see
//! [`crate::domains`]), compute the fault-free reachable set from the
//! initial state (the legal states), and verify via backward BFS that every
//! closure state can reach a legal state — with per-state stabilization
//! distances and a deadlock/livelock classification of anything stuck.
//!
//! **Sampled** (large instances): draw ≥ 10⁴ seeded corrupted start states,
//! run each under the deterministically weakly-fair round-robin scheduler,
//! and require convergence to a recurring legal marker within a bounded
//! number of fair rounds (one round ≈ `num_processes` interleaving steps).

use ftbarrier_gcs::{
    ChoicePolicy, Explorer, Interleaving, InterleavingConfig, NullMonitor, Protocol, SimRng,
    StabilizationReport, StuckKind,
};
use std::collections::HashSet;
use std::hash::Hash;

/// RNG streams sampled per nondeterministic statement during exhaustive
/// exploration (covers the `any k : …` choices of CB3/CB4; deterministic
/// programs need only 1, extra streams only add duplicate edges).
pub const NONDET_SAMPLES: u32 = 4;

/// A passed exhaustive audit.
#[derive(Debug)]
pub struct ExhaustiveOutcome<S> {
    /// Size of the corruption closure (cartesian product of the domains).
    pub universe: usize,
    /// Fault-free reachable (legal) states — the audit's goal set.
    pub legal: usize,
    /// Distances and (empty) stuck classification.
    pub report: StabilizationReport<S>,
}

/// Why an exhaustive audit failed.
#[derive(Debug)]
pub enum ExhaustiveFailure<S> {
    /// The fault-free reachable set overflowed the state limit; the audit
    /// has no trustworthy goal set and proves nothing.
    Truncated { limit: usize, explored: usize },
    /// The closure was not closed under program transitions (a domain
    /// modeling bug: some statement writes a value outside the domain).
    NotClosed { state: Vec<S>, successor: Vec<S> },
    /// Corrupted states from which no execution reaches a legal state.
    Stuck { stuck: Vec<(Vec<S>, StuckKind)> },
}

impl<S: std::fmt::Debug> std::fmt::Display for ExhaustiveFailure<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExhaustiveFailure::Truncated { limit, explored } => write!(
                f,
                "legal-set exploration truncated at {limit} ({explored} states)"
            ),
            ExhaustiveFailure::NotClosed { state, successor } => write!(
                f,
                "corruption closure not closed: {state:?} steps to {successor:?}"
            ),
            ExhaustiveFailure::Stuck { stuck } => write!(
                f,
                "{} corrupted states cannot stabilize (first: {:?} [{:?}])",
                stuck.len(),
                stuck[0].0,
                stuck[0].1
            ),
        }
    }
}

/// Exhaustively audit stabilization of `protocol` over the corruption
/// closure spanned by `domains`. The goal is membership in the fault-free
/// reachable set from the program's initial state — the strongest recurring
/// notion of "the barrier has converged" that needs no per-program
/// predicate.
///
/// **Caveat (a finding of this audit):** this goal is only correct when the
/// fault-free reachable set equals the program's legal (invariant) set. The
/// sweep program violates that: its fault-free run visits one fixed
/// correlation of `sn` against `ph` (each phase advance moves the root's
/// `sn` by the number of control sweeps), and a corrupted state in a
/// different `(sn, ph)` coset recovers to a perfectly healthy but
/// *shifted* orbit this goal never accepts — a false livelock verdict on
/// most of the closure. Audit such programs with
/// [`exhaustive_with_goal`] and a recurring legal-operation marker instead
/// (see `sweep_legal_set_is_not_the_invariant_set`).
pub fn exhaustive<P: Protocol>(
    protocol: &P,
    domains: &[Vec<P::State>],
    limit: usize,
) -> Result<ExhaustiveOutcome<P::State>, ExhaustiveFailure<P::State>>
where
    P::State: Hash + Eq,
{
    let explorer = Explorer::new(protocol).with_nondet_samples(NONDET_SAMPLES);
    let legal_states = explorer
        .reachable(vec![protocol.initial_state()], limit)
        .require_complete()
        .map_err(|e| match e {
            ftbarrier_gcs::CheckFailure::Truncated { limit, explored } => {
                ExhaustiveFailure::Truncated { limit, explored }
            }
            ftbarrier_gcs::CheckFailure::Violation(_) => unreachable!("no invariant was checked"),
        })?;
    let legal: HashSet<Vec<P::State>> = legal_states.states.into_iter().collect();
    exhaustive_with_goal(protocol, domains, |s| legal.contains(s))
}

/// Exhaustively audit stabilization toward an explicit goal predicate — a
/// *recurring* marker of legal operation (e.g. the sweep's quiescent
/// inter-phase point). Use this instead of [`exhaustive`] when the
/// fault-free reachable set is narrower than the program's legal set.
pub fn exhaustive_with_goal<P: Protocol>(
    protocol: &P,
    domains: &[Vec<P::State>],
    goal: impl Fn(&[P::State]) -> bool,
) -> Result<ExhaustiveOutcome<P::State>, ExhaustiveFailure<P::State>>
where
    P::State: Hash + Eq,
{
    let explorer = Explorer::new(protocol).with_nondet_samples(NONDET_SAMPLES);
    let universe = ftbarrier_gcs::universe(domains);
    let legal = universe.iter().filter(|s| goal(s)).count();
    let report = explorer
        .stabilization(&universe, |s| goal(s))
        .map_err(|nc| ExhaustiveFailure::NotClosed {
            state: nc.state,
            successor: nc.successor,
        })?;
    if !report.is_stabilizing() {
        return Err(ExhaustiveFailure::Stuck {
            stuck: report.stuck,
        });
    }
    Ok(ExhaustiveOutcome {
        universe: universe.len(),
        legal,
        report,
    })
}

/// Configuration of a sampled audit.
#[derive(Debug, Clone, Copy)]
pub struct SampleConfig {
    /// Corrupted start states to draw.
    pub samples: u64,
    /// Interleaving-step budget per start (the fair-round bound times
    /// `num_processes`).
    pub max_steps: u64,
    /// Base seed; each sample derives its own stream.
    pub seed: u64,
}

/// A passed sampled audit, with the per-start convergence costs.
#[derive(Debug, Clone, PartialEq)]
pub struct SampledOutcome {
    pub samples: u64,
    /// Interleaving steps to convergence, one entry per start.
    pub steps: Vec<u64>,
    /// Fair rounds (steps / `num_processes`, rounded up) — worst observed.
    pub max_rounds: u64,
    /// Mean fair rounds over all starts.
    pub mean_rounds: f64,
}

/// A sampled start that failed to converge within the round budget: the
/// replayable seed and the exact corrupted start state.
#[derive(Debug)]
pub struct SampleFailure<S> {
    pub seed: u64,
    pub start: Vec<S>,
    pub budget: u64,
}

/// Derive the per-sample seed from the base seed (splitmix-style stir so
/// neighbouring indices land on distant streams).
pub fn sample_seed(base: u64, index: u64) -> u64 {
    let mut z = base ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Sampled stabilization audit: from each seeded corrupted start, run under
/// the round-robin (deterministically weakly fair) scheduler until `goal`
/// holds. Fails on the first start that exhausts its step budget.
pub fn sampled<P: Protocol>(
    protocol: &P,
    cfg: SampleConfig,
    goal: impl Fn(&[P::State]) -> bool,
) -> Result<SampledOutcome, SampleFailure<P::State>> {
    let n = protocol.num_processes() as u64;
    let mut steps = Vec::with_capacity(cfg.samples as usize);
    for i in 0..cfg.samples {
        let seed = sample_seed(cfg.seed, i);
        let mut rng = SimRng::seed_from_u64(seed);
        let start: Vec<P::State> = (0..protocol.num_processes())
            .map(|pid| protocol.arbitrary_state(pid, &mut rng))
            .collect();
        let mut exec = Interleaving::from_state(
            protocol,
            InterleavingConfig {
                seed,
                policy: ChoicePolicy::RoundRobin,
            },
            start.clone(),
        );
        match exec.run_until(cfg.max_steps, &mut NullMonitor, &goal) {
            Some(done) => steps.push(done),
            None => {
                return Err(SampleFailure {
                    seed,
                    start,
                    budget: cfg.max_steps,
                })
            }
        }
    }
    let rounds = |s: u64| s.div_ceil(n);
    let max_rounds = steps.iter().copied().map(rounds).max().unwrap_or(0);
    let mean_rounds = if steps.is_empty() {
        0.0
    } else {
        steps.iter().map(|&s| rounds(s) as f64).sum::<f64>() / steps.len() as f64
    };
    Ok(SampledOutcome {
        samples: cfg.samples,
        steps,
        max_rounds,
        mean_rounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domains;
    use ftbarrier_core::cb::Cb;
    use ftbarrier_core::cp::Cp;
    use ftbarrier_core::token_ring::TokenRing;

    #[test]
    fn token_ring_exhaustive_small() {
        let ring = TokenRing::new(3); // k = 4 → universe 6³ = 216
        let out = exhaustive(&ring, &domains::token_ring_domains(&ring), 100_000)
            .expect("the ring stabilizes from its whole closure");
        assert_eq!(out.universe, 6 * 6 * 6);
        assert!(out.legal >= 3, "legal set covers the token positions");
        assert!(out.report.max_distance() >= 1);
    }

    #[test]
    fn cb_exhaustive_small() {
        let cb = Cb::new(2, 2); // universe (4·2·2)² = 256
        let out = exhaustive(&cb, &domains::cb_domains(&cb), 100_000)
            .expect("CB stabilizes from its whole closure");
        assert_eq!(out.universe, 16 * 16);
    }

    /// Pinned audit finding: the sweep's fault-free reachable set is a
    /// proper subset of its legal set. Each phase advance moves the root's
    /// `sn` by the three control sweeps of a phase, so the fault-free run
    /// occupies one coset of `⟨(3, 1)⟩ ≤ Z_L × Z_phases`; with `L = 4`
    /// (even), other cosets exist, and a corrupted state there recovers to
    /// a healthy but `sn`-shifted orbit. The reachable-set goal calls that
    /// a livelock; the quiescent-marker goal correctly accepts it.
    #[test]
    fn sweep_legal_set_is_not_the_invariant_set() {
        use ftbarrier_core::sweep::SweepBarrier;
        use ftbarrier_topology::SweepDag;
        let rb = SweepBarrier::new(SweepDag::ring(2).unwrap(), 2)
            .try_with_sn_domain(4)
            .unwrap();
        let doms = domains::sweep_domains(&rb);
        match exhaustive(&rb, &doms, 1_000_000) {
            Err(ExhaustiveFailure::Stuck { stuck }) => {
                assert!(!stuck.is_empty());
                assert!(
                    stuck
                        .iter()
                        .any(|(_, k)| *k == ftbarrier_gcs::StuckKind::Livelock),
                    "decorrelated cosets cycle forever outside the reachable set"
                );
            }
            other => panic!("expected the false-livelock verdict, got {other:?}"),
        }
        let out = exhaustive_with_goal(&rb, &doms, domains::sweep_quiescent)
            .expect("every corrupted start reaches the quiescent marker");
        // Per-position domain: (4 + 2) sn × 5 cp × 2 ph × 2 done = 120.
        assert_eq!(out.universe, 120 * 120);
        assert!(out.legal >= 4, "one quiescent state per (sn, ph) pair");
    }

    /// The log-depth families stabilize to the topology-correct quiescent
    /// marker — with no false livelocks from the gcd(3, L) coset pitfall.
    /// Hypercube(2) is the one log-depth instance whose corruption closure
    /// is enumerable (3 positions), so it gets the exhaustive tier; the
    /// layered dissemination/butterfly grids start at 5 positions and get
    /// the seeded sampled closure instead.
    #[test]
    fn log_depth_families_reach_the_quiescent_marker() {
        use ftbarrier_core::sweep::SweepBarrier;
        use ftbarrier_topology::SweepDag;

        // Exhaustive: the 2-process hypercube is a 3-position binomial
        // double tree. L = positions + 1 = 4 is even, so cosets of
        // ⟨(3, 1)⟩ exist and the reachable-set goal would cry livelock;
        // the quiescent marker must accept every corrupted start.
        let dag = SweepDag::hypercube(2).unwrap();
        let rb = SweepBarrier::new(dag, 2).try_with_sn_domain(4).unwrap();
        let doms = domains::sweep_domains(&rb);
        let out = exhaustive_with_goal(&rb, &doms, domains::sweep_quiescent)
            .expect("hypercube(2) stabilizes from its whole corruption closure");
        // Per-position domain: (4 + 2) sn × 5 cp × 2 ph × 2 done = 120.
        assert_eq!(out.universe, 120 * 120 * 120);
        assert!(out.report.max_distance() >= 1);

        // Sampled: dissemination radix 2 and 4, and the butterfly, at the
        // smallest sizes (9–13 positions).
        let grids = [
            ("dissemination-r2", SweepDag::dissemination(4, 2).unwrap()),
            ("dissemination-r4", SweepDag::dissemination(4, 4).unwrap()),
            ("butterfly", SweepDag::butterfly(4).unwrap()),
        ];
        for (name, dag) in grids {
            let l = dag.num_positions() as u32 + 1;
            let rb = SweepBarrier::new(dag, 2).try_with_sn_domain(l).unwrap();
            let out = sampled(
                &rb,
                SampleConfig {
                    samples: 200,
                    max_steps: 200_000,
                    seed: 0x10D2,
                },
                domains::sweep_quiescent,
            )
            .unwrap_or_else(|f| {
                panic!(
                    "{name}: start {:?} (seed {:#x}) never quiesced",
                    f.start, f.seed
                )
            });
            assert_eq!(out.samples, 200, "{name}");
            assert!(out.max_rounds >= 1, "{name}");
        }
    }

    #[test]
    fn sampled_token_ring_converges_in_bounded_rounds() {
        let ring = TokenRing::new(8);
        let out = sampled(
            &ring,
            SampleConfig {
                samples: 300,
                max_steps: 50_000,
                seed: 0xA0D1,
            },
            |g| ring.count_tokens(g) == 1 && g.iter().all(|s| s.is_valid()),
        )
        .expect("every sampled start stabilizes");
        assert_eq!(out.steps.len(), 300);
        assert!(out.max_rounds >= 1);
        assert!(out.mean_rounds <= out.max_rounds as f64);
    }

    #[test]
    fn sampled_cb_reaches_start_marker() {
        let cb = Cb::new(6, 4);
        let out = sampled(
            &cb,
            SampleConfig {
                samples: 200,
                max_steps: 100_000,
                seed: 0xC0FFEE,
            },
            |g| g.iter().all(|s| s.cp == Cp::Ready && s.ph == g[0].ph),
        )
        .expect("CB reaches an all-ready start state from every start");
        assert_eq!(out.samples, 200);
    }

    #[test]
    fn sample_seeds_are_distinct_streams() {
        let a = sample_seed(7, 0);
        let b = sample_seed(7, 1);
        let c = sample_seed(8, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}
