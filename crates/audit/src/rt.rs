//! Corruption campaign over the wall-clock runtime barrier.
//!
//! A concurrent corruptor thread scribbles over the barrier's three shared
//! word kinds (arrival slots, release, phase) while a phase loop is in
//! flight, mixing the detectable and undetectable fault classes:
//!
//! * **ill-formed scribbles** — random raw values failing the checksum;
//!   repaired from the shadow by the next reader;
//! * **phase forgeries** — well-formed words with arbitrary phase numbers;
//!   non-root participants transiently adopt them, the root's local copy is
//!   authoritative;
//! * **slot erasures** — well-formed words whose epoch is stale (0) or far
//!   beyond anything the run reaches, overwriting a published arrival;
//! * **release erasures** — well-formed words at epoch 0 (real epochs start
//!   at 1), overwriting a published release before its waiters read it.
//!
//! The erasure classes are the ones that wedged the barrier permanently
//! before re-assertion (see the `forged_*_erasure_does_not_wedge` and
//! `reassert_unwedges_*` regression tests in `ftbarrier-runtime`): nothing
//! ever re-published a forged-over word, so a waiter spinning for it
//! starved. Participants now re-assert their pending publications while
//! they wait, and the scoped driver drains the final release.
//!
//! Deliberately **excluded** adversary: forging an arrival or release with
//! the victim's *live* epoch, repeatedly, tracking the run. A single such
//! forgery is recovered (pinned by `forged_slot_resynchronizes_…`), but a
//! sustained live-epoch forger can make outcome histories diverge across
//! participants, and no count-based termination survives that — it is a
//! distributed termination-detection problem, not a stabilization one. See
//! DESIGN.md §6.

use ftbarrier_runtime::{run_phases_observed, CorruptTarget, FailurePolicy, RunSummary};
use ftbarrier_telemetry::Telemetry;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ftbarrier_gcs::SimRng;

/// Campaign shape for the runtime barrier.
#[derive(Debug, Clone, Copy)]
pub struct RtCampaignConfig {
    pub n: usize,
    pub phases: u64,
    /// Corruption injections attempted while the run is in flight.
    pub injections: u64,
    pub seed: u64,
}

impl RtCampaignConfig {
    /// The full acceptance campaign: ≥ 10⁴ injections.
    pub fn full() -> RtCampaignConfig {
        RtCampaignConfig {
            n: 8,
            phases: 400,
            injections: 10_000,
            seed: 0xBAD_C0DE,
        }
    }

    /// A CI-sized smoke campaign.
    pub fn quick() -> RtCampaignConfig {
        RtCampaignConfig {
            n: 4,
            phases: 60,
            injections: 800,
            seed: 0xBAD_C0DE,
        }
    }
}

/// A passed runtime campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RtCampaignOutcome {
    pub summary: RunSummary,
    /// Injections actually performed before the run completed (the rest
    /// would have landed on a finished barrier and prove nothing).
    pub injections_done: u64,
}

/// One corruption injection: pick a target and a fault class from the
/// stream. Returns `(target, raw)`.
fn injection(rng: &mut SimRng, n: usize) -> (CorruptTarget, u64) {
    let target = match rng.below(3) {
        0 => CorruptTarget::Slot(rng.below(n)),
        1 => CorruptTarget::Release,
        _ => CorruptTarget::Phase,
    };
    let raw = match rng.below(3) {
        // Ill-formed scribble (detectable): any raw value that fails the
        // checksum.
        0 => {
            let mut raw = rng.next_u64();
            if ftbarrier_runtime::word::unpack(raw).is_some() {
                raw ^= 0xFF;
            }
            raw
        }
        // Well-formed erasure: stale epoch 0 (real epochs start at 1), any
        // payload — overwrites a published word with a dead one.
        1 => ftbarrier_runtime::word::pack(0, rng.below(4) as u8),
        // Well-formed forgery far outside the run: for slots this erases a
        // published arrival with an epoch no parent will ever wait for;
        // for the phase word it is an arbitrary-phase forgery.
        _ => {
            ftbarrier_runtime::word::pack((1 << 30) + rng.range_u64(0, 1 << 20), rng.below(4) as u8)
        }
    };
    (target, raw)
}

/// Run the campaign: `cfg.phases` barrier phases across `cfg.n` workers
/// with the corruptor injecting concurrently. Panics if the run errors;
/// wedging (the pre-fix failure mode) would hang rather than pass.
pub fn campaign(cfg: RtCampaignConfig) -> RtCampaignOutcome {
    campaign_with_telemetry(cfg, &Telemetry::off())
}

/// [`campaign`] with runtime observability (worker spans and phase-duration
/// histograms, exactly as [`run_phases_instrumented`]'s).
///
/// [`run_phases_instrumented`]: ftbarrier_runtime::run_phases_instrumented
pub fn campaign_with_telemetry(cfg: RtCampaignConfig, telemetry: &Telemetry) -> RtCampaignOutcome {
    let injections_done = Arc::new(AtomicU64::new(0));
    let counter = Arc::clone(&injections_done);
    let mut corruptor = None;
    let summary = run_phases_observed(
        cfg.n,
        cfg.phases,
        FailurePolicy::Tolerate,
        telemetry,
        |b| {
            let n = cfg.n;
            let seed = cfg.seed;
            let injections = cfg.injections;
            corruptor = Some(std::thread::spawn(move || {
                let mut rng = SimRng::seed_from_u64(seed);
                for i in 0..injections {
                    let (target, raw) = injection(&mut rng, n);
                    b.corrupt(target, raw);
                    counter.fetch_add(1, Ordering::Relaxed);
                    if i % 8 == 0 {
                        std::thread::yield_now();
                    }
                }
            }));
        },
        |_| Ok(()),
    )
    .expect("corruption must not error a Tolerate run");
    corruptor
        .expect("with_handle always runs")
        .join()
        .expect("corruptor thread panicked");
    RtCampaignOutcome {
        summary,
        injections_done: injections_done.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_campaign_completes_every_phase() {
        let cfg = RtCampaignConfig::quick();
        let out = campaign(cfg);
        assert_eq!(out.summary.phases, cfg.phases);
        assert!(out.injections_done > 0, "corruptor never ran");
    }

    #[test]
    fn injections_cover_every_class_and_target() {
        let mut rng = SimRng::seed_from_u64(7);
        let mut slots = 0;
        let mut releases = 0;
        let mut phases = 0;
        let mut ill_formed = 0;
        let mut well_formed = 0;
        for _ in 0..500 {
            let (target, raw) = injection(&mut rng, 8);
            match target {
                CorruptTarget::Slot(i) => {
                    assert!(i < 8);
                    slots += 1;
                }
                CorruptTarget::Release => releases += 1,
                CorruptTarget::Phase => phases += 1,
            }
            match ftbarrier_runtime::word::unpack(raw) {
                Some((epoch, _)) => {
                    well_formed += 1;
                    // Forged epochs are stale or unreachable, never live.
                    assert!(epoch == 0 || epoch >= (1 << 30), "live epoch {epoch}");
                }
                None => ill_formed += 1,
            }
        }
        for count in [slots, releases, phases, ill_formed, well_formed] {
            assert!(count > 50, "class starved: {count}");
        }
    }
}
