//! Replayable counterexample serialization (hand-rolled JSON — the build is
//! fully offline, see `vendor/README.md`).
//!
//! The `repro audit` subcommand writes these under `results/` whenever a
//! campaign fails, and CI uploads them as artifacts; a reader can feed the
//! events back through [`crate::shrink::replay`] to reproduce the stuck
//! state exactly.

use crate::campaign::SampleFailure;
use crate::shrink::{Event, Shrunk};
use ftbarrier_gcs::{Protocol, StuckKind};
use std::fmt::Write as _;

/// Escape a string for a JSON literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Serialize a minimized counterexample. `program` names the audited
/// protocol instance (e.g. `"broken-ring"`).
pub fn shrunk_to_json<P: Protocol>(
    program: &str,
    protocol: &P,
    domains: &[Vec<P::State>],
    shrunk: &Shrunk<P::State>,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"program\": \"{}\",", escape(program));
    let _ = writeln!(out, "  \"n\": {},", shrunk.n);
    let kind = match shrunk.kind {
        StuckKind::Deadlock => "deadlock",
        StuckKind::Livelock => "livelock",
    };
    let _ = writeln!(out, "  \"kind\": \"{kind}\",");
    out.push_str("  \"events\": [\n");
    for (i, event) in shrunk.events.iter().enumerate() {
        let comma = if i + 1 < shrunk.events.len() { "," } else { "" };
        match *event {
            Event::Fault { pid, index } => {
                let value = escape(&format!("{:?}", domains[pid][index]));
                let _ = writeln!(
                    out,
                    "    {{\"type\": \"fault\", \"pid\": {pid}, \"index\": {index}, \
                     \"value\": \"{value}\"}}{comma}"
                );
            }
            Event::Action {
                pid,
                action,
                sample,
            } => {
                let name = escape(protocol.action_name(pid, action));
                let _ = writeln!(
                    out,
                    "    {{\"type\": \"action\", \"pid\": {pid}, \"action\": {action}, \
                     \"sample\": {sample}, \"name\": \"{name}\"}}{comma}"
                );
            }
        }
    }
    out.push_str("  ],\n");
    out.push_str("  \"stuck\": [");
    for (i, s) in shrunk.stuck.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "\"{}\"", escape(&format!("{s:?}")));
    }
    out.push_str("]\n}\n");
    out
}

/// Serialize a minimized Byzantine framing counterexample
/// ([`crate::byz::Framing`]): the shortest action/forgery interleaving that
/// plants out-of-domain state at a correct position. Replayable through
/// [`crate::shrink::replay`] with the same fault domains.
pub fn framing_to_json<P: Protocol>(
    program: &str,
    protocol: &P,
    domains: &[Vec<P::State>],
    framing: &crate::byz::Framing<P::State>,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"program\": \"{}\",", escape(program));
    let _ = writeln!(out, "  \"framed\": {:?},", framing.framed);
    out.push_str("  \"events\": [\n");
    for (i, event) in framing.events.iter().enumerate() {
        let comma = if i + 1 < framing.events.len() {
            ","
        } else {
            ""
        };
        match *event {
            Event::Fault { pid, index } => {
                let value = escape(&format!("{:?}", domains[pid][index]));
                let _ = writeln!(
                    out,
                    "    {{\"type\": \"forgery\", \"pid\": {pid}, \"index\": {index}, \
                     \"value\": \"{value}\"}}{comma}"
                );
            }
            Event::Action {
                pid,
                action,
                sample,
            } => {
                let name = escape(protocol.action_name(pid, action));
                let _ = writeln!(
                    out,
                    "    {{\"type\": \"action\", \"pid\": {pid}, \"action\": {action}, \
                     \"sample\": {sample}, \"name\": \"{name}\"}}{comma}"
                );
            }
        }
    }
    out.push_str("  ],\n");
    out.push_str("  \"state\": [");
    for (i, s) in framing.state.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "\"{}\"", escape(&format!("{s:?}")));
    }
    out.push_str("]\n}\n");
    out
}

/// Serialize an unshrunk sampled failure (kept alongside the shrunk witness
/// so the original failing seed stays reproducible).
pub fn sample_failure_to_json<S: std::fmt::Debug>(
    program: &str,
    failure: &SampleFailure<S>,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"program\": \"{}\",", escape(program));
    let _ = writeln!(out, "  \"seed\": {},", failure.seed);
    let _ = writeln!(out, "  \"budget_steps\": {},", failure.budget);
    out.push_str("  \"start\": [");
    for (i, s) in failure.start.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "\"{}\"", escape(&format!("{s:?}")));
    }
    out.push_str("]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domains::token_ring_domains;
    use crate::fixture::BrokenRing;
    use crate::shrink::shrink_family;
    use ftbarrier_core::token_ring::TokenRing;

    #[test]
    fn escapes_json_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn shrunk_json_is_wellformed_and_replayable_by_eye() {
        let family = |n: usize| {
            let ring = TokenRing::new(n);
            let domains = token_ring_domains(&ring);
            (BrokenRing::new(ring), domains)
        };
        let shrunk = shrink_family(family, 2..=3, 1_000_000).expect("broken ring fails");
        let (protocol, domains) = family(shrunk.n);
        let json = shrunk_to_json("broken-ring", &protocol, &domains, &shrunk);
        // Parseable by the vendored telemetry JSON reader.
        let value = ftbarrier_telemetry::json::parse(&json).expect("well-formed JSON");
        let obj = value.as_object().expect("top-level object");
        assert_eq!(
            obj.get("program").and_then(|v| v.as_str()),
            Some("broken-ring")
        );
        assert_eq!(obj.get("n").and_then(|v| v.as_f64()), Some(2.0));
        let events = obj.get("events").and_then(|v| v.as_array()).unwrap();
        assert!(!events.is_empty() && events.len() <= 5);
    }

    #[test]
    fn sample_failure_json_is_wellformed() {
        let failure = SampleFailure {
            seed: 42,
            start: vec![ftbarrier_core::Sn::Bot, ftbarrier_core::Sn::Top],
            budget: 1000,
        };
        let json = sample_failure_to_json("token-ring", &failure);
        let value = ftbarrier_telemetry::json::parse(&json).expect("well-formed JSON");
        assert_eq!(
            value
                .as_object()
                .and_then(|o| o.get("seed"))
                .and_then(|v| v.as_f64()),
            Some(42.0)
        );
    }
}
