//! Fault-detection and recovery latency instrumentation — the paper's
//! central cost claim (§4: O(N) dissemination on the ring vs O(h) on
//! trees) turned into measured histograms.
//!
//! [`SweepLatencyMonitor`] watches a sweep program's `cp` transitions and
//! records, per topology:
//!
//! - **detection latency** — a detectable fault is injected at `t_f`
//!   (`cp := error` on the victim); the fault is *detected* when any
//!   position first transitions into [`Cp::Repeat`], i.e. a sweep observed
//!   the corruption. The histogram sample is `t_detect − t_f`.
//! - **recovery latency** — from detection until every worker position is
//!   simultaneously back in [`Cp::Ready`], i.e. the re-execution wave has
//!   drained. The sample is `t_ready − t_detect`.
//!
//! Faults that land while a recovery window is open are counted
//! (`sweep_overlapping_faults_total`) but do not reopen the window — the
//! window measures one dissemination wave, and overlapping waves are
//! attributed to the first. This is the same simplification the paper's
//! analytic `(1−f)^d` model makes by treating fault arrivals per instance.
//!
//! Not every detectable fault triggers a wave: one that lands between
//! sweeps, while the victim's predecessor shows `ready`, is healed by the
//! normal `ready` propagation without any `repeat` transition (the
//! corrupted control state is simply re-copied; no phase work was lost).
//! Those faults are counted as `sweep_masked_faults_total` and excluded
//! from the detection-latency histogram rather than mis-attributed to the
//! next genuine wave.
//!
//! Like every monitor, this is a pure observer: attaching it cannot change
//! the run (asserted by the telemetry differential tests).

use crate::cp::Cp;
use crate::sweep::{PosState, SweepBarrier};
use ftbarrier_gcs::{ActionId, FaultKind, Monitor, Pid, Time};
use ftbarrier_telemetry::{CausalRecorder, CriticalPath, Telemetry, TrackId};

/// An open recovery window: detection happened, waiting for all workers to
/// re-enter `ready`.
struct Window {
    injected_at: Time,
    detected_at: Time,
    ready: Vec<bool>,
    missing: usize,
}

/// One completed fault→detection→recovery episode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryEpisode {
    pub injected_at: Time,
    pub detected_at: Time,
    pub recovered_at: Time,
}

/// The measured critical path of one recovery episode: the longest
/// happens-before chain inside the episode's time window and the fraction
/// of its events each position contributed.
#[derive(Debug, Clone, PartialEq)]
pub struct EpisodeAttribution {
    pub episode: RecoveryEpisode,
    pub path: CriticalPath,
    /// `(position, share)` sorted by descending share then ascending
    /// position; shares sum to 1.
    pub shares: Vec<(u32, f64)>,
}

/// Records detection/recovery latency histograms and recovery-window spans
/// for one sweep-program run.
pub struct SweepLatencyMonitor {
    telemetry: Telemetry,
    topo: String,
    worker: Vec<bool>,
    track: TrackId,
    /// `(injection time, victim position)` of the oldest undetected
    /// detectable fault.
    pending_fault: Option<(Time, usize)>,
    window: Option<Window>,
    /// Completed recovery windows, in order — `(detected_at, recovered_at)`.
    pub windows: Vec<(Time, Time)>,
    /// Completed episodes with their injection times — the attribution
    /// report's unit of analysis.
    pub episodes: Vec<RecoveryEpisode>,
    /// Causal recorder consulted by [`Self::attribution_report`]; off by
    /// default (scalar latencies only, as before).
    causal: CausalRecorder,
}

impl SweepLatencyMonitor {
    pub fn new(program: &SweepBarrier, topo_label: &str, telemetry: Telemetry) -> Self {
        let dag = program.dag();
        let track = telemetry.track(&format!("recovery ({topo_label})"));
        SweepLatencyMonitor {
            telemetry,
            topo: topo_label.to_owned(),
            worker: (0..dag.num_positions())
                .map(|p| program.is_worker(p))
                .collect(),
            track,
            pending_fault: None,
            window: None,
            windows: Vec::new(),
            episodes: Vec::new(),
            causal: CausalRecorder::off(),
        }
    }

    /// Attach a causal recorder (shared with a `CausalMonitor` on the same
    /// run) so [`Self::attribution_report`] can resolve each episode's
    /// measured critical path.
    pub fn with_causal(mut self, recorder: CausalRecorder) -> Self {
        self.causal = recorder;
        self
    }

    /// Upgrade the scalar latencies into an attribution report: for every
    /// completed fault→detection→recovery episode, the longest
    /// happens-before chain inside the episode window and each position's
    /// share of it — *which* positions account for *what fraction* of the
    /// detection+recovery time, not just how long it took. Empty when no
    /// causal recorder was attached or no episode completed.
    pub fn attribution_report(&self) -> Vec<EpisodeAttribution> {
        if !self.causal.is_enabled() {
            return Vec::new();
        }
        let graph = self.causal.snapshot();
        self.episodes
            .iter()
            .map(|&episode| {
                let path = graph.critical_path_between(
                    episode.injected_at.as_f64(),
                    episode.recovered_at.as_f64(),
                );
                let shares = graph.attribution(&path);
                EpisodeAttribution {
                    episode,
                    path,
                    shares,
                }
            })
            .collect()
    }

    fn topo_labels(&self) -> [(&str, &str); 1] {
        [("topo", self.topo.as_str())]
    }

    fn observe(
        &mut self,
        now: Time,
        pos: usize,
        old: &PosState,
        new: &PosState,
        global: &[PosState],
    ) {
        if let Some(w) = &mut self.window {
            // Track the all-ready condition over worker positions.
            if self.worker[pos] {
                let was = w.ready[pos];
                let is = new.cp == Cp::Ready;
                if was != is {
                    w.ready[pos] = is;
                    if is {
                        w.missing -= 1;
                    } else {
                        w.missing += 1;
                    }
                }
                if w.missing == 0 {
                    let injected_at = w.injected_at;
                    let detected_at = w.detected_at;
                    self.window = None;
                    self.windows.push((detected_at, now));
                    self.episodes.push(RecoveryEpisode {
                        injected_at,
                        detected_at,
                        recovered_at: now,
                    });
                    self.telemetry.observe(
                        "recovery_latency",
                        &self.topo_labels(),
                        (now - detected_at).as_f64(),
                    );
                    self.telemetry.span_with(
                        self.track,
                        "recovery",
                        detected_at.as_f64(),
                        now.as_f64(),
                        &[("topo", self.topo.as_str())],
                    );
                }
            }
            return;
        }
        // No window open: look for the detection of a pending fault.
        if let Some((t_fault, victim)) = self.pending_fault {
            // Any position entering `repeat` — worker or relay — counts as
            // the computation observing the corruption.
            if new.cp == Cp::Repeat && old.cp != Cp::Repeat {
                self.pending_fault = None;
                self.telemetry.observe(
                    "detection_latency",
                    &self.topo_labels(),
                    (now - t_fault).as_f64(),
                );
                self.telemetry.instant_with(
                    self.track,
                    "detected",
                    now.as_f64(),
                    &[("topo", self.topo.as_str())],
                );
                let ready: Vec<bool> = global
                    .iter()
                    .enumerate()
                    .map(|(p, s)| self.worker[p] && s.cp == Cp::Ready)
                    .collect();
                let missing = self
                    .worker
                    .iter()
                    .zip(&ready)
                    .filter(|&(&w, &r)| w && !r)
                    .count();
                if missing == 0 {
                    // Detection observed with everyone already ready
                    // (possible when the victim itself healed first).
                    self.windows.push((now, now));
                    self.episodes.push(RecoveryEpisode {
                        injected_at: t_fault,
                        detected_at: now,
                        recovered_at: now,
                    });
                    self.telemetry
                        .observe("recovery_latency", &self.topo_labels(), 0.0);
                } else {
                    self.window = Some(Window {
                        injected_at: t_fault,
                        detected_at: now,
                        ready,
                        missing,
                    });
                }
            } else if pos == victim && old.cp == Cp::Error && new.cp != Cp::Error {
                // The victim healed without a repeat wave: its predecessor
                // showed `ready`, so the corrupted control state was simply
                // overwritten (sweep/program.rs nonroot_update, `ready`
                // arm). The fault was masked, not detected.
                self.pending_fault = None;
                self.telemetry
                    .counter("sweep_masked_faults_total", &self.topo_labels(), 1);
            }
        }
    }
}

impl Monitor<PosState> for SweepLatencyMonitor {
    fn on_transition(
        &mut self,
        now: Time,
        pos: Pid,
        _action: ActionId,
        _name: &str,
        old: &PosState,
        new: &PosState,
        global: &[PosState],
    ) {
        if !self.telemetry.is_enabled() {
            return;
        }
        self.observe(now, pos, old, new, global);
    }

    fn on_fault(
        &mut self,
        now: Time,
        pos: Pid,
        kind: FaultKind,
        old: &PosState,
        new: &PosState,
        global: &[PosState],
    ) {
        if !self.telemetry.is_enabled() {
            return;
        }
        let kind_label = match kind {
            FaultKind::Detectable => "detectable",
            FaultKind::Undetectable => "undetectable",
        };
        self.telemetry.counter(
            "sweep_faults_total",
            &[("kind", kind_label), ("topo", self.topo.as_str())],
            1,
        );
        self.telemetry.instant_with(
            self.track,
            "fault",
            now.as_f64(),
            &[("kind", kind_label), ("pos", &pos.to_string())],
        );
        if kind == FaultKind::Detectable {
            if self.window.is_some() {
                self.telemetry
                    .counter("sweep_overlapping_faults_total", &self.topo_labels(), 1);
            } else if self.pending_fault.is_none() {
                self.pending_fault = Some((now, pos));
            }
        }
        // The fault perturbs the victim's state too (e.g. out of `ready`).
        self.observe(now, pos, old, new, global);
    }
}

#[cfg(test)]
mod tests {
    use crate::sim::{measure_phases_with_telemetry, PhaseExperiment, TopologySpec};
    use ftbarrier_telemetry::{Telemetry, TimeDomain, TimelineEvent};

    #[test]
    fn faulty_run_records_detection_and_recovery_latencies() {
        let tele = Telemetry::recording(TimeDomain::Virtual);
        let m = measure_phases_with_telemetry(
            &PhaseExperiment {
                topology: TopologySpec::Tree { n: 8, arity: 2 },
                target_phases: 60,
                c: 0.01,
                f: 0.05,
                seed: 42,
                ..Default::default()
            },
            &tele,
        );
        assert!(m.faults > 0, "faults should have fired");
        let snap = tele.snapshot();
        let det = snap
            .metrics
            .histogram("detection_latency", &[("topo", "tree")])
            .expect("detection latency recorded");
        assert!(det.count() > 0);
        assert!(det.max() > 0.0);
        let rec = snap
            .metrics
            .histogram("recovery_latency", &[("topo", "tree")])
            .expect("recovery latency recorded");
        assert!(rec.count() > 0);
        // Quantiles come out ordered.
        assert!(rec.quantile(0.5) <= rec.quantile(0.9));
        assert!(rec.quantile(0.9) <= rec.quantile(0.99));
        assert!(rec.quantile(0.99) <= rec.max());
        // Recovery windows render as spans on the recovery track.
        assert!(snap
            .events
            .iter()
            .any(|e| matches!(e, TimelineEvent::Span { name, .. } if name == "recovery")));
        // Per-phase timings were bridged in.
        assert!(snap
            .metrics
            .histogram("phase_time", &[("topo", "tree")])
            .is_some_and(|h| h.count() + 1 >= m.phases));
    }

    #[test]
    fn attribution_report_decomposes_recovery_episodes() {
        use crate::sim::measure_phases_causal;
        use ftbarrier_telemetry::CausalRecorder;

        let tele = Telemetry::recording(TimeDomain::Virtual);
        let recorder = CausalRecorder::bounded(1 << 18);
        let (m, report) = measure_phases_causal(
            &PhaseExperiment {
                topology: TopologySpec::Tree { n: 8, arity: 2 },
                target_phases: 60,
                c: 0.01,
                f: 0.05,
                seed: 42,
                ..Default::default()
            },
            &tele,
            &recorder,
        );
        assert!(m.faults > 0);
        assert!(!report.is_empty(), "faulty run must complete episodes");
        for a in &report {
            assert!(a.episode.injected_at <= a.episode.detected_at);
            assert!(a.episode.detected_at <= a.episode.recovered_at);
            // The measured chain is non-trivial and its shares decompose
            // the episode: they sum to 1 and come sorted by share.
            assert!(a.path.len >= 1, "empty critical path for {:?}", a.episode);
            let total: f64 = a.shares.iter().map(|&(_, s)| s).sum();
            assert!((total - 1.0).abs() < 1e-9, "shares sum to {total}");
            for w in a.shares.windows(2) {
                assert!(w[0].1 >= w[1].1, "shares not sorted: {:?}", a.shares);
            }
        }
        // The scalar histograms and the report describe the same episodes.
        let snap = tele.snapshot();
        let recoveries = snap
            .metrics
            .histogram("recovery_latency", &[("topo", "tree")])
            .map_or(0, |h| h.count());
        assert_eq!(report.len() as u64, recoveries);
    }

    #[test]
    fn causal_recording_does_not_perturb_the_measurement() {
        use crate::sim::measure_phases_causal;
        use ftbarrier_telemetry::CausalRecorder;

        let exp = PhaseExperiment {
            topology: TopologySpec::Ring { n: 6 },
            target_phases: 30,
            c: 0.01,
            f: 0.05,
            seed: 7,
            ..Default::default()
        };
        let plain = measure_phases_with_telemetry(&exp, &Telemetry::off());
        let (armed, _) =
            measure_phases_causal(&exp, &Telemetry::off(), &CausalRecorder::bounded(1 << 18));
        assert_eq!(plain, armed, "arming the recorder changed the run");
    }

    #[test]
    fn fault_free_run_records_no_latency_histograms() {
        let tele = Telemetry::recording(TimeDomain::Virtual);
        measure_phases_with_telemetry(
            &PhaseExperiment {
                topology: TopologySpec::Ring { n: 6 },
                target_phases: 10,
                f: 0.0,
                ..Default::default()
            },
            &tele,
        );
        let snap = tele.snapshot();
        assert!(snap
            .metrics
            .histogram("detection_latency", &[("topo", "ring")])
            .is_none());
        assert!(snap
            .metrics
            .histogram("recovery_latency", &[("topo", "ring")])
            .is_none());
    }
}
