//! Topology-generic conformance harness for sweep topologies.
//!
//! Every topology that produces a valid [`ftbarrier_topology::SweepDag`]
//! must satisfy the same battery, regardless of its shape:
//!
//! 1. **Sweep completeness** — structurally, every position is reachable
//!    from the root and reaches a sink; dynamically, every token sweep
//!    visits every position (each position executes `RECV` at least once
//!    per completed phase) and the barrier specification holds.
//! 2. **Legal-set / coset structure** — the fault-free run advances the
//!    quiescent `(sn, ph)` pair by exactly `(3, 1)` per phase (three token
//!    waves per phase), i.e. the reachable quiescent states form the coset
//!    `⟨(3, 1)⟩` of `Z_L × Z_phases` — and this holds for *adversarial*
//!    sequence-number domains with `gcd(3, L) ≠ 1` or `L` even, the PR-5
//!    audit pitfall: the protocol itself never livelocks on such domains,
//!    only a reachable-set-based audit goal does.
//! 3. **Classic ≡ dense differential** — the incremental scheduler, the
//!    full-rescan reference, and the sharded struct-of-arrays engine at
//!    every worker count produce byte-identical traces, final states, and
//!    stats, with and without fault plans, with telemetry on and off.
//! 4. **Fault recovery** — detectable faults are masked (zero violations),
//!    the latency monitor accounts for every observed fault wave, and the
//!    program stabilizes from arbitrary states.
//! 5. **Churn splice/graft** — membership contraction of the topology stays
//!    valid, a graft restores the exact base edge set, and a scripted
//!    crash → detect → splice → reboot → graft round-trip completes phases
//!    with the rejoined process participating.
//! 6. **Causal determinism** — with the happens-before recorder (the
//!    flight-recorder configuration) armed, classic and dense engines at
//!    every worker count dump byte-identical causal graphs, and arming the
//!    recorder never perturbs the run itself.
//!
//! The differential runners ([`run_classic`], [`run_dense`],
//! [`assert_identical`]) are shared with `crates/core/tests/differential.rs`
//! so the conformance suite and the differential suite cannot drift apart.
//! New topologies get the whole battery by calling
//! [`check_conformance`] on their [`TopologySpec`].

use crate::churn::{run_churn, ChurnEvent, ChurnExperiment};
use crate::cp::Cp;
use crate::sim::{
    measure_phases_with_telemetry, measure_recovery, PhaseExperiment, RecoveryExperiment,
    SweepOracleMonitor, TopologySpec,
};
use crate::spec::Anchor;
use crate::sweep::{PosState, ProcessFaults, SweepBarrier, SweepDetectableFault, RECV};
use crate::telemetry::SweepLatencyMonitor;
use ftbarrier_gcs::fault::NoFaults;
use ftbarrier_gcs::trace::{Trace, TraceEvent};
use ftbarrier_gcs::{
    ActionId, CausalMonitor, DenseEngine, DenseEngineConfig, Engine, EngineConfig, Monitor,
    MonitorSet, Pid, TelemetryMonitor, Time,
};
use ftbarrier_telemetry::{CausalRecorder, Telemetry, TimeDomain};
use ftbarrier_topology::membership::Membership;

/// What one differential run records: the committed event trace, the final
/// global state, and `[actions_executed, commits_dropped, faults]`.
pub type RunRecord<S> = (Vec<TraceEvent<S>>, Vec<S>, [u64; 3]);

/// The engine configuration every differential run uses (the `max_commits`
/// ceiling is a safety net against zero-cost livelock, far above any
/// legitimate run here).
pub fn differential_config(seed: u64, horizon: f64, full_rescan: bool) -> EngineConfig {
    EngineConfig {
        seed: seed ^ 0xD1FF,
        max_time: Some(Time::new(horizon)),
        max_commits: Some(2_000_000),
        full_rescan,
    }
}

/// Run the sweep program over `spec` from a perturbed state on the classic
/// engine and record the run.
pub fn run_classic(
    spec: TopologySpec,
    seed: u64,
    fault_rate: f64,
    full_rescan: bool,
) -> RunRecord<PosState> {
    run_classic_telemetry(spec, seed, fault_rate, full_rescan, &Telemetry::off())
}

/// Like [`run_classic`], but with the telemetry monitors attached alongside
/// the trace — exactly the set `measure_phases_with_telemetry` uses. With a
/// recording handle the returned record must still be byte-identical.
pub fn run_classic_telemetry(
    spec: TopologySpec,
    seed: u64,
    fault_rate: f64,
    full_rescan: bool,
    telemetry: &Telemetry,
) -> RunRecord<PosState> {
    let program =
        SweepBarrier::new(spec.build().unwrap(), 8).with_costs(Time::new(0.02), Time::new(1.0));
    let mut engine = Engine::new(&program, seed);
    engine.perturb_all();
    let mut trace = Trace::unbounded();
    let mut tmon =
        TelemetryMonitor::<PosState>::new(telemetry.clone(), program.dag().num_positions());
    let mut lmon = SweepLatencyMonitor::new(&program, spec.label(), telemetry.clone());
    let cfg = differential_config(seed, 30.0, full_rescan);
    let out = {
        let mut set = MonitorSet::new()
            .with(&mut trace)
            .with(&mut tmon)
            .with(&mut lmon);
        if fault_rate > 0.0 {
            let mut faults =
                ProcessFaults::new(&program, fault_rate, SweepDetectableFault { n_phases: 8 });
            engine.run(&cfg, &mut faults, &mut set)
        } else {
            engine.run(&cfg, &mut NoFaults, &mut set)
        }
    };
    (
        trace.events().cloned().collect(),
        engine.global().to_vec(),
        [
            out.stats.actions_executed,
            out.stats.commits_dropped,
            out.stats.faults,
        ],
    )
}

/// Capacity of the causal recorders in the determinism check — large enough
/// that no conformance run evicts (eviction is deterministic too, but a
/// non-evicting dump is the stronger pin).
const CAUSAL_CAPACITY: usize = 1 << 20;

/// Like [`run_classic`], but with a causal recorder (the flight-recorder
/// configuration) armed alongside the usual monitors. Returns the run record
/// plus the causal graph dumped as flight-recorder JSON.
pub fn run_classic_causal(
    spec: TopologySpec,
    seed: u64,
    fault_rate: f64,
    full_rescan: bool,
) -> (RunRecord<PosState>, String) {
    let program =
        SweepBarrier::new(spec.build().unwrap(), 8).with_costs(Time::new(0.02), Time::new(1.0));
    let recorder = CausalRecorder::bounded(CAUSAL_CAPACITY);
    let mut cmon = CausalMonitor::from_protocol(&program, recorder.clone())
        .with_phase(Box::new(|s: &PosState| Some(s.ph)));
    let mut engine = Engine::new(&program, seed);
    engine.perturb_all();
    let mut trace = Trace::unbounded();
    let cfg = differential_config(seed, 30.0, full_rescan);
    let out = {
        let mut set = MonitorSet::new().with(&mut trace).with(&mut cmon);
        if fault_rate > 0.0 {
            let mut faults =
                ProcessFaults::new(&program, fault_rate, SweepDetectableFault { n_phases: 8 });
            engine.run(&cfg, &mut faults, &mut set)
        } else {
            engine.run(&cfg, &mut NoFaults, &mut set)
        }
    };
    let dump = recorder.snapshot().to_flight_json(
        "sweep",
        program.dag().num_positions(),
        "conformance",
        "end-of-run",
    );
    (
        (
            trace.events().cloned().collect(),
            engine.global().to_vec(),
            [
                out.stats.actions_executed,
                out.stats.commits_dropped,
                out.stats.faults,
            ],
        ),
        dump,
    )
}

/// The causal-armed run of [`run_dense`]: same engine configuration with a
/// [`CausalMonitor`] attached, returning final states, stats, and the
/// flight-recorder dump (the dense engine takes a single monitor, so the
/// trace half of the differential stays with [`run_dense`]).
pub fn run_dense_causal(
    spec: TopologySpec,
    seed: u64,
    fault_rate: f64,
    workers: usize,
) -> (Vec<PosState>, [u64; 3], String) {
    let program =
        SweepBarrier::new(spec.build().unwrap(), 8).with_costs(Time::new(0.02), Time::new(1.0));
    let recorder = CausalRecorder::bounded(CAUSAL_CAPACITY);
    let mut cmon = CausalMonitor::from_protocol(&program, recorder.clone())
        .with_phase(Box::new(|s: &PosState| Some(s.ph)));
    let mut engine = DenseEngine::new(&program, seed).with_shards(4);
    engine.perturb_all();
    let cfg = DenseEngineConfig {
        max_time: Some(Time::new(30.0)),
        max_commits: Some(2_000_000),
        workers: Some(workers),
        parallel_threshold: 1,
        ..Default::default()
    };
    let out = if fault_rate > 0.0 {
        let mut faults =
            ProcessFaults::new(&program, fault_rate, SweepDetectableFault { n_phases: 8 });
        engine.run(&cfg, &mut faults, &mut cmon)
    } else {
        engine.run(&cfg, &mut NoFaults, &mut cmon)
    };
    let dump = recorder.snapshot().to_flight_json(
        "sweep",
        program.dag().num_positions(),
        "conformance",
        "end-of-run",
    );
    (
        engine.global_states(),
        [
            out.stats.actions_executed,
            out.stats.commits_dropped,
            out.stats.faults,
        ],
        dump,
    )
}

/// The same run as [`run_classic`], executed on the sharded struct-of-arrays
/// engine with the given worker count. Shard count is fixed (not derived
/// from the worker count) so every worker configuration schedules the same
/// shard boundaries — the trace must be identical for any worker count.
pub fn run_dense(
    spec: TopologySpec,
    seed: u64,
    fault_rate: f64,
    workers: usize,
) -> RunRecord<PosState> {
    let program =
        SweepBarrier::new(spec.build().unwrap(), 8).with_costs(Time::new(0.02), Time::new(1.0));
    let mut engine = DenseEngine::new(&program, seed).with_shards(4);
    engine.perturb_all();
    let mut trace = Trace::unbounded();
    let cfg = DenseEngineConfig {
        max_time: Some(Time::new(30.0)),
        max_commits: Some(2_000_000),
        workers: Some(workers),
        parallel_threshold: 1,
        ..Default::default()
    };
    let out = if fault_rate > 0.0 {
        let mut faults =
            ProcessFaults::new(&program, fault_rate, SweepDetectableFault { n_phases: 8 });
        engine.run(&cfg, &mut faults, &mut trace)
    } else {
        engine.run(&cfg, &mut NoFaults, &mut trace)
    };
    (
        trace.events().cloned().collect(),
        engine.global_states(),
        [
            out.stats.actions_executed,
            out.stats.commits_dropped,
            out.stats.faults,
        ],
    )
}

/// Protocol-generic engine differential: the classic engine and the sharded
/// dense engine at workers {1, 2, 4} must produce byte-identical traces,
/// final states, and stats from the same perturbed start — for **any**
/// [`DenseProtocol`], not just the sweep. Sibling protocols
/// (`ftbarrier-protocols`) get the classic ≡ dense half of the conformance
/// battery by calling this.
pub fn check_protocol_classic_dense_differential<P>(
    label: &str,
    protocol: &P,
    seed: u64,
    horizon: f64,
) where
    P: ftbarrier_gcs::DenseProtocol,
{
    let cfg = differential_config(seed, horizon, false);
    let mut classic = Engine::new(protocol, seed);
    classic.perturb_all();
    let mut trace = Trace::unbounded();
    let out = classic.run(&cfg, &mut NoFaults, &mut trace);
    let reference: RunRecord<P::State> = (
        trace.events().cloned().collect(),
        classic.global().to_vec(),
        [
            out.stats.actions_executed,
            out.stats.commits_dropped,
            out.stats.faults,
        ],
    );
    for workers in [1usize, 2, 4] {
        let mut dense = DenseEngine::new(protocol, seed).with_shards(4);
        dense.perturb_all();
        let mut dtrace = Trace::unbounded();
        let dcfg = DenseEngineConfig {
            max_time: Some(Time::new(horizon)),
            max_commits: Some(2_000_000),
            workers: Some(workers),
            parallel_threshold: 1,
            ..Default::default()
        };
        let dout = dense.run(&dcfg, &mut NoFaults, &mut dtrace);
        assert_identical(
            &format!("{label} dense w={workers}"),
            (
                dtrace.events().cloned().collect(),
                dense.global_states(),
                [
                    dout.stats.actions_executed,
                    dout.stats.commits_dropped,
                    dout.stats.faults,
                ],
            ),
            reference.clone(),
        );
    }
}

/// Two run records must agree byte for byte (and actually have run).
pub fn assert_identical<S: PartialEq + std::fmt::Debug>(
    label: &str,
    incremental: RunRecord<S>,
    reference: RunRecord<S>,
) {
    assert_eq!(incremental.0, reference.0, "{label}: traces diverge");
    assert_eq!(incremental.1, reference.1, "{label}: final states diverge");
    assert_eq!(incremental.2, reference.2, "{label}: stats diverge");
    assert!(!incremental.0.is_empty(), "{label}: run did nothing");
}

/// Per-position RECV counter (the token's visit log).
struct SweepCoverage {
    recvs: Vec<u64>,
}

impl Monitor<PosState> for SweepCoverage {
    fn on_transition(
        &mut self,
        _now: Time,
        pos: Pid,
        action: ActionId,
        _name: &str,
        _old: &PosState,
        _new: &PosState,
        _global: &[PosState],
    ) {
        if action == RECV {
            self.recvs[pos] += 1;
        }
    }
}

/// Conformance check 1: every token sweep covers the whole topology.
///
/// Structurally: every position is reachable from the root and reaches a
/// sink, and every process owns at least one position. Dynamically: a
/// fault-free run completes its phases with zero violations, exactly one
/// instance per phase, and every position (worker or relay) executes `RECV`
/// at least once per completed phase — the token visited everyone.
pub fn check_sweep_completeness(spec: TopologySpec) {
    let label = spec.label();
    let dag = spec.build().unwrap_or_else(|e| panic!("{label}: {e}"));

    // Structural sweep-coverage, re-derived independently of the builder's
    // own validation: forward reachability from the root…
    let p = dag.num_positions();
    let mut seen = vec![false; p];
    seen[0] = true;
    let mut stack = vec![0usize];
    while let Some(u) = stack.pop() {
        for &v in dag.succs(u) {
            if v != 0 && !seen[v] {
                seen[v] = true;
                stack.push(v);
            }
        }
    }
    assert!(
        seen.iter().all(|&s| s),
        "{label}: positions unreachable from the root"
    );
    // …and backward reachability from the sinks.
    let mut reaches = vec![false; p];
    let mut stack: Vec<usize> = dag.sinks().to_vec();
    for &s in dag.sinks() {
        reaches[s] = true;
    }
    while let Some(u) = stack.pop() {
        for &q in dag.preds(u) {
            if !reaches[q] {
                reaches[q] = true;
                stack.push(q);
            }
        }
    }
    reaches[0] = true;
    assert!(
        reaches.iter().all(|&r| r),
        "{label}: positions that never reach a sink"
    );
    for pid in 0..dag.num_processes() {
        assert!(
            !dag.positions_of(pid).is_empty(),
            "{label}: process {pid} owns no position"
        );
    }

    // Dynamic coverage over a fault-free run.
    let target = 5u64;
    let program = SweepBarrier::new(dag, 8).with_costs(Time::new(0.01), Time::new(1.0));
    let mut oracle = SweepOracleMonitor::new(&program, Anchor::StrictFromZero).stop_after(target);
    let mut coverage = SweepCoverage { recvs: vec![0; p] };
    let mut engine = Engine::new(&program, 0x5EED);
    let cfg = EngineConfig {
        seed: 0x5EED ^ 0xC0F,
        max_time: Some(Time::new(200.0)),
        ..Default::default()
    };
    {
        let mut set = MonitorSet::new().with(&mut oracle).with(&mut coverage);
        engine.run(&cfg, &mut NoFaults, &mut set);
    }
    assert_eq!(
        oracle.oracle.phases_completed(),
        target,
        "{label}: fault-free run did not complete its phases"
    );
    assert_eq!(oracle.oracle.violations().len(), 0, "{label}");
    assert_eq!(
        oracle.oracle.aborted_instances(),
        0,
        "{label}: fault-free run aborted instances"
    );
    for (pos, &count) in coverage.recvs.iter().enumerate() {
        assert!(
            count >= target,
            "{label}: position {pos} saw only {count} RECVs over {target} phases — \
             the sweep does not cover it"
        );
    }
}

/// Quiescent-state recorder: each time the global state is quiescent (every
/// position `ready` with one shared ordinary `sn` and one shared `ph` — the
/// audit's recurring goal) with a pair not yet recorded, log it.
struct QuiescenceLog {
    records: Vec<(u32, u32)>,
    want: usize,
}

impl QuiescenceLog {
    fn scan(&mut self, global: &[PosState]) {
        let first = global[0];
        let Some(sn) = first.sn.value() else { return };
        if !global
            .iter()
            .all(|s| s.cp == Cp::Ready && s.ph == first.ph && s.sn == first.sn)
        {
            return;
        }
        if self.records.last() != Some(&(sn, first.ph)) {
            self.records.push((sn, first.ph));
        }
    }
}

impl Monitor<PosState> for QuiescenceLog {
    fn on_transition(
        &mut self,
        _now: Time,
        _pos: Pid,
        _action: ActionId,
        _name: &str,
        _old: &PosState,
        _new: &PosState,
        global: &[PosState],
    ) {
        self.scan(global);
    }

    fn should_stop(&mut self) -> bool {
        self.records.len() >= self.want
    }
}

/// Conformance check 2: the legal-set / coset structure.
///
/// The sweep advances `sn` by exactly 3 per phase (one wave to start work,
/// one to collect completion, one to reset), so the fault-free quiescent
/// states form the coset `⟨(3, 1)⟩ ≤ Z_L × Z_phases` through `(0, 0)` — a
/// *proper* subset of the legal states whenever `gcd(3, L) ≠ 1` or `L` is
/// even. That was the PR-5 audit pitfall: an audit goal built from the
/// reachable set falsely reports livelock on such domains. Here we pin the
/// other half of the argument: the protocol itself runs cleanly on
/// adversarial domains (`L` even, `L ≡ 0 mod 3`), advancing the quiescent
/// pair by `(3, 1)` each phase, so only the audit goal — never the program —
/// must be topology- and domain-aware.
pub fn check_legal_set_structure(spec: TopologySpec) {
    let label = spec.label();
    let dag = spec.build().unwrap_or_else(|e| panic!("{label}: {e}"));
    let positions = dag.num_positions() as u32;
    let default_l = 2 * positions + 3;
    let even_l = 2 * positions + 4;
    let mut mult3_l = 2 * positions + 3;
    while !mult3_l.is_multiple_of(3) {
        mult3_l += 1;
    }
    let n_phases = 8u32;
    for l in [default_l, even_l, mult3_l] {
        let program = SweepBarrier::new(dag.clone(), n_phases)
            .try_with_sn_domain(l)
            .unwrap_or_else(|e| panic!("{label}: sn domain {l}: {e}"))
            .with_costs(Time::new(0.01), Time::new(1.0));
        let mut log = QuiescenceLog {
            records: Vec::new(),
            want: 6,
        };
        let mut engine = Engine::new(&program, 0x1E6A);
        let cfg = EngineConfig {
            seed: 0x1E6A ^ u64::from(l),
            max_time: Some(Time::new(200.0)),
            ..Default::default()
        };
        engine.run(&cfg, &mut NoFaults, &mut log);
        assert!(
            log.records.len() >= 6,
            "{label} L={l}: only {} quiescent states reached — livelock on \
             an adversarial domain?",
            log.records.len()
        );
        // The run starts from the quiescent (0, 0), so the first *observed*
        // quiescent state is the end of phase 1: (3 mod L, 1).
        assert_eq!(
            log.records[0],
            (3 % l, 1),
            "{label} L={l}: coset offset from the start state"
        );
        for pair in log.records.windows(2) {
            let ((sn_a, ph_a), (sn_b, ph_b)) = (pair[0], pair[1]);
            assert_eq!(
                (sn_b + l - sn_a) % l,
                3 % l,
                "{label} L={l}: sn must advance by exactly 3 per phase"
            );
            assert_eq!(
                ph_b,
                (ph_a + 1) % n_phases,
                "{label} L={l}: ph must advance by exactly 1 per phase"
            );
        }
    }
}

/// Conformance check 3: classic incremental ≡ classic full-rescan ≡ dense
/// engine at workers {1, 2, 4}, with and without a fault plan, telemetry on
/// and off — all byte-identical.
pub fn check_classic_dense_differential(spec: TopologySpec) {
    let label = spec.label();
    let seed = 0xC0DE;
    for fault_rate in [0.0, 0.3] {
        let reference = run_classic(spec, seed, fault_rate, true);
        assert_identical(
            &format!("{label} f={fault_rate} incremental"),
            run_classic(spec, seed, fault_rate, false),
            reference.clone(),
        );
        for workers in [1usize, 2, 4] {
            assert_identical(
                &format!("{label} f={fault_rate} dense w={workers}"),
                run_dense(spec, seed, fault_rate, workers),
                reference.clone(),
            );
        }
        let tele = Telemetry::recording(TimeDomain::Virtual);
        assert_identical(
            &format!("{label} f={fault_rate} telemetry"),
            run_classic_telemetry(spec, seed, fault_rate, false, &tele),
            reference,
        );
        assert!(
            !tele.snapshot().metrics.is_empty(),
            "{label}: telemetry recorded nothing"
        );
    }
}

/// Conformance check 4: fault masking, latency accounting, stabilization.
///
/// A run under detectable faults completes every phase with zero violations
/// (masking); the latency monitor accounts each observed fault wave as
/// masked or detected, and every detection closes a recovery window; and
/// the program recovers from arbitrary states (stabilization) across seeds.
pub fn check_fault_recovery(spec: TopologySpec) {
    let label = spec.label();
    let tele = Telemetry::recording(TimeDomain::Virtual);
    let m = measure_phases_with_telemetry(
        &PhaseExperiment {
            topology: spec,
            target_phases: 40,
            c: 0.02,
            f: 0.05,
            seed: 0xFA17,
            ..Default::default()
        },
        &tele,
    );
    assert_eq!(m.phases, 40, "{label}: run under faults did not complete");
    assert_eq!(m.violations, 0, "{label}: detectable faults must be masked");
    assert!(m.faults > 0, "{label}: no faults fired at f=0.05");
    let snap = tele.snapshot();
    let labels = [("topo", label)];
    let masked = snap.metrics.counter("sweep_masked_faults_total", &labels);
    let detections = snap
        .metrics
        .histogram("detection_latency", &labels)
        .map_or(0, |h| h.count());
    let recoveries = snap
        .metrics
        .histogram("recovery_latency", &labels)
        .map_or(0, |h| h.count());
    assert!(
        masked + detections > 0,
        "{label}: {} faults fired but none were accounted as masked or detected",
        m.faults
    );
    assert!(
        recoveries <= detections,
        "{label}: more recoveries ({recoveries}) than detections ({detections})"
    );
    if detections > 0 {
        assert!(
            recoveries > 0,
            "{label}: {detections} detections but no recovery window ever closed"
        );
    }

    // Stabilization from arbitrary states.
    for seed in 0..4u64 {
        let r = measure_recovery(&RecoveryExperiment {
            topology: spec,
            c: 0.01,
            seed,
            ..Default::default()
        });
        assert!(
            r.recovered,
            "{label} seed {seed}: not recovered from an arbitrary state ({r:?})"
        );
    }
}

/// The default process the churn check crashes: mid-range, never the root.
fn churn_victim(spec: TopologySpec) -> usize {
    (spec.num_processes() / 2).max(1)
}

/// Conformance check 5: membership splice/graft over the topology.
///
/// Structurally, splicing any non-root process yields a valid contracted
/// view without it, and grafting it back restores the exact base edge set.
/// Dynamically, a scripted crash → token-timeout detection → splice →
/// reboot → graft round-trip keeps completing phases, and the rejoined
/// process participates in the final view's sweeps.
pub fn check_churn_splice_graft(spec: TopologySpec) {
    let label = spec.label();
    let base = spec.build().unwrap_or_else(|e| panic!("{label}: {e}"));
    let pid = churn_victim(spec);

    // Structural splice/graft round-trip.
    let mut membership = Membership::new(base.clone());
    let v = membership
        .splice(pid)
        .unwrap_or_else(|e| panic!("{label}: splice({pid}): {e}"));
    assert!(!v.contains(pid), "{label}");
    assert_eq!(
        v.dag.num_positions(),
        base.num_positions() - base.positions_of(pid).len(),
        "{label}: splice must remove exactly the victim's positions"
    );
    let v = membership
        .graft(pid)
        .unwrap_or_else(|e| panic!("{label}: graft({pid}): {e}"));
    assert_eq!(v.dag.num_positions(), base.num_positions(), "{label}");
    for pos in 0..base.num_positions() {
        assert_eq!(v.positions[pos], pos, "{label}: graft must restore ids");
        let preds: Vec<usize> = v.dag.preds(pos).iter().map(|&q| v.positions[q]).collect();
        assert_eq!(
            preds,
            base.preds(pos),
            "{label}: graft must restore the base edge set at position {pos}"
        );
    }

    // Dynamic crash/reboot round-trip through the churn driver.
    let m = run_churn(&ChurnExperiment {
        topology: spec,
        target_phases: u64::MAX,
        horizon: 120.0,
        token_timeout: 2.0,
        events: vec![
            ChurnEvent::Crash { at: 10.0, pid },
            ChurnEvent::Reboot { at: 40.0, pid },
        ],
        ..Default::default()
    });
    assert_eq!(m.suspicions, 1, "{label}: crash must be detected");
    assert_eq!(m.rejoins, 1, "{label}: reboot must rejoin");
    assert_eq!(m.epoch, 2, "{label}: splice + graft");
    assert_eq!(
        m.final_live.len(),
        spec.num_processes(),
        "{label}: everyone alive at the end"
    );
    assert!(
        m.recv_after_last_change[pid] > 0,
        "{label}: rejoined process {pid} must participate again ({:?})",
        m.recv_after_last_change
    );
    assert!(
        m.phases_after_last_change > 5,
        "{label}: only {} phases after the graft",
        m.phases_after_last_change
    );
}

/// Conformance check 6: causal-graph determinism across engines.
///
/// With a causal recorder (the flight-recorder configuration) armed, the
/// classic engine and the dense engine at every worker count must produce
/// **byte-identical** flight-recorder dumps for the same seed — the causal
/// graph is part of the deterministic output, not a best-effort log. The
/// causal-armed classic run must also stay byte-identical to the plain
/// reference run: recording happens-before edges is a pure observation.
pub fn check_causal_determinism(spec: TopologySpec) {
    let label = spec.label();
    let seed = 0xCA05;
    for fault_rate in [0.0, 0.3] {
        let reference = run_classic(spec, seed, fault_rate, true);
        let (record, classic_dump) = run_classic_causal(spec, seed, fault_rate, false);
        assert_identical(
            &format!("{label} f={fault_rate} causal-armed"),
            record,
            reference.clone(),
        );
        assert!(
            classic_dump.contains("\"schema\": \"flightrec/v1\""),
            "{label}: dump missing schema stamp"
        );
        for workers in [1usize, 2, 4] {
            let (states, stats, dense_dump) = run_dense_causal(spec, seed, fault_rate, workers);
            assert_eq!(
                classic_dump, dense_dump,
                "{label} f={fault_rate} dense w={workers}: causal dumps diverge"
            );
            assert_eq!(
                states, reference.1,
                "{label} f={fault_rate} dense w={workers}: final states diverge"
            );
            assert_eq!(
                stats, reference.2,
                "{label} f={fault_rate} dense w={workers}: stats diverge"
            );
        }
    }
}

/// The full conformance battery for one topology. Every sweep topology —
/// present and future — must pass all six checks.
pub fn check_conformance(spec: TopologySpec) {
    check_sweep_completeness(spec);
    check_legal_set_structure(spec);
    check_classic_dense_differential(spec);
    check_fault_recovery(spec);
    check_churn_splice_graft(spec);
    check_causal_determinism(spec);
}
