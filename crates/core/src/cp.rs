//! Control positions (Fig 1 of the paper, plus the refinement's `repeat`).
//!
//! Each process maintains a control position `cp`: `ready` (ready to execute
//! its phase), `execute` (executing it), `success` (completed it), `error`
//! (detectably corrupted). The ring/tree refinement adds `repeat` — the
//! "some process was corrupted, re-execute this phase" verdict that rides the
//! token back to the root (§4.1).

use std::fmt;

/// A process's control position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cp {
    /// Ready to execute the current phase.
    Ready,
    /// Executing the current phase.
    Execute,
    /// Completed the current phase.
    Success,
    /// Detectably corrupted: the fault reset this process's state.
    Error,
    /// Refinement only (§4.1): a corruption was observed in this sweep; the
    /// verdict propagates with the token so the root re-executes the phase.
    Repeat,
}

impl Cp {
    /// All control position values of the coarse-grain program CB (Fig 1).
    pub const CB_DOMAIN: [Cp; 4] = [Cp::Ready, Cp::Execute, Cp::Success, Cp::Error];

    /// All control position values of the refined programs (CB's plus
    /// `repeat`).
    pub const RB_DOMAIN: [Cp; 5] = [Cp::Ready, Cp::Execute, Cp::Success, Cp::Error, Cp::Repeat];

    /// The fault-free transition successor in Fig 1's cycle
    /// (`ready → execute → success → ready`). `error` and `repeat` both
    /// rejoin the cycle at `ready`.
    pub fn next_in_cycle(self) -> Cp {
        match self {
            Cp::Ready => Cp::Execute,
            Cp::Execute => Cp::Success,
            Cp::Success | Cp::Error | Cp::Repeat => Cp::Ready,
        }
    }

    /// Whether the Fig-1 state machine (extended with `repeat`) permits the
    /// *change* `self → to` in the absence of faults. Fault actions may
    /// additionally jump anywhere (detectable faults land on `error`).
    pub fn may_transition(self, to: Cp) -> bool {
        matches!(
            (self, to),
            // Fig 1 cycle plus the error/repeat rejoins at `ready`.
            (Cp::Ready, Cp::Execute)
                | (Cp::Execute, Cp::Success)
                | (Cp::Success, Cp::Ready)
                | (Cp::Error, Cp::Ready)
                | (Cp::Repeat, Cp::Ready)
                // Refinement: observing a corruption flags `repeat`.
                | (Cp::Ready, Cp::Repeat)
                | (Cp::Execute, Cp::Repeat)
                | (Cp::Success, Cp::Repeat)
                | (Cp::Error, Cp::Repeat)
        )
    }
}

impl fmt::Display for Cp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cp::Ready => "ready",
            Cp::Execute => "execute",
            Cp::Success => "success",
            Cp::Error => "error",
            Cp::Repeat => "repeat",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_matches_fig1() {
        assert_eq!(Cp::Ready.next_in_cycle(), Cp::Execute);
        assert_eq!(Cp::Execute.next_in_cycle(), Cp::Success);
        assert_eq!(Cp::Success.next_in_cycle(), Cp::Ready);
        assert_eq!(Cp::Error.next_in_cycle(), Cp::Ready);
        assert_eq!(Cp::Repeat.next_in_cycle(), Cp::Ready);
    }

    #[test]
    fn domains() {
        assert_eq!(Cp::CB_DOMAIN.len(), 4);
        assert_eq!(Cp::RB_DOMAIN.len(), 5);
        assert!(!Cp::CB_DOMAIN.contains(&Cp::Repeat));
        assert!(Cp::RB_DOMAIN.contains(&Cp::Repeat));
    }

    #[test]
    fn display_names() {
        assert_eq!(Cp::Ready.to_string(), "ready");
        assert_eq!(Cp::Repeat.to_string(), "repeat");
    }
}
