//! The barrier synchronization specification (§2) as an executable oracle.
//!
//! The paper's spec, for each phase `i` (mod `n`):
//!
//! * **Safety** — execution of `phase.(i+1)` begins only after `phase.i` is
//!   executed successfully, and two instances of a phase never overlap.
//! * **Progress** — eventually `phase.i` is executed successfully.
//!
//! An *instance* of `phase.i` is executed iff some process starts executing
//! `phase.i` and each process executes it at most once; the instance is
//! *successful* iff **all** processes execute the phase fully. A phase is
//! executed successfully iff one or more of its instances execute in
//! sequence, the last of which is successful — so re-execution after a
//! detectable fault is *not* a violation; overlapping instances or skipping
//! an unfinished phase is.
//!
//! [`BarrierOracle`] reconstructs instances from per-process control-position
//! transitions and reports every Safety deviation as a [`Violation`], plus
//! the Progress bookkeeping (successful phases, instance counts, timing)
//! that the §6 experiments are built on.

use crate::cp::Cp;
use ftbarrier_gcs::{Pid, Time};

/// How the oracle treats the first instance it sees.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Anchor {
    /// The computation starts from the program's start state: the first
    /// instance must be `phase.0`.
    StrictFromZero,
    /// The computation starts from an arbitrary state (recovery
    /// experiments): the first instance anchors the expected sequence.
    Free,
}

/// A Safety deviation.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// An instance opened with a phase number the spec does not allow next.
    WrongPhase {
        at: Time,
        got: u32,
        expected: Vec<u32>,
    },
    /// An instance of a different phase started while processes were still
    /// executing in the open instance.
    Overlap { at: Time, open: u32, new: u32 },
    /// A process started the same phase twice within one instance while the
    /// instance still had executing processes.
    DoubleStart { at: Time, pid: Pid, phase: u32 },
    /// A completion that matches no tracked start (only possible after
    /// corruption, or when the oracle attaches to a perturbed state).
    UntrackedCompletion { at: Time, pid: Pid, phase: u32 },
}

impl Violation {
    pub fn at(&self) -> Time {
        match self {
            Violation::WrongPhase { at, .. }
            | Violation::Overlap { at, .. }
            | Violation::DoubleStart { at, .. }
            | Violation::UntrackedCompletion { at, .. } => *at,
        }
    }

    /// The phase this violation implicates (for Lemma 3.4's "at most m
    /// phases executed incorrectly").
    pub fn phase(&self) -> u32 {
        match self {
            Violation::WrongPhase { got, .. } => *got,
            Violation::Overlap { new, .. } => *new,
            Violation::DoubleStart { phase, .. } | Violation::UntrackedCompletion { phase, .. } => {
                *phase
            }
        }
    }
}

#[derive(Debug, Clone)]
struct Instance {
    phase: u32,
    started: Vec<bool>,
    executing: Vec<bool>,
    completed: Vec<bool>,
    /// Oracle event sequence number of each process's start.
    start_seq: Vec<u64>,
    /// Sequence number of the most recent completion or abort.
    last_finish_seq: u64,
    n_started: usize,
    n_executing: usize,
    n_completed: usize,
    aborted_some: bool,
}

impl Instance {
    fn new(n: usize, phase: u32) -> Instance {
        Instance {
            phase,
            started: vec![false; n],
            executing: vec![false; n],
            completed: vec![false; n],
            start_seq: vec![0; n],
            last_finish_seq: 0,
            n_started: 0,
            n_executing: 0,
            n_completed: 0,
            aborted_some: false,
        }
    }

    fn join(&mut self, pid: Pid, seq: u64) {
        debug_assert!(!self.started[pid]);
        self.started[pid] = true;
        self.executing[pid] = true;
        self.start_seq[pid] = seq;
        self.n_started += 1;
        self.n_executing += 1;
    }
}

/// Configuration of the oracle.
#[derive(Debug, Clone, Copy)]
pub struct OracleConfig {
    pub n_processes: usize,
    pub n_phases: u32,
    pub anchor: Anchor,
}

/// The executable barrier specification.
///
/// ```
/// use ftbarrier_core::spec::{Anchor, BarrierOracle, OracleConfig};
/// use ftbarrier_core::cp::Cp;
/// use ftbarrier_gcs::Time;
///
/// let mut oracle = BarrierOracle::new(OracleConfig {
///     n_processes: 2, n_phases: 4, anchor: Anchor::StrictFromZero,
/// });
/// for pid in 0..2 {
///     oracle.observe_cp(Time::ZERO, pid, 0, Cp::Ready, Cp::Execute);
/// }
/// for pid in 0..2 {
///     oracle.observe_cp(Time::new(1.0), pid, 0, Cp::Execute, Cp::Success);
/// }
/// assert!(oracle.is_clean());
/// assert_eq!(oracle.phases_completed(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct BarrierOracle {
    cfg: OracleConfig,
    open: Option<Instance>,
    /// `(phase, successful)` of the most recently closed instance.
    last_closed: Option<(u32, bool)>,
    /// Phase of the most recent *successful* instance (for distinguishing a
    /// benign re-execution of a completed phase from real phase advance).
    last_successful_phase: Option<u32>,
    violations: Vec<Violation>,
    /// Monotone event counter for ordering starts against finishes.
    seq: u64,
    successful_instances: u64,
    aborted_instances: u64,
    phases_completed: u64,
    /// Instances consumed per successfully completed phase, in completion
    /// order — the quantity plotted in Fig 3/Fig 5.
    instance_counts: Vec<u64>,
    current_phase_attempts: u64,
    /// Times of successful phase completions, in order (Fig 6 timing).
    completion_times: Vec<Time>,
    first_success: Option<Time>,
    last_success: Option<Time>,
    last_violation: Option<Time>,
}

impl BarrierOracle {
    pub fn new(cfg: OracleConfig) -> BarrierOracle {
        assert!(cfg.n_processes >= 2, "barrier needs at least 2 processes");
        assert!(cfg.n_phases >= 2, "the paper's programs assume >= 2 phases");
        BarrierOracle {
            cfg,
            open: None,
            last_closed: None,
            last_successful_phase: None,
            violations: Vec::new(),
            seq: 0,
            successful_instances: 0,
            aborted_instances: 0,
            phases_completed: 0,
            instance_counts: Vec::new(),
            current_phase_attempts: 0,
            completion_times: Vec::new(),
            first_success: None,
            last_success: None,
            last_violation: None,
        }
    }

    fn record(&mut self, v: Violation) {
        self.last_violation = Some(v.at());
        self.violations.push(v);
    }

    /// Phases the spec allows the next instance to execute.
    fn expected_next(&self) -> Vec<u32> {
        match (self.cfg.anchor, self.last_closed) {
            // After a successful instance of p: the next phase p+1, or a
            // benign re-execution of p (the paper's root does this when a
            // detectable fault lands between completion and phase advance).
            (_, Some((p, true))) => vec![(p + 1) % self.cfg.n_phases, p],
            // After an aborted instance of p: only a re-execution of p.
            (_, Some((p, false))) => vec![p],
            (Anchor::StrictFromZero, None) => vec![0],
            (Anchor::Free, None) => Vec::new(),
        }
    }

    fn close(&mut self, successful: bool, now: Time) {
        let inst = self.open.take().expect("close() with no open instance");
        self.current_phase_attempts += 1;
        self.last_closed = Some((inst.phase, successful));
        if successful {
            self.successful_instances += 1;
            // Advance of the phase counter (vs. a benign repeat of the same
            // completed phase).
            if self.last_successful_phase != Some(inst.phase) || self.phases_completed == 0 {
                self.phases_completed += 1;
                self.instance_counts.push(self.current_phase_attempts);
                self.completion_times.push(now);
            }
            self.current_phase_attempts = 0;
            self.last_successful_phase = Some(inst.phase);
            if self.first_success.is_none() {
                self.first_success = Some(now);
            }
            self.last_success = Some(now);
        } else {
            self.aborted_instances += 1;
        }
    }

    fn open_new(&mut self, now: Time, phase: u32) {
        let expected = self.expected_next();
        if !expected.is_empty() && !expected.contains(&phase) {
            self.record(Violation::WrongPhase {
                at: now,
                got: phase,
                expected,
            });
        }
        self.open = Some(Instance::new(self.cfg.n_processes, phase));
    }

    /// A process began executing `phase`.
    pub fn on_start(&mut self, now: Time, pid: Pid, phase: u32) {
        self.seq += 1;
        let seq = self.seq;
        loop {
            match &mut self.open {
                None => {
                    self.open_new(now, phase);
                    self.open.as_mut().unwrap().join(pid, seq);
                    return;
                }
                Some(inst) => {
                    if inst.phase == phase && !inst.started[pid] {
                        // A new instance is also signalled by a fresh start
                        // when the open one is doomed (some process aborted)
                        // and nobody is executing any more.
                        if inst.aborted_some && inst.n_executing == 0 {
                            self.close(false, now);
                            continue;
                        }
                        inst.join(pid, seq);
                        return;
                    }
                    if inst.phase == phase {
                        // Same phase, same pid again.
                        if inst.n_executing > 0 {
                            // Disambiguate the late-joiner case: if this pid
                            // completed the open instance and every executing
                            // process started only after all of the open
                            // instance's completions/aborts, those trailing
                            // starts were really the first starts of a *new*
                            // instance (the open one was doomed by a fault on
                            // a process that had not started yet). Reassign
                            // them instead of flagging a violation.
                            let movable = inst.completed[pid]
                                && inst.executing.iter().enumerate().all(|(q, &e)| {
                                    !e || (inst.start_seq[q] > inst.last_finish_seq
                                        && !inst.completed[q])
                                });
                            if movable {
                                let carried: Vec<(Pid, u64)> = inst
                                    .executing
                                    .iter()
                                    .enumerate()
                                    .filter(|&(_, &e)| e)
                                    .map(|(q, _)| (q, inst.start_seq[q]))
                                    .collect();
                                for &(q, _) in &carried {
                                    inst.executing[q] = false;
                                }
                                inst.n_executing = 0;
                                self.close(false, now);
                                self.open_new(now, phase);
                                let ni = self.open.as_mut().unwrap();
                                for (q, s) in carried {
                                    ni.join(q, s);
                                }
                                continue;
                            }
                            self.record(Violation::DoubleStart {
                                at: now,
                                pid,
                                phase,
                            });
                        }
                        self.close(false, now);
                        continue;
                    }
                    // Different phase.
                    if inst.n_executing > 0 {
                        let open_phase = inst.phase;
                        self.record(Violation::Overlap {
                            at: now,
                            open: open_phase,
                            new: phase,
                        });
                    }
                    self.close(false, now);
                    continue;
                }
            }
        }
    }

    /// A process finished its phase fully (`execute → success`).
    pub fn on_complete(&mut self, now: Time, pid: Pid, phase: u32) {
        let matches_open = self
            .open
            .as_ref()
            .is_some_and(|inst| inst.phase == phase && inst.executing[pid]);
        if !matches_open {
            self.record(Violation::UntrackedCompletion {
                at: now,
                pid,
                phase,
            });
            return;
        }
        self.seq += 1;
        let seq = self.seq;
        let inst = self.open.as_mut().unwrap();
        inst.executing[pid] = false;
        inst.completed[pid] = true;
        inst.n_executing -= 1;
        inst.n_completed += 1;
        inst.last_finish_seq = seq;
        if inst.n_completed == self.cfg.n_processes {
            self.close(true, now);
        }
    }

    /// A process abandoned execution (fault, `repeat`, reset) without
    /// completing.
    pub fn on_abort(&mut self, _now: Time, pid: Pid) {
        self.seq += 1;
        let seq = self.seq;
        if let Some(inst) = &mut self.open {
            if inst.executing[pid] {
                inst.executing[pid] = false;
                inst.n_executing -= 1;
                inst.aborted_some = true;
                inst.last_finish_seq = seq;
            }
        }
    }

    /// Feed a control-position change of `pid` whose current phase variable
    /// reads `phase`. Dispatches to start/complete/abort. `faulty` marks
    /// changes caused by a fault action rather than a program action (an
    /// undetectable fault writing `execute` makes the process *behave* as an
    /// executor of its forged phase, so it is tracked as a start).
    pub fn observe_cp(&mut self, now: Time, pid: Pid, phase: u32, old: Cp, new: Cp) {
        if old == new {
            return;
        }
        match (old, new) {
            (_, Cp::Execute) => self.on_start(now, pid, phase),
            (Cp::Execute, Cp::Success) => self.on_complete(now, pid, phase),
            (Cp::Execute, _) => self.on_abort(now, pid),
            _ => {}
        }
    }

    // ----- results -----

    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    pub fn successful_instances(&self) -> u64 {
        self.successful_instances
    }

    pub fn aborted_instances(&self) -> u64 {
        self.aborted_instances
    }

    /// Number of phases executed successfully (Progress metric).
    pub fn phases_completed(&self) -> u64 {
        self.phases_completed
    }

    /// Instances consumed per successfully completed phase (Fig 3/5 metric).
    pub fn instance_counts(&self) -> &[u64] {
        &self.instance_counts
    }

    pub fn mean_instances_per_phase(&self) -> f64 {
        if self.instance_counts.is_empty() {
            return f64::NAN;
        }
        self.instance_counts.iter().sum::<u64>() as f64 / self.instance_counts.len() as f64
    }

    /// Completion times of successful phases, in order.
    pub fn completion_times(&self) -> &[Time] {
        &self.completion_times
    }

    pub fn first_success(&self) -> Option<Time> {
        self.first_success
    }

    pub fn last_success(&self) -> Option<Time> {
        self.last_success
    }

    pub fn last_violation(&self) -> Option<Time> {
        self.last_violation
    }

    /// Distinct phases implicated in violations — Lemma 3.4's `m` bound
    /// compares against this.
    pub fn distinct_violated_phases(&self) -> usize {
        let mut phases: Vec<u32> = self.violations.iter().map(|v| v.phase()).collect();
        phases.sort_unstable();
        phases.dedup();
        phases.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oracle(n: usize) -> BarrierOracle {
        BarrierOracle::new(OracleConfig {
            n_processes: n,
            n_phases: 4,
            anchor: Anchor::StrictFromZero,
        })
    }

    fn t(x: f64) -> Time {
        Time::new(x)
    }

    #[test]
    fn clean_sequence_of_phases() {
        let mut o = oracle(2);
        for phase in [0u32, 1, 2, 3, 0, 1] {
            o.on_start(t(0.0), 0, phase);
            o.on_start(t(0.1), 1, phase);
            o.on_complete(t(1.0), 0, phase);
            o.on_complete(t(1.1), 1, phase);
        }
        assert!(o.is_clean());
        assert_eq!(o.phases_completed(), 6);
        assert_eq!(o.successful_instances(), 6);
        assert_eq!(o.instance_counts(), &[1, 1, 1, 1, 1, 1]);
        assert_eq!(o.first_success(), Some(t(1.1)));
    }

    #[test]
    fn must_start_at_phase_zero() {
        let mut o = oracle(2);
        o.on_start(t(0.0), 0, 2);
        assert_eq!(o.violations().len(), 1);
        assert!(matches!(
            o.violations()[0],
            Violation::WrongPhase { got: 2, .. }
        ));
    }

    #[test]
    fn free_anchor_accepts_any_first_phase() {
        let mut o = BarrierOracle::new(OracleConfig {
            n_processes: 2,
            n_phases: 4,
            anchor: Anchor::Free,
        });
        o.on_start(t(0.0), 0, 3);
        o.on_start(t(0.0), 1, 3);
        o.on_complete(t(1.0), 0, 3);
        o.on_complete(t(1.0), 1, 3);
        assert!(o.is_clean());
        // ...but the successor is then pinned: 3 -> 0 expected.
        o.on_start(t(2.0), 0, 2);
        assert_eq!(o.violations().len(), 1);
    }

    #[test]
    fn aborted_instance_then_reexecution_is_legal() {
        let mut o = oracle(2);
        // Instance 1 of phase 0: pid 1 aborts (detectable fault).
        o.on_start(t(0.0), 0, 0);
        o.on_start(t(0.0), 1, 0);
        o.on_abort(t(0.5), 1);
        o.on_complete(t(1.0), 0, 0);
        // New instance of phase 0: both complete.
        o.on_start(t(2.0), 0, 0);
        o.on_start(t(2.0), 1, 0);
        o.on_complete(t(3.0), 0, 0);
        o.on_complete(t(3.0), 1, 0);
        assert!(o.is_clean(), "violations: {:?}", o.violations());
        assert_eq!(o.phases_completed(), 1);
        assert_eq!(o.aborted_instances(), 1);
        // Two instances were consumed to complete phase 0.
        assert_eq!(o.instance_counts(), &[2]);
    }

    #[test]
    fn skipping_a_failed_phase_is_a_violation() {
        let mut o = oracle(2);
        o.on_start(t(0.0), 0, 0);
        o.on_start(t(0.0), 1, 0);
        o.on_abort(t(0.5), 0);
        o.on_abort(t(0.5), 1);
        // Phase 0 never succeeded; starting phase 1 violates Safety.
        o.on_start(t(1.0), 0, 1);
        assert_eq!(o.violations().len(), 1);
        assert!(matches!(
            o.violations()[0],
            Violation::WrongPhase { got: 1, .. }
        ));
    }

    #[test]
    fn overlap_is_detected() {
        let mut o = oracle(2);
        o.on_start(t(0.0), 0, 0);
        o.on_start(t(0.0), 1, 0);
        o.on_complete(t(1.0), 0, 0);
        // pid 1 still executing phase 0; pid 0 starting phase 1 overlaps.
        o.on_start(t(1.1), 0, 1);
        assert!(o.violations().iter().any(|v| matches!(
            v,
            Violation::Overlap {
                open: 0,
                new: 1,
                ..
            }
        )));
    }

    #[test]
    fn double_start_while_others_execute_is_flagged() {
        let mut o = oracle(3);
        o.on_start(t(0.0), 0, 0);
        o.on_start(t(0.0), 1, 0);
        o.on_start(t(0.1), 0, 0); // pid 0 again, pid 1 still executing
        assert!(o
            .violations()
            .iter()
            .any(|v| matches!(v, Violation::DoubleStart { pid: 0, .. })));
    }

    #[test]
    fn benign_reexecution_after_success_is_legal() {
        // The paper's root re-runs a completed phase when a detectable fault
        // lands between completion and phase advance.
        let mut o = oracle(2);
        for _ in 0..2 {
            o.on_start(t(0.0), 0, 0);
            o.on_start(t(0.0), 1, 0);
            o.on_complete(t(1.0), 0, 0);
            o.on_complete(t(1.0), 1, 0);
        }
        assert!(o.is_clean());
        assert_eq!(o.successful_instances(), 2);
        // Phase 0 completed once (the repeat does not advance the counter).
        assert_eq!(o.phases_completed(), 1);
    }

    #[test]
    fn untracked_completion_is_flagged() {
        let mut o = oracle(2);
        o.on_complete(t(0.5), 1, 0);
        assert!(matches!(
            o.violations()[0],
            Violation::UntrackedCompletion { pid: 1, .. }
        ));
    }

    #[test]
    fn wraparound_phase_sequencing() {
        let mut o = oracle(2);
        for phase in [0u32, 1, 2, 3, 0] {
            o.on_start(t(0.0), 0, phase);
            o.on_start(t(0.0), 1, phase);
            o.on_complete(t(1.0), 0, phase);
            o.on_complete(t(1.0), 1, phase);
        }
        assert!(o.is_clean());
        assert_eq!(o.phases_completed(), 5);
    }

    #[test]
    fn observe_cp_dispatch() {
        let mut o = oracle(2);
        o.observe_cp(t(0.0), 0, 0, Cp::Ready, Cp::Execute);
        o.observe_cp(t(0.0), 1, 0, Cp::Ready, Cp::Execute);
        o.observe_cp(t(1.0), 0, 0, Cp::Execute, Cp::Success);
        o.observe_cp(t(1.0), 1, 0, Cp::Execute, Cp::Error); // fault: abort
        assert!(o.is_clean());
        assert_eq!(o.phases_completed(), 0);
        // Re-execution completes the phase.
        o.observe_cp(t(2.0), 0, 0, Cp::Ready, Cp::Execute);
        o.observe_cp(t(2.0), 1, 0, Cp::Ready, Cp::Execute);
        o.observe_cp(t(3.0), 0, 0, Cp::Execute, Cp::Success);
        o.observe_cp(t(3.0), 1, 0, Cp::Execute, Cp::Success);
        assert!(o.is_clean());
        assert_eq!(o.phases_completed(), 1);
        assert_eq!(o.instance_counts(), &[2]);
    }

    #[test]
    fn late_joiner_is_not_conflated_with_reexecution() {
        let mut o = oracle(3);
        // pid 2 aborts; 0 and 1 complete; then a new instance starts with a
        // pid that never started in the doomed instance.
        o.on_start(t(0.0), 0, 0);
        o.on_start(t(0.0), 1, 0);
        o.on_start(t(0.0), 2, 0);
        o.on_abort(t(0.2), 2);
        o.on_complete(t(1.0), 0, 0);
        o.on_complete(t(1.0), 1, 0);
        // New instance: pid 2 starts first this time.
        o.on_start(t(2.0), 2, 0);
        o.on_start(t(2.0), 0, 0);
        o.on_start(t(2.0), 1, 0);
        o.on_complete(t(3.0), 2, 0);
        o.on_complete(t(3.0), 0, 0);
        o.on_complete(t(3.0), 1, 0);
        assert!(o.is_clean(), "violations: {:?}", o.violations());
        assert_eq!(o.phases_completed(), 1);
        assert_eq!(o.instance_counts(), &[2]);
    }

    #[test]
    fn distinct_violated_phases_counts_unique() {
        let mut o = BarrierOracle::new(OracleConfig {
            n_processes: 2,
            n_phases: 8,
            anchor: Anchor::Free,
        });
        o.on_start(t(0.0), 0, 1);
        o.on_start(t(0.1), 1, 5); // overlap with phase 1 open
        assert_eq!(o.distinct_violated_phases(), 1);
    }
}
