//! The experiment harness behind §6.2's simulation results.
//!
//! Wires a sweep program, the timed maximal-parallelism engine, a fault
//! environment, and the specification oracle together, and reports the
//! quantities the paper plots: instances per successful phase (Fig 5), time
//! per successful phase and overhead (Fig 6), and recovery time from an
//! arbitrary state (Fig 7).

use crate::cp::Cp;
use crate::intolerant::{IntolerantBarrier, IntolerantState, Phase2Cp};
use crate::spec::{Anchor, BarrierOracle, OracleConfig, Violation};
use crate::sweep::{PosState, ProcessFaults, SweepBarrier, SweepDetectableFault};
use crate::telemetry::{EpisodeAttribution, SweepLatencyMonitor};
use ftbarrier_gcs::fault::NoFaults;
use ftbarrier_gcs::{
    ActionId, CausalMonitor, Engine, EngineConfig, FaultKind, Monitor, MonitorSet, Pid, StopReason,
    Time,
};
use ftbarrier_telemetry::{CausalRecorder, Telemetry};
use ftbarrier_topology::{SweepDag, TopologyError};

/// Which topology to run (§4's refinements).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologySpec {
    /// Program RB: a ring of `n` processes.
    Ring { n: usize },
    /// Program RB′: two rings sharing the root.
    TwoRing { a: usize, b: usize },
    /// Fig 2(c): `arity`-ary tree over `n` processes, leaves wired to root.
    Tree { n: usize, arity: usize },
    /// Fig 2(d): double tree.
    DoubleTree { n: usize, arity: usize },
    /// Program MB: the 2(N+1)-position message-passing ring.
    MbRing { n: usize },
    /// Radix-`radix` dissemination partner schedule folded into a layered
    /// sweep (O(log n) critical path).
    Dissemination { n: usize, radix: usize },
    /// Hypercube binomial double tree (`n` a power of two).
    Hypercube { n: usize },
    /// Butterfly exchange grid (`n` a power of two).
    Butterfly { n: usize },
}

impl TopologySpec {
    pub fn build(self) -> Result<SweepDag, TopologyError> {
        match self {
            TopologySpec::Ring { n } => SweepDag::ring(n),
            TopologySpec::TwoRing { a, b } => SweepDag::two_ring(a, b),
            TopologySpec::Tree { n, arity } => SweepDag::tree(n, arity),
            TopologySpec::DoubleTree { n, arity } => SweepDag::double_tree(n, arity),
            TopologySpec::MbRing { n } => crate::sweep::mb_ring(n),
            TopologySpec::Dissemination { n, radix } => SweepDag::dissemination(n, radix),
            TopologySpec::Hypercube { n } => SweepDag::hypercube(n),
            TopologySpec::Butterfly { n } => SweepDag::butterfly(n),
        }
    }

    pub fn num_processes(self) -> usize {
        match self {
            TopologySpec::Ring { n }
            | TopologySpec::Tree { n, .. }
            | TopologySpec::DoubleTree { n, .. }
            | TopologySpec::MbRing { n }
            | TopologySpec::Dissemination { n, .. }
            | TopologySpec::Hypercube { n }
            | TopologySpec::Butterfly { n } => n,
            TopologySpec::TwoRing { a, b } => 1 + a + b,
        }
    }

    /// Short label for metric keys (`topo="ring"` etc.).
    pub fn label(self) -> &'static str {
        match self {
            TopologySpec::Ring { .. } => "ring",
            TopologySpec::TwoRing { .. } => "two-ring",
            TopologySpec::Tree { .. } => "tree",
            TopologySpec::DoubleTree { .. } => "double-tree",
            TopologySpec::MbRing { .. } => "mb-ring",
            TopologySpec::Dissemination { .. } => "dissemination",
            TopologySpec::Hypercube { .. } => "hypercube",
            TopologySpec::Butterfly { .. } => "butterfly",
        }
    }
}

/// Monitor adapter: feeds worker-position `cp` transitions of a sweep
/// program into the oracle, and stops the run after `stop_after_phases`.
pub struct SweepOracleMonitor {
    pub oracle: BarrierOracle,
    owner: Vec<Pid>,
    worker: Vec<bool>,
    pub stop_after_phases: Option<u64>,
    pub stop_at: Option<Time>,
    now: Time,
}

impl SweepOracleMonitor {
    pub fn new(program: &SweepBarrier, anchor: Anchor) -> SweepOracleMonitor {
        let dag = program.dag();
        let oracle = BarrierOracle::new(OracleConfig {
            n_processes: dag.num_processes(),
            n_phases: program.n_phases,
            anchor,
        });
        SweepOracleMonitor {
            oracle,
            owner: (0..dag.num_positions()).map(|p| dag.owner(p)).collect(),
            worker: (0..dag.num_positions())
                .map(|p| program.is_worker(p))
                .collect(),
            stop_after_phases: None,
            stop_at: None,
            now: Time::ZERO,
        }
    }

    pub fn stop_after(mut self, phases: u64) -> SweepOracleMonitor {
        self.stop_after_phases = Some(phases);
        self
    }

    fn observe(&mut self, now: Time, pos: usize, old: &PosState, new: &PosState) {
        self.now = now;
        if self.worker[pos] {
            self.oracle
                .observe_cp(now, self.owner[pos], new.ph, old.cp, new.cp);
        }
    }
}

impl Monitor<PosState> for SweepOracleMonitor {
    fn on_transition(
        &mut self,
        now: Time,
        pos: Pid,
        _action: ActionId,
        _name: &str,
        old: &PosState,
        new: &PosState,
        _global: &[PosState],
    ) {
        self.observe(now, pos, old, new);
    }

    fn on_fault(
        &mut self,
        now: Time,
        pos: Pid,
        _kind: FaultKind,
        old: &PosState,
        new: &PosState,
        _global: &[PosState],
    ) {
        self.observe(now, pos, old, new);
    }

    fn should_stop(&mut self) -> bool {
        if let Some(target) = self.stop_after_phases {
            if self.oracle.phases_completed() >= target {
                return true;
            }
        }
        if let Some(horizon) = self.stop_at {
            if self.now >= horizon {
                return true;
            }
        }
        false
    }
}

/// One phase-measurement experiment (Figs 5 and 6).
#[derive(Debug, Clone, Copy)]
pub struct PhaseExperiment {
    pub topology: TopologySpec,
    pub n_phases: u32,
    /// Communication latency `c` per hop.
    pub c: f64,
    /// Detectable-fault frequency `f` per unit time (0 disables faults).
    pub f: f64,
    pub seed: u64,
    /// Successful phases to run before stopping.
    pub target_phases: u64,
    /// §8 fuzzy barriers: split the unit phase body into `(pre, post)` work
    /// (post-work overlaps the barrier sweeps). `None` = the strict barrier
    /// with one unit of pre-work.
    pub work_split: Option<(f64, f64)>,
}

impl Default for PhaseExperiment {
    fn default() -> Self {
        PhaseExperiment {
            topology: TopologySpec::Tree { n: 32, arity: 2 },
            n_phases: 8,
            c: 0.01,
            f: 0.0,
            seed: 0xBA44,
            target_phases: 200,
            work_split: None,
        }
    }
}

/// What a phase experiment measured.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseMeasurement {
    pub phases: u64,
    /// Mean instances per successful phase (Fig 3/5's y-axis).
    pub mean_instances: f64,
    /// Mean time per successful phase in steady state (first phase dropped
    /// as warmup).
    pub mean_phase_time: f64,
    pub violations: usize,
    pub aborted_instances: u64,
    pub faults: u64,
    pub elapsed: Time,
}

/// Run a sweep barrier under detectable faults and measure phase behaviour.
pub fn measure_phases(exp: &PhaseExperiment) -> PhaseMeasurement {
    measure_phases_with_telemetry(exp, &Telemetry::off())
}

/// [`measure_phases`], additionally recording detection/recovery latency
/// histograms, per-phase timings, and recovery-window spans into
/// `telemetry` (see [`crate::telemetry::SweepLatencyMonitor`]). With a
/// disabled handle this is exactly `measure_phases` — the differential
/// tests assert the measurements are identical either way.
pub fn measure_phases_with_telemetry(
    exp: &PhaseExperiment,
    telemetry: &Telemetry,
) -> PhaseMeasurement {
    measure_phases_causal(exp, telemetry, &CausalRecorder::off()).0
}

/// [`measure_phases_with_telemetry`], additionally recording the causal
/// happens-before graph into `recorder` and returning the per-episode
/// attribution report: for every completed fault→detection→recovery
/// episode, the measured critical path inside the episode window and each
/// position's share of it. With a disabled recorder the report is empty
/// and the run is exactly [`measure_phases_with_telemetry`].
pub fn measure_phases_causal(
    exp: &PhaseExperiment,
    telemetry: &Telemetry,
    recorder: &CausalRecorder,
) -> (PhaseMeasurement, Vec<EpisodeAttribution>) {
    let dag = exp.topology.build().expect("valid topology");
    let mut program =
        SweepBarrier::new(dag, exp.n_phases).with_costs(Time::new(exp.c), Time::new(1.0));
    if let Some((pre, post)) = exp.work_split {
        program = program.with_fuzzy_split(Time::new(pre), Time::new(post));
    }
    let mut monitor =
        SweepOracleMonitor::new(&program, Anchor::StrictFromZero).stop_after(exp.target_phases);
    let mut latency = SweepLatencyMonitor::new(&program, exp.topology.label(), telemetry.clone())
        .with_causal(recorder.clone());
    let mut causal = CausalMonitor::from_protocol(&program, recorder.clone())
        .with_phase(Box::new(|s: &PosState| Some(s.ph)));
    let mut engine = Engine::new(&program, exp.seed);
    let config = EngineConfig {
        seed: exp.seed ^ 0x5EED,
        max_time: Some(Time::new(
            // Generous horizon: expected phase time times target, times 50
            // headroom for unlucky fault streaks.
            (1.0 + 3.0 * program.dag().height() as f64 * exp.c) * exp.target_phases as f64 * 50.0
                + 100.0,
        )),
        ..Default::default()
    };
    let outcome = {
        let mut set = MonitorSet::new()
            .with(&mut monitor)
            .with(&mut latency)
            .with(&mut causal);
        if exp.f > 0.0 {
            let mut faults = ProcessFaults::new(
                &program,
                exp.f,
                SweepDetectableFault {
                    n_phases: exp.n_phases,
                },
            );
            engine.run(&config, &mut faults, &mut set)
        } else {
            engine.run(&config, &mut NoFaults, &mut set)
        }
    };
    assert_ne!(
        outcome.reason,
        StopReason::Fixpoint,
        "barrier program must never deadlock"
    );
    let oracle = &monitor.oracle;
    if telemetry.is_enabled() {
        let topo = exp.topology.label();
        for pair in oracle.completion_times().windows(2) {
            telemetry.observe(
                "phase_time",
                &[("topo", topo)],
                (pair[1] - pair[0]).as_f64(),
            );
        }
        telemetry.merge_metrics(&outcome.stats.to_metrics());
    }
    let times = oracle.completion_times();
    let mean_phase_time = if times.len() >= 2 {
        (*times.last().unwrap() - times[0]).as_f64() / (times.len() - 1) as f64
    } else {
        f64::NAN
    };
    // Total instances per successful phase — §6.1's definition. (This also
    // attributes "benign" re-executions — a fault landing between an
    // instance's completion and the root's verdict — to the fault bill,
    // exactly as the analytic model's exposure window does.)
    let mean_instances = if oracle.phases_completed() > 0 {
        (oracle.successful_instances() + oracle.aborted_instances()) as f64
            / oracle.phases_completed() as f64
    } else {
        f64::NAN
    };
    let attribution = latency.attribution_report();
    (
        PhaseMeasurement {
            phases: oracle.phases_completed(),
            mean_instances,
            mean_phase_time,
            violations: oracle.violations().len(),
            aborted_instances: oracle.aborted_instances(),
            faults: outcome.stats.faults,
            elapsed: outcome.stats.elapsed,
        },
        attribution,
    )
}

/// Measure the fault-intolerant baseline's steady-state time per phase
/// (Fig 6's denominator), by simulation.
pub fn measure_intolerant_phase_time(
    topology: TopologySpec,
    n_phases: u32,
    c: f64,
    seed: u64,
    target_phases: u64,
) -> f64 {
    let dag = topology.build().expect("valid topology");
    let program = IntolerantBarrier::new(dag, n_phases).with_costs(Time::new(c), Time::new(1.0));

    /// Record the time of each phase increment at the root.
    struct RootPhaseTimes {
        times: Vec<Time>,
        target: usize,
    }
    impl Monitor<IntolerantState> for RootPhaseTimes {
        fn on_transition(
            &mut self,
            now: Time,
            pos: Pid,
            _action: ActionId,
            _name: &str,
            old: &IntolerantState,
            new: &IntolerantState,
            _global: &[IntolerantState],
        ) {
            if pos == 0 && new.cp == Phase2Cp::Working && old.cp == Phase2Cp::Arrived {
                self.times.push(now);
            }
        }
        fn should_stop(&mut self) -> bool {
            self.times.len() >= self.target
        }
    }

    let mut monitor = RootPhaseTimes {
        times: Vec::new(),
        target: target_phases as usize,
    };
    let mut engine = Engine::new(&program, seed);
    let out = engine.run(&EngineConfig::default(), &mut NoFaults, &mut monitor);
    assert_ne!(out.reason, StopReason::Fixpoint);
    let times = &monitor.times;
    assert!(times.len() >= 2, "need at least two phase completions");
    (*times.last().unwrap() - times[0]).as_f64() / (times.len() - 1) as f64
}

/// One recovery experiment (Fig 7).
#[derive(Debug, Clone, Copy)]
pub struct RecoveryExperiment {
    pub topology: TopologySpec,
    pub n_phases: u32,
    pub c: f64,
    pub seed: u64,
    /// Observation horizon after the perturbation.
    pub horizon: f64,
    /// Successful phases that must complete violation-free at the end of
    /// the horizon for the run to count as recovered.
    pub confirm_phases: u64,
}

impl Default for RecoveryExperiment {
    fn default() -> Self {
        RecoveryExperiment {
            topology: TopologySpec::Tree { n: 32, arity: 2 },
            n_phases: 8,
            c: 0.01,
            seed: 0xFACE,
            horizon: 60.0,
            confirm_phases: 3,
        }
    }
}

#[derive(Debug, Clone)]
pub struct RecoveryMeasurement {
    /// Time of the last specification violation after the perturbation
    /// (zero when the arbitrary state happened to be legal).
    pub recovery_time: f64,
    pub violations: Vec<Violation>,
    /// Distinct phases the faults scattered the worker positions into
    /// (Lemma 3.4's `m`).
    pub m_distinct_phases: usize,
    pub phases_completed_after_recovery: u64,
    pub recovered: bool,
}

/// Perturb every position to an arbitrary state and measure how long until
/// the computation satisfies the barrier specification again.
pub fn measure_recovery(exp: &RecoveryExperiment) -> RecoveryMeasurement {
    let dag = exp.topology.build().expect("valid topology");
    let program = SweepBarrier::new(dag, exp.n_phases).with_costs(Time::new(exp.c), Time::new(1.0));
    let mut engine = Engine::new(&program, exp.seed);
    engine.perturb_all();

    let m_distinct_phases = {
        let mut phases: Vec<u32> = (0..program.dag().num_positions())
            .filter(|&p| program.is_worker(p))
            .map(|p| engine.global()[p].ph)
            .collect();
        phases.sort_unstable();
        phases.dedup();
        phases.len()
    };

    // Processes perturbed into `execute` have already "started" as far as
    // the oracle is concerned; prime it so their completions are tracked.
    let mut monitor = SweepOracleMonitor::new(&program, Anchor::Free);
    for pos in 0..program.dag().num_positions() {
        let s = engine.global()[pos];
        if program.is_worker(pos) && s.cp == Cp::Execute {
            monitor.oracle.observe_cp(
                Time::ZERO,
                program.dag().owner(pos),
                s.ph,
                Cp::Ready,
                Cp::Execute,
            );
        }
    }
    // Priming itself may record violations (e.g. two positions forged into
    // different phases); those stem from the perturbation, which is correct.

    let config = EngineConfig {
        seed: exp.seed ^ 0xFA17,
        max_time: Some(Time::new(exp.horizon)),
        ..Default::default()
    };
    let outcome = engine.run(&config, &mut NoFaults, &mut monitor);
    assert_ne!(
        outcome.reason,
        StopReason::Fixpoint,
        "sweep barrier must recover, not deadlock, from arbitrary states"
    );

    let oracle = &monitor.oracle;
    let recovery_time = oracle.last_violation().map_or(0.0, |t| t.as_f64());
    let completed_after = oracle
        .completion_times()
        .iter()
        .filter(|&&t| t.as_f64() >= recovery_time)
        .count() as u64;
    RecoveryMeasurement {
        recovery_time,
        violations: oracle.violations().to_vec(),
        m_distinct_phases,
        phases_completed_after_recovery: completed_after,
        recovered: completed_after >= exp.confirm_phases,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_run_is_clean_and_single_instance() {
        let m = measure_phases(&PhaseExperiment {
            topology: TopologySpec::Tree { n: 8, arity: 2 },
            target_phases: 20,
            c: 0.01,
            f: 0.0,
            ..Default::default()
        });
        assert_eq!(m.phases, 20);
        assert_eq!(m.violations, 0);
        assert_eq!(m.mean_instances, 1.0);
        assert_eq!(m.aborted_instances, 0);
        assert_eq!(m.faults, 0);
        // 1 + 3hc with h=3, c=0.01 → ≈ 1.09; allow pipeline slack.
        assert!(
            (m.mean_phase_time - 1.09).abs() < 0.1,
            "{}",
            m.mean_phase_time
        );
    }

    #[test]
    fn detectable_faults_are_masked_and_cost_reexecutions() {
        let m = measure_phases(&PhaseExperiment {
            topology: TopologySpec::Tree { n: 8, arity: 2 },
            target_phases: 60,
            c: 0.01,
            f: 0.05,
            seed: 42,
            ..Default::default()
        });
        assert_eq!(m.phases, 60);
        assert_eq!(m.violations, 0, "detectable faults must be masked");
        assert!(m.faults > 0, "faults should actually have fired");
        assert!(m.mean_instances >= 1.0);
        assert!(m.mean_phase_time > 1.0);
    }

    #[test]
    fn ring_and_mb_also_mask_detectable_faults() {
        for topology in [
            TopologySpec::Ring { n: 6 },
            TopologySpec::MbRing { n: 6 },
            TopologySpec::TwoRing { a: 3, b: 2 },
            TopologySpec::DoubleTree { n: 7, arity: 2 },
            TopologySpec::Dissemination { n: 6, radix: 2 },
            TopologySpec::Hypercube { n: 8 },
            TopologySpec::Butterfly { n: 4 },
        ] {
            let m = measure_phases(&PhaseExperiment {
                topology,
                target_phases: 25,
                c: 0.005,
                f: 0.03,
                seed: 7,
                ..Default::default()
            });
            assert_eq!(m.phases, 25, "{topology:?}");
            assert_eq!(m.violations, 0, "{topology:?} must mask detectable faults");
        }
    }

    #[test]
    fn intolerant_baseline_time_is_lower() {
        let topology = TopologySpec::Tree { n: 16, arity: 2 };
        let base = measure_intolerant_phase_time(topology, 8, 0.02, 3, 20);
        let tolerant = measure_phases(&PhaseExperiment {
            topology,
            target_phases: 20,
            c: 0.02,
            f: 0.0,
            ..Default::default()
        });
        assert!(
            base < tolerant.mean_phase_time,
            "baseline {base} must beat tolerant {}",
            tolerant.mean_phase_time
        );
    }

    #[test]
    fn recovery_from_arbitrary_states() {
        for seed in 0..8 {
            let m = measure_recovery(&RecoveryExperiment {
                topology: TopologySpec::Tree { n: 16, arity: 2 },
                c: 0.01,
                seed,
                ..Default::default()
            });
            assert!(m.recovered, "seed {seed}: not recovered ({m:?})");
            assert!(
                m.recovery_time < 10.0,
                "seed {seed}: recovery took {}",
                m.recovery_time
            );
        }
    }

    #[test]
    fn recovery_violations_bounded_by_m() {
        // Lemma 4.1.4: at most m phases execute incorrectly.
        for seed in 20..30 {
            let m = measure_recovery(&RecoveryExperiment {
                topology: TopologySpec::Ring { n: 6 },
                n_phases: 16,
                c: 0.01,
                seed,
                ..Default::default()
            });
            let distinct: usize = {
                let mut v: Vec<u32> = m.violations.iter().map(|x| x.phase()).collect();
                v.sort_unstable();
                v.dedup();
                v.len()
            };
            assert!(
                distinct <= m.m_distinct_phases,
                "seed {seed}: {distinct} incorrect phases from m={} perturbation",
                m.m_distinct_phases
            );
        }
    }

    #[test]
    fn topology_spec_process_counts() {
        assert_eq!(TopologySpec::Ring { n: 5 }.num_processes(), 5);
        assert_eq!(TopologySpec::TwoRing { a: 3, b: 2 }.num_processes(), 6);
        assert_eq!(TopologySpec::Tree { n: 32, arity: 2 }.num_processes(), 32);
        assert_eq!(TopologySpec::MbRing { n: 4 }.num_processes(), 4);
        assert_eq!(
            TopologySpec::Dissemination { n: 16, radix: 4 }.num_processes(),
            16
        );
        assert_eq!(TopologySpec::Hypercube { n: 8 }.num_processes(), 8);
        assert_eq!(TopologySpec::Butterfly { n: 16 }.num_processes(), 16);
    }
}
