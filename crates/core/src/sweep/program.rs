//! The sweep program: token circulation (T1/T2 generalized to `RECV`, plus
//! the repair actions T3–T5) with the barrier's `cp`/`ph` updates superposed
//! on token receipt, exactly as §4.1 prescribes.

use crate::cp::Cp;
use crate::sn::Sn;
use crate::sweep::soa::SweepSoa;
use crate::sweep::state::PosState;
use ftbarrier_gcs::{ActionId, DenseProtocol, Pid, Protocol, ReaderSet, SimRng, Time};
use ftbarrier_topology::{CsrDag, Pos, SweepDag};

/// Read-only positional access to the sweep state, so one copy of the
/// guard/statement logic serves both the array-of-structs layout the classic
/// engine uses and the struct-of-arrays layout ([`SweepSoa`]) the sharded
/// engine uses. Implementations must agree: `view.sn(p) == states[p].sn`
/// etc. for the state they present.
pub trait SweepStateView {
    fn sn(&self, pos: Pos) -> Sn;
    fn cp(&self, pos: Pos) -> Cp;
    fn ph(&self, pos: Pos) -> u32;
    fn done(&self, pos: Pos) -> bool;
    fn post(&self, pos: Pos) -> bool;
}

impl SweepStateView for [PosState] {
    #[inline]
    fn sn(&self, pos: Pos) -> Sn {
        self[pos].sn
    }
    #[inline]
    fn cp(&self, pos: Pos) -> Cp {
        self[pos].cp
    }
    #[inline]
    fn ph(&self, pos: Pos) -> u32 {
        self[pos].ph
    }
    #[inline]
    fn done(&self, pos: Pos) -> bool {
        self[pos].done
    }
    #[inline]
    fn post(&self, pos: Pos) -> bool {
        self[pos].post
    }
}

impl SweepStateView for SweepSoa {
    #[inline]
    fn sn(&self, pos: Pos) -> Sn {
        self.sn_at(pos)
    }
    #[inline]
    fn cp(&self, pos: Pos) -> Cp {
        self.cp_at(pos)
    }
    #[inline]
    fn ph(&self, pos: Pos) -> u32 {
        self.ph[pos]
    }
    #[inline]
    fn done(&self, pos: Pos) -> bool {
        self.done_at(pos)
    }
    #[inline]
    fn post(&self, pos: Pos) -> bool {
        self.post_at(pos)
    }
}

/// Token receipt + superposed `cp`/`ph` update (the paper's T1 at the root,
/// T2 elsewhere).
pub const RECV: ActionId = 0;
/// Execute the body of the current phase (unit cost).
pub const WORK: ActionId = 1;
/// Sink repair: `sn = ⊥ → sn := ⊤`.
pub const T3: ActionId = 2;
/// Backward ⊤ wave: `sn = ⊥ ∧ (∀ successors :: sn = ⊤) → sn := ⊤`.
pub const T4: ActionId = 3;
/// Root reset: `sn = ⊤ → sn := 0`.
pub const T5: ActionId = 4;
/// §8 fuzzy extension: execute the *post*-phase work, between entering the
/// barrier (`execute → success`) and leaving it (`ready → execute`).
pub const POSTWORK: ActionId = 5;

/// The refined barrier program over an arbitrary sweep topology.
///
/// ```
/// use ftbarrier_core::sweep::SweepBarrier;
/// use ftbarrier_gcs::{Interleaving, InterleavingConfig, NullMonitor};
/// use ftbarrier_topology::SweepDag;
///
/// // Program RB: the barrier on a 4-process ring, 8 cyclic phases.
/// let rb = SweepBarrier::new(SweepDag::ring(4).unwrap(), 8);
/// let mut exec = Interleaving::new(&rb, InterleavingConfig::default());
/// let steps = exec.run_until(100_000, &mut NullMonitor, |g| g[0].ph == 2);
/// assert!(steps.is_some(), "the root reaches phase 2");
/// ```
#[derive(Debug, Clone)]
pub struct SweepBarrier {
    dag: SweepDag,
    /// Flat adjacency mirror of `dag` — the guards walk this, not the
    /// `Vec<Vec<_>>` form (one indirection per position adds up at N=10⁶).
    csr: CsrDag,
    /// Length of the cyclic phase sequence (the paper's `n`, at least 2).
    pub n_phases: u32,
    /// Sequence number domain size. Defaults to `2·positions + 3`, which
    /// covers both the ring's `K > N` and MB's `L > 2N + 1` requirements.
    pub sn_domain: u32,
    /// Communication latency per hop (the paper's `c`).
    pub comm_cost: Time,
    /// Phase body execution time (the paper's unit).
    pub work_cost: Time,
    /// §8 fuzzy barriers: time of the post-phase work performed inside the
    /// barrier window. Zero disables the extension (the `post` bit becomes
    /// inert).
    pub post_work_cost: Time,
    /// Positions that execute the phase body (exactly one per process; the
    /// rest are relays: §5 local copies, §4.2 up-tree duplicates).
    worker: Vec<bool>,
}

impl SweepBarrier {
    /// Build over a topology with unit work cost and zero latency. Each
    /// process's first position is its worker position (our builders order
    /// positions so this is the real/down position).
    pub fn new(dag: SweepDag, n_phases: u32) -> SweepBarrier {
        assert!(n_phases >= 2, "the paper assumes at least two phases (§3)");
        let mut worker = vec![false; dag.num_positions()];
        for pid in 0..dag.num_processes() {
            worker[dag.positions_of(pid)[0]] = true;
        }
        let sn_domain = 2 * dag.num_positions() as u32 + 3;
        let csr = CsrDag::new(&dag);
        SweepBarrier {
            dag,
            csr,
            n_phases,
            sn_domain,
            comm_cost: Time::ZERO,
            work_cost: Time::new(1.0),
            post_work_cost: Time::ZERO,
            worker,
        }
    }

    /// Set the paper's timing parameters: latency `c` per hop and the phase
    /// time (unit in the paper).
    pub fn with_costs(mut self, comm: Time, work: Time) -> SweepBarrier {
        self.comm_cost = comm;
        self.work_cost = work;
        self
    }

    /// §8: split the phase body into `pre` (required before entering the
    /// barrier) and `post` (performed inside the barrier window,
    /// overlapping other processes' arrivals). `pre + post` should equal
    /// the strict program's `work` for a fair comparison.
    pub fn with_fuzzy_split(mut self, pre: Time, post: Time) -> SweepBarrier {
        self.work_cost = pre;
        self.post_work_cost = post;
        self
    }

    fn fuzzy(&self) -> bool {
        self.post_work_cost > Time::ZERO
    }

    /// Shrink or grow the sequence-number domain (tests use small domains to
    /// exercise wraparound). Must stay above the number of positions.
    pub fn with_sn_domain(self, l: u32) -> SweepBarrier {
        self.try_with_sn_domain(l)
            .expect("sequence number domain must exceed the number of positions")
    }

    /// Like [`SweepBarrier::with_sn_domain`] but returns a typed error
    /// instead of panicking when `L` is at or below the number of positions
    /// (the sweep analogue of the ring's `K > N` precondition).
    pub fn try_with_sn_domain(mut self, l: u32) -> Result<SweepBarrier, crate::sn::DomainError> {
        self.sn_domain = crate::sn::validate_modulus(l, self.dag.num_positions() as u32 + 1)?;
        Ok(self)
    }

    pub fn dag(&self) -> &SweepDag {
        &self.dag
    }

    /// Number of phases `ph` counts modulo.
    pub fn n_phases(&self) -> u32 {
        self.n_phases
    }

    /// The sequence-number modulus `L` (ordinary values are `0..L`).
    pub fn sn_domain(&self) -> u32 {
        self.sn_domain
    }

    /// Does `pos` execute the phase body (as opposed to relaying)?
    pub fn is_worker(&self, pos: Pos) -> bool {
        self.worker[pos]
    }

    /// The worker position of a process.
    pub fn worker_position(&self, pid: Pid) -> Pos {
        self.dag.positions_of(pid)[0]
    }

    /// If all predecessors of `pos` carry the same ordinary sequence number,
    /// return it.
    fn pred_sn<V: SweepStateView + ?Sized>(&self, g: &V, pos: Pos) -> Option<Sn> {
        let preds = self.csr.preds(pos);
        let first = g.sn(preds[0] as Pos);
        if !first.is_valid() {
            return None;
        }
        for &q in &preds[1..] {
            if g.sn(q as Pos) != first {
                return None;
            }
        }
        Some(first)
    }

    /// The sequence number the root adopts on T1: the sinks' common value
    /// when they agree, else — only relevant when the root itself is flagged
    /// and repairing — the value of any ordinary sink.
    fn root_recv_sn<V: SweepStateView + ?Sized>(&self, g: &V, own: Sn) -> Option<Sn> {
        if let Some(v) = self.pred_sn(g, SweepDag::ROOT) {
            if g.sn(SweepDag::ROOT) == v || !own.is_valid() {
                return Some(v);
            }
            return None;
        }
        if !own.is_valid() {
            // Repair: a flagged root re-acquires from any ordinary sink
            // (generalizes the ring's T1, whose single sink makes
            // "agreement" trivial; without this, a ⊥ root above
            // disagreeing sinks would deadlock the tree).
            return self
                .csr
                .sinks()
                .iter()
                .map(|&q| g.sn(q as Pos))
                .find(|sn| sn.is_valid());
        }
        None
    }

    /// A sink whose sequence number is ordinary — under detectable faults
    /// this is exactly a sink whose `ph` is trustworthy (a corrupted sink is
    /// flagged until its own RECV repairs both `sn` and `ph`).
    fn trusted_sink<V: SweepStateView + ?Sized>(&self, g: &V, fallback: Pos) -> Pos {
        self.csr
            .sinks()
            .iter()
            .map(|&q| q as Pos)
            .find(|&q| g.sn(q).is_valid())
            .unwrap_or(fallback)
    }

    /// The control position all predecessors agree on, if they agree.
    fn pred_cp<V: SweepStateView + ?Sized>(&self, g: &V, pos: Pos) -> Option<Cp> {
        let preds = self.csr.preds(pos);
        let first = g.cp(preds[0] as Pos);
        if preds[1..].iter().all(|&q| g.cp(q as Pos) == first) {
            Some(first)
        } else {
            None
        }
    }

    fn pred_ph_agree<V: SweepStateView + ?Sized>(&self, g: &V, pos: Pos) -> bool {
        let preds = self.csr.preds(pos);
        let first = g.ph(preds[0] as Pos);
        preds[1..].iter().all(|&q| g.ph(q as Pos) == first)
    }

    /// Does `pos` currently hold the token (may it execute `RECV`)?
    pub fn has_token(&self, g: &[PosState], pos: Pos) -> bool {
        self.has_token_in(g, pos)
    }

    fn has_token_in<V: SweepStateView + ?Sized>(&self, g: &V, pos: Pos) -> bool {
        if pos == SweepDag::ROOT {
            return self.root_recv_sn(g, g.sn(pos)).is_some();
        }
        // T2's guard: predecessors ordinary and all differing from our own
        // sequence number. (With one predecessor this is the paper's guard
        // verbatim; with several it is the natural aggregation — we move
        // only once every predecessor has moved past us.)
        let preds = self.csr.preds(pos);
        let own = g.sn(pos);
        preds.iter().all(|&q| {
            let sn = g.sn(q as Pos);
            sn.is_valid() && sn != own
        })
    }

    /// RECV is gated until the phase body finishes when the superposed
    /// update would take `execute → success` ("the process executes [the
    /// token action] at its action point", i.e. not mid-phase) — and, in the
    /// fuzzy extension, while post-work is still running (the process is
    /// busy; it neither relays nor leaves the barrier).
    fn recv_blocked_on_work<V: SweepStateView + ?Sized>(&self, g: &V, pos: Pos) -> bool {
        if !self.worker[pos] {
            return false;
        }
        let cp = g.cp(pos);
        if self.fuzzy() && !g.post(pos) && matches!(cp, Cp::Success | Cp::Ready) {
            return true;
        }
        if cp != Cp::Execute || g.done(pos) {
            return false;
        }
        if pos == SweepDag::ROOT {
            // The root's execute → success branch is unconditional.
            true
        } else {
            self.pred_cp(g, pos) == Some(Cp::Success)
        }
    }

    /// The superposed update at the root (the paper's "updating ph.0 and
    /// cp.0 in process 0", with the sinks in the role of process N).
    fn root_update<V: SweepStateView + ?Sized>(&self, g: &V, s: &mut PosState) {
        let sinks = self.csr.sinks();
        let all_sinks = |cp: Cp| sinks.iter().all(|&q| g.cp(q as Pos) == cp);
        // Phase re-learned from a sink with a trustworthy (ordinary) sn.
        let sink_ph = g.ph(self.trusted_sink(g, sinks[0] as Pos));
        let sinks_ph_agree = sinks.iter().all(|&q| g.ph(q as Pos) == sink_ph);
        match s.cp {
            Cp::Ready => {
                if all_sinks(Cp::Ready) && sinks_ph_agree && sink_ph == s.ph {
                    s.cp = Cp::Execute;
                    s.done = false;
                }
                // Otherwise: keep circulating the token unchanged.
            }
            Cp::Execute => {
                // Gated on `done` by `recv_blocked_on_work`.
                s.cp = Cp::Success;
                // Entering the barrier opens the fuzzy window (§8).
                s.post = !self.fuzzy();
            }
            Cp::Success => {
                if all_sinks(Cp::Success) && sinks_ph_agree && sink_ph == s.ph {
                    // Phase executed successfully everywhere: advance.
                    s.ph = (s.ph + 1) % self.n_phases;
                } else {
                    // Someone repeated/erred or phases disagree: re-execute.
                    s.ph = sink_ph;
                }
                s.cp = Cp::Ready;
            }
            Cp::Error | Cp::Repeat => {
                // Detectably corrupted root rejoins at the sinks' phase
                // (Lemma 4.1.2's "copied a different phase number from N").
                s.ph = sink_ph;
                s.cp = Cp::Ready;
            }
        }
    }

    /// The superposed update at a non-root position (the paper's "updating
    /// ph.j and cp.j in process j, j ≠ 0").
    fn nonroot_update<V: SweepStateView + ?Sized>(&self, g: &V, pos: Pos, s: &mut PosState) {
        let pred_cp = self.pred_cp(g, pos);
        let ph_agree = self.pred_ph_agree(g, pos);
        let old_cp = s.cp;
        // "ph.j := ph.(j-1)" — unconditional first line.
        s.ph = g.ph(self.csr.preds(pos)[0] as Pos);
        match (old_cp, pred_cp) {
            (Cp::Ready, Some(Cp::Execute)) if ph_agree => {
                s.cp = Cp::Execute;
                s.done = !self.worker[pos];
            }
            (Cp::Execute, Some(Cp::Success)) if ph_agree => {
                // Gated on `done` for workers by `recv_blocked_on_work`.
                s.cp = Cp::Success;
                if self.worker[pos] {
                    // Entering the barrier opens the fuzzy window (§8).
                    s.post = !self.fuzzy();
                }
            }
            (cp, Some(Cp::Ready)) if cp != Cp::Execute && ph_agree => {
                s.cp = Cp::Ready;
            }
            (cp, agreed) => {
                // "elseif cp.j = error ∨ cp.(j-1) ≠ cp.j → cp.j := repeat",
                // extended to disagreeing predecessors (only possible in
                // multi-predecessor topologies, only after faults).
                if cp == Cp::Error || agreed != Some(cp) || !ph_agree {
                    s.cp = Cp::Repeat;
                }
            }
        }
    }
    /// Guard of `(pos, action)` against any state view — the single source
    /// of truth behind both `Protocol::enabled` and `dense_enabled`.
    fn enabled_in<V: SweepStateView + ?Sized>(&self, g: &V, pos: Pos, action: ActionId) -> bool {
        match action {
            RECV => self.has_token_in(g, pos) && !self.recv_blocked_on_work(g, pos),
            WORK => self.worker[pos] && g.cp(pos) == Cp::Execute && !g.done(pos),
            T3 => self.csr.is_sink(pos) && g.sn(pos) == Sn::Bot,
            T4 => !self.csr.is_sink(pos) && g.sn(pos) == Sn::Bot && self.top_wave_arrived(g, pos),
            T5 => pos == SweepDag::ROOT && g.sn(pos) == Sn::Top,
            POSTWORK => {
                self.fuzzy()
                    && self.worker[pos]
                    && !g.post(pos)
                    && matches!(g.cp(pos), Cp::Success | Cp::Ready)
            }
            _ => false,
        }
    }

    /// T4's wave condition: all successors carry ⊤ — or, generalized closing
    /// of the ⊤ wave, a ⊥ root also accepts the wave from its *sinks* (the
    /// ring's T4 reads the successor, which for the ring's 0 is on the same
    /// path; in a tree the wave otherwise stalls at stale-valid inner nodes).
    fn top_wave_arrived<V: SweepStateView + ?Sized>(&self, g: &V, pos: Pos) -> bool {
        self.csr
            .succs(pos)
            .iter()
            .all(|&q| g.sn(q as Pos) == Sn::Top)
            || (pos == SweepDag::ROOT
                && self.csr.sinks().iter().all(|&q| g.sn(q as Pos) == Sn::Top))
    }

    /// Statement of `(pos, action)` against any state view — the single
    /// source of truth behind both `Protocol::execute` and `dense_execute`.
    fn execute_in<V: SweepStateView + ?Sized>(
        &self,
        g: &V,
        pos: Pos,
        action: ActionId,
    ) -> PosState {
        let mut s = PosState {
            sn: g.sn(pos),
            cp: g.cp(pos),
            ph: g.ph(pos),
            done: g.done(pos),
            post: g.post(pos),
        };
        match action {
            RECV => {
                if pos == SweepDag::ROOT {
                    let v = self
                        .root_recv_sn(g, s.sn)
                        .expect("T1 only enabled with a usable sink value");
                    s.sn = v.next(self.sn_domain);
                    self.root_update(g, &mut s);
                } else {
                    s.sn = g.sn(self.csr.preds(pos)[0] as Pos);
                    self.nonroot_update(g, pos, &mut s);
                }
            }
            WORK => {
                s.done = true;
            }
            T3 | T4 => {
                s.sn = Sn::Top;
            }
            T5 => {
                s.sn = Sn::Val(0);
            }
            POSTWORK => {
                s.post = true;
            }
            _ => unreachable!("sweep program has 6 actions"),
        }
        s
    }
}

impl Protocol for SweepBarrier {
    type State = PosState;

    fn num_processes(&self) -> usize {
        self.dag.num_positions()
    }

    fn num_actions(&self, _pos: Pid) -> usize {
        6
    }

    fn action_name(&self, pos: Pid, action: ActionId) -> &'static str {
        match action {
            RECV => {
                if pos == SweepDag::ROOT {
                    "T1"
                } else {
                    "T2"
                }
            }
            WORK => "WORK",
            T3 => "T3",
            T4 => "T4",
            T5 => "T5",
            POSTWORK => "POSTWORK",
            _ => unreachable!("sweep program has 6 actions"),
        }
    }

    fn enabled(&self, g: &[PosState], pos: Pid, action: ActionId) -> bool {
        self.enabled_in(g, pos, action)
    }

    fn execute(&self, g: &[PosState], pos: Pid, action: ActionId, _rng: &mut SimRng) -> PosState {
        self.execute_in(g, pos, action)
    }

    fn cost(&self, _pos: Pid, action: ActionId) -> Time {
        match action {
            WORK => self.work_cost,
            POSTWORK => self.post_work_cost,
            _ => self.comm_cost,
        }
    }

    fn initial_state(&self) -> Vec<PosState> {
        vec![PosState::start(); self.dag.num_positions()]
    }

    fn arbitrary_state(&self, _pos: Pid, rng: &mut SimRng) -> PosState {
        PosState {
            sn: Sn::arbitrary(self.sn_domain, rng),
            cp: *rng.choose(&Cp::RB_DOMAIN),
            ph: rng.range_u64(0, self.n_phases as u64) as u32,
            done: rng.chance(0.5),
            post: !self.fuzzy() || rng.chance(0.5),
        }
    }

    fn readers_of(&self, pos: Pid) -> ReaderSet {
        // Who reads pos's state in a *guard*: RECV at p reads preds(p)
        // (sn and cp), so every successor of pos reads it; T4 at p reads
        // succs(p) (sn), so every predecessor of pos reads it; everything
        // else (WORK, T3, T5, POSTWORK) is local. The dag's succs() of a
        // sink already includes the root, covering the root's T1/T4 guards
        // that read every sink.
        let mut readers = vec![pos];
        readers.extend_from_slice(self.dag.preds(pos));
        readers.extend_from_slice(self.dag.succs(pos));
        readers.sort_unstable();
        readers.dedup();
        ReaderSet::These(readers)
    }
}

impl DenseProtocol for SweepBarrier {
    type Dense = SweepSoa;

    fn dense_enabled(&self, dense: &SweepSoa, pos: Pid, action: ActionId) -> bool {
        self.enabled_in(dense, pos, action)
    }

    fn dense_execute(
        &self,
        dense: &SweepSoa,
        pos: Pid,
        action: ActionId,
        _rng: &mut SimRng,
    ) -> PosState {
        self.execute_in(dense, pos, action)
    }

    /// Fused single pass: load `pos`'s lanes once and gate each guard on the
    /// cheap local conditions before touching the neighborhood, instead of
    /// re-reading the state for each of the six actions.
    fn dense_enabled_actions(&self, dense: &SweepSoa, pos: Pid, out: &mut Vec<ActionId>) {
        out.clear();
        let sn = dense.sn_at(pos);
        let cp = dense.cp_at(pos);
        let done = dense.done_at(pos);
        let post = dense.post_at(pos);
        let worker = self.worker[pos];
        let is_root = pos == SweepDag::ROOT;

        if self.has_token_in(dense, pos) && !self.recv_blocked_on_work(dense, pos) {
            out.push(RECV);
        }
        if worker && cp == Cp::Execute && !done {
            out.push(WORK);
        }
        if sn == Sn::Bot {
            if self.csr.is_sink(pos) {
                out.push(T3);
            } else if self.top_wave_arrived(dense, pos) {
                out.push(T4);
            }
        }
        if is_root && sn == Sn::Top {
            out.push(T5);
        }
        if self.fuzzy() && worker && !post && matches!(cp, Cp::Success | Cp::Ready) {
            out.push(POSTWORK);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftbarrier_gcs::{Interleaving, InterleavingConfig, NullMonitor};

    fn ring_barrier(n: usize) -> SweepBarrier {
        SweepBarrier::new(SweepDag::ring(n).unwrap(), 4)
    }

    #[test]
    fn initial_token_at_root() {
        let rb = ring_barrier(4);
        let g = rb.initial_state();
        assert!(rb.has_token(&g, 0));
        for pos in 1..4 {
            assert!(!rb.has_token(&g, pos));
        }
        assert!(rb.enabled(&g, 0, RECV));
    }

    #[test]
    fn root_first_recv_starts_execute_sweep() {
        let rb = ring_barrier(3);
        let mut rng = SimRng::seed_from_u64(0);
        let g = rb.initial_state();
        let s = rb.execute(&g, 0, RECV, &mut rng);
        assert_eq!(s.cp, Cp::Execute);
        assert_eq!(s.sn, Sn::Val(1));
        assert!(!s.done, "entering execute resets the work bit");
    }

    #[test]
    fn execute_sweep_propagates() {
        let rb = ring_barrier(3);
        let mut rng = SimRng::seed_from_u64(0);
        let mut g = rb.initial_state();
        g[0] = rb.execute(&g, 0, RECV, &mut rng);
        assert!(rb.has_token(&g, 1));
        let s1 = rb.execute(&g, 1, RECV, &mut rng);
        assert_eq!(s1.cp, Cp::Execute);
        assert_eq!(s1.sn, Sn::Val(1));
    }

    #[test]
    fn success_transition_waits_for_work() {
        let rb = ring_barrier(3);
        let mut g = rb.initial_state();
        // Mid-success-sweep: root succeeded, position 1 still computing.
        g[0] = PosState {
            sn: Sn::Val(2),
            cp: Cp::Success,
            ph: 0,
            done: true,
            post: true,
        };
        g[1] = PosState {
            sn: Sn::Val(1),
            cp: Cp::Execute,
            ph: 0,
            done: false,
            post: true,
        };
        g[2] = PosState {
            sn: Sn::Val(1),
            cp: Cp::Execute,
            ph: 0,
            done: false,
            post: true,
        };
        // Position 1 has the token but must WORK first.
        assert!(rb.has_token(&g, 1));
        assert!(!rb.enabled(&g, 1, RECV));
        assert!(rb.enabled(&g, 1, WORK));
        g[1].done = true;
        assert!(rb.enabled(&g, 1, RECV));
    }

    #[test]
    fn corrupted_position_flags_repeat_on_token_receipt() {
        let rb = ring_barrier(3);
        let mut rng = SimRng::seed_from_u64(0);
        let mut g = rb.initial_state();
        g[0] = PosState {
            sn: Sn::Val(1),
            cp: Cp::Execute,
            ph: 0,
            done: false,
            post: true,
        };
        g[1] = PosState {
            sn: Sn::Bot,
            cp: Cp::Error,
            ph: 3,
            done: false,
            post: true,
        };
        // Token present at 1 (pred ordinary and differing from ⊥).
        assert!(rb.enabled(&g, 1, RECV));
        let s = rb.execute(&g, 1, RECV, &mut rng);
        assert_eq!(s.cp, Cp::Repeat, "error turns to repeat on receipt");
        assert_eq!(s.ph, 0, "phase is re-learned from the predecessor");
        assert_eq!(s.sn, Sn::Val(1));
    }

    #[test]
    fn repeat_propagates_with_token() {
        let rb = ring_barrier(3);
        let mut rng = SimRng::seed_from_u64(0);
        let mut g = rb.initial_state();
        g[1] = PosState {
            sn: Sn::Val(1),
            cp: Cp::Repeat,
            ph: 0,
            done: false,
            post: true,
        };
        g[2] = PosState {
            sn: Sn::Val(0),
            cp: Cp::Execute,
            ph: 0,
            done: true,
            post: true,
        };
        let s = rb.execute(&g, 2, RECV, &mut rng);
        assert_eq!(s.cp, Cp::Repeat);
    }

    #[test]
    fn root_reexecutes_phase_on_repeat_verdict() {
        let rb = ring_barrier(3);
        let mut rng = SimRng::seed_from_u64(0);
        let mut g = rb.initial_state();
        g[0] = PosState {
            sn: Sn::Val(1),
            cp: Cp::Success,
            ph: 2,
            done: true,
            post: true,
        };
        g[1] = PosState {
            sn: Sn::Val(1),
            cp: Cp::Success,
            ph: 2,
            done: true,
            post: true,
        };
        g[2] = PosState {
            sn: Sn::Val(1),
            cp: Cp::Repeat,
            ph: 2,
            done: false,
            post: true,
        };
        let s = rb.execute(&g, 0, RECV, &mut rng);
        assert_eq!(s.cp, Cp::Ready);
        assert_eq!(s.ph, 2, "repeat verdict: do not advance the phase");
    }

    #[test]
    fn root_advances_phase_on_clean_sweep() {
        let rb = ring_barrier(3);
        let mut rng = SimRng::seed_from_u64(0);
        let g = vec![
            PosState {
                sn: Sn::Val(1),
                cp: Cp::Success,
                ph: 2,
                done: true,
                post: true
            };
            3
        ];
        let s = rb.execute(&g, 0, RECV, &mut rng);
        assert_eq!(s.cp, Cp::Ready);
        assert_eq!(s.ph, 3);
    }

    #[test]
    fn fault_free_interleaved_run_cycles_phases() {
        let rb = ring_barrier(4);
        for seed in 0..10 {
            let mut exec = Interleaving::new(
                &rb,
                InterleavingConfig {
                    seed,
                    ..Default::default()
                },
            );
            let mut m = NullMonitor;
            // Run until phase 2 is visible at the root.
            let steps = exec.run_until(100_000, &mut m, |g| g[0].ph == 2);
            assert!(steps.is_some(), "seed {seed}: no progress to phase 2");
            // T3/T4/T5 never fire without faults.
            assert_eq!(exec.stats().count_of("T3"), 0);
            assert_eq!(exec.stats().count_of("T4"), 0);
            assert_eq!(exec.stats().count_of("T5"), 0);
        }
    }

    #[test]
    fn tree_barrier_also_cycles() {
        let tb = SweepBarrier::new(SweepDag::tree(8, 2).unwrap(), 4);
        let mut exec = Interleaving::new(&tb, InterleavingConfig::default());
        let mut m = NullMonitor;
        let steps = exec.run_until(200_000, &mut m, |g| g[0].ph == 3);
        assert!(steps.is_some(), "tree barrier made no progress");
    }

    #[test]
    fn double_tree_relays_do_not_work() {
        let dt = SweepBarrier::new(SweepDag::double_tree(7, 2).unwrap(), 4);
        // Process 1's worker position is its down position (1); its up
        // position is a relay.
        assert!(dt.is_worker(1));
        assert_eq!(dt.worker_position(1), 1);
        let relays: usize = (0..dt.dag().num_positions())
            .filter(|&p| !dt.is_worker(p))
            .count();
        assert_eq!(relays, 6, "7-process double tree has 6 relay positions");
        // Relays never enable WORK.
        let mut g = dt.initial_state();
        for s in g.iter_mut() {
            s.cp = Cp::Execute;
            s.done = false;
        }
        for pos in 0..g.len() {
            assert_eq!(dt.enabled(&g, pos, WORK), dt.is_worker(pos));
        }
    }

    #[test]
    fn relay_enters_execute_with_done_set() {
        let dt = SweepBarrier::new(SweepDag::double_tree(3, 2).unwrap(), 4);
        // positions: 0=root, 1,2=down, 3,4=up relays (preds: up(1)=3 <- 1).
        let mut rng = SimRng::seed_from_u64(0);
        let mut g = dt.initial_state();
        g[1] = PosState {
            sn: Sn::Val(1),
            cp: Cp::Execute,
            ph: 0,
            done: false,
            post: true,
        };
        // Relay 3 (up of process 1) receives the token.
        assert!(dt.enabled(&g, 3, RECV));
        let s = dt.execute(&g, 3, RECV, &mut rng);
        assert_eq!(s.cp, Cp::Execute);
        assert!(
            s.done,
            "relays carry done=true so they never gate the sweep"
        );
    }

    #[test]
    fn t3_t4_t5_repair_chain() {
        let rb = ring_barrier(3);
        let mut rng = SimRng::seed_from_u64(0);
        let mut g = vec![
            PosState {
                sn: Sn::Bot,
                cp: Cp::Error,
                ph: 0,
                done: false,
                post: true
            };
            3
        ];
        // T3 at the sink (position 2).
        assert!(rb.enabled(&g, 2, T3));
        assert!(!rb.enabled(&g, 1, T3));
        g[2] = rb.execute(&g, 2, T3, &mut rng);
        assert_eq!(g[2].sn, Sn::Top);
        // T4 propagates backward.
        assert!(rb.enabled(&g, 1, T4));
        g[1] = rb.execute(&g, 1, T4, &mut rng);
        assert!(rb.enabled(&g, 0, T4));
        g[0] = rb.execute(&g, 0, T4, &mut rng);
        // T5 resets the root.
        assert!(rb.enabled(&g, 0, T5));
        g[0] = rb.execute(&g, 0, T5, &mut rng);
        assert_eq!(g[0].sn, Sn::Val(0));
        // The RECV wave now repairs the rest.
        assert!(rb.enabled(&g, 1, RECV));
    }

    #[test]
    fn sn_domain_default_satisfies_both_bounds() {
        let rb = ring_barrier(5);
        // K > N and L > 2N+1.
        assert!(rb.sn_domain > 2 * 5 + 1);
    }

    #[test]
    #[should_panic]
    fn sn_domain_must_exceed_positions() {
        let _ = ring_barrier(5).with_sn_domain(5);
    }
}
