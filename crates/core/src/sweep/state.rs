//! Per-position state of the sweep program.

use crate::cp::Cp;
use crate::sn::Sn;

/// The variables of one sweep position: the token ring's sequence number,
/// the barrier's control position and phase, the explicit "phase body
/// executed" bit, and — for the §8 fuzzy extension — the "post-phase work
/// executed" bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PosState {
    pub sn: Sn,
    pub cp: Cp,
    /// Phase number, in `0..n_phases` (modulo arithmetic).
    pub ph: u32,
    /// Whether the body of the current phase instance has been executed
    /// (only meaningful at worker positions while `cp = execute`).
    pub done: bool,
    /// Fuzzy barriers (§8): whether the *post*-phase work — the work a
    /// process may perform between entering the barrier (`execute →
    /// success`) and leaving it (`ready → execute`) — has been executed.
    /// Inert (always `true`) when the program has no post work.
    pub post: bool,
}

impl PosState {
    /// The start-state value: token ring at rest, ready to execute phase 0
    /// ("initially, phase.(n-1) has executed successfully").
    pub fn start() -> PosState {
        PosState {
            sn: Sn::Val(0),
            cp: Cp::Ready,
            ph: 0,
            done: true,
            post: true,
        }
    }
}

impl std::fmt::Display for PosState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "(sn={}, cp={}, ph={}{})",
            self.sn,
            self.cp,
            self.ph,
            if self.done { ", done" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn start_state() {
        let s = PosState::start();
        assert_eq!(s.sn, Sn::Val(0));
        assert_eq!(s.cp, Cp::Ready);
        assert_eq!(s.ph, 0);
        assert!(s.done);
    }

    #[test]
    fn display_is_compact() {
        let s = PosState::start();
        assert_eq!(s.to_string(), "(sn=0, cp=ready, ph=0, done)");
    }
}
