//! The refined barrier programs (§4–§5) as one generalized *sweep* program.
//!
//! §4.1 superposes the barrier's `cp`/`ph` updates on a multitolerant token
//! ring; §4.2 parallelizes the ring into two rings and trees by "repetitively
//! using Lemma 4.2.1"; §5 splits each process into its real variables and
//! local copies of its neighbor's, observing that the result "is equivalent
//! to [the ring program] where the ring consists of 2(N+1) processes".
//!
//! All of these are the same program over different [`SweepDag`]s, with some
//! positions doing the phase work and others merely relaying (the §5 local
//! copies, the §4.2 up-tree duplicates):
//!
//! * ring ([`SweepDag::ring`]) → program **RB**;
//! * two rings ([`SweepDag::two_ring`]) → program **RB′**;
//! * tree with leaves linked to the root ([`SweepDag::tree`]) → Fig 2(c);
//! * double tree ([`SweepDag::double_tree`]) → Fig 2(d);
//! * alternating real/copy ring ([`mb_ring`]) → program **MB**.
//!
//! [`SweepDag`]: ftbarrier_topology::SweepDag
//! [`SweepDag::ring`]: ftbarrier_topology::SweepDag::ring
//! [`SweepDag::two_ring`]: ftbarrier_topology::SweepDag::two_ring
//! [`SweepDag::tree`]: ftbarrier_topology::SweepDag::tree
//! [`SweepDag::double_tree`]: ftbarrier_topology::SweepDag::double_tree

mod faults;
mod mb;
mod program;
mod soa;
mod state;

pub use faults::{
    pos_in_domain, ProcessFaults, SweepByzantineFault, SweepDetectableFault, SweepUndetectableFault,
};
pub use mb::mb_ring;
pub use program::{SweepBarrier, SweepStateView, POSTWORK, RECV, T3, T4, T5, WORK};
pub use soa::SweepSoa;
pub use state::PosState;
