//! Fault actions and the process-level fault environment for the sweep
//! program (§4.1's fault representation).

use crate::cp::Cp;
use crate::sn::Sn;
use crate::sweep::program::SweepBarrier;
use crate::sweep::state::PosState;
use ftbarrier_gcs::{
    rate_for_frequency, FaultAction, FaultHit, FaultKind, FaultPlan, Pid, SimRng, Time,
};

/// The detectable fault of §4.1: `true → ph.j, cp.j, sn.j := ?, error, ⊥`
/// (§5 additionally flags the local copies, which are separate positions
/// here and get the same treatment).
#[derive(Debug, Clone, Copy)]
pub struct SweepDetectableFault {
    pub n_phases: u32,
}

impl FaultAction<PosState> for SweepDetectableFault {
    fn kind(&self) -> FaultKind {
        FaultKind::Detectable
    }

    fn apply(&self, _pid: Pid, s: &mut PosState, rng: &mut SimRng) {
        s.ph = rng.range_u64(0, self.n_phases as u64) as u32;
        s.cp = Cp::Error;
        s.sn = Sn::Bot;
        s.done = false;
        s.post = false;
    }
}

/// The undetectable fault: every variable gets an arbitrary domain value.
#[derive(Debug, Clone, Copy)]
pub struct SweepUndetectableFault {
    pub n_phases: u32,
    pub sn_domain: u32,
}

impl FaultAction<PosState> for SweepUndetectableFault {
    fn kind(&self) -> FaultKind {
        FaultKind::Undetectable
    }

    fn apply(&self, _pid: Pid, s: &mut PosState, rng: &mut SimRng) {
        s.ph = rng.range_u64(0, self.n_phases as u64) as u32;
        s.cp = *rng.choose(&Cp::RB_DOMAIN);
        s.sn = Sn::arbitrary(self.sn_domain, rng);
        s.done = rng.chance(0.5);
        s.post = rng.chance(0.5);
    }
}

/// A Byzantine forgery *beyond* the in-domain scramble class: every variable
/// is written a value **outside** its domain (`sn ≥ L` as a forged ordinary
/// value, `ph ≥ n_phases`). Such a write is never produced by the program or
/// by §2's fault classes, so it is *evidence* — any peer (or the recovery
/// authority) that inspects the state can convict the writer, which is what
/// lets detectable Byzantine behavior be quarantined by splice (§7's `good`
/// bit withdrawn) instead of wedging the ring.
#[derive(Debug, Clone, Copy)]
pub struct SweepByzantineFault {
    pub n_phases: u32,
    pub sn_domain: u32,
}

impl FaultAction<PosState> for SweepByzantineFault {
    fn kind(&self) -> FaultKind {
        // No self-flag is raised (`cp` is *not* set to `error`): the writer
        // does not announce the fault. Detection is by inspection.
        FaultKind::Undetectable
    }

    fn apply(&self, _pid: Pid, s: &mut PosState, rng: &mut SimRng) {
        // Forged "ordinary" sequence number strictly outside {0..L-1}.
        s.sn = Sn::Val(
            self.sn_domain
                .saturating_add(rng.range_u64(0, 1 << 16) as u32),
        );
        // Phase counter outside {0..n_phases-1} (bounded, so downstream
        // arithmetic like `(ph + 1) % n_phases` cannot overflow).
        s.ph = self.n_phases + rng.range_u64(0, self.n_phases as u64) as u32;
        s.cp = *rng.choose(&Cp::RB_DOMAIN);
        s.done = rng.chance(0.5);
        s.post = rng.chance(0.5);
    }
}

/// Is this state inside the sweep program's variable domains? `⊥`/`⊤` are
/// legitimate flag values (detectable faults), so they are in-domain; a
/// forged ordinary `sn ≥ L` or a `ph ≥ n_phases` is not — it is Byzantine
/// evidence ([`SweepByzantineFault`] is exactly the writer of such values).
pub fn pos_in_domain(s: &PosState, n_phases: u32, sn_domain: u32) -> bool {
    let sn_ok = match s.sn {
        Sn::Bot | Sn::Top => true,
        Sn::Val(v) => v < sn_domain,
    };
    sn_ok && s.ph < n_phases
}

/// Poisson fault arrivals that strike a uniformly random *process* and
/// perturb **all of its positions** (a fault hits the process, which owns
/// its real variables *and* its local copies of neighbors' variables, §5).
///
/// The rate reproduces the paper's survival function: `λ = -ln(1-f)` gives
/// `P(no fault during a duration-d phase) = (1-f)^d`.
pub struct ProcessFaults<A> {
    rate: f64,
    action: A,
    /// positions_of\[pid\] from the program's topology; the first entry is
    /// the worker position, which is reported as the hit.
    positions_of: Vec<Vec<usize>>,
    next: Option<Time>,
}

impl<A> ProcessFaults<A> {
    pub fn new(program: &SweepBarrier, frequency: f64, action: A) -> ProcessFaults<A> {
        let dag = program.dag();
        let positions_of = (0..dag.num_processes())
            .map(|pid| dag.positions_of(pid).to_vec())
            .collect();
        ProcessFaults {
            rate: rate_for_frequency(frequency),
            action,
            positions_of,
            next: None,
        }
    }
}

impl<A: FaultAction<PosState>> FaultPlan<PosState> for ProcessFaults<A> {
    fn peek(&mut self, now: Time, rng: &mut SimRng) -> Option<Time> {
        if self.rate == 0.0 {
            return None;
        }
        if self.next.is_none() {
            let dt = rng.exponential(self.rate);
            if !dt.is_finite() {
                return None;
            }
            self.next = Some(now + Time::new(dt));
        }
        self.next
    }

    fn fire(
        &mut self,
        _at: Time,
        global: &mut [PosState],
        rng: &mut SimRng,
        touched: &mut Vec<Pid>,
    ) -> FaultHit<PosState> {
        let victim = rng.below(self.positions_of.len());
        let old = global[self.positions_of[victim][0]];
        for &pos in &self.positions_of[victim] {
            self.action.apply(victim, &mut global[pos], rng);
            touched.push(pos);
        }
        self.next = None;
        FaultHit {
            pid: self.positions_of[victim][0],
            kind: self.action.kind(),
            old,
        }
    }
}

// Dense counterpart with identical RNG draw order (victim draw, then the
// action's draws per position ascending), so a dense run's fault schedule
// matches the classic engine's draw for draw.
impl<D, A> ftbarrier_gcs::DenseFaultPlan<D> for ProcessFaults<A>
where
    D: ftbarrier_gcs::DenseState<Elem = PosState>,
    A: FaultAction<PosState>,
{
    fn peek(&mut self, now: Time, rng: &mut SimRng) -> Option<Time> {
        if self.rate == 0.0 {
            return None;
        }
        if self.next.is_none() {
            let dt = rng.exponential(self.rate);
            if !dt.is_finite() {
                return None;
            }
            self.next = Some(now + Time::new(dt));
        }
        self.next
    }

    fn fire(
        &mut self,
        _at: Time,
        dense: &mut D,
        rng: &mut SimRng,
        touched: &mut Vec<Pid>,
    ) -> FaultHit<PosState> {
        let victim = rng.below(self.positions_of.len());
        let old = dense.get(self.positions_of[victim][0]);
        for &pos in &self.positions_of[victim] {
            let mut s = dense.get(pos);
            self.action.apply(victim, &mut s, rng);
            dense.set(pos, s);
            touched.push(pos);
        }
        self.next = None;
        FaultHit {
            pid: self.positions_of[victim][0],
            kind: self.action.kind(),
            old,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftbarrier_gcs::Protocol;
    use ftbarrier_topology::SweepDag;

    #[test]
    fn detectable_fault_flags_everything() {
        let f = SweepDetectableFault { n_phases: 4 };
        let mut rng = SimRng::seed_from_u64(0);
        let mut s = PosState::start();
        f.apply(0, &mut s, &mut rng);
        assert_eq!(s.sn, Sn::Bot);
        assert_eq!(s.cp, Cp::Error);
        assert!(!s.done);
        assert!(s.ph < 4);
    }

    #[test]
    fn undetectable_fault_spans_domain() {
        let f = SweepUndetectableFault {
            n_phases: 4,
            sn_domain: 6,
        };
        let mut rng = SimRng::seed_from_u64(1);
        let mut saw_repeat = false;
        let mut saw_flag_sn = false;
        for _ in 0..500 {
            let mut s = PosState::start();
            f.apply(0, &mut s, &mut rng);
            assert!(Cp::RB_DOMAIN.contains(&s.cp));
            assert!(s.ph < 4);
            saw_repeat |= s.cp == Cp::Repeat;
            saw_flag_sn |= !s.sn.is_valid();
        }
        assert!(saw_repeat && saw_flag_sn);
    }

    #[test]
    fn process_faults_hit_all_positions_of_victim() {
        // Double tree: processes own two positions each (but the root).
        let program = SweepBarrier::new(SweepDag::double_tree(3, 2).unwrap(), 4);
        let mut plan = ProcessFaults::new(&program, 0.5, SweepDetectableFault { n_phases: 4 });
        let mut rng = SimRng::seed_from_u64(7);
        let mut found_multi = false;
        for _ in 0..20 {
            let mut g = program.initial_state();
            let at = plan.peek(Time::ZERO, &mut rng).unwrap();
            let mut touched = Vec::new();
            let hit = plan.fire(at, &mut g, &mut rng, &mut touched);
            let corrupted: Vec<usize> = (0..g.len()).filter(|&p| g[p].sn == Sn::Bot).collect();
            let victim = program.dag().owner(hit.pid);
            assert_eq!(corrupted, program.dag().positions_of(victim));
            assert_eq!(touched, program.dag().positions_of(victim));
            if corrupted.len() == 2 {
                found_multi = true;
            }
        }
        assert!(found_multi, "non-root victims must corrupt both positions");
    }

    #[test]
    fn byzantine_fault_writes_out_of_domain_evidence() {
        let f = SweepByzantineFault {
            n_phases: 4,
            sn_domain: 11,
        };
        let mut rng = SimRng::seed_from_u64(2);
        for _ in 0..200 {
            let mut s = PosState::start();
            assert!(pos_in_domain(&s, 4, 11));
            f.apply(0, &mut s, &mut rng);
            assert!(!pos_in_domain(&s, 4, 11), "forgery must be evidence: {s}");
            let Sn::Val(v) = s.sn else {
                panic!("forgery writes an ordinary-looking sn")
            };
            assert!(v >= 11);
            assert!(s.ph >= 4 && s.ph < 8);
        }
    }

    #[test]
    fn in_domain_accepts_flags_and_rejects_forgeries() {
        let mut s = PosState::start();
        s.sn = Sn::Bot;
        assert!(pos_in_domain(&s, 4, 11), "⊥ is a legitimate flag value");
        s.sn = Sn::Top;
        assert!(pos_in_domain(&s, 4, 11), "⊤ is a legitimate flag value");
        s.sn = Sn::Val(10);
        assert!(pos_in_domain(&s, 4, 11));
        s.sn = Sn::Val(11);
        assert!(!pos_in_domain(&s, 4, 11));
        s.sn = Sn::Val(0);
        s.ph = 4;
        assert!(!pos_in_domain(&s, 4, 11));
    }

    #[test]
    fn zero_frequency_is_silent() {
        let program = SweepBarrier::new(SweepDag::ring(3).unwrap(), 4);
        let mut plan = ProcessFaults::new(&program, 0.0, SweepDetectableFault { n_phases: 4 });
        let mut rng = SimRng::seed_from_u64(0);
        assert_eq!(plan.peek(Time::ZERO, &mut rng), None);
    }
}
