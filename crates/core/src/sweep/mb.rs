//! Program MB (§5): the message-passing refinement, structurally.
//!
//! §5 splits each process `j` into its real variables and a local copy of
//! process `j-1`'s variables, updated only when `sn.(j-1)` is ordinary, with
//! the same statement as the superposed T2 — and proves that "the
//! computations of MB are equivalent to the computations of [RB] where the
//! ring consists of 2(N+1) processes".
//!
//! We realize that equivalence directly: [`mb_ring`] builds the
//! 2(N+1)-position ring in which positions `0..n` are the processes' real
//! variables and positions `n..2n` are the local copies (`n + j` = the copy
//! of `j`'s variables held at process `j+1`). Copies are owned by the
//! *copying* process, so every RECV reads exactly one remote position — the
//! physical message — or local state. The copy positions are relays: they
//! carry no phase body. The default sequence-number domain of
//! [`SweepBarrier`](crate::sweep::SweepBarrier) (`2·positions + 3`) covers
//! §5's `L > 2N + 1` requirement.

use ftbarrier_topology::{SweepDag, TopologyError};

/// Build the MB topology for `n` processes: the sweep ring
/// `real_0 → copy_0@1 → real_1 → copy_1@2 → … → real_{n-1} → copy_{n-1}@0 →
/// real_0`, where `real_j` is position `j` (owned by `j`, worker) and
/// `copy_j` is position `n + j` (the copy of `j`'s state, owned by `j+1`,
/// relay).
pub fn mb_ring(n: usize) -> Result<SweepDag, TopologyError> {
    if n < 2 {
        return Err(TopologyError::TooSmall);
    }
    let positions = 2 * n;
    let mut owner = vec![0usize; positions];
    let mut preds = vec![Vec::new(); positions];
    for j in 0..n {
        owner[j] = j; // real variables of j
        owner[n + j] = (j + 1) % n; // copy of j's variables, held at j+1
                                    // j's real position reads j's local copy of j-1.
        preds[j] = vec![n + (j + n - 1) % n];
        // The copy of j (held at j+1) reads j's real variables.
        preds[n + j] = vec![j];
    }
    SweepDag::from_parts(owner, preds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::SweepBarrier;

    #[test]
    fn mb_is_a_2n_ring() {
        let dag = mb_ring(4).unwrap();
        assert_eq!(dag.num_positions(), 8);
        assert_eq!(dag.num_processes(), 4);
        assert_eq!(
            dag.critical_path(),
            8,
            "one circulation visits 2(N+1) positions"
        );
        // Each process owns its real position and the copy of its
        // predecessor's state.
        assert_eq!(dag.positions_of(0), &[0, 7]); // real_0, copy_3
        assert_eq!(dag.positions_of(1), &[1, 4]); // real_1, copy_0
        assert_eq!(dag.positions_of(2), &[2, 5]);
        assert_eq!(dag.positions_of(3), &[3, 6]);
    }

    #[test]
    fn every_read_is_single_remote_or_local() {
        // §5's granularity restriction: a position's predecessor is owned
        // either by the same process (local read) or by exactly one other
        // process (one message).
        let n = 5;
        let dag = mb_ring(n).unwrap();
        for pos in 0..dag.num_positions() {
            assert_eq!(dag.preds(pos).len(), 1);
        }
        for j in 0..n {
            // Real positions read a *local* copy...
            let pred = dag.preds(j)[0];
            assert_eq!(dag.owner(pred), j, "real_{j} must read its own copy");
            // ...and copy positions read exactly one remote position.
            let copy = n + j;
            assert_eq!(dag.preds(copy), &[j]);
            assert_eq!(dag.owner(copy), (j + 1) % n);
        }
    }

    #[test]
    fn worker_positions_are_the_real_ones() {
        let n = 3;
        let program = SweepBarrier::new(mb_ring(n).unwrap(), 4);
        for j in 0..n {
            assert!(program.is_worker(j), "real_{j} works");
            assert!(!program.is_worker(n + j), "copies are relays");
            assert_eq!(program.worker_position(j), j);
        }
    }

    #[test]
    fn sn_domain_satisfies_l_bound() {
        // L > 2N+1 where the process count is N+1 = 6.
        let program = SweepBarrier::new(mb_ring(6).unwrap(), 4);
        assert!(program.sn_domain > 2 * 6 + 1);
    }

    #[test]
    fn rejects_single_process() {
        assert!(mb_ring(1).is_err());
    }
}
