//! Struct-of-arrays encoding of the sweep program's global state.
//!
//! `Vec<PosState>` interleaves five small fields per position, so a guard
//! sweep at N=10⁵–10⁶ loads mostly padding. [`SweepSoa`] splits the state
//! into four parallel flat arrays — `sn: Vec<u64>`, `cp: Vec<u8>`,
//! `ph: Vec<u32>`, `flags: Vec<u8>` — so the token predicate touches only
//! the `sn` lane and the barrier updates only the lanes they read. The
//! encoding round-trips exactly (`get(from_states(v), p) == v[p]`), which
//! the differential tests against the array-of-structs engine depend on.

use crate::cp::Cp;
use crate::sn::Sn;
use crate::sweep::state::PosState;
use ftbarrier_gcs::{DenseState, Pid};

/// `sn` lane encoding: ordinary values are themselves (a forged `Val` can
/// span all of u32, so the flags live above that range in u64).
const SN_BOT: u64 = u64::MAX;
const SN_TOP: u64 = u64::MAX - 1;

#[inline]
pub(crate) fn sn_to_u64(sn: Sn) -> u64 {
    match sn {
        Sn::Bot => SN_BOT,
        Sn::Top => SN_TOP,
        Sn::Val(v) => v as u64,
    }
}

#[inline]
pub(crate) fn sn_from_u64(raw: u64) -> Sn {
    match raw {
        SN_BOT => Sn::Bot,
        SN_TOP => Sn::Top,
        v => Sn::Val(v as u32),
    }
}

#[inline]
pub(crate) fn cp_to_u8(cp: Cp) -> u8 {
    match cp {
        Cp::Ready => 0,
        Cp::Execute => 1,
        Cp::Success => 2,
        Cp::Error => 3,
        Cp::Repeat => 4,
    }
}

#[inline]
pub(crate) fn cp_from_u8(raw: u8) -> Cp {
    match raw {
        0 => Cp::Ready,
        1 => Cp::Execute,
        2 => Cp::Success,
        3 => Cp::Error,
        4 => Cp::Repeat,
        _ => unreachable!("cp lane holds only encoded Cp values"),
    }
}

const FLAG_DONE: u8 = 1;
const FLAG_POST: u8 = 2;

/// The sweep program's global state as parallel flat arrays.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSoa {
    /// Sequence numbers; `u64::MAX` is ⊥, `u64::MAX - 1` is ⊤.
    pub sn: Vec<u64>,
    /// Control positions, encoded `ready=0, execute=1, success=2, error=3,
    /// repeat=4`.
    pub cp: Vec<u8>,
    /// Phase numbers.
    pub ph: Vec<u32>,
    /// Bit 0: `done`; bit 1: `post`.
    pub flags: Vec<u8>,
}

impl SweepSoa {
    #[inline]
    pub fn sn_at(&self, pos: Pid) -> Sn {
        sn_from_u64(self.sn[pos])
    }

    #[inline]
    pub fn cp_at(&self, pos: Pid) -> Cp {
        cp_from_u8(self.cp[pos])
    }

    #[inline]
    pub fn done_at(&self, pos: Pid) -> bool {
        self.flags[pos] & FLAG_DONE != 0
    }

    #[inline]
    pub fn post_at(&self, pos: Pid) -> bool {
        self.flags[pos] & FLAG_POST != 0
    }
}

impl DenseState for SweepSoa {
    type Elem = PosState;

    fn from_states(states: &[PosState]) -> SweepSoa {
        SweepSoa {
            sn: states.iter().map(|s| sn_to_u64(s.sn)).collect(),
            cp: states.iter().map(|s| cp_to_u8(s.cp)).collect(),
            ph: states.iter().map(|s| s.ph).collect(),
            flags: states
                .iter()
                .map(|s| (s.done as u8 * FLAG_DONE) | (s.post as u8 * FLAG_POST))
                .collect(),
        }
    }

    fn len(&self) -> usize {
        self.sn.len()
    }

    #[inline]
    fn get(&self, pos: Pid) -> PosState {
        PosState {
            sn: sn_from_u64(self.sn[pos]),
            cp: cp_from_u8(self.cp[pos]),
            ph: self.ph[pos],
            done: self.flags[pos] & FLAG_DONE != 0,
            post: self.flags[pos] & FLAG_POST != 0,
        }
    }

    #[inline]
    fn set(&mut self, pos: Pid, s: PosState) {
        self.sn[pos] = sn_to_u64(s.sn);
        self.cp[pos] = cp_to_u8(s.cp);
        self.ph[pos] = s.ph;
        self.flags[pos] = (s.done as u8 * FLAG_DONE) | (s.post as u8 * FLAG_POST);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftbarrier_gcs::SimRng;

    #[test]
    fn round_trips_the_whole_domain() {
        // Every (sn-kind, cp, done, post) combination plus forged extremes.
        let mut states = Vec::new();
        for sn in [Sn::Bot, Sn::Top, Sn::Val(0), Sn::Val(7), Sn::Val(u32::MAX)] {
            for cp in Cp::RB_DOMAIN {
                for done in [false, true] {
                    for post in [false, true] {
                        states.push(PosState {
                            sn,
                            cp,
                            ph: states.len() as u32,
                            done,
                            post,
                        });
                    }
                }
            }
        }
        let soa = SweepSoa::from_states(&states);
        assert_eq!(soa.len(), states.len());
        for (pos, &s) in states.iter().enumerate() {
            assert_eq!(soa.get(pos), s, "position {pos}");
            assert_eq!(soa.sn_at(pos), s.sn);
            assert_eq!(soa.cp_at(pos), s.cp);
            assert_eq!(soa.done_at(pos), s.done);
            assert_eq!(soa.post_at(pos), s.post);
        }
        assert_eq!(soa.to_states(), states);
    }

    #[test]
    fn set_overwrites_every_lane() {
        let mut soa = SweepSoa::from_states(&[PosState::start(); 3]);
        let forged = PosState {
            sn: Sn::Top,
            cp: Cp::Repeat,
            ph: 9,
            done: false,
            post: false,
        };
        soa.set(1, forged);
        assert_eq!(soa.get(1), forged);
        assert_eq!(soa.get(0), PosState::start());
        assert_eq!(soa.get(2), PosState::start());
    }

    #[test]
    fn arbitrary_states_round_trip() {
        let mut rng = SimRng::seed_from_u64(11);
        for _ in 0..200 {
            let s = PosState {
                sn: Sn::arbitrary(13, &mut rng),
                cp: *rng.choose(&Cp::RB_DOMAIN),
                ph: rng.range_u64(0, 8) as u32,
                done: rng.chance(0.5),
                post: rng.chance(0.5),
            };
            let soa = SweepSoa::from_states(&[s]);
            assert_eq!(soa.get(0), s);
        }
    }
}
