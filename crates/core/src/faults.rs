//! The fault taxonomy of §2/§7 and the auxiliary-variable modeling of
//! action-corrupting faults.
//!
//! Table 1 classifies faults along two axes — detectability and
//! correctability — and names the appropriate tolerance for each cell:
//!
//! | | Detectable | Undetectable |
//! |---|---|---|
//! | Immediately correctable | trivially masking | trivially masking |
//! | Eventually correctable | masking | stabilizing |
//! | Uncorrectable | fail-safe | intolerant |
//!
//! §7 also shows how faults that seem to corrupt *actions* (crash,
//! Byzantine behaviour) reduce to variable corruption via auxiliary
//! variables `up` and `good`; [`WithCrash`] and [`WithByzantine`] are those
//! constructions as generic protocol wrappers.

use ftbarrier_gcs::{ActionId, FaultKind, Pid, Protocol, SimRng, Time};

/// How a fault relates to correction (§7, Table 1 rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Correctability {
    /// Correction can be modeled as simultaneous with the occurrence
    /// (e.g. ECC-corrected message corruption).
    Immediate,
    /// The fault eventually stops affecting the program (the paper's
    /// standing assumption for §3–§6).
    Eventual,
    /// No correction ever (permanent crash without restart).
    Uncorrectable,
}

/// The tolerance a program can appropriately provide (Table 1 cells).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tolerance {
    /// The fault might as well not exist.
    TriviallyMasking,
    /// Every barrier executes correctly despite the faults.
    Masking,
    /// After faults stop, at most finitely many barriers execute
    /// incorrectly, then correct execution resumes.
    Stabilizing,
    /// Safety is never violated but Progress may halt: the program never
    /// *reports* an incorrect barrier completion.
    FailSafe,
    /// No guarantee is possible.
    Intolerant,
}

/// Table 1: the appropriate tolerance for each fault class.
pub fn appropriate_tolerance(kind: FaultKind, correctability: Correctability) -> Tolerance {
    match (correctability, kind) {
        (Correctability::Immediate, _) => Tolerance::TriviallyMasking,
        (Correctability::Eventual, FaultKind::Detectable) => Tolerance::Masking,
        (Correctability::Eventual, FaultKind::Undetectable) => Tolerance::Stabilizing,
        (Correctability::Uncorrectable, FaultKind::Detectable) => Tolerance::FailSafe,
        (Correctability::Uncorrectable, FaultKind::Undetectable) => Tolerance::Intolerant,
    }
}

/// The concrete fault types the introduction enumerates, classified per §2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NamedFault {
    MessageLoss,
    DetectableMessageCorruption,
    MessageDuplication,
    MessageReorder,
    UnexpectedReception,
    ProcessorFailStop,
    ProcessorRepair,
    ProcessorReboot,
    IoError,
    FloatingPointException,
    AccessViolation,
    SystemReconfiguration,
    InternalDesignError,
    HangingProcess,
    UndetectableMessageCorruption,
    MemoryLeak,
    TransientStateCorruption,
}

impl NamedFault {
    /// §2's classification of each standard fault type.
    pub fn kind(self) -> FaultKind {
        use NamedFault::*;
        match self {
            MessageLoss
            | DetectableMessageCorruption
            | MessageDuplication
            | MessageReorder
            | UnexpectedReception
            | ProcessorFailStop
            | ProcessorRepair
            | ProcessorReboot
            | IoError
            | FloatingPointException
            | AccessViolation
            | SystemReconfiguration => FaultKind::Detectable,
            InternalDesignError
            | HangingProcess
            | UndetectableMessageCorruption
            | MemoryLeak
            | TransientStateCorruption => FaultKind::Undetectable,
        }
    }

    pub fn all() -> &'static [NamedFault] {
        use NamedFault::*;
        &[
            MessageLoss,
            DetectableMessageCorruption,
            MessageDuplication,
            MessageReorder,
            UnexpectedReception,
            ProcessorFailStop,
            ProcessorRepair,
            ProcessorReboot,
            IoError,
            FloatingPointException,
            AccessViolation,
            SystemReconfiguration,
            InternalDesignError,
            HangingProcess,
            UndetectableMessageCorruption,
            MemoryLeak,
            TransientStateCorruption,
        ]
    }
}

// ---------------------------------------------------------------------------
// Auxiliary-variable constructions (§7).
// ---------------------------------------------------------------------------

/// State wrapper adding the auxiliary `up` variable: "each action of that
/// process is to be executed only if up is true. The crash itself is modeled
/// as the occurrence of a fault that corrupts up, by setting it to false."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CrashState<S> {
    pub inner: S,
    pub up: bool,
}

/// Protocol wrapper gating every action on `up`.
pub struct WithCrash<P> {
    pub inner: P,
}

impl<P: Protocol> Protocol for WithCrash<P> {
    type State = CrashState<P::State>;

    fn num_processes(&self) -> usize {
        self.inner.num_processes()
    }

    fn num_actions(&self, pid: Pid) -> usize {
        self.inner.num_actions(pid)
    }

    fn action_name(&self, pid: Pid, action: ActionId) -> &'static str {
        self.inner.action_name(pid, action)
    }

    fn enabled(&self, g: &[Self::State], pid: Pid, action: ActionId) -> bool {
        if !g[pid].up {
            return false;
        }
        let inner: Vec<P::State> = g.iter().map(|s| s.inner.clone()).collect();
        self.inner.enabled(&inner, pid, action)
    }

    fn execute(
        &self,
        g: &[Self::State],
        pid: Pid,
        action: ActionId,
        rng: &mut SimRng,
    ) -> Self::State {
        let inner: Vec<P::State> = g.iter().map(|s| s.inner.clone()).collect();
        CrashState {
            inner: self.inner.execute(&inner, pid, action, rng),
            up: g[pid].up,
        }
    }

    fn cost(&self, pid: Pid, action: ActionId) -> Time {
        self.inner.cost(pid, action)
    }

    fn initial_state(&self) -> Vec<Self::State> {
        self.inner
            .initial_state()
            .into_iter()
            .map(|inner| CrashState { inner, up: true })
            .collect()
    }

    fn arbitrary_state(&self, pid: Pid, rng: &mut SimRng) -> Self::State {
        CrashState {
            inner: self.inner.arbitrary_state(pid, rng),
            up: rng.chance(0.5),
        }
    }
}

/// The crash fault: `up := false` (detectable — the processor fail-stops).
#[derive(Debug, Clone, Copy)]
pub struct CrashFault;

impl<S> ftbarrier_gcs::FaultAction<CrashState<S>> for CrashFault {
    fn kind(&self) -> FaultKind {
        FaultKind::Detectable
    }

    fn apply(&self, _pid: Pid, state: &mut CrashState<S>, _rng: &mut SimRng) {
        state.up = false;
    }
}

/// Repair: restart the crashed process with a *reset* inner state supplied
/// by the caller (restarting "on some other processor — albeit with
/// different states").
pub struct RepairFault<S> {
    pub reset: S,
}

impl<S: Clone + Send + Sync> ftbarrier_gcs::FaultAction<CrashState<S>> for RepairFault<S> {
    fn kind(&self) -> FaultKind {
        FaultKind::Detectable
    }

    fn apply(&self, _pid: Pid, state: &mut CrashState<S>, _rng: &mut SimRng) {
        state.inner = self.reset.clone();
        state.up = true;
    }
}

/// State wrapper adding the auxiliary `good` variable: "if good is true the
/// process executes its normal actions; when a fault corrupts good to false,
/// the process executes actions whose behavior is nondeterministic."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ByzState<S> {
    pub inner: S,
    pub good: bool,
}

/// Protocol wrapper: a bad process's every action writes an arbitrary state.
pub struct WithByzantine<P> {
    pub inner: P,
}

impl<P: Protocol> Protocol for WithByzantine<P> {
    type State = ByzState<P::State>;

    fn num_processes(&self) -> usize {
        self.inner.num_processes()
    }

    fn num_actions(&self, pid: Pid) -> usize {
        self.inner.num_actions(pid)
    }

    fn action_name(&self, pid: Pid, action: ActionId) -> &'static str {
        self.inner.action_name(pid, action)
    }

    fn enabled(&self, g: &[Self::State], pid: Pid, action: ActionId) -> bool {
        if !g[pid].good {
            // A Byzantine process may always take a (nondeterministic) step.
            return action == 0;
        }
        let inner: Vec<P::State> = g.iter().map(|s| s.inner.clone()).collect();
        self.inner.enabled(&inner, pid, action)
    }

    fn execute(
        &self,
        g: &[Self::State],
        pid: Pid,
        action: ActionId,
        rng: &mut SimRng,
    ) -> Self::State {
        if !g[pid].good {
            return ByzState {
                inner: self.inner.arbitrary_state(pid, rng),
                good: false,
            };
        }
        let inner: Vec<P::State> = g.iter().map(|s| s.inner.clone()).collect();
        ByzState {
            inner: self.inner.execute(&inner, pid, action, rng),
            good: true,
        }
    }

    fn cost(&self, pid: Pid, action: ActionId) -> Time {
        self.inner.cost(pid, action)
    }

    fn initial_state(&self) -> Vec<Self::State> {
        self.inner
            .initial_state()
            .into_iter()
            .map(|inner| ByzState { inner, good: true })
            .collect()
    }

    fn arbitrary_state(&self, pid: Pid, rng: &mut SimRng) -> Self::State {
        ByzState {
            inner: self.inner.arbitrary_state(pid, rng),
            good: rng.chance(0.5),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cb::{Cb, CbState};
    use crate::cp::Cp;
    use ftbarrier_gcs::{FaultAction, Interleaving, InterleavingConfig, NullMonitor};

    #[test]
    fn table_1_mapping() {
        use Correctability::*;
        use FaultKind::*;
        assert_eq!(
            appropriate_tolerance(Detectable, Immediate),
            Tolerance::TriviallyMasking
        );
        assert_eq!(
            appropriate_tolerance(Undetectable, Immediate),
            Tolerance::TriviallyMasking
        );
        assert_eq!(
            appropriate_tolerance(Detectable, Eventual),
            Tolerance::Masking
        );
        assert_eq!(
            appropriate_tolerance(Undetectable, Eventual),
            Tolerance::Stabilizing
        );
        assert_eq!(
            appropriate_tolerance(Detectable, Uncorrectable),
            Tolerance::FailSafe
        );
        assert_eq!(
            appropriate_tolerance(Undetectable, Uncorrectable),
            Tolerance::Intolerant
        );
    }

    #[test]
    fn named_faults_classification_matches_section_2() {
        assert_eq!(NamedFault::MessageLoss.kind(), FaultKind::Detectable);
        assert_eq!(NamedFault::ProcessorFailStop.kind(), FaultKind::Detectable);
        assert_eq!(
            NamedFault::FloatingPointException.kind(),
            FaultKind::Detectable
        );
        assert_eq!(
            NamedFault::InternalDesignError.kind(),
            FaultKind::Undetectable
        );
        assert_eq!(
            NamedFault::TransientStateCorruption.kind(),
            FaultKind::Undetectable
        );
        assert_eq!(NamedFault::all().len(), 17);
    }

    #[test]
    fn crashed_process_takes_no_steps() {
        let cb = Cb::new(3, 2);
        let wrapped = WithCrash { inner: cb };
        let mut g = wrapped.initial_state();
        g[1].up = false;
        for a in 0..wrapped.num_actions(1) {
            assert!(!wrapped.enabled(&g, 1, a));
        }
        // Others still run.
        assert!(wrapped.enabled(&g, 0, crate::cb::CB1));
    }

    #[test]
    fn crash_blocks_barrier_until_repair() {
        let cb = Cb::new(3, 2);
        let wrapped = WithCrash { inner: cb };
        let mut exec = Interleaving::new(&wrapped, InterleavingConfig::default());
        let mut m = NullMonitor;
        // Crash process 2: the barrier must stall (no phase advance).
        exec.apply_fault(2, &CrashFault, &mut m);
        let advanced = exec.run_until(20_000, &mut m, |g| g.iter().any(|s| s.inner.ph > 0));
        assert!(
            advanced.is_none(),
            "barrier must not pass a crashed process"
        );
        // Repair with a detectably-reset state: the barrier resumes.
        let repair = RepairFault {
            reset: CbState {
                cp: Cp::Error,
                ph: 0,
                done: false,
            },
        };
        exec.apply_fault(2, &repair, &mut m);
        let advanced = exec.run_until(50_000, &mut m, |g| g.iter().all(|s| s.inner.ph > 0));
        assert!(advanced.is_some(), "barrier must resume after repair");
    }

    #[test]
    fn byzantine_process_scribbles() {
        let cb = Cb::new(3, 4);
        let wrapped = WithByzantine { inner: cb };
        let mut g = wrapped.initial_state();
        g[1].good = false;
        assert!(wrapped.enabled(&g, 1, 0));
        let mut rng = SimRng::seed_from_u64(3);
        let mut seen_non_initial = false;
        for _ in 0..50 {
            let s = wrapped.execute(&g, 1, 0, &mut rng);
            assert!(!s.good, "a Byzantine process stays Byzantine");
            seen_non_initial |= s.inner != g[1].inner;
        }
        assert!(
            seen_non_initial,
            "Byzantine steps must be able to change state"
        );
    }

    #[test]
    fn fault_kinds_of_aux_faults() {
        assert_eq!(
            FaultAction::<CrashState<CbState>>::kind(&CrashFault),
            FaultKind::Detectable
        );
    }
}
