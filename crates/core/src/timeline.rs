//! ASCII timelines of barrier runs — a debugging aid that renders each
//! process's control position over time as a lane of glyphs, so a protocol
//! run (and its faults and recoveries) can be read at a glance:
//!
//! ```text
//! t/unit   0.0       1.0       2.0
//! p0       rrEEEEEEEEsrEEEEEEEEEsr…
//! p1       rrEEEEEEEEEsrEEEEEEEEsr…
//! p2       rrEEEE!!…rrEEEEEEEEEEsr…      (! = error after a fault)
//! ```
//!
//! Glyphs: `r` ready, `E` execute, `s` success, `!` error, `%` repeat.

use crate::cp::Cp;
use crate::sweep::{PosState, SweepBarrier};
use ftbarrier_gcs::{ActionId, FaultKind, Monitor, Pid, Time};

fn glyph(cp: Cp) -> char {
    match cp {
        Cp::Ready => 'r',
        Cp::Execute => 'E',
        Cp::Success => 's',
        Cp::Error => '!',
        Cp::Repeat => '%',
    }
}

/// How noteworthy a state is when several fall inside one column: faults
/// and barrier transitions beat long execute stretches.
fn priority(cp: Cp) -> u8 {
    match cp {
        Cp::Error => 4,
        Cp::Repeat => 3,
        Cp::Success => 2,
        Cp::Ready => 1,
        Cp::Execute => 0,
    }
}

/// A monitor that samples worker-position control positions into per-process
/// lanes at a fixed time resolution.
pub struct Timeline {
    /// Worker position → process.
    owner_of_worker: Vec<Option<Pid>>,
    /// Time units per column.
    resolution: f64,
    /// Current cp per process.
    current: Vec<Cp>,
    /// Highest-priority state seen since the last rendered column (so brief
    /// success/ready/error windows stay visible at coarse resolutions).
    pending: Vec<Option<Cp>>,
    /// Rendered lanes.
    lanes: Vec<Vec<char>>,
    /// Columns emitted so far.
    columns: usize,
    /// Fault markers: (column, pid).
    faults: Vec<(usize, Pid)>,
    max_columns: usize,
}

impl Timeline {
    pub fn new(program: &SweepBarrier, resolution: f64) -> Timeline {
        assert!(resolution > 0.0);
        let dag = program.dag();
        let owner_of_worker = (0..dag.num_positions())
            .map(|p| {
                if program.is_worker(p) {
                    Some(dag.owner(p))
                } else {
                    None
                }
            })
            .collect();
        Timeline {
            owner_of_worker,
            resolution,
            current: vec![Cp::Ready; dag.num_processes()],
            pending: vec![None; dag.num_processes()],
            lanes: vec![Vec::new(); dag.num_processes()],
            columns: 0,
            faults: Vec::new(),
            max_columns: 4000,
        }
    }

    /// Cap the rendered width (default 4000 columns).
    pub fn with_max_columns(mut self, max: usize) -> Timeline {
        self.max_columns = max.max(1);
        self
    }

    fn advance_to(&mut self, now: Time) {
        let target = ((now.as_f64() / self.resolution).floor() as usize).min(self.max_columns);
        while self.columns < target {
            for (pid, lane) in self.lanes.iter_mut().enumerate() {
                // The first column after a burst of events shows the most
                // noteworthy state of the burst; later fill columns show
                // the steady state.
                let cp = self.pending[pid].take().unwrap_or(self.current[pid]);
                lane.push(glyph(cp));
            }
            self.columns += 1;
        }
    }

    fn note(&mut self, now: Time, pos: usize, new: &PosState) {
        self.advance_to(now);
        if let Some(pid) = self.owner_of_worker.get(pos).copied().flatten() {
            self.current[pid] = new.cp;
            let better = match self.pending[pid] {
                Some(p) => priority(new.cp) > priority(p),
                None => priority(new.cp) > priority(Cp::Execute),
            };
            if better {
                self.pending[pid] = Some(new.cp);
            }
        }
    }

    /// Render the collected lanes.
    pub fn render(&self) -> String {
        let mut out = String::new();
        // Time ruler: a tick every 10 columns.
        out.push_str("t/unit   ");
        let mut col = 0;
        while col < self.columns {
            let label = format!("{:<10}", format!("{:.1}", col as f64 * self.resolution));
            out.push_str(&label[..10.min(label.len())]);
            col += 10;
        }
        out.push('\n');
        for (pid, lane) in self.lanes.iter().enumerate() {
            out.push_str(&format!("p{pid:<8}"));
            out.extend(lane.iter());
            // Mark faults on this lane.
            let hits = self.faults.iter().filter(|&&(_, p)| p == pid).count();
            if hits > 0 {
                out.push_str(&format!("   ({hits} fault(s))"));
            }
            out.push('\n');
        }
        out
    }

    pub fn columns(&self) -> usize {
        self.columns
    }
}

impl Monitor<PosState> for Timeline {
    fn on_transition(
        &mut self,
        now: Time,
        pos: Pid,
        _action: ActionId,
        _name: &str,
        _old: &PosState,
        new: &PosState,
        _global: &[PosState],
    ) {
        self.note(now, pos, new);
    }

    fn on_fault(
        &mut self,
        now: Time,
        pos: Pid,
        _kind: FaultKind,
        _old: &PosState,
        new: &PosState,
        _global: &[PosState],
    ) {
        self.note(now, pos, new);
        if let Some(pid) = self.owner_of_worker.get(pos).copied().flatten() {
            let col = self.columns;
            self.faults.push((col, pid));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::TopologySpec;
    use crate::sweep::{ProcessFaults, SweepDetectableFault};
    use ftbarrier_gcs::fault::NoFaults;
    use ftbarrier_gcs::{Engine, EngineConfig};

    fn run_with_timeline(f: f64, horizon: f64) -> Timeline {
        let program = SweepBarrier::new(TopologySpec::Tree { n: 4, arity: 2 }.build().unwrap(), 8)
            .with_costs(Time::new(0.01), Time::new(1.0));
        let mut timeline = Timeline::new(&program, 0.1);
        let mut engine = Engine::new(&program, 42);
        let config = EngineConfig {
            max_time: Some(Time::new(horizon)),
            ..Default::default()
        };
        if f > 0.0 {
            let mut faults = ProcessFaults::new(&program, f, SweepDetectableFault { n_phases: 8 });
            engine.run(&config, &mut faults, &mut timeline);
        } else {
            engine.run(&config, &mut NoFaults, &mut timeline);
        }
        timeline
    }

    #[test]
    fn fault_free_timeline_shows_the_cycle() {
        let t = run_with_timeline(0.0, 8.0);
        let rendered = t.render();
        // Four process lanes plus the ruler.
        assert_eq!(rendered.lines().count(), 5);
        // Execute dominates (phase bodies are the long poles).
        let lane0: &str = rendered.lines().nth(1).unwrap();
        assert!(lane0.matches('E').count() > lane0.matches('s').count());
        assert!(lane0.contains('r'));
        assert!(!lane0.contains('!'), "no faults must mean no error glyphs");
        assert!(t.columns() > 50);
    }

    #[test]
    fn faulty_timeline_shows_errors_or_repeats() {
        let t = run_with_timeline(0.4, 30.0);
        let rendered = t.render();
        assert!(
            rendered.contains('!') || rendered.contains('%'),
            "heavy faults must be visible:\n{rendered}"
        );
        assert!(rendered.contains("fault(s)"));
    }

    #[test]
    fn column_cap_is_respected() {
        let program = SweepBarrier::new(TopologySpec::Ring { n: 3 }.build().unwrap(), 4)
            .with_costs(Time::new(0.01), Time::new(1.0));
        let mut timeline = Timeline::new(&program, 0.01).with_max_columns(100);
        let mut engine = Engine::new(&program, 1);
        let config = EngineConfig {
            max_time: Some(Time::new(50.0)),
            ..Default::default()
        };
        engine.run(&config, &mut NoFaults, &mut timeline);
        assert_eq!(timeline.columns(), 100);
    }
}
