//! The fault-intolerant baseline barrier (§6.1's `1 + 2hc` comparator).
//!
//! "In the absence of faults, barrier synchronization can be achieved in
//! time 1 + 2hc — one communication over the tree suffices to detect that
//! all processes have completed execution of their phase and another to
//! inform them to start the next phase."
//!
//! This program is the sweep barrier stripped of everything that buys fault
//! tolerance: no ⊥/⊤ repair, no `ready` sweep, no `error`/`repeat` control
//! positions. Two sweeps per phase: an *arrival* sweep (everyone finished)
//! and a *release* sweep (start the next phase). It exists so the simulated
//! overhead of fault tolerance (Fig 6) is measured against a real simulated
//! baseline, not just the closed form.

use ftbarrier_gcs::{ActionId, Pid, Protocol, ReaderSet, SimRng, Time};
use ftbarrier_topology::{Pos, SweepDag};

/// Barrier-relevant control state: working on the phase, or arrived at the
/// barrier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase2Cp {
    Working,
    Arrived,
}

/// Per-position state of the intolerant barrier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IntolerantState {
    /// Token sequence number — plain modular counter, no fault flags.
    pub sn: u32,
    pub cp: Phase2Cp,
    pub ph: u32,
    pub done: bool,
}

pub const RECV: ActionId = 0;
pub const WORK: ActionId = 1;

/// The fault-intolerant two-sweep barrier over a sweep topology.
#[derive(Debug, Clone)]
pub struct IntolerantBarrier {
    dag: SweepDag,
    pub n_phases: u32,
    pub sn_domain: u32,
    pub comm_cost: Time,
    pub work_cost: Time,
    worker: Vec<bool>,
}

impl IntolerantBarrier {
    pub fn new(dag: SweepDag, n_phases: u32) -> IntolerantBarrier {
        assert!(n_phases >= 2);
        let mut worker = vec![false; dag.num_positions()];
        for pid in 0..dag.num_processes() {
            worker[dag.positions_of(pid)[0]] = true;
        }
        let sn_domain = dag.num_positions() as u32 + 1;
        IntolerantBarrier {
            dag,
            n_phases,
            sn_domain,
            comm_cost: Time::ZERO,
            work_cost: Time::new(1.0),
            worker,
        }
    }

    pub fn with_costs(mut self, comm: Time, work: Time) -> IntolerantBarrier {
        self.comm_cost = comm;
        self.work_cost = work;
        self
    }

    pub fn dag(&self) -> &SweepDag {
        &self.dag
    }

    pub fn is_worker(&self, pos: Pos) -> bool {
        self.worker[pos]
    }

    fn pred_sn(&self, g: &[IntolerantState], pos: Pos) -> Option<u32> {
        let preds = self.dag.preds(pos);
        let first = g[preds[0]].sn;
        if preds[1..].iter().all(|&q| g[q].sn == first) {
            Some(first)
        } else {
            None
        }
    }

    fn has_token(&self, g: &[IntolerantState], pos: Pos) -> bool {
        match self.pred_sn(g, pos) {
            Some(v) => {
                if pos == SweepDag::ROOT {
                    g[pos].sn == v
                } else {
                    g[pos].sn != v
                }
            }
            None => false,
        }
    }

    fn blocked_on_work(&self, g: &[IntolerantState], pos: Pos) -> bool {
        let s = &g[pos];
        if !self.worker[pos] || s.cp != Phase2Cp::Working || s.done {
            return false;
        }
        if pos == SweepDag::ROOT {
            true
        } else {
            let preds = self.dag.preds(pos);
            preds.iter().all(|&q| g[q].cp == Phase2Cp::Arrived)
        }
    }
}

impl Protocol for IntolerantBarrier {
    type State = IntolerantState;

    fn num_processes(&self) -> usize {
        self.dag.num_positions()
    }

    fn num_actions(&self, _pos: Pid) -> usize {
        2
    }

    fn action_name(&self, _pos: Pid, action: ActionId) -> &'static str {
        match action {
            RECV => "RECV",
            WORK => "WORK",
            _ => unreachable!("intolerant barrier has 2 actions"),
        }
    }

    fn enabled(&self, g: &[IntolerantState], pos: Pid, action: ActionId) -> bool {
        let s = &g[pos];
        match action {
            RECV => self.has_token(g, pos) && !self.blocked_on_work(g, pos),
            WORK => self.worker[pos] && s.cp == Phase2Cp::Working && !s.done,
            _ => false,
        }
    }

    fn execute(
        &self,
        g: &[IntolerantState],
        pos: Pid,
        action: ActionId,
        _rng: &mut SimRng,
    ) -> IntolerantState {
        let mut s = g[pos];
        match action {
            RECV => {
                let v = self
                    .pred_sn(g, pos)
                    .expect("RECV only enabled with a token");
                if pos == SweepDag::ROOT {
                    s.sn = (v + 1) % self.sn_domain;
                    let sinks = self.dag.sinks();
                    match s.cp {
                        Phase2Cp::Working => s.cp = Phase2Cp::Arrived, // gated on done
                        Phase2Cp::Arrived => {
                            if sinks.iter().all(|&q| g[q].cp == Phase2Cp::Arrived) {
                                // Everyone arrived: release the next phase.
                                s.ph = (s.ph + 1) % self.n_phases;
                                s.cp = Phase2Cp::Working;
                                s.done = false;
                            }
                            // else keep circulating.
                        }
                    }
                } else {
                    s.sn = v;
                    let pred0 = &g[self.dag.preds(pos)[0]];
                    let pred_cp = if self.dag.preds(pos).iter().all(|&q| g[q].cp == pred0.cp) {
                        Some(pred0.cp)
                    } else {
                        None
                    };
                    match (s.cp, pred_cp) {
                        (Phase2Cp::Working, Some(Phase2Cp::Arrived)) => {
                            s.cp = Phase2Cp::Arrived; // gated on done
                        }
                        (Phase2Cp::Arrived, Some(Phase2Cp::Working)) => {
                            s.ph = pred0.ph;
                            s.cp = Phase2Cp::Working;
                            s.done = !self.worker[pos];
                        }
                        _ => {}
                    }
                }
            }
            WORK => s.done = true,
            _ => unreachable!("intolerant barrier has 2 actions"),
        }
        s
    }

    fn cost(&self, _pos: Pid, action: ActionId) -> Time {
        if action == WORK {
            self.work_cost
        } else {
            self.comm_cost
        }
    }

    fn initial_state(&self) -> Vec<IntolerantState> {
        // Everyone starts working on phase 0 immediately; the barrier sits
        // at the end of each phase.
        (0..self.dag.num_positions())
            .map(|pos| IntolerantState {
                sn: 0,
                cp: Phase2Cp::Working,
                ph: 0,
                done: !self.worker[pos],
            })
            .collect()
    }

    fn arbitrary_state(&self, _pos: Pid, rng: &mut SimRng) -> IntolerantState {
        IntolerantState {
            sn: rng.range_u64(0, self.sn_domain as u64) as u32,
            cp: if rng.chance(0.5) {
                Phase2Cp::Working
            } else {
                Phase2Cp::Arrived
            },
            ph: rng.range_u64(0, self.n_phases as u64) as u32,
            done: rng.chance(0.5),
        }
    }

    fn readers_of(&self, pos: Pid) -> ReaderSet {
        // Guards read only predecessors (RECV's has_token/blocked_on_work
        // read preds' sn and cp) and local state (WORK), so the readers of
        // pos are pos itself and its successors.
        let mut readers = vec![pos];
        readers.extend_from_slice(self.dag.succs(pos));
        readers.sort_unstable();
        readers.dedup();
        ReaderSet::These(readers)
    }
}

// The baseline's state is four small fields; the array-of-structs layout is
// dense enough for the comparator role it plays, so the blanket `Vec<_>`
// encoding serves as its dense form on the sharded engine.
impl ftbarrier_gcs::DenseProtocol for IntolerantBarrier {
    type Dense = Vec<IntolerantState>;

    fn dense_enabled(&self, dense: &Vec<IntolerantState>, pos: Pid, action: ActionId) -> bool {
        self.enabled(dense, pos, action)
    }

    fn dense_execute(
        &self,
        dense: &Vec<IntolerantState>,
        pos: Pid,
        action: ActionId,
        rng: &mut SimRng,
    ) -> IntolerantState {
        self.execute(dense, pos, action, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftbarrier_gcs::fault::NoFaults;
    use ftbarrier_gcs::{Engine, EngineConfig, Interleaving, InterleavingConfig, NullMonitor};

    #[test]
    fn cycles_phases_fault_free() {
        let b = IntolerantBarrier::new(SweepDag::tree(8, 2).unwrap(), 4);
        let mut exec = Interleaving::new(&b, InterleavingConfig::default());
        let mut m = NullMonitor;
        let steps = exec.run_until(200_000, &mut m, |g| g[0].ph == 3);
        assert!(steps.is_some(), "no progress");
    }

    #[test]
    fn workers_gate_arrival_on_done() {
        let b = IntolerantBarrier::new(SweepDag::ring(3).unwrap(), 4);
        let g = b.initial_state();
        // Root has the token but hasn't finished its phase body.
        assert!(b.has_token(&g, 0));
        assert!(!b.enabled(&g, 0, RECV));
        assert!(b.enabled(&g, 0, WORK));
    }

    #[test]
    fn timed_phase_duration_tracks_1_plus_2hc() {
        // Steady-state phase period on a binary tree of 32 processes with
        // c = 0.02 must be near 1 + 2hc (the sweep pipeline adds small
        // constant terms; the paper's closed form is the leading behaviour).
        let c = 0.02;
        let h = 5;
        let b = IntolerantBarrier::new(SweepDag::tree(32, 2).unwrap(), 4)
            .with_costs(Time::new(c), Time::new(1.0));
        let mut engine = Engine::new(&b, 9);
        struct PhaseWatch {
            target: u32,
            hit: bool,
        }
        impl ftbarrier_gcs::Monitor<IntolerantState> for PhaseWatch {
            fn on_transition(
                &mut self,
                _now: Time,
                _pid: Pid,
                _action: ActionId,
                _name: &str,
                _old: &IntolerantState,
                new: &IntolerantState,
                global: &[IntolerantState],
            ) {
                if global[0].ph == self.target && new.ph == self.target {
                    self.hit = true;
                }
            }
            fn should_stop(&mut self) -> bool {
                self.hit
            }
        }
        // Time for 3 phase completions at the root (ph reaches 3).
        let mut watch = PhaseWatch {
            target: 3,
            hit: false,
        };
        let out = engine.run(&EngineConfig::default(), &mut NoFaults, &mut watch);
        let per_phase = out.stats.elapsed.as_f64() / 3.0;
        let predicted = 1.0 + 2.0 * h as f64 * c;
        assert!(
            (per_phase - predicted).abs() < 0.15,
            "per-phase {per_phase} vs predicted {predicted}"
        );
    }
}
