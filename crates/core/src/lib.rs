//! Multitolerant barrier synchronization — a full reproduction of
//! Kulkarni & Arora, *Low-cost Fault-tolerance in Barrier Synchronizations*
//! (ICPP 1998).
//!
//! The paper develops, by stepwise refinement, a barrier synchronization
//! program that is **masking** tolerant to *detectable* faults (every barrier
//! still executes correctly) and **stabilizing** tolerant to *undetectable*
//! faults (from an arbitrary state, correct execution resumes after at most
//! `m` incorrectly executed phases, where `m` is the number of distinct
//! phases the faults scattered the processes into).
//!
//! The refinement chain, and where each program lives here:
//!
//! | paper | program | module |
//! |-------|---------|--------|
//! | §3    | CB — coarse grain, instant global reads | [`cb`] |
//! | §4.1  | token ring substrate T1–T5 | [`token_ring`] |
//! | §4.1–4.2 | RB on a ring, RB′ on two rings, trees (Fig 2c/2d) | [`sweep`] over a `SweepDag` |
//! | §5    | MB — message passing via local copies | [`sweep::mb_ring`] (structural), crate `ftbarrier-mp` (executable) |
//!
//! Supporting systems: the barrier specification oracle ([`spec`]), the fault
//! taxonomy and auxiliary-variable fault modeling ([`faults`]), the §6.1
//! analytical model ([`analysis`]), the fault-intolerant baseline
//! ([`intolerant`]), the experiment harness ([`sim`]), and the §7
//! instantiations ([`instantiations`]).

pub mod analysis;
pub mod byz;
pub mod cb;
pub mod churn;
pub mod cp;
pub mod faults;
pub mod instantiations;
pub mod intolerant;
pub mod results;
pub mod sim;
pub mod sn;
pub mod spec;
pub mod sweep;
pub mod telemetry;
pub mod testkit;
pub mod timeline;
pub mod token_ring;

pub use cp::Cp;
pub use sn::{DomainError, Sn};
