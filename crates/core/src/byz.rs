//! Byzantine containment for the sweep barrier: §7's `up`/`good` auxiliary
//! variables superposed on the engine backend.
//!
//! §7 of the paper sketches tolerance to Byzantine processes with an
//! auxiliary variable `good.j`: a process that is not good may write
//! arbitrary values to its own variables, and the system should degrade
//! gracefully rather than wedge. This module makes the sketch concrete in
//! three pieces:
//!
//! 1. **The environment** is [`ByzantineFaults`]: budgeted attackers striking
//!    at Poisson times with an arsenal of in-domain scrambles
//!    ([`SweepUndetectableFault`] — the §2 fault class the program already
//!    stabilizes from) and out-of-domain forgeries ([`SweepByzantineFault`] —
//!    writes no program action and no §2 fault can produce).
//!
//! 2. **The superposition** is [`GoodGate`]: a wrapper protocol that computes
//!    `good.j` from the state itself — `good.j ≡` every variable of `j` is
//!    inside its domain — and gates every action of `j` on `good.j ∧
//!    (∀ pred q of j : good.q)`. A not-good process is frozen (the §7 reading
//!    of withdrawn `up`: treated as halted), so forged evidence *persists*
//!    instead of being instantly overwritten by the process's own `RECV`;
//!    and no correct process ever copies a forged value through the sweep's
//!    adoption paths, so out-of-domain state is attributable to its writer.
//!
//! 3. **The recovery authority** is the segmented driver [`run_byz`]: a
//!    not-good process eventually stalls the sweep (its successors wait on a
//!    frozen predecessor), the engine reports a fixpoint, the driver charges
//!    a detection latency, convicts exactly the processes holding
//!    out-of-domain state, and **quarantines them by splice** — the same
//!    graceful-degradation path the churn driver uses for crashes. The
//!    authority may quarantine at most `quorum − 1` processes; asked to
//!    exceed that bound it refuses and the run wedges, which is the honest
//!    outcome once a majority could be adversarial.
//!
//! The containment gate this supports (checked by `repro byz` and the audit
//! crate): for `f` Byzantine processes with `f <` [`quorum`], every correct
//! process completes every phase, and no correct process is ever quarantined.

use std::collections::{BTreeMap, BTreeSet};

use crate::cp::Cp;
use crate::sim::{SweepOracleMonitor, TopologySpec};
use crate::sn::Sn;
use crate::spec::Anchor;
use crate::sweep::{
    pos_in_domain, PosState, SweepBarrier, SweepByzantineFault, SweepUndetectableFault,
};
use ftbarrier_gcs::{
    ActionId, ByzantineFaults, ByzantineProcess, Engine, EngineConfig, FaultAction, MonitorSet,
    Pid, Protocol, ReaderSet, SimRng, StopReason, Time,
};
use ftbarrier_telemetry::{names, Telemetry};
use ftbarrier_topology::membership::Membership;

/// The smallest majority of `n` processes. The splice authority quarantines
/// at most `quorum(n) - 1` processes over a run's lifetime: tolerating `f`
/// Byzantine processes is only meaningful while the correct processes
/// outnumber them.
pub fn quorum(n: usize) -> usize {
    n / 2 + 1
}

/// The paper's `good.j` superposed on the sweep barrier as an action gate.
///
/// `good.j` is *computed*, not stored: a position is good iff its state is
/// inside the program's variable domains ([`pos_in_domain`]). Every action of
/// position `j` is gated on `good.j` and on `good.q` for every predecessor
/// `q` of `j`:
///
/// * gating on `good.j` freezes a convicted position — without it the
///   position's own `RECV` would overwrite the evidence within one
///   communication delay and the forgery could never be attributed;
/// * gating on the predecessors keeps the sweep's adoption paths (`sn`/`ph`
///   copied from a predecessor) from laundering a forged value into a
///   correct process's state, so out-of-domain state only ever exists at
///   positions its owner wrote.
///
/// Everything else — guards, statements, costs, readers — delegates to the
/// wrapped [`SweepBarrier`].
pub struct GoodGate {
    program: SweepBarrier,
}

impl GoodGate {
    pub fn new(program: SweepBarrier) -> GoodGate {
        GoodGate { program }
    }

    /// The wrapped program (for oracles and topology queries).
    pub fn program(&self) -> &SweepBarrier {
        &self.program
    }

    /// §7's auxiliary `good`, computed from the state.
    pub fn good(&self, s: &PosState) -> bool {
        pos_in_domain(s, self.program.n_phases(), self.program.sn_domain())
    }
}

impl Protocol for GoodGate {
    type State = PosState;

    fn num_processes(&self) -> usize {
        self.program.num_processes()
    }

    fn num_actions(&self, pid: Pid) -> usize {
        self.program.num_actions(pid)
    }

    fn action_name(&self, pid: Pid, action: ActionId) -> &'static str {
        self.program.action_name(pid, action)
    }

    fn enabled(&self, global: &[PosState], pid: Pid, action: ActionId) -> bool {
        self.good(&global[pid])
            && self
                .program
                .dag()
                .preds(pid)
                .iter()
                .all(|&q| self.good(&global[q]))
            && self.program.enabled(global, pid, action)
    }

    fn execute(
        &self,
        global: &[PosState],
        pid: Pid,
        action: ActionId,
        rng: &mut SimRng,
    ) -> PosState {
        self.program.execute(global, pid, action, rng)
    }

    fn cost(&self, pid: Pid, action: ActionId) -> Time {
        self.program.cost(pid, action)
    }

    fn initial_state(&self) -> Vec<PosState> {
        self.program.initial_state()
    }

    fn arbitrary_state(&self, pid: Pid, rng: &mut SimRng) -> PosState {
        self.program.arbitrary_state(pid, rng)
    }

    fn readers_of(&self, pid: Pid) -> ReaderSet {
        // The gate reads pid and its predecessors, both already inside the
        // program's reader set (guards read preds and succs).
        self.program.readers_of(pid)
    }
}

/// A Byzantine containment experiment over one topology.
#[derive(Debug, Clone)]
pub struct ByzExperiment {
    pub topology: TopologySpec,
    pub n_phases: u32,
    /// Communication latency `c` per hop.
    pub c: f64,
    pub seed: u64,
    /// Stop once this many successful phases completed (across all views).
    pub target_phases: u64,
    /// Virtual-time horizon for the whole run.
    pub horizon: f64,
    /// Modeled latency from the stall to the quarantine taking effect.
    pub detect_latency: f64,
    /// The Byzantine set (base pids; never the root).
    pub byzantine: Vec<usize>,
    /// Corruption budget per Byzantine process.
    pub budget: usize,
    /// Poisson rate of corruption events while any budget remains.
    pub attack_rate: f64,
    /// The splice authority's bound: at most this many quarantines before it
    /// refuses and the run wedges. `quorum(n) - 1` is the honest setting.
    pub max_quarantined: usize,
}

impl Default for ByzExperiment {
    fn default() -> Self {
        ByzExperiment {
            topology: TopologySpec::Ring { n: 16 },
            n_phases: 8,
            c: 0.01,
            seed: 0xB12_AD7E,
            target_phases: 100,
            horizon: 600.0,
            detect_latency: 2.0,
            byzantine: Vec::new(),
            budget: 4,
            attack_rate: 0.5,
            max_quarantined: quorum(16) - 1,
        }
    }
}

/// What a Byzantine containment run measured.
#[derive(Debug, Clone)]
pub struct ByzMeasurement {
    /// Successful phases completed across all membership views.
    pub phases: u64,
    /// The phase target the run was asked to reach.
    pub target: u64,
    /// Oracle violations across all segments (transients around corruption
    /// and quarantine are expected; fault-free runs must report zero).
    pub violations: usize,
    /// Processes quarantined by splice, in conviction order.
    pub quarantined: Vec<usize>,
    /// Quarantined processes that were *not* in the Byzantine set — any
    /// entry here is a containment failure (a framed correct process).
    pub correct_quarantined: Vec<usize>,
    /// The splice authority refused (bound reached) and the run wedged.
    pub wedged: bool,
    /// Corruption events fired across all segments.
    pub budget_spent: usize,
    /// Final membership epoch.
    pub epoch: u64,
    /// Virtual time consumed.
    pub elapsed: f64,
    /// Base pids alive at the end of the run.
    pub final_live: Vec<usize>,
}

impl ByzMeasurement {
    /// Fraction of the phase target the correct survivors completed.
    pub fn completion(&self) -> f64 {
        if self.target == 0 {
            return 1.0;
        }
        (self.phases as f64 / self.target as f64).min(1.0)
    }

    /// The containment gate: the run neither wedged nor framed a correct
    /// process, and every phase the run targeted was completed.
    pub fn contained(&self) -> bool {
        !self.wedged && self.correct_quarantined.is_empty() && self.phases >= self.target
    }
}

/// The detectable-fault state of §4.1 (`sn = ⊥, cp = error`), applied to the
/// root to restart the sweep after a quarantine.
fn poison(state: &mut PosState) {
    state.sn = Sn::Bot;
    state.cp = Cp::Error;
}

/// Run a Byzantine containment experiment: execute the sweep under the
/// [`GoodGate`] superposition with budgeted Byzantine corruption, convicting
/// and quarantining processes whose out-of-domain writes stall the sweep.
pub fn run_byz(exp: &ByzExperiment) -> ByzMeasurement {
    run_byz_with_telemetry(exp, &Telemetry::off())
}

/// [`run_byz`], additionally publishing `byz_corruptions_total`,
/// `byz_quarantines_total`, `byz_wedges_total`, and `membership_epoch` after
/// the run. Telemetry is recorded post-hoc from the measurement, so an
/// enabled handle cannot perturb the run.
pub fn run_byz_with_telemetry(exp: &ByzExperiment, telemetry: &Telemetry) -> ByzMeasurement {
    let base = exp.topology.build().expect("valid topology");
    let n_procs = base.num_processes();
    let n_positions = base.num_positions();
    let sn_domain = 2 * n_positions as u32 + 3;

    let byz: BTreeSet<usize> = exp.byzantine.iter().copied().collect();
    assert!(
        !byz.contains(&0),
        "the root is the recovery authority and cannot be Byzantine here"
    );
    assert!(
        byz.iter().all(|&p| p < n_procs),
        "Byzantine pids must be in 0..{n_procs}"
    );

    let mut membership = Membership::new(base.clone());
    let mut base_states: Vec<PosState> = vec![PosState::start(); n_positions];
    let mut budgets: BTreeMap<usize, usize> = byz.iter().map(|&p| (p, exp.budget)).collect();

    let mut t = 0.0f64;
    let mut phases = 0u64;
    let mut violations = 0usize;
    let mut budget_spent = 0usize;
    let mut quarantined: Vec<usize> = Vec::new();
    let mut wedged = false;
    let mut segment = 0u64;

    'segments: while phases < exp.target_phases && t < exp.horizon {
        let view = membership.view();
        let program = SweepBarrier::new(view.dag.clone(), exp.n_phases)
            .with_sn_domain(sn_domain)
            .with_costs(Time::new(exp.c), Time::new(1.0));
        let gate = GoodGate::new(program);

        let view_states: Vec<PosState> = view.positions.iter().map(|&bp| base_states[bp]).collect();
        let mut engine = Engine::from_state(&gate, exp.seed ^ segment, view_states);

        let mut oracle = if segment == 0 {
            SweepOracleMonitor::new(gate.program(), Anchor::StrictFromZero)
        } else {
            let mut m = SweepOracleMonitor::new(gate.program(), Anchor::Free);
            for vp in 0..view.dag.num_positions() {
                let s = engine.global()[vp];
                if gate.program().is_worker(vp) && s.cp == Cp::Execute {
                    m.oracle.observe_cp(
                        Time::ZERO,
                        view.dag.owner(vp),
                        s.ph,
                        Cp::Ready,
                        Cp::Execute,
                    );
                }
            }
            m
        }
        .stop_after(exp.target_phases - phases);

        // Attackers still alive and still funded, with slots in view
        // coordinates (a Byzantine process equivocates across all of its
        // positions — real variable plus local copies).
        let attackers: Vec<ByzantineProcess> = byz
            .iter()
            .filter(|&&p| membership.is_alive(p) && budgets[&p] > 0)
            .map(|&p| {
                let positions: Vec<usize> = base
                    .positions_of(p)
                    .iter()
                    .map(|&bp| view.pos_of[bp].expect("alive process's positions are in view"))
                    .collect();
                ByzantineProcess::with_positions(p, positions, budgets[&p])
            })
            .collect();
        let arsenal: Vec<Box<dyn FaultAction<PosState>>> = vec![
            Box::new(SweepUndetectableFault {
                n_phases: exp.n_phases,
                sn_domain,
            }),
            Box::new(SweepByzantineFault {
                n_phases: exp.n_phases,
                sn_domain,
            }),
        ];
        let mut plan = ByzantineFaults::new(exp.attack_rate, attackers, arsenal);

        let config = EngineConfig {
            seed: exp.seed ^ 0x0B52 ^ segment.rotate_left(17),
            max_time: Some(Time::new(exp.horizon - t)),
            ..Default::default()
        };
        let outcome = {
            let mut set = MonitorSet::new().with(&mut oracle);
            engine.run(&config, &mut plan, &mut set)
        };
        segment += 1;

        for (pid, remaining) in plan.budgets() {
            budgets.insert(pid, remaining);
        }
        budget_spent += plan.spent();
        for (vp, &bp) in view.positions.iter().enumerate() {
            base_states[bp] = engine.global()[vp];
        }
        phases += oracle.oracle.phases_completed();
        violations += oracle.oracle.violations().len();

        match outcome.reason {
            StopReason::MonitorStop => {
                t += outcome.stats.elapsed.as_f64();
                break 'segments;
            }
            StopReason::MaxTime => {
                t = exp.horizon;
            }
            StopReason::Fixpoint => {
                // A stall under the gate means some position froze not-good:
                // convict exactly the owners of out-of-domain state. The
                // pred-gate guarantees no correct process adopted a forged
                // value, so conviction by inspection is sound.
                let convicted: Vec<usize> = (0..n_procs)
                    .filter(|&pid| {
                        membership.is_alive(pid)
                            && base.positions_of(pid).iter().any(|&bp| {
                                !pos_in_domain(&base_states[bp], exp.n_phases, sn_domain)
                            })
                    })
                    .collect();
                assert!(
                    !convicted.is_empty(),
                    "sweep stalled under the good-gate without Byzantine evidence"
                );
                let t_detect = t + outcome.stats.elapsed.as_f64() + exp.detect_latency;
                if t_detect >= exp.horizon {
                    t = exp.horizon;
                    break 'segments;
                }
                t = t_detect;
                for pid in convicted {
                    if quarantined.len() >= exp.max_quarantined {
                        // The splice authority's bound: quarantining further
                        // would leave the correct processes outnumbered, so
                        // it refuses and the run wedges (the honest outcome).
                        wedged = true;
                        break 'segments;
                    }
                    membership
                        .splice(pid)
                        .expect("convicted process is a live non-root");
                    quarantined.push(pid);
                }
                poison(&mut base_states[0]);
            }
            StopReason::MaxCommits => {
                panic!("byz segment exhausted its commit budget");
            }
        }
    }

    let measurement = ByzMeasurement {
        phases,
        target: exp.target_phases,
        violations,
        correct_quarantined: quarantined
            .iter()
            .copied()
            .filter(|p| !byz.contains(p))
            .collect(),
        quarantined,
        wedged,
        budget_spent,
        epoch: membership.epoch(),
        elapsed: t,
        final_live: (0..n_procs).filter(|&p| membership.is_alive(p)).collect(),
    };

    if telemetry.is_enabled() {
        let labels = [("topo", exp.topology.label())];
        telemetry.gauge(names::MEMBERSHIP_EPOCH, &labels, measurement.epoch as f64);
        telemetry.counter(
            names::BYZ_CORRUPTIONS_TOTAL,
            &labels,
            measurement.budget_spent as u64,
        );
        telemetry.counter(
            names::BYZ_QUARANTINES_TOTAL,
            &labels,
            measurement.quarantined.len() as u64,
        );
        telemetry.counter(names::BYZ_WEDGES_TOTAL, &labels, measurement.wedged as u64);
    }
    measurement
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_run_completes_cleanly() {
        let m = run_byz(&ByzExperiment {
            topology: TopologySpec::Ring { n: 8 },
            target_phases: 30,
            max_quarantined: quorum(8) - 1,
            ..Default::default()
        });
        assert_eq!(m.phases, 30);
        assert_eq!(m.violations, 0);
        assert!(m.quarantined.is_empty());
        assert!(!m.wedged);
        assert_eq!(m.epoch, 0);
        assert!(m.contained());
        assert_eq!(m.completion(), 1.0);
    }

    #[test]
    fn single_byzantine_process_is_quarantined_and_survivors_complete() {
        for topology in [
            TopologySpec::Ring { n: 16 },
            TopologySpec::Tree { n: 16, arity: 2 },
        ] {
            let m = run_byz(&ByzExperiment {
                topology,
                byzantine: vec![5],
                budget: 6,
                ..Default::default()
            });
            assert!(m.contained(), "{topology:?}: {m:?}");
            assert_eq!(m.completion(), 1.0, "{topology:?}");
            assert!(m.correct_quarantined.is_empty(), "{topology:?}");
            // The attacker either got quarantined (it forged out-of-domain)
            // or only scrambled in-domain and stabilization absorbed it;
            // either way no *correct* process was harmed.
            assert!(
                m.quarantined.iter().all(|&p| p == 5),
                "{topology:?}: quarantined {:?}",
                m.quarantined
            );
            assert!(m.final_live.contains(&0), "{topology:?}");
        }
    }

    #[test]
    fn byzantine_majority_wedges_instead_of_splicing_past_quorum() {
        // 12 attackers at n=16: the authority may splice at most
        // quorum(16)-1 = 8; with enough budget it must eventually refuse.
        let byzantine: Vec<usize> = (1..13).collect();
        let m = run_byz(&ByzExperiment {
            topology: TopologySpec::Ring { n: 16 },
            byzantine,
            budget: 20,
            attack_rate: 2.0,
            target_phases: 5_000,
            horizon: 3_000.0,
            ..Default::default()
        });
        assert!(
            m.wedged || m.phases < m.target,
            "a Byzantine majority must not be silently absorbed: {m:?}"
        );
        assert!(
            m.quarantined.len() < quorum(16),
            "authority spliced past its bound: {:?}",
            m.quarantined
        );
        assert!(m.correct_quarantined.is_empty(), "{m:?}");
    }

    #[test]
    fn good_gate_freezes_out_of_domain_state_and_blocks_adoption() {
        let program = SweepBarrier::new(ftbarrier_topology::SweepDag::ring(4).unwrap(), 4);
        let sn_domain = program.sn_domain();
        let gate = GoodGate::new(program);
        let mut g = gate.initial_state();
        // Forge position 2's state out of domain.
        g[2].sn = Sn::Val(sn_domain + 7);
        for a in 0..gate.num_actions(2) {
            assert!(!gate.enabled(&g, 2, a), "frozen position must not act");
        }
        // Its successor (3) is pred-gated; everyone else may still act.
        for a in 0..gate.num_actions(3) {
            assert!(!gate.enabled(&g, 3, a), "successor must not adopt forgery");
        }
        let plain = GoodGate::new(SweepBarrier::new(
            ftbarrier_topology::SweepDag::ring(4).unwrap(),
            4,
        ));
        let clean = plain.initial_state();
        assert!(
            (0..4).any(|p| (0..plain.num_actions(p)).any(|a| plain.enabled(&clean, p, a))),
            "gate must be transparent on in-domain states"
        );
    }

    #[test]
    fn quorum_is_a_strict_majority() {
        assert_eq!(quorum(16), 9);
        assert_eq!(quorum(15), 8);
        assert_eq!(quorum(2), 2);
    }
}
