//! Instantiations of the barrier program to other problems (§7).
//!
//! "Our barrier synchronization program can be instantiated to obtain
//! fault-tolerant programs for other problems such as atomic commitment,
//! clock unison and phase synchronization."

pub mod atomic_commit;
pub mod clock_unison;
pub mod phase_sync;

pub use atomic_commit::{run_transactions, CommitReport, TxOutcome};
pub use clock_unison::{check_unison, UnisonMonitor, UnisonReport};
pub use phase_sync::{run_phase_sync, PhaseSyncReport};
