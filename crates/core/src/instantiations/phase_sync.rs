//! Phase synchronization via the barrier program (§7).
//!
//! "In the phase synchronization problem, each process executes a
//! (potentially infinite) sequence of phases. A process executes a phase
//! only when all processes have completed the previous phase. …
//! Traditionally, the faults considered corrupt the phase of processes
//! initially in (and not during) the computation."
//!
//! This module runs the barrier program from an *initially corrupted* state
//! — phases scrambled, control positions detectably reset — and shows that
//! every phase thereafter executes correctly (the paper's tolerance
//! requirement for phase synchronization).

use crate::cp::Cp;
use crate::sim::SweepOracleMonitor;
use crate::sn::Sn;
use crate::spec::Anchor;
use crate::sweep::{PosState, SweepBarrier};
use ftbarrier_gcs::fault::NoFaults;
use ftbarrier_gcs::{Engine, EngineConfig, SimRng, StopReason, Time};
use ftbarrier_topology::SweepDag;

/// Result of a phase-synchronization run from an initially corrupted state.
#[derive(Debug, Clone)]
pub struct PhaseSyncReport {
    /// Phases completed after the initial corruption.
    pub phases_completed: u64,
    /// Specification violations observed (must be zero: initial detectable
    /// corruption is tolerated without executing any phase incorrectly).
    pub violations: usize,
}

/// Scramble the phase variables *detectably* at time zero (each corrupted
/// process knows: `cp = error`, `sn = ⊥`) and run `target_phases` phases.
///
/// `corrupt` lists the processes whose initial phase is corrupted. At least
/// one process must stay clean (corrupting everyone detectably is the
/// undetectable regime, footnote 2).
pub fn run_phase_sync(
    n_processes: usize,
    corrupt: &[usize],
    target_phases: u64,
    seed: u64,
) -> PhaseSyncReport {
    assert!(
        corrupt.len() < n_processes,
        "at least one process must keep its state (footnote 2)"
    );
    let n_phases = 8;
    let program = SweepBarrier::new(SweepDag::ring(n_processes).unwrap(), n_phases);
    let mut engine = Engine::new(&program, seed);
    let mut rng = SimRng::seed_from_u64(seed ^ 0xC0FF);
    for &pid in corrupt {
        engine.set_state(
            pid,
            PosState {
                sn: Sn::Bot,
                cp: Cp::Error,
                ph: rng.range_u64(0, n_phases as u64) as u32,
                done: false,
                post: false,
            },
        );
    }
    let mut monitor = SweepOracleMonitor::new(&program, Anchor::Free).stop_after(target_phases);
    let config = EngineConfig {
        max_time: Some(Time::new(10_000.0)),
        ..Default::default()
    };
    let out = engine.run(&config, &mut NoFaults, &mut monitor);
    assert_ne!(
        out.reason,
        StopReason::Fixpoint,
        "phase sync must not deadlock"
    );
    PhaseSyncReport {
        phases_completed: monitor.oracle.phases_completed(),
        violations: monitor.oracle.violations().len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_start_synchronizes() {
        let r = run_phase_sync(4, &[], 10, 1);
        assert_eq!(r.phases_completed, 10);
        assert_eq!(r.violations, 0);
    }

    #[test]
    fn initial_corruption_is_tolerated_without_incorrect_phases() {
        for seed in 0..10 {
            let r = run_phase_sync(5, &[1, 3], 10, seed);
            assert_eq!(r.phases_completed, 10, "seed {seed}");
            assert_eq!(
                r.violations, 0,
                "seed {seed}: initial detectable corruption must not break a phase"
            );
        }
    }

    #[test]
    fn heavy_initial_corruption_still_tolerated() {
        // Everyone but the root starts corrupted.
        for seed in 0..5 {
            let r = run_phase_sync(4, &[1, 2, 3], 8, seed);
            assert_eq!(r.phases_completed, 8, "seed {seed}");
            assert_eq!(r.violations, 0, "seed {seed}");
        }
    }

    #[test]
    #[should_panic]
    fn rejects_corrupting_everyone() {
        let _ = run_phase_sync(3, &[0, 1, 2], 5, 0);
    }
}
