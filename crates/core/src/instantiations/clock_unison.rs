//! Clock unison via the barrier program (§7).
//!
//! "In the clock unison problem, every process maintains a bounded-value
//! counter (clock) such that, at all times, the counter at two processes
//! differs by at most one and that, infinitely often, the counter is
//! incremented. … phase i of the computation may be mapped onto the i-th
//! value of the counter. Note that in the absence of undetectable faults,
//! the phases of all processes in the barrier synchronization differ from
//! each other by at most one."
//!
//! The clock of a process is its phase variable; this module provides the
//! unison invariant as a monitor and the stabilization experiment showing
//! that, started from arbitrary clock values, the system reaches (and then
//! keeps) unison while ticking forever.

use crate::sweep::{PosState, SweepBarrier};
use ftbarrier_gcs::{ActionId, Monitor, Pid, Time};

/// Cyclic distance between two counter values modulo `n`.
fn cyclic_distance(a: u32, b: u32, n: u32) -> u32 {
    let d = (a + n - b) % n;
    d.min(n - d)
}

/// Do all worker clocks currently satisfy unison (pairwise cyclic distance
/// at most one)?
pub fn check_unison(program: &SweepBarrier, global: &[PosState]) -> bool {
    let clocks: Vec<u32> = (0..global.len())
        .filter(|&p| program.is_worker(p))
        .map(|p| global[p].ph)
        .collect();
    clocks.iter().all(|&a| {
        clocks
            .iter()
            .all(|&b| cyclic_distance(a, b, program.n_phases) <= 1)
    })
}

/// Monitor that tracks unison violations and clock ticks.
pub struct UnisonMonitor {
    worker: Vec<bool>,
    n_phases: u32,
    /// Transitions observed while unison did not hold.
    pub violations: u64,
    /// Total clock increments observed.
    pub ticks: u64,
    /// Time of the last violation.
    pub last_violation: Option<Time>,
}

impl UnisonMonitor {
    pub fn new(program: &SweepBarrier) -> UnisonMonitor {
        UnisonMonitor {
            worker: (0..program.dag().num_positions())
                .map(|p| program.is_worker(p))
                .collect(),
            n_phases: program.n_phases,
            violations: 0,
            ticks: 0,
            last_violation: None,
        }
    }
}

impl Monitor<PosState> for UnisonMonitor {
    fn on_transition(
        &mut self,
        now: Time,
        pos: Pid,
        _action: ActionId,
        _name: &str,
        old: &PosState,
        new: &PosState,
        global: &[PosState],
    ) {
        if !self.worker[pos] {
            return;
        }
        if old.ph != new.ph {
            self.ticks += 1;
        }
        let clocks: Vec<u32> = (0..global.len())
            .filter(|&p| self.worker[p])
            .map(|p| global[p].ph)
            .collect();
        let ok = clocks.iter().all(|&a| {
            clocks
                .iter()
                .all(|&b| cyclic_distance(a, b, self.n_phases) <= 1)
        });
        if !ok {
            self.violations += 1;
            self.last_violation = Some(now);
        }
    }
}

/// Result of a unison stabilization run.
#[derive(Debug, Clone)]
pub struct UnisonReport {
    pub stabilized: bool,
    pub ticks_after_stabilization: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftbarrier_gcs::{Interleaving, InterleavingConfig, NullMonitor, Protocol};
    use ftbarrier_topology::SweepDag;

    #[test]
    fn cyclic_distance_wraps() {
        assert_eq!(cyclic_distance(0, 7, 8), 1);
        assert_eq!(cyclic_distance(7, 0, 8), 1);
        assert_eq!(cyclic_distance(2, 5, 8), 3);
        assert_eq!(cyclic_distance(3, 3, 8), 0);
    }

    #[test]
    fn fault_free_run_keeps_unison_and_ticks() {
        let program = SweepBarrier::new(SweepDag::ring(4).unwrap(), 8);
        let mut exec = Interleaving::new(&program, InterleavingConfig::default());
        let mut monitor = UnisonMonitor::new(&program);
        exec.run(40_000, &mut monitor);
        assert_eq!(monitor.violations, 0, "unison must hold without faults");
        assert!(monitor.ticks >= 8 * 4, "clocks must tick infinitely often");
    }

    #[test]
    fn stabilizes_to_unison_from_arbitrary_clocks() {
        let program = SweepBarrier::new(SweepDag::tree(8, 2).unwrap(), 16);
        for seed in 0..10 {
            let mut exec = Interleaving::new(
                &program,
                InterleavingConfig {
                    seed,
                    ..Default::default()
                },
            );
            exec.perturb_all();
            let mut silent = NullMonitor;
            exec.run(30_000, &mut silent);
            // After stabilization: unison holds and keeps holding.
            let mut monitor = UnisonMonitor::new(&program);
            assert!(
                check_unison(&program, exec.global()),
                "seed {seed}: not in unison after stabilization window"
            );
            exec.run(30_000, &mut monitor);
            assert_eq!(monitor.violations, 0, "seed {seed}");
            assert!(monitor.ticks > 0, "seed {seed}: clock stopped");
        }
    }

    #[test]
    fn unison_check_flags_divergence() {
        let program = SweepBarrier::new(SweepDag::ring(3).unwrap(), 8);
        let mut g = program.initial_state();
        assert!(check_unison(&program, &g));
        g[2].ph = 4;
        assert!(!check_unison(&program, &g));
        g[2].ph = 1; // adjacent value is fine
        assert!(check_unison(&program, &g));
    }
}
