//! Atomic commitment via the barrier program (§7).
//!
//! "To obtain an atomic commitment program, we allow each subtransaction to
//! change its control position from execute to success if that
//! subtransaction has completed successfully. Otherwise, it changes its
//! control position to error."
//!
//! Transaction `t` maps to phase `t`; a subtransaction failure is exactly a
//! detectable fault at its process. The barrier's masking tolerance then
//! yields the atomic-commit guarantees: a transaction commits only when
//! *all* subtransactions succeeded, and transaction `t+1` runs only after
//! `t` committed (failed attempts are retried, never skipped).

use crate::cb::{Cb, CbDetectableFault, CbState};
use crate::cp::Cp;
use crate::spec::{Anchor, BarrierOracle, OracleConfig};
use ftbarrier_gcs::{ActionId, FaultKind, Interleaving, InterleavingConfig, Monitor, Pid, Time};

/// Outcome of one transaction attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxOutcome {
    /// All subtransactions completed: the transaction committed.
    Committed,
    /// Some subtransaction failed: the attempt aborted (and was retried).
    Aborted,
}

/// Result of an atomic-commitment run.
#[derive(Debug, Clone)]
pub struct CommitReport {
    /// Transactions committed, in order.
    pub committed: u64,
    /// Attempts consumed per committed transaction.
    pub attempts: Vec<u64>,
    /// Attempt log: one entry per closed instance.
    pub log: Vec<(u32, TxOutcome)>,
    /// Whether the run satisfied the commit specification (no transaction
    /// overlap, no skipping an uncommitted transaction).
    pub atomic: bool,
}

struct CommitMonitor {
    oracle: BarrierOracle,
    log: Vec<(u32, TxOutcome)>,
    last_seen: (u64, u64), // (successful, aborted) instance counts
    target: u64,
}

impl CommitMonitor {
    fn sync_log(&mut self) {
        // Translate oracle instance closures into the attempt log.
        let s = self.oracle.successful_instances();
        let a = self.oracle.aborted_instances();
        let (ps, pa) = self.last_seen;
        for _ in ps..s {
            let tx = (self.oracle.phases_completed() as u32).saturating_sub(1);
            self.log.push((tx, TxOutcome::Committed));
        }
        for _ in pa..a {
            let tx = self.oracle.phases_completed() as u32;
            self.log.push((tx, TxOutcome::Aborted));
        }
        self.last_seen = (s, a);
    }
}

impl Monitor<CbState> for CommitMonitor {
    fn on_transition(
        &mut self,
        now: Time,
        pid: Pid,
        _action: ActionId,
        _name: &str,
        old: &CbState,
        new: &CbState,
        _global: &[CbState],
    ) {
        self.oracle.observe_cp(now, pid, new.ph, old.cp, new.cp);
        self.sync_log();
    }

    fn on_fault(
        &mut self,
        now: Time,
        pid: Pid,
        _kind: FaultKind,
        old: &CbState,
        new: &CbState,
        _global: &[CbState],
    ) {
        self.oracle.observe_cp(now, pid, new.ph, old.cp, new.cp);
        self.sync_log();
    }

    fn should_stop(&mut self) -> bool {
        self.oracle.phases_completed() >= self.target
    }
}

/// Run `n_transactions` transactions over `n_processes` participants.
/// `failures` scripts subtransaction failures as `(transaction, pid)` pairs:
/// during the first attempt of that transaction, that participant votes
/// abort (a detectable fault).
pub fn run_transactions(
    n_processes: usize,
    n_transactions: u64,
    failures: &[(u32, Pid)],
    seed: u64,
) -> CommitReport {
    // Use enough phases that transaction indices are unambiguous mod n.
    let n_phases = (2 * n_transactions.max(2)) as u32;
    let cb = Cb::new(n_processes, n_phases);
    let mut exec = Interleaving::new(
        &cb,
        InterleavingConfig {
            seed,
            ..Default::default()
        },
    );
    let mut monitor = CommitMonitor {
        oracle: BarrierOracle::new(OracleConfig {
            n_processes,
            n_phases,
            anchor: Anchor::StrictFromZero,
        }),
        log: Vec::new(),
        last_seen: (0, 0),
        target: n_transactions,
    };
    let fault = CbDetectableFault { n_phases };
    let mut fired: Vec<bool> = vec![false; failures.len()];

    let mut guard = 0u64;
    while monitor.oracle.phases_completed() < n_transactions {
        // Fire scripted failures when their transaction's first attempt is
        // executing.
        let current_tx = monitor.oracle.phases_completed() as u32;
        for (i, &(tx, pid)) in failures.iter().enumerate() {
            if !fired[i] && tx == current_tx && exec.global()[pid].cp == Cp::Execute {
                fired[i] = true;
                exec.apply_fault(pid, &fault, &mut monitor);
            }
        }
        // Step one action at a time so no execute-window is ever missed.
        if exec.run(1, &mut monitor) == 0 {
            break;
        }
        guard += 1;
        assert!(guard < 10_000_000, "atomic commitment made no progress");
    }

    CommitReport {
        committed: monitor.oracle.phases_completed(),
        attempts: monitor.oracle.instance_counts().to_vec(),
        atomic: monitor.oracle.is_clean(),
        log: monitor.log,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failure_free_transactions_commit_first_try() {
        let r = run_transactions(4, 5, &[], 1);
        assert_eq!(r.committed, 5);
        assert!(r.atomic);
        assert_eq!(r.attempts, vec![1, 1, 1, 1, 1]);
        assert!(r.log.iter().all(|&(_, o)| o == TxOutcome::Committed));
    }

    #[test]
    fn failed_subtransaction_forces_retry() {
        // Transaction 1 fails at participant 2 on its first attempt.
        let r = run_transactions(4, 4, &[(1, 2)], 2);
        assert_eq!(r.committed, 4);
        assert!(r.atomic, "retry must not violate atomicity");
        assert_eq!(r.attempts.len(), 4);
        assert!(
            r.attempts[1] >= 2,
            "transaction 1 must need more than one attempt: {:?}",
            r.attempts
        );
        // Other transactions are unaffected.
        assert_eq!(r.attempts[0], 1);
        assert_eq!(r.attempts[3], 1);
        assert!(r.log.contains(&(1, TxOutcome::Aborted)));
    }

    #[test]
    fn multiple_failures_multiple_retries() {
        let r = run_transactions(3, 3, &[(0, 0), (0, 1), (2, 2)], 3);
        assert_eq!(r.committed, 3);
        assert!(r.atomic);
        assert!(r.attempts[0] >= 2);
        assert!(r.attempts[2] >= 2);
    }

    #[test]
    fn commit_order_is_serial() {
        let r = run_transactions(3, 6, &[(1, 0), (3, 1)], 4);
        // Committed transactions appear in strictly increasing order.
        let commits: Vec<u32> = r
            .log
            .iter()
            .filter(|(_, o)| *o == TxOutcome::Committed)
            .map(|&(t, _)| t)
            .collect();
        let mut sorted = commits.clone();
        sorted.sort_unstable();
        assert_eq!(commits, sorted);
        assert_eq!(commits.len(), 6);
    }
}
