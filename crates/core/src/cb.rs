//! Program CB — the coarse-grain solution (§3).
//!
//! Each process `j` holds a control position `cp.j`, a phase number `ph.j`,
//! and (our explicit modeling of "j executes its phase") a `done` bit set by
//! a unit-cost `WORK` action. The four guarded actions are the paper's,
//! verbatim:
//!
//! ```text
//! CB1 :: cp.j = ready ∧ ((∀k :: cp.k = ready) ∨ (∃k :: cp.k = execute)) → cp.j := execute
//! CB2 :: cp.j = execute ∧ ((∀k :: cp.k ≠ ready) ∨ (∃k :: cp.k = success)) → cp.j := success
//! CB3 :: cp.j = success ∧ (∀k :: cp.k ≠ execute) →
//!            if (∃k :: cp.k = ready) then ph.j := (any k : cp.k = ready : ph.k)
//!            elseif (∀k :: cp.k = success) then ph.j := ph.j + 1;
//!            cp.j := ready
//! CB4 :: cp.j = error ∧ (∀k :: cp.k ≠ execute) →
//!            if (∃k :: cp.k = ready) then ph.j := (any k : cp.k = ready : ph.k)
//!            elseif (∃k :: cp.k = success) then ph.j := (any k : cp.k = success : ph.k)
//!            else ph.j := arbitrary;
//!            cp.j := ready
//! ```
//!
//! (CB2 additionally waits for the process's own phase body to finish —
//! `done` — which the paper leaves implicit in "j executes its phase, and
//! changes its control position to success".)
//!
//! Guards read the *entire* global state instantaneously; §4 refines that
//! away. CB is used here for the correctness arguments (Lemmas 3.1–3.4 as
//! tests) and as the reference behaviour for the refined programs.

use crate::cp::Cp;
use ftbarrier_gcs::{ActionId, FaultAction, FaultKind, Pid, Protocol, SimRng, Time};

/// Per-process state of CB.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CbState {
    pub cp: Cp,
    /// Current phase, in `0..n_phases` (modulo arithmetic).
    pub ph: u32,
    /// Whether the body of the current phase has been executed.
    pub done: bool,
}

/// The CB program.
#[derive(Debug, Clone)]
pub struct Cb {
    pub n_processes: usize,
    /// Length of the cyclic phase sequence (the paper's `n`, at least 2).
    pub n_phases: u32,
    /// Cost of one control transition (global read + local write).
    pub comm_cost: Time,
    /// Cost of executing one phase body (the paper's unit time).
    pub work_cost: Time,
}

/// Action indices.
pub const CB1: ActionId = 0;
pub const CB2: ActionId = 1;
pub const CB3: ActionId = 2;
pub const CB4: ActionId = 3;
pub const WORK: ActionId = 4;

impl Cb {
    pub fn new(n_processes: usize, n_phases: u32) -> Cb {
        assert!(n_processes >= 2);
        assert!(n_phases >= 2, "the paper assumes at least two phases (§3)");
        Cb {
            n_processes,
            n_phases,
            comm_cost: Time::ZERO,
            work_cost: Time::new(1.0),
        }
    }

    pub fn with_costs(mut self, comm: Time, work: Time) -> Cb {
        self.comm_cost = comm;
        self.work_cost = work;
        self
    }

    fn all(&self, g: &[CbState], pred: impl Fn(&CbState) -> bool) -> bool {
        g.iter().all(pred)
    }

    fn exists(&self, g: &[CbState], pred: impl Fn(&CbState) -> bool) -> bool {
        g.iter().any(pred)
    }

    /// `(any k : cp.k = target : ph.k)` — a uniformly random process with the
    /// given control position, or an arbitrary phase if none exists.
    fn any_phase_with(&self, g: &[CbState], target: Cp, rng: &mut SimRng) -> u32 {
        let candidates: Vec<u32> = g.iter().filter(|s| s.cp == target).map(|s| s.ph).collect();
        if candidates.is_empty() {
            rng.range_u64(0, self.n_phases as u64) as u32
        } else {
            *rng.choose(&candidates)
        }
    }
}

impl Protocol for Cb {
    type State = CbState;

    fn num_processes(&self) -> usize {
        self.n_processes
    }

    fn num_actions(&self, _pid: Pid) -> usize {
        5
    }

    fn action_name(&self, _pid: Pid, action: ActionId) -> &'static str {
        match action {
            CB1 => "CB1",
            CB2 => "CB2",
            CB3 => "CB3",
            CB4 => "CB4",
            WORK => "WORK",
            _ => unreachable!("CB has 5 actions"),
        }
    }

    fn enabled(&self, g: &[CbState], pid: Pid, action: ActionId) -> bool {
        let s = &g[pid];
        match action {
            CB1 => {
                s.cp == Cp::Ready
                    && (self.all(g, |k| k.cp == Cp::Ready)
                        || self.exists(g, |k| k.cp == Cp::Execute))
            }
            CB2 => {
                s.cp == Cp::Execute
                    && s.done
                    && (self.all(g, |k| k.cp != Cp::Ready)
                        || self.exists(g, |k| k.cp == Cp::Success))
            }
            CB3 => s.cp == Cp::Success && self.all(g, |k| k.cp != Cp::Execute),
            CB4 => s.cp == Cp::Error && self.all(g, |k| k.cp != Cp::Execute),
            WORK => s.cp == Cp::Execute && !s.done,
            _ => false,
        }
    }

    fn execute(&self, g: &[CbState], pid: Pid, action: ActionId, rng: &mut SimRng) -> CbState {
        let mut s = g[pid];
        match action {
            CB1 => {
                s.cp = Cp::Execute;
                s.done = false;
            }
            CB2 => {
                s.cp = Cp::Success;
            }
            CB3 => {
                if self.exists(g, |k| k.cp == Cp::Ready) {
                    s.ph = self.any_phase_with(g, Cp::Ready, rng);
                } else if self.all(g, |k| k.cp == Cp::Success) {
                    s.ph = (s.ph + 1) % self.n_phases;
                }
                // else: some process is in error — keep ph, re-execute.
                s.cp = Cp::Ready;
            }
            CB4 => {
                if self.exists(g, |k| k.cp == Cp::Ready) {
                    s.ph = self.any_phase_with(g, Cp::Ready, rng);
                } else if self.exists(g, |k| k.cp == Cp::Success) {
                    s.ph = self.any_phase_with(g, Cp::Success, rng);
                } else {
                    // Phase of all processes corrupted: choose arbitrarily.
                    s.ph = rng.range_u64(0, self.n_phases as u64) as u32;
                }
                s.cp = Cp::Ready;
            }
            WORK => {
                s.done = true;
            }
            _ => unreachable!("CB has 5 actions"),
        }
        s
    }

    fn cost(&self, _pid: Pid, action: ActionId) -> Time {
        if action == WORK {
            self.work_cost
        } else {
            self.comm_cost
        }
    }

    fn initial_state(&self) -> Vec<CbState> {
        // "Initially, phase.(n-1) has executed successfully and each process
        // is thus ready to execute phase.0."
        vec![
            CbState {
                cp: Cp::Ready,
                ph: 0,
                done: true,
            };
            self.n_processes
        ]
    }

    fn arbitrary_state(&self, _pid: Pid, rng: &mut SimRng) -> CbState {
        CbState {
            cp: *rng.choose(&Cp::CB_DOMAIN),
            ph: rng.range_u64(0, self.n_phases as u64) as u32,
            done: rng.chance(0.5),
        }
    }
}

/// The detectable fault of §3: `true → ph.j, cp.j := ?, error`.
#[derive(Debug, Clone, Copy)]
pub struct CbDetectableFault {
    pub n_phases: u32,
}

impl FaultAction<CbState> for CbDetectableFault {
    fn kind(&self) -> FaultKind {
        FaultKind::Detectable
    }

    fn apply(&self, _pid: Pid, state: &mut CbState, rng: &mut SimRng) {
        state.ph = rng.range_u64(0, self.n_phases as u64) as u32;
        state.cp = Cp::Error;
        state.done = false;
    }
}

/// The undetectable fault of §3: `true → ph.j, cp.j := ?, ?`.
#[derive(Debug, Clone, Copy)]
pub struct CbUndetectableFault {
    pub n_phases: u32,
}

impl FaultAction<CbState> for CbUndetectableFault {
    fn kind(&self) -> FaultKind {
        FaultKind::Undetectable
    }

    fn apply(&self, _pid: Pid, state: &mut CbState, rng: &mut SimRng) {
        state.ph = rng.range_u64(0, self.n_phases as u64) as u32;
        state.cp = *rng.choose(&Cp::CB_DOMAIN);
        state.done = rng.chance(0.5);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Anchor, BarrierOracle, OracleConfig};
    use ftbarrier_gcs::{Interleaving, InterleavingConfig, Monitor, NullMonitor};

    /// Monitor adapter feeding CB transitions into the oracle.
    pub struct CbOracle {
        pub oracle: BarrierOracle,
    }

    impl Monitor<CbState> for CbOracle {
        fn on_transition(
            &mut self,
            now: Time,
            pid: Pid,
            _action: ActionId,
            _name: &str,
            old: &CbState,
            new: &CbState,
            _global: &[CbState],
        ) {
            self.oracle.observe_cp(now, pid, new.ph, old.cp, new.cp);
        }

        fn on_fault(
            &mut self,
            now: Time,
            pid: Pid,
            _kind: FaultKind,
            old: &CbState,
            new: &CbState,
            _global: &[CbState],
        ) {
            self.oracle.observe_cp(now, pid, new.ph, old.cp, new.cp);
        }
    }

    fn oracle_for(n: usize, n_phases: u32, anchor: Anchor) -> CbOracle {
        CbOracle {
            oracle: BarrierOracle::new(OracleConfig {
                n_processes: n,
                n_phases,
                anchor,
            }),
        }
    }

    #[test]
    fn lemma_3_1_no_faults_satisfies_spec() {
        // Safety + Progress in the absence of faults, under many schedules.
        let cb = Cb::new(4, 3);
        for seed in 0..25 {
            let mut exec = Interleaving::new(
                &cb,
                InterleavingConfig {
                    seed,
                    ..Default::default()
                },
            );
            let mut mon = oracle_for(4, 3, Anchor::StrictFromZero);
            let done = exec.run_until(100_000, &mut mon, |_| false);
            assert!(done.is_none(), "CB must never reach a fixpoint");
            assert!(
                mon.oracle.is_clean(),
                "seed {seed}: {:?}",
                mon.oracle.violations()
            );
            assert!(
                mon.oracle.phases_completed() >= 100,
                "seed {seed}: progress too slow ({} phases)",
                mon.oracle.phases_completed()
            );
            // Without faults every phase takes exactly one instance.
            assert!(mon.oracle.instance_counts().iter().all(|&c| c == 1));
        }
    }

    #[test]
    fn lemma_3_2_masking_under_detectable_faults() {
        let cb = Cb::new(4, 3);
        let fault = CbDetectableFault { n_phases: 3 };
        for seed in 0..25 {
            let mut exec = Interleaving::new(
                &cb,
                InterleavingConfig {
                    seed,
                    ..Default::default()
                },
            );
            let mut mon = oracle_for(4, 3, Anchor::StrictFromZero);
            // Interleave program steps with periodic detectable faults.
            for round in 0..40 {
                exec.run(200, &mut mon);
                let victim = (seed as usize + round) % 4;
                exec.apply_fault(victim, &fault, &mut mon);
            }
            exec.run(5_000, &mut mon);
            assert!(
                mon.oracle.is_clean(),
                "seed {seed}: detectable faults must be masked: {:?}",
                mon.oracle.violations()
            );
            assert!(
                mon.oracle.phases_completed() >= 3,
                "seed {seed}: no progress"
            );
        }
    }

    #[test]
    fn lemma_3_3_stabilizes_from_arbitrary_states() {
        let cb = Cb::new(5, 4);
        for seed in 0..25 {
            let mut exec = Interleaving::new(
                &cb,
                InterleavingConfig {
                    seed,
                    ..Default::default()
                },
            );
            exec.perturb_all();
            let mut silent = NullMonitor;
            // Let the program stabilize without judging the interim, then
            // attach the oracle at an instance boundary (a start state: all
            // processes ready in one phase) so mid-instance state does not
            // confuse it.
            let settled = exec.run_until(50_000, &mut silent, |g| {
                g.iter().all(|s| s.cp == Cp::Ready && s.ph == g[0].ph)
            });
            assert!(
                settled.is_some(),
                "seed {seed}: never reached a start state"
            );
            // From here on, the specification must hold.
            let mut mon = oracle_for(5, 4, Anchor::Free);
            exec.run(50_000, &mut mon);
            assert!(
                mon.oracle.is_clean(),
                "seed {seed}: post-stabilization violations: {:?}",
                mon.oracle.violations()
            );
            assert!(
                mon.oracle.phases_completed() >= 10,
                "seed {seed}: no post-recovery progress"
            );
        }
    }

    #[test]
    fn lemma_3_4_at_most_m_phases_executed_incorrectly() {
        // Perturb into m distinct phases; the incorrectly executed phases
        // are confined to those m phases plus, at most, the successor of a
        // perturbed phase: an instance in flight at perturbation time may
        // complete into `ph + 1`, and the free-anchor oracle attributes the
        // resulting violation to that successor label.
        let n_phases = 8u32;
        let cb = Cb::new(5, n_phases);
        for seed in 100..130 {
            let mut exec = Interleaving::new(
                &cb,
                InterleavingConfig {
                    seed,
                    ..Default::default()
                },
            );
            exec.perturb_all();
            let perturbed = {
                let mut phases: Vec<u32> = exec.global().iter().map(|s| s.ph).collect();
                phases.sort_unstable();
                phases.dedup();
                phases
            };
            let m = perturbed.len();
            let mut mon = oracle_for(5, n_phases, Anchor::Free);
            exec.run(50_000, &mut mon);
            let wrong = mon.oracle.distinct_violated_phases();
            assert!(
                wrong <= m + 1,
                "seed {seed}: {wrong} phases executed incorrectly, perturbed into {m}"
            );
            for v in mon.oracle.violations() {
                let ph = v.phase();
                let reachable = perturbed
                    .iter()
                    .any(|&p| ph == p || ph == (p + 1) % n_phases);
                assert!(
                    reachable,
                    "seed {seed}: violation in phase {ph}, \
                     not a perturbed phase or its successor ({perturbed:?})"
                );
            }
        }
    }

    #[test]
    fn initial_state_is_start_state() {
        let cb = Cb::new(3, 2);
        let g = cb.initial_state();
        assert!(g.iter().all(|s| s.cp == Cp::Ready && s.ph == 0 && s.done));
        // CB1 is enabled everywhere; nothing else is.
        for pid in 0..3 {
            assert!(cb.enabled(&g, pid, CB1));
            for a in [CB2, CB3, CB4, WORK] {
                assert!(!cb.enabled(&g, pid, a));
            }
        }
    }

    #[test]
    fn cb2_waits_for_work() {
        let cb = Cb::new(2, 2);
        let mut g = cb.initial_state();
        g[0].cp = Cp::Execute;
        g[0].done = false;
        g[1].cp = Cp::Execute;
        g[1].done = false;
        assert!(!cb.enabled(&g, 0, CB2));
        assert!(cb.enabled(&g, 0, WORK));
        g[0].done = true;
        assert!(cb.enabled(&g, 0, CB2));
    }

    #[test]
    fn cb2_restriction_blocks_premature_success() {
        // The §3 scenario: j=execute(done), k=ready — CB2 must be disabled
        // (k might be recovering from a detectable fault).
        let cb = Cb::new(2, 2);
        let mut g = cb.initial_state();
        g[0].cp = Cp::Execute;
        g[0].done = true;
        g[1].cp = Cp::Ready;
        assert!(!cb.enabled(&g, 0, CB2));
        // Once k starts executing, j may proceed.
        g[1].cp = Cp::Execute;
        assert!(cb.enabled(&g, 0, CB2));
    }

    #[test]
    fn cb3_blocked_while_someone_executes() {
        let cb = Cb::new(2, 2);
        let mut g = cb.initial_state();
        g[0].cp = Cp::Success;
        g[1].cp = Cp::Execute;
        assert!(!cb.enabled(&g, 0, CB3));
        g[1].cp = Cp::Success;
        assert!(cb.enabled(&g, 0, CB3));
    }

    #[test]
    fn cb3_increments_phase_only_when_all_success() {
        let cb = Cb::new(3, 5);
        let mut rng = SimRng::seed_from_u64(0);
        let mut g = vec![
            CbState {
                cp: Cp::Success,
                ph: 2,
                done: true
            };
            3
        ];
        let s = cb.execute(&g, 0, CB3, &mut rng);
        assert_eq!(s.ph, 3);
        assert_eq!(s.cp, Cp::Ready);
        // With an error present, the phase must not advance.
        g[2].cp = Cp::Error;
        let s = cb.execute(&g, 0, CB3, &mut rng);
        assert_eq!(
            s.ph, 2,
            "phase must be re-executed after a detectable fault"
        );
    }

    #[test]
    fn cb3_follows_a_ready_process() {
        let cb = Cb::new(3, 5);
        let mut rng = SimRng::seed_from_u64(0);
        let mut g = vec![
            CbState {
                cp: Cp::Success,
                ph: 2,
                done: true
            };
            3
        ];
        g[1] = CbState {
            cp: Cp::Ready,
            ph: 3,
            done: true,
        };
        let s = cb.execute(&g, 0, CB3, &mut rng);
        assert_eq!(s.ph, 3, "must copy the phase of the ready process");
    }

    #[test]
    fn cb4_copies_ready_then_success_then_arbitrary() {
        let cb = Cb::new(3, 7);
        let mut rng = SimRng::seed_from_u64(0);
        // Ready present.
        let g = vec![
            CbState {
                cp: Cp::Error,
                ph: 0,
                done: false,
            },
            CbState {
                cp: Cp::Ready,
                ph: 4,
                done: true,
            },
            CbState {
                cp: Cp::Success,
                ph: 5,
                done: true,
            },
        ];
        let s = cb.execute(&g, 0, CB4, &mut rng);
        assert_eq!((s.cp, s.ph), (Cp::Ready, 4));
        // Only success present.
        let g = vec![
            CbState {
                cp: Cp::Error,
                ph: 0,
                done: false,
            },
            CbState {
                cp: Cp::Error,
                ph: 1,
                done: false,
            },
            CbState {
                cp: Cp::Success,
                ph: 5,
                done: true,
            },
        ];
        let s = cb.execute(&g, 0, CB4, &mut rng);
        assert_eq!((s.cp, s.ph), (Cp::Ready, 5));
        // Everyone corrupted: phase becomes arbitrary but valid.
        let g = vec![
            CbState {
                cp: Cp::Error,
                ph: 0,
                done: false
            };
            3
        ];
        let s = cb.execute(&g, 0, CB4, &mut rng);
        assert_eq!(s.cp, Cp::Ready);
        assert!(s.ph < 7);
    }

    #[test]
    fn detectable_fault_sets_error() {
        let fault = CbDetectableFault { n_phases: 4 };
        let mut rng = SimRng::seed_from_u64(9);
        let mut s = CbState {
            cp: Cp::Execute,
            ph: 1,
            done: true,
        };
        fault.apply(0, &mut s, &mut rng);
        assert_eq!(s.cp, Cp::Error);
        assert!(!s.done);
        assert!(s.ph < 4);
        assert_eq!(fault.kind(), FaultKind::Detectable);
    }

    #[test]
    fn undetectable_fault_stays_in_domain() {
        let fault = CbUndetectableFault { n_phases: 4 };
        let mut rng = SimRng::seed_from_u64(10);
        for _ in 0..100 {
            let mut s = CbState {
                cp: Cp::Ready,
                ph: 0,
                done: true,
            };
            fault.apply(0, &mut s, &mut rng);
            assert!(Cp::CB_DOMAIN.contains(&s.cp));
            assert!(s.ph < 4);
        }
        assert_eq!(fault.kind(), FaultKind::Undetectable);
    }
}
