//! Sequence numbers for the token ring substrate (§4.1).
//!
//! "Each process j maintains a sequence number `sn.j`, which is in the domain
//! `{0..K-1}` for some `K > N` in the absence of detectable faults. To handle
//! detectable faults, two special values ⊥ and ⊤ are added to the domain:
//! when the sequence number of a process is corrupted, it is set to ⊥, and
//! the sequence number ⊤ is used to detect whether [all processes have been
//! corrupted]."
//!
//! Arithmetic on sequence numbers is modulo `K` (the paper's context-
//! sensitive `+`); the modulus travels with the operations, not the value, so
//! the same type serves the ring's `K > N` domain and MB's `L > 2N+1` domain.

use std::fmt;

/// A domain parameter violated one of the paper's correctness preconditions.
///
/// The stabilization proofs lean on the sequence-number domain being large
/// enough to disambiguate phases: the ring needs `K > N` (and in any case
/// `K ≥ 2`, or `sn + 1 = sn` and T1/T2 can never distinguish "behind" from
/// "caught up"), and MB needs `L > 2N + 1` so a forged in-flight `sn` outside
/// the active window is discarded rather than adopted. Constructors that take
/// these parameters validate them eagerly and return this error instead of
/// silently wrapping into a domain where the proofs no longer hold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DomainError {
    /// A ring-style modulus `K` that is too small for the instance.
    KTooSmall {
        /// The rejected modulus.
        k: u32,
        /// The smallest acceptable modulus for this instance.
        min: u32,
    },
    /// An MB-style sequence-number domain `L ≤ 2N + 1`.
    LTooSmall {
        /// The rejected domain size.
        l: u32,
        /// The smallest acceptable domain size (`2N + 2`).
        min: u32,
    },
}

impl fmt::Display for DomainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DomainError::KTooSmall { k, min } => {
                write!(
                    f,
                    "sequence-number modulus K = {k} too small (need K ≥ {min})"
                )
            }
            DomainError::LTooSmall { l, min } => {
                write!(
                    f,
                    "MB sequence-number domain L = {l} too small (need L ≥ {min}, i.e. L > 2N+1)"
                )
            }
        }
    }
}

impl std::error::Error for DomainError {}

/// Validate a ring-style modulus: `K ≥ 2` always, and `K ≥ min` for the
/// instance at hand (the ring's precondition is `K > N`, so callers pass
/// `min = N + 1`). Returns the modulus unchanged on success.
pub fn validate_modulus(k: u32, min: u32) -> Result<u32, DomainError> {
    let min = min.max(2);
    if k < min {
        return Err(DomainError::KTooSmall { k, min });
    }
    Ok(k)
}

/// A sequence number: a value in `{0..K-1}` or one of the flags ⊥ / ⊤.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sn {
    /// ⊥ — this process's sequence number was detectably corrupted.
    Bot,
    /// ⊤ — corruption repair marker (wave toward the root when everything
    /// was corrupted at once).
    Top,
    /// An ordinary sequence number.
    Val(u32),
}

impl Sn {
    /// Is this an ordinary (non-⊥, non-⊤) value? The paper writes this
    /// condition as `sn.j ≠ ⊥ ∧ sn.j ≠ ⊤`.
    #[inline]
    pub fn is_valid(self) -> bool {
        matches!(self, Sn::Val(_))
    }

    /// The ordinary value, if any.
    #[inline]
    pub fn value(self) -> Option<u32> {
        match self {
            Sn::Val(v) => Some(v),
            _ => None,
        }
    }

    /// Successor modulo `k` (the paper's `sn.N + 1`). Panics on ⊥/⊤ — the
    /// guards of T1/T2 ensure those never reach arithmetic. The value itself
    /// may be *outside* `{0..K-1}` (an undetectable fault can forge any bit
    /// pattern), so the increment is widened before the reduction rather than
    /// trusting `v < k`.
    #[inline]
    pub fn next(self, k: u32) -> Sn {
        match self {
            Sn::Val(v) => Sn::Val(((v as u64 + 1) % k as u64) as u32),
            flag => panic!("next() on flag sequence number {flag}"),
        }
    }

    /// Uniformly random element of the *entire* domain (including ⊥ and ⊤) —
    /// what an undetectable fault writes.
    pub fn arbitrary(k: u32, rng: &mut ftbarrier_gcs::SimRng) -> Sn {
        match rng.below(k as usize + 2) {
            0 => Sn::Bot,
            1 => Sn::Top,
            i => Sn::Val((i - 2) as u32),
        }
    }
}

impl fmt::Display for Sn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sn::Bot => f.write_str("⊥"),
            Sn::Top => f.write_str("⊤"),
            Sn::Val(v) => write!(f, "{v}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftbarrier_gcs::SimRng;

    #[test]
    fn validity() {
        assert!(Sn::Val(0).is_valid());
        assert!(!Sn::Bot.is_valid());
        assert!(!Sn::Top.is_valid());
        assert_eq!(Sn::Val(3).value(), Some(3));
        assert_eq!(Sn::Top.value(), None);
    }

    #[test]
    fn next_wraps_modulo_k() {
        assert_eq!(Sn::Val(3).next(5), Sn::Val(4));
        assert_eq!(Sn::Val(4).next(5), Sn::Val(0));
    }

    #[test]
    #[should_panic]
    fn next_rejects_flags() {
        let _ = Sn::Bot.next(5);
    }

    /// Pinned by the corruption campaign: a forged `sn` can hold any bit
    /// pattern, and `next()` used to compute `(v + 1) % k` in u32, which
    /// overflows (debug panic) for `v = u32::MAX`.
    #[test]
    fn next_survives_forged_out_of_domain_values() {
        // 2^32 mod 5 = 1.
        assert_eq!(Sn::Val(u32::MAX).next(5), Sn::Val(1));
        // An in-domain-but-maximal value still wraps normally.
        assert_eq!(Sn::Val(4).next(5), Sn::Val(0));
    }

    #[test]
    fn validate_modulus_enforces_preconditions() {
        assert_eq!(
            validate_modulus(1, 0),
            Err(DomainError::KTooSmall { k: 1, min: 2 })
        );
        assert_eq!(
            validate_modulus(3, 5),
            Err(DomainError::KTooSmall { k: 3, min: 5 })
        );
        assert_eq!(validate_modulus(5, 5), Ok(5));
        assert_eq!(validate_modulus(2, 0), Ok(2));
        let msg = DomainError::KTooSmall { k: 1, min: 2 }.to_string();
        assert!(msg.contains("K = 1"), "{msg}");
    }

    #[test]
    fn arbitrary_covers_whole_domain() {
        let mut rng = SimRng::seed_from_u64(5);
        let mut saw_bot = false;
        let mut saw_top = false;
        let mut saw_every_val = [false; 4];
        for _ in 0..1000 {
            match Sn::arbitrary(4, &mut rng) {
                Sn::Bot => saw_bot = true,
                Sn::Top => saw_top = true,
                Sn::Val(v) => {
                    assert!(v < 4);
                    saw_every_val[v as usize] = true;
                }
            }
        }
        assert!(saw_bot && saw_top && saw_every_val.iter().all(|&b| b));
    }
}
