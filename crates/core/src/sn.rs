//! Sequence numbers for the token ring substrate (§4.1).
//!
//! "Each process j maintains a sequence number `sn.j`, which is in the domain
//! `{0..K-1}` for some `K > N` in the absence of detectable faults. To handle
//! detectable faults, two special values ⊥ and ⊤ are added to the domain:
//! when the sequence number of a process is corrupted, it is set to ⊥, and
//! the sequence number ⊤ is used to detect whether [all processes have been
//! corrupted]."
//!
//! Arithmetic on sequence numbers is modulo `K` (the paper's context-
//! sensitive `+`); the modulus travels with the operations, not the value, so
//! the same type serves the ring's `K > N` domain and MB's `L > 2N+1` domain.

use std::fmt;

/// A sequence number: a value in `{0..K-1}` or one of the flags ⊥ / ⊤.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sn {
    /// ⊥ — this process's sequence number was detectably corrupted.
    Bot,
    /// ⊤ — corruption repair marker (wave toward the root when everything
    /// was corrupted at once).
    Top,
    /// An ordinary sequence number.
    Val(u32),
}

impl Sn {
    /// Is this an ordinary (non-⊥, non-⊤) value? The paper writes this
    /// condition as `sn.j ≠ ⊥ ∧ sn.j ≠ ⊤`.
    #[inline]
    pub fn is_valid(self) -> bool {
        matches!(self, Sn::Val(_))
    }

    /// The ordinary value, if any.
    #[inline]
    pub fn value(self) -> Option<u32> {
        match self {
            Sn::Val(v) => Some(v),
            _ => None,
        }
    }

    /// Successor modulo `k` (the paper's `sn.N + 1`). Panics on ⊥/⊤ — the
    /// guards of T1/T2 ensure those never reach arithmetic.
    #[inline]
    pub fn next(self, k: u32) -> Sn {
        match self {
            Sn::Val(v) => Sn::Val((v + 1) % k),
            flag => panic!("next() on flag sequence number {flag}"),
        }
    }

    /// Uniformly random element of the *entire* domain (including ⊥ and ⊤) —
    /// what an undetectable fault writes.
    pub fn arbitrary(k: u32, rng: &mut ftbarrier_gcs::SimRng) -> Sn {
        match rng.below(k as usize + 2) {
            0 => Sn::Bot,
            1 => Sn::Top,
            i => Sn::Val((i - 2) as u32),
        }
    }
}

impl fmt::Display for Sn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sn::Bot => f.write_str("⊥"),
            Sn::Top => f.write_str("⊤"),
            Sn::Val(v) => write!(f, "{v}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftbarrier_gcs::SimRng;

    #[test]
    fn validity() {
        assert!(Sn::Val(0).is_valid());
        assert!(!Sn::Bot.is_valid());
        assert!(!Sn::Top.is_valid());
        assert_eq!(Sn::Val(3).value(), Some(3));
        assert_eq!(Sn::Top.value(), None);
    }

    #[test]
    fn next_wraps_modulo_k() {
        assert_eq!(Sn::Val(3).next(5), Sn::Val(4));
        assert_eq!(Sn::Val(4).next(5), Sn::Val(0));
    }

    #[test]
    #[should_panic]
    fn next_rejects_flags() {
        let _ = Sn::Bot.next(5);
    }

    #[test]
    fn arbitrary_covers_whole_domain() {
        let mut rng = SimRng::seed_from_u64(5);
        let mut saw_bot = false;
        let mut saw_top = false;
        let mut saw_every_val = [false; 4];
        for _ in 0..1000 {
            match Sn::arbitrary(4, &mut rng) {
                Sn::Bot => saw_bot = true,
                Sn::Top => saw_top = true,
                Sn::Val(v) => {
                    assert!(v < 4);
                    saw_every_val[v as usize] = true;
                }
            }
        }
        assert!(saw_bot && saw_top && saw_every_val.iter().all(|&b| b));
    }
}
