//! Dynamic membership for the engine backend: fail-stop crashes, token-
//! timeout detection, topology repair, and reboot rejoin.
//!
//! The phase experiments in [`crate::sim`] run a *fixed* membership — a
//! permanently crashed process would stall the sweep forever. This module
//! adds the reconfiguration layer of the paper's §2/§7 fault class (fail-stop
//! *and repair*): a scripted churn plan crashes and reboots processes at
//! virtual times, and the driver detects each stall, splices the dead process
//! out of the topology ([`ftbarrier_topology::Membership`]), and completes
//! the barrier with the surviving set.
//!
//! The run is segmented at every churn event and every reconfiguration. Each
//! segment executes the sweep program over the current membership view, with
//! crashed-but-undetected processes masked fail-stop
//! ([`ftbarrier_gcs::Masked`]: state readable, actions disabled). Detection
//! is the token timeout superposed on T1–T5: at a masked fixpoint nothing
//! can move, and the positions whose (unmasked) guards are still enabled are
//! exactly the dead ones a timeout detector would suspect — the driver
//! charges the configured [`ChurnExperiment::token_timeout`] to the clock
//! and splices those owners out. The repaired view's root is marked with the
//! detectable-fault state (`sn = ⊥, cp = error`): per §4.1 the sweep
//! regenerates the token from the root (`root_recv_sn` adopts a sink's
//! sequence number) and at worst re-executes one phase — graceful
//! degradation, never deadlock.
//!
//! A rebooted process rejoins at a phase boundary: its positions are grafted
//! back into the view with `cp = ready` and `sn`/`ph` adopted from the
//! upstream neighbor, so the next sweep flows through it; the root is again
//! poisoned to force resynchronization within one re-executed phase. A
//! process that reboots *before* the detector fires rejoins in place — its
//! positions restart in the detectable-fault state (memory lost, §4.1's
//! crash/reboot) and no epoch is bumped.
//!
//! With an empty churn plan the driver is byte-identical to a plain
//! [`Engine`] run of the bare program — the differential tests in
//! `crates/core/tests/differential.rs` pin this down.

use std::collections::BTreeSet;

use crate::cp::Cp;
use crate::sim::{SweepOracleMonitor, TopologySpec};
use crate::sn::Sn;
use crate::spec::Anchor;
use crate::sweep::{PosState, SweepBarrier, RECV};
use ftbarrier_gcs::fault::NoFaults;
use ftbarrier_gcs::trace::TraceEvent;
use ftbarrier_gcs::{
    ActionId, Engine, EngineConfig, Masked, Monitor, MonitorSet, Pid, StopReason, Time, Trace,
};
use ftbarrier_telemetry::{names, Telemetry};
use ftbarrier_topology::membership::Membership;

/// One scripted churn event, at a virtual time from the start of the run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChurnEvent {
    /// Fail-stop crash of a (base) process: its state freezes and its
    /// actions stop executing. Detected only when the sweep stalls on it.
    Crash { at: f64, pid: usize },
    /// Reboot of a previously crashed process with its memory lost.
    Reboot { at: f64, pid: usize },
}

impl ChurnEvent {
    pub fn at(self) -> f64 {
        match self {
            ChurnEvent::Crash { at, .. } | ChurnEvent::Reboot { at, .. } => at,
        }
    }
}

/// A churn experiment over one topology.
#[derive(Debug, Clone)]
pub struct ChurnExperiment {
    pub topology: TopologySpec,
    pub n_phases: u32,
    /// Communication latency `c` per hop.
    pub c: f64,
    pub seed: u64,
    /// Stop once this many successful phases completed (across all views).
    pub target_phases: u64,
    /// Virtual-time horizon for the whole run.
    pub horizon: f64,
    /// Modeled latency of the token-timeout detector: charged to the clock
    /// between a stall and the repaired view taking effect.
    pub token_timeout: f64,
    /// The churn plan, in any order (sorted internally by time).
    pub events: Vec<ChurnEvent>,
    /// Record the full engine trace (for differential tests).
    pub record_trace: bool,
}

impl Default for ChurnExperiment {
    fn default() -> Self {
        ChurnExperiment {
            topology: TopologySpec::Ring { n: 16 },
            n_phases: 8,
            c: 0.01,
            seed: 0xC0_FFEE,
            target_phases: 200,
            horizon: 600.0,
            token_timeout: 2.0,
            events: Vec::new(),
            record_trace: false,
        }
    }
}

/// What a churn run measured.
#[derive(Debug, Clone)]
pub struct ChurnMeasurement {
    /// Successful phases completed across all membership views.
    pub phases: u64,
    /// Oracle violations across all segments (transients around
    /// reconfigurations are expected; fault-free runs must report zero).
    pub violations: usize,
    /// Processes spliced out after a token-timeout suspicion.
    pub suspicions: u64,
    /// Processes readmitted (graft after detection, or in-place reboot).
    pub rejoins: u64,
    /// Final membership epoch.
    pub epoch: u64,
    /// Latency of each reconfiguration (stall → repaired view in effect).
    pub reconfig_latencies: Vec<f64>,
    /// Virtual time consumed.
    pub elapsed: f64,
    /// Successful phases completed after the last membership change.
    pub phases_after_last_change: u64,
    /// Virtual-time span from the last membership change to the end.
    pub span_after_last_change: f64,
    /// RECV executions per *base* process after the last membership change —
    /// nonzero entries are the processes actually participating in the final
    /// view's sweeps.
    pub recv_after_last_change: Vec<u64>,
    /// Base pids alive at the end of the run.
    pub final_live: Vec<usize>,
    /// Final per-position states, indexed by base position.
    pub final_states: Vec<PosState>,
    /// Engine trace (only when [`ChurnExperiment::record_trace`]; times are
    /// per-segment, matching a plain engine run when no churn occurred).
    pub trace: Vec<TraceEvent<PosState>>,
}

impl ChurnMeasurement {
    /// Fraction of expected phases the surviving set completed after the
    /// last membership change, against a fault-free run of the repaired
    /// topology over the same span.
    pub fn post_change_completion(&self, expected: u64) -> f64 {
        if expected == 0 {
            return 1.0;
        }
        self.phases_after_last_change as f64 / expected as f64
    }
}

/// Per-position RECV counter, folded to base pids through the view map.
struct RecvCounter {
    /// view position → base pid
    owner_base: Vec<usize>,
    counts: Vec<u64>,
}

impl Monitor<PosState> for RecvCounter {
    fn on_transition(
        &mut self,
        _now: Time,
        pos: Pid,
        action: ActionId,
        _name: &str,
        _old: &PosState,
        _new: &PosState,
        _global: &[PosState],
    ) {
        if action == RECV {
            self.counts[self.owner_base[pos]] += 1;
        }
    }
}

/// The detectable-fault state of §4.1: `sn = ⊥, cp = error`. Applied to the
/// root to (re)start a sweep after a reconfiguration, and to every position
/// of a process that reboots with its memory lost.
fn poison(state: &mut PosState) {
    state.sn = Sn::Bot;
    state.cp = Cp::Error;
}

/// Run a churn experiment: execute the sweep program under the scripted
/// crash/reboot plan, detecting stalls and repairing the topology as they
/// happen.
pub fn run_churn(exp: &ChurnExperiment) -> ChurnMeasurement {
    run_churn_with_telemetry(exp, &Telemetry::off())
}

/// [`run_churn`], additionally publishing the membership metrics
/// (`membership_epoch`, `suspicions_total`, `rejoins_total`,
/// `reconfiguration_latency`) after the run. Telemetry is recorded post-hoc
/// from the measurement, so an enabled handle cannot perturb the run.
pub fn run_churn_with_telemetry(exp: &ChurnExperiment, telemetry: &Telemetry) -> ChurnMeasurement {
    let base = exp.topology.build().expect("valid topology");
    let n_procs = base.num_processes();
    let n_positions = base.num_positions();
    // One sn domain for the whole run (the base program's default): a view
    // never has more positions than the base, so `L > 2N+1` keeps holding.
    let sn_domain = 2 * n_positions as u32 + 3;

    let mut events = exp.events.clone();
    events.sort_by(|a, b| a.at().total_cmp(&b.at()));

    let mut membership = Membership::new(base.clone());
    let mut undetected: BTreeSet<usize> = BTreeSet::new();
    let mut base_states: Vec<PosState> = vec![PosState::start(); n_positions];

    let mut t_base = 0.0f64;
    let mut phases_total = 0u64;
    let mut violations = 0usize;
    let mut suspicions = 0u64;
    let mut rejoins = 0u64;
    let mut reconfig_latencies: Vec<f64> = Vec::new();
    let mut trace_events: Vec<TraceEvent<PosState>> = Vec::new();
    // Participation accounting, reset at every membership change.
    let mut t_last_change = 0.0f64;
    let mut phases_at_last_change = 0u64;
    let mut recv_since_change: Vec<u64> = vec![0; n_procs];

    let mut next_event = 0usize;
    let mut segment = 0u64;

    'segments: while phases_total < exp.target_phases && t_base < exp.horizon {
        let next_event_t = events.get(next_event).map_or(f64::INFINITY, |e| e.at());
        let seg_end = next_event_t.min(exp.horizon);

        if seg_end > t_base {
            let view = membership.view();
            let program = SweepBarrier::new(view.dag.clone(), exp.n_phases)
                .with_sn_domain(sn_domain)
                .with_costs(Time::new(exp.c), Time::new(1.0));
            let alive: Vec<bool> = (0..view.dag.num_positions())
                .map(|p| !undetected.contains(&view.pids[view.dag.owner(p)]))
                .collect();
            let masked = Masked::new(&program, alive);

            let view_states: Vec<PosState> =
                view.positions.iter().map(|&bp| base_states[bp]).collect();
            let mut engine = Engine::from_state(&masked, exp.seed ^ segment, view_states);

            let mut oracle = if segment == 0 {
                SweepOracleMonitor::new(&program, Anchor::StrictFromZero)
            } else {
                let mut m = SweepOracleMonitor::new(&program, Anchor::Free);
                // Positions carried over in `execute` have already started
                // their phase as far as the oracle is concerned.
                for vp in 0..view.dag.num_positions() {
                    let s = engine.global()[vp];
                    if program.is_worker(vp) && s.cp == Cp::Execute {
                        m.oracle.observe_cp(
                            Time::ZERO,
                            view.dag.owner(vp),
                            s.ph,
                            Cp::Ready,
                            Cp::Execute,
                        );
                    }
                }
                m
            }
            .stop_after(exp.target_phases - phases_total);
            let mut recvs = RecvCounter {
                owner_base: (0..view.dag.num_positions())
                    .map(|p| view.pids[view.dag.owner(p)])
                    .collect(),
                counts: vec![0; n_procs],
            };
            let mut trace: Trace<PosState> = Trace::unbounded();

            let config = EngineConfig {
                seed: exp.seed ^ 0x5EED ^ segment.rotate_left(17),
                max_time: Some(Time::new(seg_end - t_base)),
                ..Default::default()
            };
            let outcome = {
                let mut set = MonitorSet::new().with(&mut oracle).with(&mut recvs);
                if exp.record_trace {
                    set = set.with(&mut trace);
                }
                engine.run(&config, &mut NoFaults, &mut set)
            };
            segment += 1;

            // Fold the segment back into base coordinates.
            for (vp, &bp) in view.positions.iter().enumerate() {
                base_states[bp] = engine.global()[vp];
            }
            phases_total += oracle.oracle.phases_completed();
            violations += oracle.oracle.violations().len();
            for (pid, &c) in recvs.counts.iter().enumerate() {
                recv_since_change[pid] += c;
            }
            if exp.record_trace {
                trace_events.extend(trace.events().cloned());
            }

            match outcome.reason {
                StopReason::MonitorStop => {
                    t_base += outcome.stats.elapsed.as_f64();
                    break 'segments;
                }
                StopReason::MaxTime => {
                    t_base = seg_end;
                }
                StopReason::Fixpoint => {
                    let t_fix = t_base + outcome.stats.elapsed.as_f64();
                    assert!(
                        !undetected.is_empty(),
                        "sweep barrier reached a fixpoint with all processes live"
                    );
                    let t_detect = t_fix + exp.token_timeout;
                    if next_event_t <= t_detect {
                        // A scripted event (e.g. the reboot of the very
                        // process we are stalled on) lands before the
                        // detector fires; handle it first.
                        t_base = next_event_t;
                    } else if t_detect >= exp.horizon {
                        t_base = exp.horizon;
                        break 'segments;
                    } else {
                        // Detection: the owners of positions still enabled
                        // in the unmasked program are exactly the dead
                        // processes the stalled sweep is waiting on.
                        t_base = t_detect;
                        let stalled = masked.stalled_processes(engine.global());
                        let mut dead: Vec<usize> = stalled
                            .iter()
                            .map(|&vp| view.pids[view.dag.owner(vp)])
                            .collect();
                        dead.sort_unstable();
                        dead.dedup();
                        assert!(!dead.is_empty(), "stall without a stalled process");
                        for pid in dead {
                            membership
                                .splice(pid)
                                .expect("suspected process is a live non-root");
                            undetected.remove(&pid);
                            suspicions += 1;
                        }
                        poison(&mut base_states[0]);
                        reconfig_latencies.push(exp.token_timeout);
                        t_last_change = t_base;
                        phases_at_last_change = phases_total;
                        recv_since_change.fill(0);
                        continue 'segments;
                    }
                }
                StopReason::MaxCommits => {
                    panic!("churn segment exhausted its commit budget");
                }
            }
        } else {
            t_base = seg_end;
        }

        // Consume the scripted event at `t_base`.
        let Some(&event) = events.get(next_event) else {
            break 'segments;
        };
        if event.at() > t_base {
            continue 'segments;
        }
        next_event += 1;
        match event {
            ChurnEvent::Crash { pid, .. } => {
                assert!(pid != 0, "the root process cannot crash in this model");
                if membership.is_alive(pid) && !undetected.contains(&pid) {
                    undetected.insert(pid);
                }
            }
            ChurnEvent::Reboot { pid, .. } => {
                if undetected.remove(&pid) {
                    // Rebooted before the detector fired: rejoin in place
                    // with memory lost — §4.1's crash/reboot detectable
                    // fault. No membership change.
                    for &bp in base.positions_of(pid) {
                        base_states[bp] = PosState::start();
                        poison(&mut base_states[bp]);
                    }
                    rejoins += 1;
                } else if !membership.is_alive(pid) {
                    // Graft back into the topology; the rejoin handshake
                    // adopts `sn`/`ph` from the upstream neighbor and waits
                    // at the phase boundary with `cp = ready`.
                    let view = membership.graft(pid).expect("rebooted pid is known");
                    for &bp in base.positions_of(pid) {
                        let vp = view.pos_of[bp].expect("grafted position is live");
                        let upstream_bp = view.positions[view.dag.preds(vp)[0]];
                        let u = base_states[upstream_bp];
                        base_states[bp] = PosState {
                            sn: u.sn,
                            cp: Cp::Ready,
                            ph: u.ph,
                            done: true,
                            post: true,
                        };
                    }
                    poison(&mut base_states[0]);
                    rejoins += 1;
                    t_last_change = t_base;
                    phases_at_last_change = phases_total;
                    recv_since_change.fill(0);
                }
                // Reboot of a live process: nothing to do.
            }
        }
    }

    let measurement = ChurnMeasurement {
        phases: phases_total,
        violations,
        suspicions,
        rejoins,
        epoch: membership.epoch(),
        reconfig_latencies,
        elapsed: t_base,
        phases_after_last_change: phases_total - phases_at_last_change,
        span_after_last_change: t_base - t_last_change,
        recv_after_last_change: recv_since_change,
        final_live: (0..n_procs).filter(|&p| membership.is_alive(p)).collect(),
        final_states: base_states,
        trace: trace_events,
    };

    if telemetry.is_enabled() {
        let topo = exp.topology.label();
        let labels = [("topo", topo)];
        telemetry.gauge(names::MEMBERSHIP_EPOCH, &labels, measurement.epoch as f64);
        telemetry.counter(names::SUSPICIONS_TOTAL, &labels, measurement.suspicions);
        telemetry.counter(names::REJOINS_TOTAL, &labels, measurement.rejoins);
        for &l in &measurement.reconfig_latencies {
            telemetry.observe(names::RECONFIGURATION_LATENCY, &labels, l);
        }
    }
    measurement
}

/// Successful phases a fault-free run of `topology` completes within `span`
/// virtual time — the baseline for availability ratios.
pub fn fault_free_phases(
    topology: TopologySpec,
    n_phases: u32,
    c: f64,
    seed: u64,
    span: f64,
) -> u64 {
    let exp = ChurnExperiment {
        topology,
        n_phases,
        c,
        seed,
        target_phases: u64::MAX,
        horizon: span,
        token_timeout: 1.0,
        events: Vec::new(),
        record_trace: false,
    };
    run_churn(&exp).phases
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_churn_run_matches_plain_measurement() {
        let m = run_churn(&ChurnExperiment {
            topology: TopologySpec::Ring { n: 8 },
            target_phases: 30,
            horizon: 200.0,
            ..Default::default()
        });
        assert_eq!(m.phases, 30);
        assert_eq!(m.violations, 0);
        assert_eq!(m.suspicions, 0);
        assert_eq!(m.rejoins, 0);
        assert_eq!(m.epoch, 0);
        assert_eq!(m.final_live.len(), 8);
        // Every process participated.
        assert!(m.recv_after_last_change.iter().all(|&c| c > 0));
    }

    #[test]
    fn permanent_crash_is_detected_and_survivors_complete_phases() {
        for topology in [
            TopologySpec::Ring { n: 16 },
            TopologySpec::Tree { n: 16, arity: 2 },
        ] {
            let m = run_churn(&ChurnExperiment {
                topology,
                target_phases: u64::MAX,
                horizon: 120.0,
                token_timeout: 2.0,
                events: vec![ChurnEvent::Crash { at: 10.0, pid: 5 }],
                ..Default::default()
            });
            assert_eq!(m.suspicions, 1, "{topology:?}");
            assert_eq!(m.epoch, 1, "{topology:?}");
            assert_eq!(m.final_live.len(), 15, "{topology:?}");
            assert!(!m.final_live.contains(&5), "{topology:?}");
            // The survivors keep completing phases after the repair.
            assert!(
                m.phases_after_last_change > 50,
                "{topology:?}: only {} phases after repair",
                m.phases_after_last_change
            );
            assert_eq!(m.recv_after_last_change[5], 0, "{topology:?}");
            assert!(
                m.recv_after_last_change
                    .iter()
                    .enumerate()
                    .all(|(p, &c)| p == 5 || c > 0),
                "{topology:?}: all survivors participate"
            );
        }
    }

    #[test]
    fn crashed_then_rebooted_process_rejoins_and_participates() {
        let m = run_churn(&ChurnExperiment {
            topology: TopologySpec::Ring { n: 16 },
            target_phases: u64::MAX,
            horizon: 120.0,
            token_timeout: 2.0,
            events: vec![
                ChurnEvent::Crash { at: 10.0, pid: 7 },
                ChurnEvent::Reboot { at: 40.0, pid: 7 },
            ],
            ..Default::default()
        });
        assert_eq!(m.suspicions, 1);
        assert_eq!(m.rejoins, 1);
        assert_eq!(m.epoch, 2, "splice + graft");
        assert_eq!(m.final_live.len(), 16);
        // The rejoined process executes RECV again after the graft.
        assert!(
            m.recv_after_last_change[7] > 0,
            "rejoined process must participate: {:?}",
            m.recv_after_last_change
        );
        assert!(m.phases_after_last_change > 30);
    }

    #[test]
    fn reboot_before_detection_rejoins_in_place_without_epoch_bump() {
        let m = run_churn(&ChurnExperiment {
            topology: TopologySpec::Ring { n: 8 },
            target_phases: u64::MAX,
            horizon: 80.0,
            token_timeout: 50.0, // detector far slower than the reboot
            events: vec![
                ChurnEvent::Crash { at: 5.0, pid: 3 },
                ChurnEvent::Reboot { at: 6.0, pid: 3 },
            ],
            ..Default::default()
        });
        assert_eq!(m.suspicions, 0);
        assert_eq!(m.rejoins, 1);
        assert_eq!(m.epoch, 0, "in-place reboot is not a reconfiguration");
        assert!(m.recv_after_last_change[3] > 0);
    }

    #[test]
    fn availability_after_repair_is_high() {
        // The acceptance bar: ≥99% of subsequent phases complete.
        let m = run_churn(&ChurnExperiment {
            topology: TopologySpec::Ring { n: 16 },
            target_phases: u64::MAX,
            horizon: 400.0,
            token_timeout: 2.0,
            events: vec![ChurnEvent::Crash { at: 10.0, pid: 9 }],
            ..Default::default()
        });
        let expected = fault_free_phases(
            TopologySpec::Ring { n: 15 },
            8,
            0.01,
            0xC0_FFEE,
            m.span_after_last_change,
        );
        let completion = m.post_change_completion(expected);
        assert!(
            completion >= 0.99,
            "post-repair completion {completion} ({} of {expected})",
            m.phases_after_last_change
        );
    }
}
