//! The multitolerant token ring underlying program RB (§4.1).
//!
//! Each process `j` in a ring `0..=N` holds a sequence number
//! `sn.j ∈ {0..K-1} ∪ {⊥, ⊤}` with `K > N`. The paper's five actions,
//! verbatim:
//!
//! ```text
//! T1 :: j=0 ∧ sn.N ≠ ⊥ ∧ sn.N ≠ ⊤ ∧ (sn.0 = sn.N ∨ sn.0 = ⊥ ∨ sn.0 = ⊤) → sn.0 := sn.N + 1
//! T2 :: j≠0 ∧ sn.(j-1) ≠ ⊥ ∧ sn.(j-1) ≠ ⊤ ∧ sn.j ≠ sn.(j-1)              → sn.j := sn.(j-1)
//! T3 :: sn.N = ⊥                                                          → sn.N := ⊤
//! T4 :: j≠N ∧ sn.j = ⊥ ∧ sn.(j+1) = ⊤                                    → sn.j := ⊤
//! T5 :: sn.0 = ⊤                                                          → sn.0 := 0
//! ```
//!
//! Properties (proved in [10], tested here): fault-free, exactly one token
//! circulates; under detectable faults at most one token exists and
//! eventually exactly one, each process can detect its own corruption
//! (⊥/⊤), and process 0 never executes T4/T5; under undetectable faults the
//! ring eventually again contains exactly one token.

use crate::sn::{validate_modulus, DomainError, Sn};
use ftbarrier_gcs::{ActionId, FaultAction, FaultKind, Pid, Protocol, ReaderSet, SimRng, Time};

/// Action indices (uniform across processes; guards gate applicability).
pub const T1: ActionId = 0;
pub const T2: ActionId = 1;
pub const T3: ActionId = 2;
pub const T4: ActionId = 3;
pub const T5: ActionId = 4;

/// The token ring program over `n` processes (the paper's `N = n - 1`).
#[derive(Debug, Clone)]
pub struct TokenRing {
    pub n: usize,
    /// Sequence number domain size, `K > N`.
    pub k: u32,
    /// Cost of one hop (communication latency `c`).
    pub hop_cost: Time,
}

impl TokenRing {
    pub fn new(n: usize) -> TokenRing {
        assert!(n >= 2);
        TokenRing {
            n,
            k: n as u32 + 1,
            hop_cost: Time::ZERO,
        }
    }

    /// Like [`TokenRing::with_domain`] but returns a typed error instead of
    /// panicking when `K` violates the paper's `K > N` precondition (or the
    /// absolute floor `K ≥ 2`, below which `sn + 1 = sn` and the ring cannot
    /// represent progress at all).
    pub fn try_with_domain(mut self, k: u32) -> Result<TokenRing, DomainError> {
        // The ring's N is `n - 1`, so `K > N` means `K ≥ n`.
        self.k = validate_modulus(k, self.n as u32)?;
        Ok(self)
    }

    pub fn with_domain(self, k: u32) -> TokenRing {
        self.try_with_domain(k)
            .expect("the paper requires K > N (and K ≥ 2)")
    }

    fn last(&self) -> Pid {
        self.n - 1
    }

    /// The paper's token predicate: `j ≠ N` holds the token iff
    /// `sn.j ≠ sn.(j+1)` (both ordinary); `N` holds it iff `sn.N = sn.0`
    /// (both ordinary).
    pub fn has_token(&self, g: &[Sn], j: Pid) -> bool {
        if j == self.last() {
            g[j].is_valid() && g[0].is_valid() && g[j] == g[0]
        } else {
            g[j].is_valid() && g[j + 1].is_valid() && g[j] != g[j + 1]
        }
    }

    pub fn count_tokens(&self, g: &[Sn]) -> usize {
        (0..self.n).filter(|&j| self.has_token(g, j)).count()
    }
}

impl Protocol for TokenRing {
    type State = Sn;

    fn num_processes(&self) -> usize {
        self.n
    }

    fn num_actions(&self, _pid: Pid) -> usize {
        5
    }

    fn action_name(&self, _pid: Pid, action: ActionId) -> &'static str {
        match action {
            T1 => "T1",
            T2 => "T2",
            T3 => "T3",
            T4 => "T4",
            T5 => "T5",
            _ => unreachable!("token ring has 5 actions"),
        }
    }

    fn enabled(&self, g: &[Sn], j: Pid, action: ActionId) -> bool {
        let last = self.last();
        match action {
            T1 => j == 0 && g[last].is_valid() && (g[0] == g[last] || !g[0].is_valid()),
            T2 => j != 0 && g[j - 1].is_valid() && g[j] != g[j - 1],
            T3 => j == last && g[j] == Sn::Bot,
            T4 => j != last && g[j] == Sn::Bot && g[j + 1] == Sn::Top,
            T5 => j == 0 && g[0] == Sn::Top,
            _ => false,
        }
    }

    fn execute(&self, g: &[Sn], j: Pid, action: ActionId, _rng: &mut SimRng) -> Sn {
        match action {
            T1 => g[self.last()].next(self.k),
            T2 => g[j - 1],
            T3 | T4 => Sn::Top,
            T5 => Sn::Val(0),
            _ => unreachable!("token ring has 5 actions"),
        }
    }

    fn cost(&self, _pid: Pid, _action: ActionId) -> Time {
        self.hop_cost
    }

    fn initial_state(&self) -> Vec<Sn> {
        vec![Sn::Val(0); self.n]
    }

    fn arbitrary_state(&self, _pid: Pid, rng: &mut SimRng) -> Sn {
        Sn::arbitrary(self.k, rng)
    }

    fn readers_of(&self, j: Pid) -> ReaderSet {
        // T2 at j+1 reads sn.j (T1 at 0 reads sn.N, the ring-wrap case),
        // T4 at j-1 reads sn.j, and j's own guards read sn.j.
        let mut readers = vec![(j + self.n - 1) % self.n, j, (j + 1) % self.n];
        readers.sort_unstable();
        readers.dedup();
        ReaderSet::These(readers)
    }
}

// `Vec<Sn>` is already a single flat lane (the state *is* one sequence
// number), so the array-of-structs layout doubles as the dense layout; this
// impl exists to run the ring on the sharded engine.
impl ftbarrier_gcs::DenseProtocol for TokenRing {
    type Dense = Vec<Sn>;

    fn dense_enabled(&self, dense: &Vec<Sn>, j: Pid, action: ActionId) -> bool {
        self.enabled(dense, j, action)
    }

    fn dense_execute(&self, dense: &Vec<Sn>, j: Pid, action: ActionId, rng: &mut SimRng) -> Sn {
        self.execute(dense, j, action, rng)
    }
}

/// Detectable fault: "when the sequence number of a process is corrupted,
/// it is set to ⊥".
#[derive(Debug, Clone, Copy)]
pub struct SnDetectableFault;

impl FaultAction<Sn> for SnDetectableFault {
    fn kind(&self) -> FaultKind {
        FaultKind::Detectable
    }

    fn apply(&self, _pid: Pid, state: &mut Sn, _rng: &mut SimRng) {
        *state = Sn::Bot;
    }
}

/// Undetectable fault: arbitrary value from the whole domain.
#[derive(Debug, Clone, Copy)]
pub struct SnUndetectableFault {
    pub k: u32,
}

impl FaultAction<Sn> for SnUndetectableFault {
    fn kind(&self) -> FaultKind {
        FaultKind::Undetectable
    }

    fn apply(&self, _pid: Pid, state: &mut Sn, rng: &mut SimRng) {
        *state = Sn::arbitrary(self.k, rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftbarrier_gcs::{Interleaving, InterleavingConfig, NullMonitor};

    #[test]
    fn fault_free_exactly_one_token_forever() {
        let ring = TokenRing::new(6);
        for seed in 0..10 {
            let mut exec = Interleaving::new(
                &ring,
                InterleavingConfig {
                    seed,
                    ..Default::default()
                },
            );
            let mut m = NullMonitor;
            assert_eq!(ring.count_tokens(exec.global()), 1);
            for _ in 0..500 {
                assert!(exec.step(&mut m), "ring never deadlocks");
                assert_eq!(ring.count_tokens(exec.global()), 1, "seed {seed}");
            }
            // T3/T4/T5 never fire without faults.
            assert_eq!(exec.stats().count_of("T3"), 0);
            assert_eq!(exec.stats().count_of("T4"), 0);
            assert_eq!(exec.stats().count_of("T5"), 0);
        }
    }

    #[test]
    fn token_visits_every_process() {
        let ring = TokenRing::new(5);
        let mut exec = Interleaving::new(&ring, InterleavingConfig::default());
        let mut m = NullMonitor;
        exec.run(500, &mut m);
        // Every process executed its receive action many times.
        assert!(exec.stats().count_of("T1") >= 50);
        assert!(exec.stats().count_of("T2") >= 200);
    }

    #[test]
    fn detectable_fault_yields_at_most_one_token_and_recovers() {
        let ring = TokenRing::new(6);
        let fault = SnDetectableFault;
        for seed in 0..20 {
            let mut exec = Interleaving::new(
                &ring,
                InterleavingConfig {
                    seed,
                    ..Default::default()
                },
            );
            let mut m = NullMonitor;
            for round in 0..30 {
                // Never corrupt everyone at once (that is the undetectable
                // regime per footnote 2); pick one victim per round.
                let victim = (seed as usize + round) % ring.n;
                exec.apply_fault(victim, &fault, &mut m);
                for _ in 0..5 {
                    exec.step(&mut m);
                    assert!(
                        ring.count_tokens(exec.global()) <= 1,
                        "seed {seed}: token duplicated under a detectable fault"
                    );
                }
                // Let the ring repair fully before the next fault.
                let steps = exec.run_until(10_000, &mut m, |g| {
                    ring.count_tokens(g) == 1 && g.iter().all(|s| s.is_valid())
                });
                assert!(steps.is_some(), "seed {seed}: ring did not recover");
            }
        }
    }

    #[test]
    fn corrupted_process_detects_itself() {
        // Property (b): a process is corrupted iff its sn is ⊥ or ⊤.
        let ring = TokenRing::new(4);
        let mut exec = Interleaving::new(&ring, InterleavingConfig::default());
        let mut m = NullMonitor;
        exec.apply_fault(2, &SnDetectableFault, &mut m);
        assert!(!exec.global()[2].is_valid());
        assert!(exec
            .global()
            .iter()
            .enumerate()
            .all(|(j, s)| j == 2 || s.is_valid()));
    }

    #[test]
    fn process_zero_never_repairs_under_detectable_faults() {
        // Property (c): 0 executes T4/T5 only for undetectable faults.
        let ring = TokenRing::new(5);
        for seed in 0..10 {
            let mut exec = Interleaving::new(
                &ring,
                InterleavingConfig {
                    seed,
                    ..Default::default()
                },
            );
            let mut m = NullMonitor;
            for round in 0..50 {
                let victim = (seed as usize + round * 3) % ring.n;
                exec.apply_fault(victim, &SnDetectableFault, &mut m);
                exec.run(100, &mut m);
            }
            assert_eq!(exec.stats().count_of("T5"), 0, "seed {seed}");
        }
    }

    #[test]
    fn stabilizes_from_arbitrary_states() {
        let ring = TokenRing::new(7);
        for seed in 0..30 {
            let mut exec = Interleaving::new(
                &ring,
                InterleavingConfig {
                    seed,
                    ..Default::default()
                },
            );
            exec.perturb_all();
            let mut m = NullMonitor;
            let steps = exec.run_until(50_000, &mut m, |g| {
                ring.count_tokens(g) == 1 && g.iter().all(|s| s.is_valid())
            });
            assert!(steps.is_some(), "seed {seed}: no stabilization");
            // Stays at one token afterwards.
            for _ in 0..100 {
                exec.step(&mut m);
                assert_eq!(ring.count_tokens(exec.global()), 1);
            }
        }
    }

    #[test]
    fn all_bot_recovers_via_top_wave() {
        // Everyone detectably corrupted at once = undetectable regime:
        // T3 at N, T4 wave back to 0, T5 resets.
        let ring = TokenRing::new(5);
        let mut exec =
            Interleaving::from_state(&ring, InterleavingConfig::default(), vec![Sn::Bot; 5]);
        let mut m = NullMonitor;
        let steps = exec.run_until(10_000, &mut m, |g| {
            ring.count_tokens(g) == 1 && g.iter().all(|s| s.is_valid())
        });
        assert!(steps.is_some());
        assert!(exec.stats().count_of("T3") >= 1);
        assert!(exec.stats().count_of("T4") >= 1);
        assert!(exec.stats().count_of("T5") >= 1);
    }

    #[test]
    fn t1_guard_matches_paper() {
        let ring = TokenRing::new(3);
        // sn = [0,0,0]: N holds token, T1 enabled at 0.
        let g = vec![Sn::Val(0); 3];
        assert!(ring.enabled(&g, 0, T1));
        assert!(ring.has_token(&g, 2));
        // After T1: 0 has a fresh value, T2 enabled at 1 only.
        let g = vec![Sn::Val(1), Sn::Val(0), Sn::Val(0)];
        assert!(!ring.enabled(&g, 0, T1));
        assert!(ring.enabled(&g, 1, T2));
        assert!(!ring.enabled(&g, 2, T2));
        assert!(ring.has_token(&g, 0));
        // A ⊥ predecessor blocks T2.
        let g = vec![Sn::Bot, Sn::Val(0), Sn::Val(0)];
        assert!(!ring.enabled(&g, 1, T2));
        // ⊥ at 0 lets T1 re-acquire from a valid N.
        let g = vec![Sn::Bot, Sn::Val(2), Sn::Val(2)];
        assert!(ring.enabled(&g, 0, T1));
    }

    #[test]
    fn domain_must_exceed_ring_length() {
        let ring = TokenRing::new(4);
        assert!(ring.k > 3);
    }

    #[test]
    #[should_panic]
    fn with_domain_rejects_small_k() {
        let _ = TokenRing::new(8).with_domain(7);
    }

    #[test]
    fn try_with_domain_reports_typed_errors() {
        use crate::sn::DomainError;
        assert_eq!(
            TokenRing::new(8).try_with_domain(7).unwrap_err(),
            DomainError::KTooSmall { k: 7, min: 8 }
        );
        // K = 1 is rejected even for the smallest ring: sn + 1 = sn.
        assert_eq!(
            TokenRing::new(2).try_with_domain(1).unwrap_err(),
            DomainError::KTooSmall { k: 1, min: 2 }
        );
        assert_eq!(TokenRing::new(8).try_with_domain(9).unwrap().k, 9);
    }
}
