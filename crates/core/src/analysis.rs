//! The closed-form performance model of §6.1.
//!
//! With phase execution time as the unit, communication latency `c` per hop,
//! fault frequency `f` per unit time, and a tree of height `h`:
//!
//! * a fault-tolerant phase takes `1 + 3hc` in the absence of faults (three
//!   sweeps of the tree per phase);
//! * `P(some fault during a phase) = 1 - (1-f)^(1+3hc)`;
//! * the number of instances needed to execute a phase successfully is
//!   geometric with mean `1 / (1-f)^(1+3hc)`;
//! * the expected time per successful phase is `(1+3hc) / (1-f)^(1+3hc)`;
//! * the fault-*intolerant* barrier takes `1 + 2hc` (one sweep to detect
//!   completion, one to release);
//! * recovery from an arbitrary state takes at most `5hc` of communication.

/// Model parameters: tree height `h`, per-hop latency `c`, fault frequency
/// `f` — all in units of one phase execution.
///
/// ```
/// use ftbarrier_core::analysis::AnalyticModel;
///
/// // The paper's headline configuration: 32 processors (h = 5),
/// // 1 ms phases, 10 µs latency, 10 faults per second.
/// let m = AnalyticModel::new(5, 0.01, 0.01);
/// assert!((m.expected_instances() - 1.0116).abs() < 1e-3);
/// assert!((m.overhead() - 0.0576).abs() < 1e-3); // ≈ the paper's 5.7%
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalyticModel {
    pub h: usize,
    pub c: f64,
    pub f: f64,
}

impl AnalyticModel {
    pub fn new(h: usize, c: f64, f: f64) -> AnalyticModel {
        assert!(c >= 0.0, "latency must be non-negative");
        assert!((0.0..1.0).contains(&f), "fault frequency must be in [0,1)");
        AnalyticModel { h, c, f }
    }

    /// Duration of one fault-free instance under the tolerant program:
    /// `1 + 3hc`.
    pub fn tolerant_instance_time(&self) -> f64 {
        1.0 + 3.0 * self.h as f64 * self.c
    }

    /// Duration of one phase under the fault-intolerant program: `1 + 2hc`.
    pub fn intolerant_phase_time(&self) -> f64 {
        1.0 + 2.0 * self.h as f64 * self.c
    }

    /// `P(no fault during one instance) = (1-f)^(1+3hc)`.
    pub fn p_no_fault_in_instance(&self) -> f64 {
        (1.0 - self.f).powf(self.tolerant_instance_time())
    }

    /// `f_freq` in the paper: `P(some fault during one instance)`.
    pub fn p_fault_in_instance(&self) -> f64 {
        1.0 - self.p_no_fault_in_instance()
    }

    /// `P(exactly k instances are executed)` — geometric:
    /// `f_freq^(k-1) · (1 - f_freq)`. `k` starts at 1.
    pub fn p_instances(&self, k: u32) -> f64 {
        assert!(k >= 1);
        let ff = self.p_fault_in_instance();
        ff.powi(k as i32 - 1) * (1.0 - ff)
    }

    /// Expected instances per successful phase: `1 / (1-f)^(1+3hc)`.
    pub fn expected_instances(&self) -> f64 {
        1.0 / self.p_no_fault_in_instance()
    }

    /// Expected time per successful phase:
    /// `(1 + 3hc) / (1-f)^(1+3hc)`.
    pub fn expected_phase_time(&self) -> f64 {
        self.tolerant_instance_time() / self.p_no_fault_in_instance()
    }

    /// Fault-tolerance overhead relative to the intolerant program, as a
    /// fraction (Fig 4 plots this as a percentage).
    pub fn overhead(&self) -> f64 {
        self.expected_phase_time() / self.intolerant_phase_time() - 1.0
    }

    /// §6.1's bound on recovery from an arbitrary state: `hc` to correct the
    /// sequence numbers plus `4hc` for the control positions and phases.
    pub fn recovery_bound(&self) -> f64 {
        5.0 * self.h as f64 * self.c
    }

    /// The paper's standing assumption that synchronization is at most half
    /// a phase: `2hc ≤ 0.5`.
    pub fn satisfies_latency_assumption(&self) -> bool {
        2.0 * self.h as f64 * self.c <= 0.5
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's headline configuration: 32 processors, h = 5.
    fn paper(c: f64, f: f64) -> AnalyticModel {
        AnalyticModel::new(5, c, f)
    }

    #[test]
    fn zero_fault_zero_latency_is_unit_phase() {
        let m = paper(0.0, 0.0);
        assert_eq!(m.tolerant_instance_time(), 1.0);
        assert_eq!(m.intolerant_phase_time(), 1.0);
        assert_eq!(m.expected_instances(), 1.0);
        assert_eq!(m.overhead(), 0.0);
        assert_eq!(m.recovery_bound(), 0.0);
    }

    #[test]
    fn paper_claim_low_frequency_reexecution_under_1_6_percent() {
        // §6.1: "when the frequency of faults is small (f ≤ 0.01), the
        // percentage of phases executed incorrectly is lower than 1.6%"
        // (at c = 0.01, h = 5).
        let m = paper(0.01, 0.01);
        let p = m.p_fault_in_instance();
        assert!(p < 0.016, "got {p}");
    }

    #[test]
    fn paper_claim_high_latency_low_frequency_1_7_percent() {
        // §6.1: "even at high communication latency, c = 0.05, when
        // f = 0.01, the probability that a phase is re-executed is as low
        // as 1.7%."
        let m = paper(0.05, 0.01);
        let p = m.p_fault_in_instance();
        assert!(p < 0.018, "got {p}");
        assert!(p > 0.014, "got {p}");
    }

    #[test]
    fn paper_claim_overheads() {
        // §6.1's concrete scenario (1ms phases, 10µs latency ⇒ c = 0.01):
        // f=0 → 4.5%; f=0.01 → 5.7%; f=0.05 → ≈10.8%.
        let m0 = paper(0.01, 0.0);
        assert!((m0.overhead() - 0.045).abs() < 0.002, "{}", m0.overhead());
        let m1 = paper(0.01, 0.01);
        assert!((m1.overhead() - 0.057).abs() < 0.002, "{}", m1.overhead());
        let m5 = paper(0.01, 0.05);
        assert!((m5.overhead() - 0.108).abs() < 0.004, "{}", m5.overhead());
    }

    #[test]
    fn paper_claim_recovery_at_most_1_25() {
        // §6.1: "under our assumption that 2hc ≤ 0.5, the program recovers
        // in at most 1.25 time".
        let m = paper(0.05, 0.0);
        assert!(m.satisfies_latency_assumption());
        assert!((m.recovery_bound() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn instances_pmf_sums_to_one_and_matches_mean() {
        let m = paper(0.03, 0.05);
        let mut total = 0.0;
        let mut mean = 0.0;
        for k in 1..200 {
            let p = m.p_instances(k);
            total += p;
            mean += k as f64 * p;
        }
        assert!((total - 1.0).abs() < 1e-9);
        assert!((mean - m.expected_instances()).abs() < 1e-6);
    }

    #[test]
    fn monotone_in_f_and_c() {
        for &(f1, f2) in &[(0.0, 0.01), (0.01, 0.05), (0.05, 0.1)] {
            assert!(paper(0.02, f1).expected_instances() < paper(0.02, f2).expected_instances());
            assert!(paper(0.02, f1).overhead() < paper(0.02, f2).overhead());
        }
        for &(c1, c2) in &[(0.0, 0.01), (0.01, 0.05)] {
            assert!(
                paper(c1, 0.05).expected_instances() < paper(c2, 0.05).expected_instances(),
                "longer instances have more fault exposure"
            );
        }
    }

    #[test]
    fn overhead_positive_whenever_latency_positive() {
        // The third sweep costs hc even without faults.
        let m = paper(0.01, 0.0);
        assert!(m.overhead() > 0.0);
    }

    #[test]
    #[should_panic]
    fn rejects_f_of_one() {
        let _ = AnalyticModel::new(5, 0.01, 1.0);
    }
}
