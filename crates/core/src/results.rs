//! Result/artifact file output with atomic visibility.
//!
//! Every JSON dump, CSV table, flight recording, and server log the
//! reproduction writes is a file some *other* process may read while we are
//! still writing it: CI collects `results/` as artifacts mid-run, a
//! Prometheus scrape can race a `/metrics` snapshot dump, and the flight
//! recorder fires exactly when the system is wedged and a human is about to
//! `cat` the file. A plain `fs::write` exposes the half-written prefix for
//! as long as the write takes.
//!
//! [`write_atomic`] closes that window with the POSIX idiom: write the full
//! contents to a uniquely named temporary file *in the same directory* (so
//! the rename cannot cross filesystems), flush it, then `rename` it over the
//! destination. Readers see either the old complete file or the new complete
//! file, never a torn mix.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// The one place the `results/` artifact directory is created: every
/// artifact-writing subcommand goes through this, so the location and the
/// failure mode stay consistent.
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from("results");
    fs::create_dir_all(&dir)
        .unwrap_or_else(|e| panic!("create results directory {}: {e}", dir.display()));
    dir
}

/// Distinguishes temp names across threads of one process; the pid
/// distinguishes across processes sharing a `results/` directory.
static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Write `contents` to `path` atomically: the file at `path` is only ever
/// observed empty-or-absent (if it never existed), as its complete previous
/// contents, or as the complete new contents.
///
/// Returns the error of whichever step failed; on failure the destination is
/// untouched (a leftover `.tmp-*` sibling may remain and is harmless — the
/// next successful write does not depend on it).
pub fn try_write_atomic(path: &Path, contents: &[u8]) -> std::io::Result<()> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let file_name = path
        .file_name()
        .ok_or_else(|| std::io::Error::other(format!("no file name in {}", path.display())))?;
    let tmp_name = format!(
        ".tmp-{}-{}-{}",
        std::process::id(),
        TEMP_SEQ.fetch_add(1, Ordering::Relaxed),
        file_name.to_string_lossy()
    );
    let tmp = match dir {
        Some(d) => d.join(&tmp_name),
        None => PathBuf::from(&tmp_name),
    };
    let result = (|| {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(contents)?;
        // `rename` only promises atomic *visibility*; `sync_all` makes the
        // contents durable before the name flips, so a crash can't leave
        // the new name pointing at an unwritten file.
        f.sync_all()?;
        drop(f);
        fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// [`try_write_atomic`] with the panic-on-error policy every repro
/// subcommand uses for artifacts (an unwritable `results/` dir is fatal).
pub fn write_atomic(path: &Path, contents: impl AsRef<[u8]>) {
    try_write_atomic(path, contents.as_ref())
        .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ftbarrier-results-{tag}-{}-{}",
            std::process::id(),
            TEMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn writes_and_replaces() {
        let dir = temp_dir("basic");
        let path = dir.join("dump.json");
        write_atomic(&path, b"first");
        assert_eq!(fs::read(&path).unwrap(), b"first");
        write_atomic(&path, b"second, longer than the first");
        assert_eq!(fs::read(&path).unwrap(), b"second, longer than the first");
        // No temp droppings after successful writes.
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .file_name()
                    .to_string_lossy()
                    .starts_with(".tmp-")
            })
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rejects_pathless_destination() {
        assert!(try_write_atomic(Path::new("/"), b"x").is_err());
    }

    #[test]
    fn concurrent_dumps_never_tear() {
        // N writers hammer one path with distinct self-consistent contents
        // (a byte repeated L times, different per writer) while readers
        // poll. A torn write would surface as a file mixing two fill bytes
        // or cut short relative to its own header.
        let dir = temp_dir("race");
        let path = Arc::new(dir.join("contended.json"));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let writers: Vec<_> = (0..4u8)
            .map(|w| {
                let path = Arc::clone(&path);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let fill = b'a' + w;
                    let body = vec![fill; 4096 + w as usize * 512];
                    while !stop.load(Ordering::Relaxed) {
                        write_atomic(&path, &body);
                    }
                })
            })
            .collect();
        let reader = {
            let path = Arc::clone(&path);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut observed = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    match fs::read(&*path) {
                        Ok(bytes) if !bytes.is_empty() => {
                            let fill = bytes[0];
                            assert!((b'a'..b'a' + 4).contains(&fill), "unknown fill byte {fill}");
                            let want = 4096 + (fill - b'a') as usize * 512;
                            assert_eq!(
                                bytes.len(),
                                want,
                                "torn read: {} bytes of fill {:?}",
                                bytes.len(),
                                fill as char
                            );
                            assert!(
                                bytes.iter().all(|&b| b == fill),
                                "torn read: mixed fill bytes"
                            );
                            observed += 1;
                        }
                        _ => {}
                    }
                }
                observed
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(300));
        stop.store(true, Ordering::Relaxed);
        for w in writers {
            w.join().unwrap();
        }
        let observed = reader.join().unwrap();
        assert!(observed > 0, "reader never saw a complete file");
        fs::remove_dir_all(&dir).unwrap();
    }
}
