//! Edge cases of the barrier specification oracle: overlapping instances of
//! the *same* phase, `Anchor::Free` attaching to a computation already
//! mid-recovery, and the §2 allowance that re-execution after a detectable
//! fault is not a Safety violation.

use ftbarrier_core::cp::Cp;
use ftbarrier_core::spec::{Anchor, BarrierOracle, OracleConfig, Violation};
use ftbarrier_gcs::Time;

fn t(x: f64) -> Time {
    Time::new(x)
}

fn oracle(n: usize, anchor: Anchor) -> BarrierOracle {
    BarrierOracle::new(OracleConfig {
        n_processes: n,
        n_phases: 8,
        anchor,
    })
}

// ----- overlapping instances of the same phase -----

#[test]
fn trailing_starts_after_a_doomed_instance_open_a_new_one_cleanly() {
    // Four processes. p0 and p1 complete phase 0; p2 is hit by a fault on
    // another process before it starts, so its start (and p3's) arrive after
    // every completion of the open instance. When p0 then re-executes
    // phase 0, the oracle must recognize p2/p3 as the first members of a
    // *new* instance rather than flagging a DoubleStart for p0.
    let mut o = oracle(4, Anchor::StrictFromZero);
    o.on_start(t(0.0), 0, 0);
    o.on_start(t(0.0), 1, 0);
    o.on_complete(t(1.0), 0, 0);
    o.on_complete(t(1.0), 1, 0);
    // Late starts, strictly after all completions of the open instance.
    o.on_start(t(1.5), 2, 0);
    o.on_start(t(1.5), 3, 0);
    // Re-execution begins: p0 and p1 run phase 0 again alongside p2/p3.
    o.on_start(t(2.0), 0, 0);
    o.on_start(t(2.0), 1, 0);
    for pid in 0..4 {
        o.on_complete(t(3.0), pid, 0);
    }
    assert!(o.is_clean(), "violations: {:?}", o.violations());
    // One phase completed; the first (doomed) instance is counted against it.
    assert_eq!(o.phases_completed(), 1);
    assert_eq!(o.instance_counts(), &[2]);
    assert_eq!(o.aborted_instances(), 1);
}

#[test]
fn restarting_within_a_live_instance_is_a_double_start() {
    // p0 starts phase 0 twice while p1 is still executing and p0 never
    // completed — a genuine overlap of two instances of the same phase.
    let mut o = oracle(2, Anchor::StrictFromZero);
    o.on_start(t(0.0), 0, 0);
    o.on_start(t(0.0), 1, 0);
    o.on_start(t(0.5), 0, 0);
    assert!(matches!(
        o.violations(),
        [Violation::DoubleStart {
            pid: 0,
            phase: 0,
            ..
        }]
    ));
}

#[test]
fn completed_process_rejoining_while_originals_execute_is_still_flagged() {
    // p0 completed, but p1 (an *original* member, start_seq before p0's
    // completion) is still executing: p0 starting again overlaps the live
    // instance — the movable-reassignment carve-out must not apply.
    let mut o = oracle(2, Anchor::StrictFromZero);
    o.on_start(t(0.0), 0, 0);
    o.on_start(t(0.0), 1, 0);
    o.on_complete(t(1.0), 0, 0);
    o.on_start(t(1.5), 0, 0);
    assert!(matches!(
        o.violations(),
        [Violation::DoubleStart {
            pid: 0,
            phase: 0,
            ..
        }]
    ));
}

// ----- Anchor::Free on a mid-recovery computation -----

#[test]
fn free_anchor_attaches_to_an_aborted_first_instance() {
    // The oracle attaches mid-computation (recovery experiment): the first
    // instance it sees is phase 3, and that very instance aborts on a
    // detectable fault. Free anchoring must accept phase 3, demand a
    // re-execution of 3 next, and then pin the successor sequence 4, 5, …
    let mut o = oracle(2, Anchor::Free);
    o.on_start(t(0.0), 0, 3);
    o.on_start(t(0.0), 1, 3);
    o.on_abort(t(0.5), 1); // detectable fault mid-phase
    o.on_complete(t(1.0), 0, 3);
    // Re-execution of phase 3 succeeds.
    o.on_start(t(2.0), 0, 3);
    o.on_start(t(2.0), 1, 3);
    o.on_complete(t(3.0), 0, 3);
    o.on_complete(t(3.0), 1, 3);
    // The successor phase follows.
    o.on_start(t(4.0), 0, 4);
    o.on_start(t(4.0), 1, 4);
    o.on_complete(t(5.0), 0, 4);
    o.on_complete(t(5.0), 1, 4);
    assert!(o.is_clean(), "violations: {:?}", o.violations());
    assert_eq!(o.phases_completed(), 2);
    assert_eq!(o.instance_counts(), &[2, 1]);
}

#[test]
fn free_anchor_pins_the_successor_after_the_first_success() {
    // Free anchoring is free only once: after the anchored phase completes,
    // skipping a phase is a WrongPhase violation like anywhere else.
    let mut o = oracle(2, Anchor::Free);
    o.on_start(t(0.0), 0, 3);
    o.on_start(t(0.0), 1, 3);
    o.on_complete(t(1.0), 0, 3);
    o.on_complete(t(1.0), 1, 3);
    o.on_start(t(2.0), 0, 5); // skips phase 4
    assert!(matches!(
        o.violations(),
        [Violation::WrongPhase { got: 5, .. }]
    ));
}

// ----- re-execution after a detectable fault, as a cp-transition trace -----

#[test]
fn reexecution_after_detectable_fault_trace_is_not_a_safety_violation() {
    // The full §4.1 shape, fed through observe_cp the way the runtime logs
    // it: during phase 1, p2 takes a detectable fault (execute → error),
    // walks the recovery chain error → repeat → ready, and the phase is
    // re-executed by everyone. The spec explicitly blesses this: "one or
    // more instances in sequence, the last of which is successful".
    let mut o = oracle(3, Anchor::StrictFromZero);
    // Phase 0 completes normally.
    for pid in 0..3 {
        o.observe_cp(t(0.0), pid, 0, Cp::Ready, Cp::Execute);
    }
    for pid in 0..3 {
        o.observe_cp(t(1.0), pid, 0, Cp::Execute, Cp::Success);
    }
    // Phase 1: p2 faults mid-execution.
    for pid in 0..3 {
        o.observe_cp(t(2.0), pid, 1, Cp::Success, Cp::Execute);
    }
    o.observe_cp(t(2.5), 2, 1, Cp::Execute, Cp::Error);
    o.observe_cp(t(2.6), 2, 1, Cp::Error, Cp::Repeat);
    o.observe_cp(t(2.7), 2, 1, Cp::Repeat, Cp::Ready);
    // The healthy processes still finish their doomed instance.
    o.observe_cp(t(3.0), 0, 1, Cp::Execute, Cp::Success);
    o.observe_cp(t(3.0), 1, 1, Cp::Execute, Cp::Success);
    // Re-execution of phase 1, this time successfully.
    for pid in 0..3 {
        o.observe_cp(t(4.0), pid, 1, Cp::Ready, Cp::Execute);
    }
    for pid in 0..3 {
        o.observe_cp(t(5.0), pid, 1, Cp::Execute, Cp::Success);
    }
    // Phase 2 proceeds.
    for pid in 0..3 {
        o.observe_cp(t(6.0), pid, 2, Cp::Success, Cp::Execute);
    }
    for pid in 0..3 {
        o.observe_cp(t(7.0), pid, 2, Cp::Execute, Cp::Success);
    }
    assert!(o.is_clean(), "violations: {:?}", o.violations());
    assert_eq!(o.phases_completed(), 3);
    // Phase 1 consumed two instances; its neighbours one each.
    assert_eq!(o.instance_counts(), &[1, 2, 1]);
    assert_eq!(o.aborted_instances(), 1);
}
