//! Exhaustive (model-checking style) verification of the paper's lemmas on
//! small instances: instead of sampling schedules, enumerate *every*
//! reachable state under *every* interleaving — with fault transitions
//! included where the lemma speaks about faults.

use ftbarrier_core::cb::{Cb, CbState};
use ftbarrier_core::cp::Cp;
use ftbarrier_core::sn::Sn;
use ftbarrier_core::sweep::{PosState, SweepBarrier};
use ftbarrier_core::token_ring::{TokenRing, T5};
use ftbarrier_gcs::{universe, Explorer, Protocol};
use ftbarrier_topology::SweepDag;

fn sn_domain(k: u32) -> Vec<Sn> {
    let mut d = vec![Sn::Bot, Sn::Top];
    d.extend((0..k).map(Sn::Val));
    d
}

// ---------------------------------------------------------------------------
// Token ring (§4.1, properties of [10]).
// ---------------------------------------------------------------------------

#[test]
fn token_ring_every_state_stabilizes_exhaustively() {
    // From EVERY state of the full universe, the ring can reach a legal
    // one-token state — the stabilization lemma, checked exhaustively for
    // n = 4, K = 5 (2401·… states: 7 values per process).
    let ring = TokenRing::new(4).with_domain(5);
    let explorer = Explorer::new(&ring);
    let d = sn_domain(5);
    let u = universe(&[d.clone(), d.clone(), d.clone(), d]);
    assert_eq!(u.len(), 7usize.pow(4));
    let stuck = explorer.states_not_reaching(&u, |s| {
        ring.count_tokens(s) == 1 && s.iter().all(|x| x.is_valid())
    });
    assert!(
        stuck.is_empty(),
        "{} of {} states cannot stabilize; first: {:?}",
        stuck.len(),
        u.len(),
        stuck.first()
    );
}

#[test]
fn token_ring_no_deadlock_anywhere_exhaustively() {
    // Every state of the universe has at least one enabled action.
    let ring = TokenRing::new(3).with_domain(4);
    let d = sn_domain(4);
    let u = universe(&[d.clone(), d.clone(), d]);
    for s in &u {
        assert!(ring.any_enabled(s), "deadlock state: {s:?}");
    }
}

#[test]
fn token_ring_at_most_one_token_under_detectable_faults_exhaustively() {
    // Property (a): starting legally, with detectable faults (sn := ⊥ at
    // any process) interleaved arbitrarily, the ring never holds two
    // tokens. Explored over the full fault-closed reachable set.
    let ring = TokenRing::new(4).with_domain(5);
    let explorer = Explorer::new(&ring);
    let exploration = explorer.reachable_with(vec![ring.initial_state()], 200_000, |s| {
        (0..4)
            .map(|victim| {
                let mut t = s.to_vec();
                t[victim] = Sn::Bot;
                t
            })
            .collect()
    });
    let exploration = exploration
        .require_complete()
        .expect("truncated search is not a proof");
    for s in &exploration.states {
        assert!(
            ring.count_tokens(s) <= 1,
            "two tokens under detectable faults: {s:?}"
        );
    }
}

#[test]
fn token_ring_process_zero_never_repairs_exhaustively() {
    // Property (c): as long as process 0 itself is not corrupted, T5 is
    // never enabled in any reachable state, under arbitrary detectable
    // faults at the other processes.
    let ring = TokenRing::new(4).with_domain(5);
    let explorer = Explorer::new(&ring);
    let exploration = explorer.reachable_with(vec![ring.initial_state()], 200_000, |s| {
        (1..4)
            .map(|victim| {
                let mut t = s.to_vec();
                t[victim] = Sn::Bot;
                t
            })
            .collect()
    });
    let exploration = exploration
        .require_complete()
        .expect("truncated search is not a proof");
    for s in &exploration.states {
        assert!(
            !ring.enabled(s, 0, T5),
            "T5 enabled at 0 without a fault at 0: {s:?}"
        );
    }
}

// ---------------------------------------------------------------------------
// The sweep program (RB, §4.1).
// ---------------------------------------------------------------------------

fn pos_domain(program: &SweepBarrier) -> Vec<PosState> {
    let mut d = Vec::new();
    // With the fuzzy extension disabled the `post` bit is inert and every
    // transition preserves `post = true`, so the post=true slice is a closed
    // subuniverse.
    for sn in sn_domain(program.sn_domain) {
        for &cp in &Cp::RB_DOMAIN {
            for ph in 0..program.n_phases {
                for done in [false, true] {
                    d.push(PosState {
                        sn,
                        cp,
                        ph,
                        done,
                        post: true,
                    });
                }
            }
        }
    }
    d
}

#[test]
fn sweep_ring2_every_state_recovers_exhaustively() {
    // Lemma 4.1.3, exhaustively for the 2-process ring with the minimal
    // sequence-number domain: every one of the 100² states reaches a start
    // state (all ready, same phase, ordinary sn).
    let program = SweepBarrier::new(SweepDag::ring(2).unwrap(), 2).with_sn_domain(3);
    let explorer = Explorer::new(&program);
    let d = pos_domain(&program);
    assert_eq!(d.len(), 100);
    let u = universe(&[d.clone(), d]);
    let stuck = explorer.states_not_reaching(&u, |s| {
        s.iter()
            .all(|p| p.cp == Cp::Ready && p.ph == s[0].ph && p.sn.is_valid())
    });
    assert!(
        stuck.is_empty(),
        "{} of {} states cannot recover; first: {:?}",
        stuck.len(),
        u.len(),
        stuck.first()
    );
}

#[test]
fn sweep_ring2_no_deadlock_anywhere_exhaustively() {
    // The repair-extension fix (extended T1, root T4 from sinks) makes the
    // program deadlock-free over its entire state universe.
    let program = SweepBarrier::new(SweepDag::ring(2).unwrap(), 2).with_sn_domain(3);
    let d = pos_domain(&program);
    let u = universe(&[d.clone(), d]);
    for s in &u {
        assert!(program.any_enabled(s), "deadlock state: {:?}", s);
    }
}

#[test]
fn sweep_masking_invariant_exhaustive_ring3() {
    // Lemma 4.1.2's heart, exhaustively: under arbitrary detectable faults
    // (at any single process, any forged phase), in every reachable state
    // all positions currently *executing with work in flight or done* agree
    // on the phase — two instances never overlap.
    let program = SweepBarrier::new(SweepDag::ring(3).unwrap(), 2).with_sn_domain(4);
    let explorer = Explorer::new(&program);
    let n_phases = program.n_phases;
    let exploration = explorer.reachable_with(vec![program.initial_state()], 3_000_000, |s| {
        let mut out = Vec::new();
        for victim in 0..3 {
            for ph in 0..n_phases {
                let mut t = s.to_vec();
                t[victim] = PosState {
                    sn: Sn::Bot,
                    cp: Cp::Error,
                    ph,
                    done: false,
                    post: true,
                };
                out.push(t);
            }
        }
        out
    });
    let exploration = exploration
        .require_complete()
        .expect("state space unexpectedly large");
    for s in &exploration.states {
        let executing: Vec<&PosState> = s.iter().filter(|p| p.cp == Cp::Execute).collect();
        for w in executing.windows(2) {
            assert_eq!(
                w[0].ph, w[1].ph,
                "two phases executing at once (overlap): {s:?}"
            );
        }
    }
    // Sanity: the exploration is substantial.
    assert!(exploration.states.len() > 1_000);
}

#[test]
#[ignore = "heavy: ~1.7M-state universe; run with --ignored --release"]
fn sweep_tree3_every_state_recovers_exhaustively() {
    let program = SweepBarrier::new(SweepDag::tree(3, 2).unwrap(), 2).with_sn_domain(4);
    let explorer = Explorer::new(&program);
    let d = pos_domain(&program);
    let u = universe(&[d.clone(), d.clone(), d]);
    let stuck = explorer.states_not_reaching(&u, |s| {
        s.iter()
            .all(|p| p.cp == Cp::Ready && p.ph == s[0].ph && p.sn.is_valid())
    });
    assert!(
        stuck.is_empty(),
        "{} of {} tree states cannot recover; first: {:?}",
        stuck.len(),
        u.len(),
        stuck.first()
    );
}

// ---------------------------------------------------------------------------
// Program CB (§3).
// ---------------------------------------------------------------------------

#[test]
fn cb_masking_invariant_exhaustive() {
    // Same overlap-freedom invariant for the coarse-grain program, with
    // detectable faults at any process and any forged phase, and with
    // nondeterministic `any k` choices covered by sampling.
    let cb = Cb::new(3, 2);
    let explorer = Explorer::new(&cb).with_nondet_samples(4);
    let exploration = explorer.reachable_with(vec![cb.initial_state()], 500_000, |s| {
        let mut out = Vec::new();
        for victim in 0..3 {
            for ph in 0..2 {
                let mut t = s.to_vec();
                t[victim] = CbState {
                    cp: Cp::Error,
                    ph,
                    done: false,
                };
                out.push(t);
            }
        }
        out
    });
    let exploration = exploration
        .require_complete()
        .expect("truncated search is not a proof");
    assert!(exploration.deadlocks.is_empty(), "CB must never deadlock");
    for s in &exploration.states {
        let phases: Vec<u32> = s
            .iter()
            .filter(|p| p.cp == Cp::Execute)
            .map(|p| p.ph)
            .collect();
        for w in phases.windows(2) {
            assert_eq!(w[0], w[1], "CB overlap: {s:?}");
        }
    }
}

#[test]
fn cb_fault_free_reachable_set_is_the_legal_cycle() {
    // Without faults, CB's reachable states never contain `error`, never
    // deadlock, and never mix three consecutive control positions with
    // inconsistent phases.
    let cb = Cb::new(3, 2);
    let explorer = Explorer::new(&cb).with_nondet_samples(4);
    let exploration = explorer.reachable(vec![cb.initial_state()], 100_000);
    let exploration = exploration
        .require_complete()
        .expect("truncated search is not a proof");
    assert!(exploration.deadlocks.is_empty());
    for s in &exploration.states {
        assert!(s.iter().all(|p| p.cp != Cp::Error));
        // Fault-free phase skew is at most one (clock unison, §7).
        let phs: Vec<u32> = s.iter().map(|p| p.ph).collect();
        let distinct = {
            let mut v = phs.clone();
            v.sort_unstable();
            v.dedup();
            v.len()
        };
        assert!(distinct <= 2, "phases diverged: {s:?}");
    }
}
