//! The topology-generic conformance suite.
//!
//! Every sweep topology family must pass the full `testkit` battery:
//! sweep-completeness, legal-set/coset structure (including adversarial
//! sequence-number domains with `gcd(3, L) ≠ 1` — the PR-5 audit pitfall),
//! byte-identical classic-vs-dense traces across worker counts, fault-plan
//! masking and stabilization, churn splice/graft, and byte-identical causal
//! happens-before dumps with the flight recorder armed. One test per family
//! so failures localize and the families run in parallel.
//!
//! Adding a topology? Add its `TopologySpec` here and it inherits the whole
//! battery — nothing else to write.

use ftbarrier_core::sim::TopologySpec;
use ftbarrier_core::testkit::check_conformance;

#[test]
fn ring_conforms() {
    check_conformance(TopologySpec::Ring { n: 8 });
}

#[test]
fn tree_conforms() {
    check_conformance(TopologySpec::Tree { n: 16, arity: 2 });
}

#[test]
fn double_tree_conforms() {
    check_conformance(TopologySpec::DoubleTree { n: 8, arity: 2 });
}

#[test]
fn mb_ring_conforms() {
    check_conformance(TopologySpec::MbRing { n: 8 });
}

#[test]
fn dissemination_radix2_conforms() {
    check_conformance(TopologySpec::Dissemination { n: 8, radix: 2 });
}

#[test]
fn dissemination_radix4_conforms() {
    check_conformance(TopologySpec::Dissemination { n: 16, radix: 4 });
}

#[test]
fn dissemination_non_power_size_conforms() {
    // Partner offsets collide mod n on non-power sizes and are deduped; the
    // resulting DAG must still pass everything.
    check_conformance(TopologySpec::Dissemination { n: 6, radix: 2 });
}

#[test]
fn hypercube_conforms() {
    check_conformance(TopologySpec::Hypercube { n: 8 });
}

#[test]
fn butterfly_conforms() {
    check_conformance(TopologySpec::Butterfly { n: 8 });
}
