//! Differential tests: the event-incremental scheduler must be byte-for-byte
//! equivalent to the full-rescan reference scheduler on every protocol that
//! provides `readers_of` hints.
//!
//! `EngineConfig::full_rescan = true` forces the reference path (rescan every
//! guard after every event); the default path re-checks only the dirty set.
//! Both must produce the identical event trace, final global state, and run
//! statistics — with and without faults — or the reader sets are wrong.

use ftbarrier_core::churn::{run_churn, ChurnExperiment};
use ftbarrier_core::sim::{
    measure_phases, measure_phases_with_telemetry, PhaseExperiment, SweepOracleMonitor,
    TopologySpec,
};
use ftbarrier_core::spec::Anchor;
use ftbarrier_core::sweep::{PosState, SweepBarrier};
use ftbarrier_core::testkit::{
    assert_identical, differential_config as config, run_classic as run_sweep,
    run_classic_telemetry as run_sweep_telemetry, run_dense as run_sweep_dense, RunRecord,
};
use ftbarrier_core::token_ring::TokenRing;
use ftbarrier_core::Sn;
use ftbarrier_gcs::fault::NoFaults;
use ftbarrier_gcs::monitor::MonitorSet;
use ftbarrier_gcs::trace::{Trace, TraceEvent};
use ftbarrier_gcs::{DenseEngine, DenseEngineConfig, Engine, EngineConfig, Time};
use ftbarrier_telemetry::{Telemetry, TimeDomain};

fn run_token_ring(seed: u64, full_rescan: bool) -> RunRecord<Sn> {
    // A nonzero hop cost makes simulated time advance, so the max_time
    // horizon terminates the run (the ring never reaches a fixpoint).
    let mut program = TokenRing::new(7);
    program.hop_cost = Time::new(0.05);
    let mut engine = Engine::new(&program, seed);
    engine.perturb_all();
    let mut trace = Trace::unbounded();
    let out = engine.run(&config(seed, 25.0, full_rescan), &mut NoFaults, &mut trace);
    (
        trace.events().cloned().collect(),
        engine.global().to_vec(),
        [
            out.stats.actions_executed,
            out.stats.commits_dropped,
            out.stats.faults,
        ],
    )
}

const TOPOLOGIES: [(&str, TopologySpec); 6] = [
    ("ring", TopologySpec::Ring { n: 8 }),
    ("tree", TopologySpec::Tree { n: 16, arity: 2 }),
    ("mb-ring", TopologySpec::MbRing { n: 8 }),
    (
        "dissemination",
        TopologySpec::Dissemination { n: 8, radix: 2 },
    ),
    ("hypercube", TopologySpec::Hypercube { n: 8 }),
    ("butterfly", TopologySpec::Butterfly { n: 8 }),
];

#[test]
fn sweep_topologies_match_full_rescan_without_faults() {
    for (name, spec) in TOPOLOGIES {
        for seed in [0xD1F1u64, 0xD1F2, 0xD1F3] {
            assert_identical(
                &format!("{name} seed {seed:#x}"),
                run_sweep(spec, seed, 0.0, false),
                run_sweep(spec, seed, 0.0, true),
            );
        }
    }
}

#[test]
fn sweep_topologies_match_full_rescan_under_process_faults() {
    for (name, spec) in TOPOLOGIES {
        for seed in [0xFA01u64, 0xFA02, 0xFA03] {
            assert_identical(
                &format!("{name} faulted seed {seed:#x}"),
                run_sweep(spec, seed, 0.3, false),
                run_sweep(spec, seed, 0.3, true),
            );
        }
    }
}

#[test]
fn token_ring_matches_full_rescan() {
    for seed in [7u64, 8, 9] {
        assert_identical(
            &format!("token ring seed {seed}"),
            run_token_ring(seed, false),
            run_token_ring(seed, true),
        );
    }
}

#[test]
fn dense_engine_matches_classic_without_faults() {
    for (name, spec) in TOPOLOGIES {
        for seed in [0x5A01u64, 0x5A02] {
            let classic = run_sweep(spec, seed, 0.0, false);
            for workers in [1usize, 2, 4] {
                assert_identical(
                    &format!("{name} dense w={workers} seed {seed:#x}"),
                    run_sweep_dense(spec, seed, 0.0, workers),
                    classic.clone(),
                );
            }
        }
    }
}

#[test]
fn dense_engine_matches_classic_under_process_faults() {
    for (name, spec) in TOPOLOGIES {
        for seed in [0x5B01u64, 0x5B02] {
            let classic = run_sweep(spec, seed, 0.3, false);
            for workers in [1usize, 2, 4] {
                assert_identical(
                    &format!("{name} dense faulted w={workers} seed {seed:#x}"),
                    run_sweep_dense(spec, seed, 0.3, workers),
                    classic.clone(),
                );
            }
        }
    }
}

#[test]
fn dense_token_ring_matches_classic() {
    for seed in [7u64, 8] {
        let classic = run_token_ring(seed, false);
        for workers in [1usize, 2, 4] {
            let mut program = TokenRing::new(7);
            program.hop_cost = Time::new(0.05);
            let mut engine = DenseEngine::new(&program, seed).with_shards(3);
            engine.perturb_all();
            let mut trace = Trace::unbounded();
            let cfg = DenseEngineConfig {
                max_time: Some(Time::new(25.0)),
                max_commits: Some(2_000_000),
                workers: Some(workers),
                parallel_threshold: 1,
                ..Default::default()
            };
            let out = engine.run(&cfg, &mut NoFaults, &mut trace);
            assert_identical(
                &format!("token ring dense w={workers} seed {seed}"),
                (
                    trace.events().cloned().collect(),
                    engine.global_states(),
                    [
                        out.stats.actions_executed,
                        out.stats.commits_dropped,
                        out.stats.faults,
                    ],
                ),
                classic.clone(),
            );
        }
    }
}

#[test]
fn telemetry_monitors_leave_engine_trace_byte_identical() {
    // The whole telemetry layer is a pure observer: attaching a *recording*
    // handle must not change a single trace event, final state, or stat.
    for (name, spec) in TOPOLOGIES {
        for seed in [0x7E1Eu64, 0x7E2E] {
            let tele = Telemetry::recording(TimeDomain::Virtual);
            let on = run_sweep_telemetry(spec, seed, 0.3, false, &tele);
            let off = run_sweep(spec, seed, 0.3, false);
            assert_identical(&format!("{name} telemetry seed {seed:#x}"), on, off);
            assert!(
                !tele.snapshot().metrics.is_empty(),
                "{name}: telemetry actually recorded"
            );
        }
    }
}

#[test]
fn measure_phases_identical_with_telemetry_on_and_off() {
    for (name, spec) in TOPOLOGIES {
        for seed in [0xABC1u64, 0xABC2] {
            let exp = PhaseExperiment {
                topology: spec,
                c: 0.02,
                f: 0.05,
                seed,
                target_phases: 30,
                ..Default::default()
            };
            let tele = Telemetry::recording(TimeDomain::Virtual);
            let on = measure_phases_with_telemetry(&exp, &tele);
            let off = measure_phases(&exp);
            assert_eq!(on, off, "{name} seed {seed:#x}: measurements diverge");
        }
    }
}

/// Replicate exactly what the churn driver's first (and, fault-free, only)
/// segment does — same program construction, initial states, RNG seeds, and
/// monitor-driven stop — but on the *bare* program with no membership
/// machinery at all.
fn plain_churn_reference(
    spec: TopologySpec,
    seed: u64,
    target: u64,
    horizon: f64,
) -> (Vec<TraceEvent<PosState>>, Vec<PosState>) {
    let dag = spec.build().unwrap();
    let n_positions = dag.num_positions();
    let program = SweepBarrier::new(dag, 8)
        .with_sn_domain(2 * n_positions as u32 + 3)
        .with_costs(Time::new(0.01), Time::new(1.0));
    let mut engine = Engine::from_state(&program, seed, vec![PosState::start(); n_positions]);
    let mut oracle = SweepOracleMonitor::new(&program, Anchor::StrictFromZero).stop_after(target);
    let mut trace = Trace::unbounded();
    let cfg = EngineConfig {
        seed: seed ^ 0x5EED,
        max_time: Some(Time::new(horizon)),
        ..Default::default()
    };
    {
        let mut set = MonitorSet::new().with(&mut oracle).with(&mut trace);
        engine.run(&cfg, &mut NoFaults, &mut set);
    }
    (trace.events().cloned().collect(), engine.global().to_vec())
}

#[test]
fn churn_driver_with_no_events_is_byte_identical_to_a_plain_run() {
    // The membership layer (masked protocol wrapper, view mapping, oracle
    // segmentation) must be invisible when nothing churns: the recorded
    // trace and final states match a bare engine run byte for byte.
    for (name, spec) in TOPOLOGIES {
        for seed in [0xC0AAu64, 0xC0BB] {
            let m = run_churn(&ChurnExperiment {
                topology: spec,
                seed,
                target_phases: 25,
                horizon: 120.0,
                record_trace: true,
                ..Default::default()
            });
            let (ref_trace, ref_states) = plain_churn_reference(spec, seed, 25, 120.0);
            assert_eq!(
                m.trace, ref_trace,
                "{name} seed {seed:#x}: churn-layer trace diverges from the bare run"
            );
            assert_eq!(
                m.final_states, ref_states,
                "{name} seed {seed:#x}: final states diverge"
            );
            assert!(!m.trace.is_empty(), "{name}: run did nothing");
            assert_eq!(m.violations, 0, "{name} seed {seed:#x}");
            assert_eq!((m.suspicions, m.rejoins, m.epoch), (0, 0, 0), "{name}");
        }
    }
}

#[test]
fn measure_phases_is_deterministic() {
    // Two identical experiment descriptions must yield byte-identical
    // measurements — the regression guard for the parallel sweep harness,
    // whose correctness rests on cells being pure functions of their seeds.
    let exp = PhaseExperiment {
        topology: TopologySpec::Tree { n: 16, arity: 2 },
        c: 0.02,
        f: 0.05,
        target_phases: 30,
        ..Default::default()
    };
    let a = measure_phases(&exp);
    let b = measure_phases(&exp);
    assert_eq!(a, b);
}
