//! Seeded discrete-event simulated network.
//!
//! A [`SimNet`] is a set of unidirectional links carrying messages through a
//! per-link latency model and the same fault classes as the threaded
//! [`faulty_channel`](crate::channel::faulty_channel) — loss, duplication,
//! reordering (hold-and-swap, identical semantics), detectable corruption —
//! plus *link partitions*: while a link is partitioned every send on it is
//! dropped; healing restores it (retransmission masks the gap as loss,
//! exactly the §5 argument).
//!
//! Event model: `send` stamps each surviving copy of the message with a
//! delivery time `now + latency` and pushes it on one global queue keyed
//! `(Time, seq)` with `seq` a monotone counter, so the delivery order is a
//! pure function of the seed — no hashing, no wall clock. The driver
//! alternates between `next_event_time` and `advance_to`, which moves due
//! messages into per-link inboxes in deterministic order.

use crate::channel::{ChannelFaults, Delivery};
use ftbarrier_gcs::{SimRng, Time};
use ftbarrier_telemetry::{EventId, Telemetry};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Per-message latency of a link, in virtual time units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LatencyModel {
    /// Every message takes exactly this long.
    Fixed(f64),
    /// Uniformly distributed in `[lo, hi)` — jitter, a second (physical)
    /// source of reordering on top of the fault model's hold-and-swap.
    Uniform { lo: f64, hi: f64 },
}

impl LatencyModel {
    fn validate(&self) {
        match *self {
            LatencyModel::Fixed(l) => {
                assert!(l.is_finite() && l >= 0.0, "latency {l} out of range")
            }
            LatencyModel::Uniform { lo, hi } => {
                assert!(
                    lo.is_finite() && lo >= 0.0 && hi >= lo,
                    "latency range [{lo}, {hi}) invalid"
                );
            }
        }
    }

    fn sample(&self, rng: &mut SimRng) -> f64 {
        match *self {
            LatencyModel::Fixed(l) => l,
            LatencyModel::Uniform { lo, hi } => {
                if hi > lo {
                    lo + rng.unit() * (hi - lo)
                } else {
                    lo
                }
            }
        }
    }
}

/// Configuration of one simulated link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkConfig {
    pub latency: LatencyModel,
    pub faults: ChannelFaults,
}

impl LinkConfig {
    /// A perfect link with the given fixed latency.
    pub fn perfect(latency: f64) -> LinkConfig {
        LinkConfig {
            latency: LatencyModel::Fixed(latency),
            faults: ChannelFaults::NONE,
        }
    }
}

/// Aggregate traffic counters of a [`SimNet`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    pub sent: u64,
    pub delivered: u64,
    pub lost: u64,
    pub corrupted: u64,
    pub duplicated: u64,
    pub held: u64,
    /// Sends swallowed by a partitioned link.
    pub blocked: u64,
}

struct Link<T> {
    cfg: LinkConfig,
    rng: SimRng,
    /// A message held back for reordering (swapped with the next send).
    held: Option<(Delivery<T>, Option<EventId>)>,
    partitioned: bool,
    inbox: VecDeque<(Delivery<T>, Option<EventId>)>,
}

struct InFlight<T> {
    at: Time,
    seq: u64,
    link: usize,
    /// When the message entered the queue — for delivery-latency telemetry
    /// only; not part of the `(at, seq)` event order.
    sent_at: Time,
    delivery: Delivery<T>,
    /// The sender's last causal event at send time — rides every fault
    /// transformation (duplicates share it, corruption keeps it) so a
    /// delivery edge names the exact send that produced it.
    tag: Option<EventId>,
}

// Ordering for the event queue: earliest (time, seq) first via Reverse.
impl<T> PartialEq for InFlight<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for InFlight<T> {}
impl<T> PartialOrd for InFlight<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for InFlight<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The simulated network: links, one event queue, one seed.
pub struct SimNet<T> {
    links: Vec<Link<T>>,
    queue: BinaryHeap<Reverse<InFlight<T>>>,
    seq: u64,
    now: Time,
    stats: NetStats,
    telemetry: Telemetry,
    /// Pre-rendered per-link label values (avoids formatting per event).
    link_labels: Vec<String>,
}

impl<T: Clone> SimNet<T> {
    /// One entry in `links` per unidirectional link; all fault/latency
    /// randomness is forked from `seed`.
    pub fn new(links: Vec<LinkConfig>, seed: u64) -> SimNet<T> {
        let mut rng = SimRng::seed_from_u64(seed);
        let links = links
            .into_iter()
            .map(|cfg| {
                cfg.latency.validate();
                Link {
                    cfg,
                    rng: rng.fork(),
                    held: None,
                    partitioned: false,
                    inbox: VecDeque::new(),
                }
            })
            .collect();
        SimNet {
            links,
            queue: BinaryHeap::new(),
            seq: 0,
            now: Time::ZERO,
            stats: NetStats::default(),
            telemetry: Telemetry::off(),
            link_labels: Vec::new(),
        }
    }

    /// Mirror traffic into `telemetry`: per-link
    /// `net_{sent,delivered,lost,corrupted,duplicated,blocked}_total`
    /// counters, a `net_in_flight` queue-depth gauge, and per-link
    /// `net_delivery_latency` histograms. Recording never touches the
    /// fault/latency RNG streams, so the delivery schedule is unchanged.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> SimNet<T> {
        self.link_labels = (0..self.links.len()).map(|l| l.to_string()).collect();
        self.telemetry = telemetry;
        self
    }

    fn count(&self, name: &str, link: usize) {
        if self.telemetry.is_enabled() {
            self.telemetry
                .counter(name, &[("link", &self.link_labels[link])], 1);
        }
    }

    fn update_depth_gauge(&self) {
        if self.telemetry.is_enabled() {
            self.telemetry
                .gauge("net_in_flight", &[], self.queue.len() as f64);
        }
    }

    pub fn now(&self) -> Time {
        self.now
    }

    pub fn stats(&self) -> NetStats {
        self.stats
    }

    pub fn n_links(&self) -> usize {
        self.links.len()
    }

    pub fn is_partitioned(&self, link: usize) -> bool {
        self.links[link].partitioned
    }

    /// Cut or heal a link. Cutting also discards any held (reordered)
    /// message — it was still on the sender's side of the cut.
    pub fn set_partitioned(&mut self, link: usize, cut: bool) {
        self.links[link].partitioned = cut;
        if cut && self.links[link].held.take().is_some() {
            self.stats.lost += 1;
            self.count("net_lost_total", link);
        }
    }

    fn schedule(&mut self, link: usize, delivery: Delivery<T>, tag: Option<EventId>) {
        let latency = {
            let l = &mut self.links[link];
            l.cfg.latency.sample(&mut l.rng)
        };
        let at = self.now + Time::new(latency);
        self.seq += 1;
        self.queue.push(Reverse(InFlight {
            at,
            seq: self.seq,
            link,
            sent_at: self.now,
            delivery,
            tag,
        }));
        self.update_depth_gauge();
    }

    /// Send `msg` on `link` at the current virtual time, through the link's
    /// fault model. The decision stream mirrors
    /// [`FaultySender::send`](crate::channel::FaultySender::send): loss,
    /// then corruption, then duplication, then reorder hold-and-swap.
    pub fn send(&mut self, link: usize, msg: T) {
        self.send_tagged(link, msg, None);
    }

    /// [`Self::send`] with a causal tag: the sender's last recorded event
    /// id travels with every surviving copy of the message (duplicates
    /// share it, detectable corruption keeps it), so the receiver can draw
    /// an exact delivery edge instead of inferring one. The fault/latency
    /// decision stream is identical to an untagged send.
    pub fn send_tagged(&mut self, link: usize, msg: T, tag: Option<EventId>) {
        self.stats.sent += 1;
        self.count("net_sent_total", link);
        if self.links[link].partitioned {
            self.stats.blocked += 1;
            self.count("net_blocked_total", link);
            return;
        }
        let (lost, corrupted, duplicate, hold) = {
            let l = &mut self.links[link];
            let f = l.cfg.faults;
            (
                l.rng.chance(f.loss),
                l.rng.chance(f.corruption),
                l.rng.chance(f.duplication),
                l.rng.chance(f.reorder),
            )
        };
        if lost {
            self.stats.lost += 1;
            self.count("net_lost_total", link);
            return;
        }
        let delivery = if corrupted {
            self.stats.corrupted += 1;
            self.count("net_corrupted_total", link);
            Delivery::Corrupted
        } else {
            Delivery::Ok(msg)
        };

        // Reordering: park this message; release any previously held one
        // after the next send (a swap of adjacent messages).
        let mut to_send: Vec<(Delivery<T>, Option<EventId>)> = Vec::with_capacity(3);
        if hold && self.links[link].held.is_none() {
            self.stats.held += 1;
            self.links[link].held = Some((delivery.clone(), tag));
        } else {
            to_send.push((delivery.clone(), tag));
            if let Some(prev) = self.links[link].held.take() {
                to_send.push(prev);
            }
        }
        if duplicate {
            self.stats.duplicated += 1;
            self.count("net_duplicated_total", link);
            to_send.push((delivery, tag));
        }
        for (d, t) in to_send {
            self.schedule(link, d, t);
        }
    }

    /// Release a held (reordered) message — call when a link goes quiet.
    pub fn flush(&mut self, link: usize) {
        if let Some((prev, tag)) = self.links[link].held.take() {
            self.schedule(link, prev, tag);
        }
    }

    /// Delivery time of the earliest in-flight message, if any.
    pub fn next_event_time(&self) -> Option<Time> {
        self.queue.peek().map(|Reverse(m)| m.at)
    }

    /// Advance virtual time to `t`, moving every message due at or before
    /// `t` into its link's inbox. Returns the link ids that received
    /// something, in delivery order (duplicates possible).
    pub fn advance_to(&mut self, t: Time) -> Vec<usize> {
        assert!(t >= self.now, "time went backwards: {} -> {}", self.now, t);
        self.now = t;
        let mut touched = Vec::new();
        while self.queue.peek().is_some_and(|Reverse(m)| m.at <= self.now) {
            let Reverse(m) = self.queue.pop().expect("peeked");
            self.stats.delivered += 1;
            if self.telemetry.is_enabled() {
                self.count("net_delivered_total", m.link);
                self.telemetry.observe(
                    "net_delivery_latency",
                    &[("link", &self.link_labels[m.link])],
                    (m.at - m.sent_at).as_f64(),
                );
            }
            self.links[m.link].inbox.push_back((m.delivery, m.tag));
            touched.push(m.link);
        }
        self.update_depth_gauge();
        touched
    }

    /// Pop the next delivery waiting in `link`'s inbox.
    pub fn pop_inbox(&mut self, link: usize) -> Option<Delivery<T>> {
        self.links[link].inbox.pop_front().map(|(d, _)| d)
    }

    /// [`Self::pop_inbox`] with the causal tag the message was sent with
    /// (`None` for untagged sends).
    pub fn pop_inbox_tagged(&mut self, link: usize) -> Option<(Delivery<T>, Option<EventId>)> {
        self.links[link].inbox.pop_front()
    }

    /// Apply `f` to every intact in-flight payload on `link` (including a
    /// held reordered message), *undetectably* — delivery times, event order
    /// and already-`Corrupted` markers are untouched. This is how the
    /// corruption campaign forges wire contents: unlike the fault model's
    /// `corruption` (which flags the delivery as `Corrupted` and is therefore
    /// detectable), a forge rewrites bytes in place and the receiver has no
    /// way to tell. Returns the number of payloads rewritten.
    pub fn corrupt_in_flight(&mut self, link: usize, f: &mut dyn FnMut(&mut T)) -> usize {
        let mut hit = 0;
        let drained = std::mem::take(&mut self.queue);
        let mut rebuilt = BinaryHeap::with_capacity(drained.len());
        for Reverse(mut m) in drained.into_iter() {
            if m.link == link {
                if let Delivery::Ok(payload) = &mut m.delivery {
                    f(payload);
                    hit += 1;
                }
            }
            rebuilt.push(Reverse(m));
        }
        self.queue = rebuilt;
        if let Some((Delivery::Ok(payload), _)) = &mut self.links[link].held {
            f(payload);
            hit += 1;
        }
        hit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(faults: ChannelFaults, latency: LatencyModel, seed: u64) -> SimNet<u32> {
        SimNet::new(vec![LinkConfig { latency, faults }], seed)
    }

    #[test]
    fn perfect_link_delivers_in_order_after_latency() {
        let mut n = net(ChannelFaults::NONE, LatencyModel::Fixed(0.5), 1);
        n.send(0, 1);
        n.send(0, 2);
        assert_eq!(n.next_event_time(), Some(Time::new(0.5)));
        assert!(n.advance_to(Time::new(0.4)).is_empty());
        assert_eq!(n.advance_to(Time::new(0.5)), vec![0, 0]);
        assert_eq!(n.pop_inbox(0), Some(Delivery::Ok(1)));
        assert_eq!(n.pop_inbox(0), Some(Delivery::Ok(2)));
        assert_eq!(n.pop_inbox(0), None);
    }

    #[test]
    fn partition_drops_sends_and_heals() {
        let mut n = net(ChannelFaults::NONE, LatencyModel::Fixed(0.0), 1);
        n.set_partitioned(0, true);
        n.send(0, 7);
        assert_eq!(n.next_event_time(), None);
        assert_eq!(n.stats().blocked, 1);
        n.set_partitioned(0, false);
        n.send(0, 8);
        n.advance_to(Time::ZERO);
        assert_eq!(n.pop_inbox(0), Some(Delivery::Ok(8)));
    }

    #[test]
    fn reorder_hold_and_swap_matches_channel_semantics() {
        let mut n = net(
            ChannelFaults {
                reorder: 1.0,
                ..ChannelFaults::NONE
            },
            LatencyModel::Fixed(0.0),
            1,
        );
        n.send(0, 1); // held
        n.send(0, 2); // releases 1 after 2
        n.flush(0);
        n.advance_to(Time::ZERO);
        assert_eq!(n.pop_inbox(0), Some(Delivery::Ok(2)));
        assert_eq!(n.pop_inbox(0), Some(Delivery::Ok(1)));
    }

    #[test]
    fn corruption_is_detectable_and_loss_is_silent() {
        let mut n = net(
            ChannelFaults {
                corruption: 1.0,
                ..ChannelFaults::NONE
            },
            LatencyModel::Fixed(0.1),
            3,
        );
        n.send(0, 9);
        n.advance_to(Time::new(1.0));
        assert_eq!(n.pop_inbox(0), Some(Delivery::Corrupted));

        let mut n = net(
            ChannelFaults {
                loss: 1.0,
                ..ChannelFaults::NONE
            },
            LatencyModel::Fixed(0.1),
            3,
        );
        n.send(0, 9);
        assert_eq!(n.next_event_time(), None);
        assert_eq!(n.stats().lost, 1);
    }

    #[test]
    fn uniform_jitter_can_reorder_messages() {
        let mut n = net(
            ChannelFaults::NONE,
            LatencyModel::Uniform { lo: 0.0, hi: 1.0 },
            5,
        );
        // With enough messages, at least one pair must arrive out of send
        // order under i.i.d. latencies.
        for i in 0..100 {
            n.send(0, i);
        }
        n.advance_to(Time::new(2.0));
        let mut got = Vec::new();
        while let Some(Delivery::Ok(v)) = n.pop_inbox(0) {
            got.push(v);
        }
        assert_eq!(got.len(), 100);
        let mut sorted = got.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(got, sorted, "jitter should reorder at least one pair");
    }

    #[test]
    fn same_seed_same_delivery_schedule() {
        let run = |seed| {
            let mut n = net(
                ChannelFaults::nasty(),
                LatencyModel::Uniform { lo: 0.0, hi: 0.5 },
                seed,
            );
            let mut log = Vec::new();
            for i in 0..200 {
                n.send(0, i);
            }
            n.flush(0);
            n.advance_to(Time::new(5.0));
            while let Some(d) = n.pop_inbox(0) {
                log.push(format!("{d:?}"));
            }
            (log, n.stats())
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    #[should_panic]
    fn time_cannot_go_backwards() {
        let mut n = net(ChannelFaults::NONE, LatencyModel::Fixed(0.0), 1);
        n.advance_to(Time::new(1.0));
        n.advance_to(Time::new(0.5));
    }

    #[test]
    #[should_panic]
    fn rejects_negative_latency() {
        let _ = net(ChannelFaults::NONE, LatencyModel::Fixed(-0.1), 1);
    }

    #[test]
    fn corrupt_in_flight_rewrites_payloads_without_reordering() {
        let mut n = net(ChannelFaults::NONE, LatencyModel::Fixed(0.5), 1);
        n.send(0, 1);
        n.send(0, 2);
        let before = n.next_event_time();
        let hit = n.corrupt_in_flight(0, &mut |v| *v += 100);
        assert_eq!(hit, 2);
        assert_eq!(n.next_event_time(), before, "delivery schedule untouched");
        n.advance_to(Time::new(0.5));
        assert_eq!(n.pop_inbox(0), Some(Delivery::Ok(101)));
        assert_eq!(n.pop_inbox(0), Some(Delivery::Ok(102)));
        // A held (reordered) message is part of the in-flight set too.
        let mut n = net(
            ChannelFaults {
                reorder: 1.0,
                ..ChannelFaults::NONE
            },
            LatencyModel::Fixed(0.0),
            1,
        );
        n.send(0, 5); // held
        assert_eq!(n.corrupt_in_flight(0, &mut |v| *v = 9), 1);
        n.flush(0);
        n.advance_to(Time::ZERO);
        assert_eq!(n.pop_inbox(0), Some(Delivery::Ok(9)));
    }

    #[test]
    fn causal_tags_ride_every_fault_transformation() {
        let id = |pid, seq| EventId { pid, seq };
        // Duplication: both copies carry the sender's tag.
        let mut n = net(
            ChannelFaults {
                duplication: 1.0,
                ..ChannelFaults::NONE
            },
            LatencyModel::Fixed(0.0),
            1,
        );
        n.send_tagged(0, 1, Some(id(3, 7)));
        n.advance_to(Time::ZERO);
        assert_eq!(
            n.pop_inbox_tagged(0),
            Some((Delivery::Ok(1), Some(id(3, 7))))
        );
        assert_eq!(
            n.pop_inbox_tagged(0),
            Some((Delivery::Ok(1), Some(id(3, 7))))
        );
        // Corruption: the delivery is flagged but still names its send.
        let mut n = net(
            ChannelFaults {
                corruption: 1.0,
                ..ChannelFaults::NONE
            },
            LatencyModel::Fixed(0.0),
            1,
        );
        n.send_tagged(0, 2, Some(id(1, 1)));
        n.advance_to(Time::ZERO);
        assert_eq!(
            n.pop_inbox_tagged(0),
            Some((Delivery::Corrupted, Some(id(1, 1))))
        );
        // Reorder hold-and-swap: each message keeps its own tag.
        let mut n = net(
            ChannelFaults {
                reorder: 1.0,
                ..ChannelFaults::NONE
            },
            LatencyModel::Fixed(0.0),
            1,
        );
        n.send_tagged(0, 1, Some(id(0, 1)));
        n.send_tagged(0, 2, Some(id(0, 2)));
        n.flush(0);
        n.advance_to(Time::ZERO);
        assert_eq!(
            n.pop_inbox_tagged(0),
            Some((Delivery::Ok(2), Some(id(0, 2))))
        );
        assert_eq!(
            n.pop_inbox_tagged(0),
            Some((Delivery::Ok(1), Some(id(0, 1))))
        );
        // Untagged sends pop as tagless.
        let mut n = net(ChannelFaults::NONE, LatencyModel::Fixed(0.0), 1);
        n.send(0, 4);
        n.advance_to(Time::ZERO);
        assert_eq!(n.pop_inbox_tagged(0), Some((Delivery::Ok(4), None)));
    }

    #[test]
    fn telemetry_mirrors_stats_without_changing_schedule() {
        use ftbarrier_telemetry::{Telemetry, TimeDomain};
        let run = |tele: Telemetry| {
            let mut n = net(
                ChannelFaults::nasty(),
                LatencyModel::Uniform { lo: 0.0, hi: 0.5 },
                42,
            )
            .with_telemetry(tele);
            let mut log = Vec::new();
            for i in 0..200 {
                n.send(0, i);
            }
            n.flush(0);
            n.advance_to(Time::new(5.0));
            while let Some(d) = n.pop_inbox(0) {
                log.push(format!("{d:?}"));
            }
            (log, n.stats())
        };
        let tele = Telemetry::recording(TimeDomain::Virtual);
        let (log_on, stats_on) = run(tele.clone());
        let (log_off, stats_off) = run(Telemetry::off());
        // Pure observer: identical delivery schedule and stats.
        assert_eq!(log_on, log_off);
        assert_eq!(stats_on, stats_off);
        // And the mirrored counters agree with NetStats.
        let snap = tele.snapshot();
        let m = &snap.metrics;
        assert_eq!(m.counter("net_sent_total", &[("link", "0")]), stats_on.sent);
        assert_eq!(
            m.counter("net_delivered_total", &[("link", "0")]),
            stats_on.delivered
        );
        assert_eq!(m.counter("net_lost_total", &[("link", "0")]), stats_on.lost);
        assert_eq!(
            m.counter("net_corrupted_total", &[("link", "0")]),
            stats_on.corrupted
        );
        assert_eq!(
            m.counter("net_duplicated_total", &[("link", "0")]),
            stats_on.duplicated
        );
        let h = m
            .histogram("net_delivery_latency", &[("link", "0")])
            .expect("latency histogram");
        assert_eq!(h.count(), stats_on.delivered);
        assert!(h.max() <= 0.5 + 1e-9);
        // Queue fully drained at the end.
        assert_eq!(m.gauge("net_in_flight", &[]), Some(0.0));
    }
}
