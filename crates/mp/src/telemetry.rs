//! Telemetry bridge shared by both MB backends: replay the merged
//! [`CpEvent`] log — already the backends' source of truth for the oracle —
//! into per-process phase spans, fault instants, and phase-duration
//! histograms.
//!
//! Both backends record telemetry *after* the run from the same event log
//! the oracle replays, so enabling it cannot perturb execution: the
//! simulated backend stays byte-identical (`SimMbReport::trace`), and the
//! threaded backend's protocol path is untouched.

use crate::proc::CpEvent;
use ftbarrier_core::Cp;
use ftbarrier_gcs::Time;
use ftbarrier_telemetry::Telemetry;

/// Replay `events` (sorted by `seq`) into `telemetry`: a `proc <pid>` track
/// per process with one span per phase execution (`outcome` = `success` /
/// `abort`), instants for detectable faults, and an `mb_phase_duration`
/// histogram. Spans still open at `end` are closed there with
/// `outcome="unfinished"` and not counted in the histogram.
pub fn record_cp_timeline(telemetry: &Telemetry, events: &[CpEvent], end: Time) {
    if !telemetry.is_enabled() || events.is_empty() {
        return;
    }
    let n = 1 + events.iter().map(|e| e.pid).max().unwrap_or(0);
    let tracks: Vec<_> = (0..n)
        .map(|p| telemetry.track(&format!("proc {p}")))
        .collect();
    let mut open: Vec<Option<(u32, Time)>> = vec![None; n];
    let close = |pid: usize, ph: u32, start: Time, at: Time, outcome: &str| {
        telemetry.span_with(
            tracks[pid],
            &format!("phase {ph}"),
            start.as_f64(),
            at.max(start).as_f64(),
            &[("outcome", outcome)],
        );
        if outcome != "unfinished" {
            telemetry.observe(
                "mb_phase_duration",
                &[("outcome", outcome)],
                at.max(start).saturating_sub(start).as_f64(),
            );
        }
    };
    for e in events {
        if e.new == Cp::Error {
            telemetry.instant_with(
                tracks[e.pid],
                "fault:detectable",
                e.at.as_f64(),
                &[("pid", &e.pid.to_string())],
            );
        }
        if e.old != Cp::Execute && e.new == Cp::Execute {
            open[e.pid] = Some((e.ph, e.at));
        } else if e.old == Cp::Execute && e.new != Cp::Execute {
            if let Some((ph, start)) = open[e.pid].take() {
                let outcome = if e.new == Cp::Success {
                    "success"
                } else {
                    "abort"
                };
                close(e.pid, ph, start, e.at, outcome);
            }
        }
    }
    for (pid, slot) in open.iter_mut().enumerate() {
        if let Some((ph, start)) = slot.take() {
            close(pid, ph, start, end, "unfinished");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftbarrier_telemetry::{TimeDomain, TimelineEvent};

    fn ev(seq: u64, pid: usize, ph: u32, old: Cp, new: Cp, at: f64) -> CpEvent {
        CpEvent {
            at: Time::new(at),
            seq,
            pid,
            ph,
            old,
            new,
        }
    }

    #[test]
    fn replay_builds_spans_and_histogram() {
        let tele = Telemetry::recording(TimeDomain::Virtual);
        let events = vec![
            ev(1, 0, 0, Cp::Ready, Cp::Execute, 0.0),
            ev(2, 1, 0, Cp::Ready, Cp::Execute, 0.1),
            ev(3, 0, 0, Cp::Execute, Cp::Success, 1.0),
            ev(4, 1, 0, Cp::Execute, Cp::Repeat, 1.2),
            ev(5, 1, 1, Cp::Ready, Cp::Execute, 1.5),
        ];
        record_cp_timeline(&tele, &events, Time::new(2.0));
        let snap = tele.snapshot();
        assert_eq!(snap.tracks, vec!["proc 0".to_owned(), "proc 1".to_owned()]);
        let spans: Vec<_> = snap
            .events
            .iter()
            .filter_map(|e| match e {
                TimelineEvent::Span {
                    name,
                    start,
                    end,
                    args,
                    ..
                } => Some((name.clone(), *start, *end, args.clone())),
                _ => None,
            })
            .collect();
        // success [0,1], abort [0.1,1.2], unfinished [1.5,2].
        assert_eq!(spans.len(), 3);
        let h = snap
            .metrics
            .histogram("mb_phase_duration", &[("outcome", "success")])
            .expect("success histogram");
        assert_eq!(h.count(), 1);
        assert!((h.sum() - 1.0).abs() < 1e-12);
        assert_eq!(
            snap.metrics
                .histogram("mb_phase_duration", &[("outcome", "abort")])
                .map(|h| h.count()),
            Some(1)
        );
        // Unfinished spans stay out of the histogram.
        assert!(snap
            .metrics
            .histogram("mb_phase_duration", &[("outcome", "unfinished")])
            .is_none());
    }

    #[test]
    fn fault_events_become_instants() {
        let tele = Telemetry::recording(TimeDomain::Wall);
        let events = vec![ev(1, 2, 3, Cp::Execute, Cp::Error, 0.5)];
        record_cp_timeline(&tele, &events, Time::new(1.0));
        let snap = tele.snapshot();
        assert!(snap.events.iter().any(
            |e| matches!(e, TimelineEvent::Instant { name, .. } if name == "fault:detectable")
        ));
    }

    #[test]
    fn disabled_handle_is_noop() {
        let tele = Telemetry::off();
        record_cp_timeline(
            &tele,
            &[ev(1, 0, 0, Cp::Ready, Cp::Execute, 0.0)],
            Time::new(1.0),
        );
        assert!(tele.snapshot().events.is_empty());
    }
}
