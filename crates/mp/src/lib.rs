//! Message-passing substrate and two executable backends for program MB (§5).
//!
//! The core crate proves MB's structure (local copies ≅ a 2(N+1)-position
//! ring). This crate *runs* it, twice, against one transport abstraction
//! ([`transport::Endpoint`]) and one per-process state machine
//! ([`proc::MbCore`]):
//!
//! * [`mb`] — real `std::thread` processes connected by channels that lose,
//!   duplicate, reorder, and detectably corrupt messages ([`channel`]), with
//!   retransmission/deadline timing routed through a [`clock::Clock`] so
//!   tests can drive a threaded run on virtual time;
//! * [`mb_sim`] — the same program on a seeded discrete-event simulated
//!   network ([`simnet`]): virtual time, per-link latency models, scheduled
//!   fault plans (loss, duplication, reordering, detectable corruption, link
//!   partitions with healing, process crash/reboot), byte-for-byte
//!   replayable from one seed;
//! * [`socket`] — the same program over length-prefixed TCP sockets between
//!   OS processes: non-blocking framed reads, checksummed payloads, in-frame
//!   causal tags, and reconnect-with-backoff so a peer crash degrades to
//!   the detectable loss the protocol already masks.

pub mod channel;
pub mod clock;
pub mod mb;
pub mod mb_sim;
pub mod proc;
pub mod simnet;
pub mod socket;
pub mod sweep_mp;
pub mod sweep_sim;
pub mod telemetry;
pub mod transport;

pub use channel::{ChannelFaults, Delivery, FaultyReceiver, FaultySender};
pub use clock::{Clock, TestClock, WallClock};
pub use mb::{MbConfig, MbProcessHandle, MbReport, MbRun};
pub use mb_sim::{
    ChurnConfig, CrashPlan, FaultPlan, PartitionPlan, SimMbConfig, SimMbReport, WireMsg,
};
pub use proc::{sn_domain, try_sn_domain, MbCore, StateMsg};
pub use simnet::{LatencyModel, LinkConfig, NetStats, SimNet};
pub use socket::{connect_endpoint, socket_ring, FrameReader, SocketEndpoint};
pub use sweep_mp::{SweepMpConfig, SweepMpHandle, SweepMpReport, SweepMpRun};
pub use sweep_sim::{SweepSimConfig, SweepSimReport};
pub use telemetry::record_cp_timeline;
pub use transport::{channel_ring, ChannelEndpoint, Endpoint};
