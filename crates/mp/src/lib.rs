//! Message-passing substrate and an executable program MB (§5).
//!
//! The core crate proves MB's structure (local copies ≅ a 2(N+1)-position
//! ring). This crate *runs* it: real `std::thread` processes connected by
//! channels that lose, duplicate, reorder, and detectably corrupt messages —
//! the §1 communication-fault classes — with each process maintaining local
//! copies of its predecessor's variables exactly as §5 prescribes.

pub mod channel;
pub mod mb;
pub mod sweep_mp;

pub use channel::{ChannelFaults, Delivery, FaultyReceiver, FaultySender};
pub use mb::{MbConfig, MbProcessHandle, MbReport, MbRun};
pub use sweep_mp::{SweepMpConfig, SweepMpHandle, SweepMpReport, SweepMpRun};
