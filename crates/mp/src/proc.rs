//! The program-MB process state machine, backend-independent.
//!
//! [`MbCore`] is §5's refined per-process program: process `j` owns
//! `sn.j, cp.j, ph.j` plus a local copy of `sn.(j-1), cp.(j-1), ph.(j-1)`,
//! updated only from messages whose sequence number is ordinary. The same
//! core drives both executable backends:
//!
//! * the threaded backend (`mb.rs`): one `MbCore` per `std::thread`, real
//!   crossbeam channels, a [`Clock`](crate::clock::Clock) for retransmission
//!   and deadline timing;
//! * the deterministic backend (`mb_sim.rs`): all cores stepped by a
//!   discrete-event loop over the simulated network, on virtual time.
//!
//! Control-position changes are recorded as [`CpEvent`]s carrying the
//! caller-supplied virtual time plus a globally ordered sequence number, so
//! the merged event log replays through the [`BarrierOracle`]
//! (`ftbarrier_core::spec`) in an order that respects both per-process
//! program order and message causality (a state change is numbered before
//! the gossip that publishes it).

use crate::channel::Delivery;
use ftbarrier_core::cp::Cp;
use ftbarrier_core::sn::Sn;
use ftbarrier_gcs::{SimRng, Time};
use ftbarrier_telemetry::{CausalRecorder, EventId};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The state a process gossips to its successor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateMsg {
    pub sn: Sn,
    pub cp: Cp,
    pub ph: u32,
}

impl StateMsg {
    /// The §5 start state: `sn = 0, cp = ready, ph = 0`.
    pub fn initial() -> StateMsg {
        StateMsg {
            sn: Sn::Val(0),
            cp: Cp::Ready,
            ph: 0,
        }
    }

    /// The §4.1 detectable-fault state: `sn = ⊥, cp = error`.
    pub fn poisoned(ph: u32) -> StateMsg {
        StateMsg {
            sn: Sn::Bot,
            cp: Cp::Error,
            ph,
        }
    }
}

/// A recorded control-position change, for the post-hoc oracle check.
#[derive(Debug, Clone, Copy)]
pub struct CpEvent {
    pub at: Time,
    /// Global commit order (shared counter): respects per-process program
    /// order and message causality, so sorting by `seq` yields a valid
    /// linearization even when many events share a coarse timestamp.
    pub seq: u64,
    pub pid: usize,
    pub ph: u32,
    pub old: Cp,
    pub new: Cp,
}

/// Outcome of one [`MbCore::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// No guard was enabled.
    Idle,
    /// A token action fired.
    Moved,
    /// The root's token action fired *and* genuinely advanced the phase
    /// counter after a completed success sweep (not a recovery jump).
    Advanced,
}

/// One MB process: §5's variables plus bookkeeping shared by both backends.
pub struct MbCore {
    pub pid: usize,
    pub n_phases: u32,
    pub sn_domain: u32,
    pub own: StateMsg,
    /// Whether the current phase body has been executed.
    pub done: bool,
    /// Local copy of the predecessor's state.
    pub copy: StateMsg,
    pub rng: SimRng,
    pub events: Vec<CpEvent>,
    /// Bumped whenever `done` is reset; lets the simulated backend discard
    /// stale phase-body-completion timers after a fault.
    pub work_token: u64,
    /// Flight recorder for happens-before events (off by default; drivers
    /// arm it). Pure observer: never touches `rng` or the protocol state.
    pub recorder: CausalRecorder,
    /// Causal tags of deliveries folded into `copy` since the last recorded
    /// event; drained into that event's predecessor list.
    pending_tags: Vec<EventId>,
    seq: Arc<AtomicU64>,
}

impl MbCore {
    /// `seq` is the run-global event counter shared by every process of the
    /// system (one counter per run, not per process).
    pub fn new(
        pid: usize,
        n_phases: u32,
        sn_domain: u32,
        seed: u64,
        seq: Arc<AtomicU64>,
    ) -> MbCore {
        MbCore {
            pid,
            n_phases,
            sn_domain,
            own: StateMsg::initial(),
            done: true,
            copy: StateMsg::initial(),
            rng: SimRng::seed_from_u64(seed),
            events: Vec::new(),
            work_token: 0,
            recorder: CausalRecorder::off(),
            pending_tags: Vec::new(),
            seq,
        }
    }

    fn record(&mut self, now: Time, old: Cp) {
        if old != self.own.cp {
            self.events.push(CpEvent {
                at: now,
                seq: self.seq.fetch_add(1, Ordering::AcqRel),
                pid: self.pid,
                ph: self.own.ph,
                old,
                new: self.own.cp,
            });
            if self.recorder.is_enabled() {
                let label = format!("cp:{:?}->{:?}", old, self.own.cp);
                self.causal(now, &label);
            }
        }
    }

    /// Record one happens-before event: predecessors are this process's own
    /// previous event plus the tags of every delivery absorbed since then.
    fn causal(&mut self, now: Time, label: &str) {
        if !self.recorder.is_enabled() {
            return;
        }
        let mut preds: Vec<EventId> = Vec::with_capacity(self.pending_tags.len() + 1);
        preds.extend(self.recorder.last(self.pid));
        preds.append(&mut self.pending_tags);
        preds.sort_unstable();
        preds.dedup();
        self.recorder
            .record(self.pid, label, now.as_f64(), Some(self.own.ph), &preds);
    }

    /// The causal tag for an outgoing gossip: the sender's latest event.
    pub fn causal_tag(&self) -> Option<EventId> {
        self.recorder.last(self.pid)
    }

    /// Record a retransmission heartbeat. Liveness marker: a fail-stopped
    /// process stops heartbeating, so a wedge dump's blame lands on it.
    pub fn record_heartbeat(&mut self, now: Time) {
        self.causal(now, "retransmit");
    }

    /// Record the one-time fail-stop marker: the last event a crashed or
    /// muted process ever contributes, so a wedge dump's blame names it.
    pub fn record_fail_stop(&mut self, now: Time) {
        self.causal(now, "fault:stop");
    }

    /// Record an externally driven phase-body arrival (the barrier server's
    /// clients deliver these over the wire). A connected-but-stalled client
    /// stops contributing arrivals, so its core's event stream goes stale
    /// and a wedge dump's blame lands on it.
    pub fn record_arrival(&mut self, now: Time) {
        self.causal(now, "arrive");
    }

    /// The phase body must run before the success transition can fire.
    pub fn needs_work(&self) -> bool {
        self.own.cp == Cp::Execute && !self.done
    }

    fn reset_work(&mut self) {
        self.done = false;
        self.work_token += 1;
    }

    /// Mark the phase body complete. `token` must match the value of
    /// [`MbCore::work_token`] captured when the body was scheduled; a stale
    /// token (fault in between) is ignored.
    pub fn complete_work(&mut self, token: u64) {
        if token == self.work_token && self.needs_work() {
            self.done = true;
        }
    }

    /// Fire the enabled token action, if any (T1 for the root, T2 + the
    /// superposed §5 update otherwise).
    pub fn step(&mut self, now: Time) -> Step {
        if self.pid == 0 {
            self.step_root(now)
        } else {
            self.step_nonroot(now)
        }
    }

    /// Root token action (T1 + superposed update) against the local copy of
    /// process N.
    fn step_root(&mut self, now: Time) -> Step {
        let pred = self.copy;
        let token = pred.sn.is_valid() && (self.own.sn == pred.sn || !self.own.sn.is_valid());
        if !token {
            return Step::Idle;
        }
        if self.own.cp == Cp::Execute && !self.done {
            return Step::Idle; // finish the phase body first
        }
        let old = self.own.cp;
        let mut advanced = false;
        self.own.sn = pred.sn.next(self.sn_domain);
        match self.own.cp {
            Cp::Ready => {
                if pred.cp == Cp::Ready && pred.ph == self.own.ph {
                    self.own.cp = Cp::Execute;
                    self.reset_work();
                }
            }
            Cp::Execute => self.own.cp = Cp::Success,
            Cp::Success => {
                if pred.cp == Cp::Success && pred.ph == self.own.ph {
                    // The success sweep closed the ring: every process
                    // completed this phase. This is the *genuine* advance.
                    self.own.ph = (self.own.ph + 1) % self.n_phases;
                    advanced = true;
                } else {
                    self.own.ph = pred.ph;
                }
                self.own.cp = Cp::Ready;
            }
            Cp::Error | Cp::Repeat => {
                self.own.ph = pred.ph;
                self.own.cp = Cp::Ready;
            }
        }
        self.record(now, old);
        if advanced {
            Step::Advanced
        } else {
            Step::Moved
        }
    }

    /// Non-root token action (T2 + superposed update).
    fn step_nonroot(&mut self, now: Time) -> Step {
        let pred = self.copy;
        if !pred.sn.is_valid() || self.own.sn == pred.sn {
            return Step::Idle;
        }
        if self.own.cp == Cp::Execute && !self.done && pred.cp == Cp::Success {
            return Step::Idle; // gate the success transition on the phase body
        }
        let old = self.own.cp;
        self.own.sn = pred.sn;
        self.own.ph = pred.ph;
        match (old, pred.cp) {
            (Cp::Ready, Cp::Execute) => {
                self.own.cp = Cp::Execute;
                self.reset_work();
            }
            (Cp::Execute, Cp::Success) => self.own.cp = Cp::Success,
            (cp, Cp::Ready) if cp != Cp::Execute => self.own.cp = Cp::Ready,
            (cp, pred_cp) => {
                if cp == Cp::Error || pred_cp != cp {
                    self.own.cp = Cp::Repeat;
                }
            }
        }
        self.record(now, old);
        Step::Moved
    }

    /// Inject the §4.1 detectable fault: `ph, cp, sn := ?, error, ⊥`, plus
    /// flagged local copies per §5.
    pub fn apply_poison(&mut self, now: Time) {
        let old = self.own.cp;
        let ph = self.rng.range_u64(0, self.n_phases as u64) as u32;
        self.own = StateMsg::poisoned(ph);
        self.reset_work();
        self.copy = StateMsg::poisoned(0);
        self.record(now, old);
        self.causal(now, "fault:detectable");
    }

    /// Inject an undetectable fault: every variable set to an arbitrary
    /// domain value.
    pub fn apply_scramble(&mut self, now: Time) {
        let old = self.own.cp;
        let arbitrary = |rng: &mut SimRng, n_phases: u32, l: u32| StateMsg {
            sn: Sn::arbitrary(l, rng),
            cp: *rng.choose(&Cp::RB_DOMAIN),
            ph: rng.range_u64(0, n_phases as u64) as u32,
        };
        self.own = arbitrary(&mut self.rng, self.n_phases, self.sn_domain);
        self.copy = arbitrary(&mut self.rng, self.n_phases, self.sn_domain);
        self.done = self.rng.chance(0.5);
        self.work_token += 1;
        self.record(now, old);
        self.causal(now, "fault:undetectable");
    }

    /// Inject an undetectable fault into the *local neighbor copy only*:
    /// `own` stays intact, but the cached predecessor state is replaced by an
    /// arbitrary domain value. This models a corrupted receive buffer — the
    /// §5 refinement's new failure surface relative to the shared-memory
    /// ring, where no such cache exists.
    pub fn apply_copy_scramble(&mut self, _now: Time) {
        self.copy = StateMsg {
            sn: Sn::arbitrary(self.sn_domain, &mut self.rng),
            cp: *self.rng.choose(&Cp::RB_DOMAIN),
            ph: self.rng.range_u64(0, self.n_phases as u64) as u32,
        };
    }

    /// Rejoin the barrier at a phase boundary after a graft (§4.1 reboot +
    /// membership repair): adopt the upstream neighbor's sequence number and
    /// phase with `cp = ready`, so the next token sweep picks this process up
    /// without re-executing the upstream's current phase body.
    pub fn rejoin(&mut self, now: Time, upstream: StateMsg) {
        let old = self.own.cp;
        self.own = StateMsg {
            sn: upstream.sn,
            cp: Cp::Ready,
            ph: upstream.ph,
        };
        self.done = true;
        self.work_token += 1;
        self.copy = upstream;
        self.record(now, old);
    }

    /// Fold one delivery from the predecessor into the local copy.
    ///
    /// §5: "the local copy of sn.(j-1) in j is updated only if sn.(j-1) is
    /// different from ⊥ and ⊤". Detectably corrupted deliveries are
    /// discarded — masked as loss.
    pub fn on_delivery(&mut self, d: Delivery<StateMsg>) {
        self.on_delivery_tagged(d, None);
    }

    /// [`MbCore::on_delivery`] with the sender's causal tag: when the
    /// delivery is actually folded into the local copy, the tag becomes a
    /// happens-before predecessor of this process's next recorded event —
    /// the exact message-delivery edge, not an inferred one.
    pub fn on_delivery_tagged(&mut self, d: Delivery<StateMsg>, tag: Option<EventId>) {
        if let Delivery::Ok(m) = d {
            if m.sn.is_valid() {
                self.copy = m;
                if self.recorder.is_enabled() {
                    if let Some(id) = tag {
                        self.pending_tags.push(id);
                    }
                }
            }
        }
    }
}

/// Result of draining the inbox and stepping a core to quiescence.
#[derive(Debug, Clone, Copy, Default)]
pub struct Pumped {
    /// At least one token action fired (the process should gossip).
    pub moved: bool,
    /// Genuine root phase advances observed.
    pub advances: u64,
}

/// Drain everything pending on `ep`, then fire token actions until no guard
/// is enabled or the phase body gates progress. Both backends drive their
/// processes through this single function — the behaviour under either
/// transport is the same code path.
pub fn pump<E: crate::transport::Endpoint + ?Sized>(
    core: &mut MbCore,
    ep: &mut E,
    now: Time,
) -> Pumped {
    let mut out = Pumped::default();
    loop {
        while let Some((d, tag)) = ep.try_recv_tagged() {
            core.on_delivery_tagged(d, tag);
        }
        match core.step(now) {
            Step::Idle => break,
            Step::Moved => out.moved = true,
            Step::Advanced => {
                out.moved = true;
                out.advances += 1;
            }
        }
        if core.needs_work() {
            // The phase body gates further steps; the driver decides how the
            // body "runs" (a closure on the threaded backend, a virtual-time
            // timer on the simulated one).
            break;
        }
    }
    out
}

/// The MB sequence-number domain for `n` processes: `L > 2N+1` with headroom.
pub fn sn_domain(n: usize) -> u32 {
    4 * n as u32 + 3
}

/// Validate a caller-chosen MB sequence-number domain against the paper's
/// `L > 2N+1` precondition (§5; with `n` processes and up to one message per
/// link in flight, fewer than `2N+2` distinct values can confuse a stale
/// in-flight `sn` with a live one and duplicate the token).
pub fn try_sn_domain(n: usize, l: u32) -> Result<u32, ftbarrier_core::DomainError> {
    let min = 2 * n as u32 + 2;
    if l < min {
        return Err(ftbarrier_core::DomainError::LTooSmall { l, min });
    }
    Ok(l)
}
