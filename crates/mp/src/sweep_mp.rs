//! Message-passing execution of the sweep program over *arbitrary*
//! topologies — §5's refinement generalized from the ring to the trees of
//! §4.2, which yields an O(h)-latency message-passing barrier with the same
//! tolerances.
//!
//! Each process thread owns its positions and maintains local copies of
//! every remote position its guards read (predecessors for RECV,
//! successors for the T4 repair wave). State changes are gossiped to the
//! subscribing processes over faulty links, with periodic retransmission —
//! so message loss, duplication, reordering, and detectable corruption are
//! all masked, exactly as in [`crate::mb`].
//!
//! The *logic* is not re-implemented: the thread evaluates the verified
//! [`SweepBarrier`] guarded commands against its local view, which is
//! accurate wherever the guards look (own positions + subscriptions).

use crate::channel::{faulty_channel, ChannelFaults, Delivery, FaultyReceiver, FaultySender};
use ftbarrier_core::cp::Cp;
use ftbarrier_core::spec::{Anchor, BarrierOracle, OracleConfig, Violation};
use ftbarrier_core::sweep::{PosState, SweepBarrier, SweepDetectableFault, RECV, T3, T4, T5, WORK};
use ftbarrier_gcs::{FaultAction, Protocol, SimRng, Time};
use ftbarrier_telemetry::{CausalRecorder, EventId};
use ftbarrier_topology::{Pos, SweepDag};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Configuration of a message-passing sweep run.
#[derive(Clone)]
pub struct SweepMpConfig {
    pub n_phases: u32,
    pub target_phases: u64,
    pub faults: ChannelFaults,
    pub seed: u64,
    pub retransmit_every: Duration,
    pub deadline: Duration,
    /// Per-phase workload, called as `(pid, phase)`.
    pub work: Option<Arc<dyn Fn(usize, u32) + Send + Sync>>,
    /// Capacity of the always-on causal flight recorder (recent events
    /// kept per run; older ones are evicted and counted).
    pub flight_capacity: usize,
}

impl Default for SweepMpConfig {
    fn default() -> Self {
        SweepMpConfig {
            n_phases: 8,
            target_phases: 12,
            faults: ChannelFaults::NONE,
            seed: 0x57EE9,
            retransmit_every: Duration::from_micros(200),
            deadline: Duration::from_secs(30),
            work: None,
            flight_capacity: 8192,
        }
    }
}

/// Result of a run (same shape as [`crate::mb::MbReport`]).
#[derive(Debug)]
pub struct SweepMpReport {
    pub root_phase_advances: u64,
    pub violations: Vec<Violation>,
    pub phases_completed: u64,
    pub instance_counts: Vec<u64>,
    pub messages_sent: Vec<u64>,
    pub elapsed: Duration,
    pub reached_target: bool,
    /// Flight-recorder dump of the recent causal events (replayable JSON),
    /// written when the run hit its deadline instead of its target.
    pub flight_dump: Option<String>,
}

#[derive(Debug, Clone, Copy)]
struct PosMsg {
    pos: Pos,
    state: PosState,
    /// The sender's latest causal event when this state was gossiped: the
    /// exact happens-before delivery edge, riding inside the payload so
    /// duplication copies it and corruption withholds it.
    tag: Option<EventId>,
}

#[derive(Debug, Clone, Copy)]
struct CpEvent {
    at: Duration,
    pid: usize,
    ph: u32,
    old: Cp,
    new: Cp,
}

/// Fault-injection handle.
#[derive(Clone)]
pub struct SweepMpHandle {
    poison: Arc<Vec<AtomicBool>>,
    mute: Arc<Vec<AtomicBool>>,
}

impl SweepMpHandle {
    /// Detectable fault at `pid`: all of its positions are flagged.
    pub fn poison(&self, pid: usize) {
        self.poison[pid].store(true, Ordering::Release);
    }

    /// Fail-stop `pid`: it permanently stops evaluating guards and
    /// gossiping. The barrier wedges (no repair wave can pass a silent
    /// process), the deadline fires, and the flight dump names `pid`.
    pub fn mute(&self, pid: usize) {
        self.mute[pid].store(true, Ordering::Release);
    }
}

/// A running message-passing sweep system.
pub struct SweepMpRun {
    threads: Vec<JoinHandle<(Vec<CpEvent>, u64)>>,
    handle: SweepMpHandle,
    stop: Arc<AtomicBool>,
    root_advances: Arc<AtomicU64>,
    started: Instant,
    n_processes: usize,
    n_phases: u32,
    target_phases: u64,
    recorder: CausalRecorder,
}

/// Spawn one thread per process over the given topology.
pub fn spawn(dag: SweepDag, config: SweepMpConfig) -> SweepMpRun {
    let program = Arc::new(SweepBarrier::new(dag, config.n_phases));
    let dag = program.dag();
    let n = dag.num_processes();
    let mut rng = SimRng::seed_from_u64(config.seed);

    // Subscriptions: process `pid` needs every remote position its guards
    // read — predecessors and successors of each owned position.
    let mut needs: Vec<BTreeSet<Pos>> = vec![BTreeSet::new(); n];
    for (pid, need) in needs.iter_mut().enumerate() {
        for &p in dag.positions_of(pid) {
            for &q in dag.preds(p).iter().chain(dag.succs(p)) {
                if dag.owner(q) != pid {
                    need.insert(q);
                }
            }
        }
    }
    // One faulty link per (producer process → consumer process) pair.
    let mut subscribers: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
    for (pid, need) in needs.iter().enumerate() {
        for &q in need {
            subscribers[dag.owner(q)].insert(pid);
        }
    }
    let mut senders: BTreeMap<(usize, usize), FaultySender<PosMsg>> = BTreeMap::new();
    let mut receivers: Vec<Vec<FaultyReceiver<PosMsg>>> = (0..n).map(|_| Vec::new()).collect();
    for (from, subs) in subscribers.iter().enumerate() {
        for &to in subs {
            let (tx, rx) = faulty_channel(config.faults, rng.next_u64());
            senders.insert((from, to), tx);
            receivers[to].push(rx);
        }
    }

    let stop = Arc::new(AtomicBool::new(false));
    let root_advances = Arc::new(AtomicU64::new(0));
    let poison: Arc<Vec<AtomicBool>> = Arc::new((0..n).map(|_| AtomicBool::new(false)).collect());
    let mute: Arc<Vec<AtomicBool>> = Arc::new((0..n).map(|_| AtomicBool::new(false)).collect());
    let started = Instant::now();
    // The always-on flight recorder: one bounded ring shared by every
    // process thread (events interleave in global commit order).
    let recorder = CausalRecorder::bounded(config.flight_capacity);

    let mut threads = Vec::with_capacity(n);
    for pid in 0..n {
        let program = Arc::clone(&program);
        let owned: Vec<Pos> = program.dag().positions_of(pid).to_vec();
        let my_subscribers: Vec<usize> = subscribers[pid].iter().copied().collect();
        let mut my_senders: Vec<FaultySender<PosMsg>> = my_subscribers
            .iter()
            .map(|&to| senders.remove(&(pid, to)).expect("sender exists"))
            .collect();
        let my_receivers = std::mem::take(&mut receivers[pid]);
        let stop = Arc::clone(&stop);
        let root_advances = Arc::clone(&root_advances);
        let poison = Arc::clone(&poison);
        let mute = Arc::clone(&mute);
        let recorder = recorder.clone();
        let seed = rng.next_u64();
        let config = config.clone();
        threads.push(std::thread::spawn(move || {
            let mut rng = SimRng::seed_from_u64(seed);
            let mut view: Vec<PosState> = program.initial_state();
            let mut events: Vec<CpEvent> = Vec::new();
            let mut sent = 0u64;
            // Causal tags of deliveries absorbed since the last recorded
            // event; drained into that event's predecessor list.
            let mut pending: Vec<EventId> = Vec::new();
            let worker_pos = program.worker_position(pid);
            let detect = SweepDetectableFault {
                n_phases: program.n_phases,
            };

            let record_causal =
                |recorder: &CausalRecorder, pending: &mut Vec<EventId>, label: &str, ph: u32| {
                    let mut preds: Vec<EventId> = Vec::with_capacity(pending.len() + 1);
                    preds.extend(recorder.last(pid));
                    preds.append(pending);
                    preds.sort_unstable();
                    preds.dedup();
                    recorder.record(
                        pid,
                        label,
                        started.elapsed().as_secs_f64(),
                        Some(ph),
                        &preds,
                    );
                };

            let gossip = |view: &[PosState],
                          senders: &mut [FaultySender<PosMsg>],
                          owned: &[Pos],
                          tag: Option<EventId>,
                          sent: &mut u64| {
                for tx in senders.iter_mut() {
                    for &p in owned {
                        tx.send(PosMsg {
                            pos: p,
                            state: view[p],
                            tag,
                        });
                    }
                    tx.flush();
                    *sent += 1;
                }
            };

            gossip(&view, &mut my_senders, &owned, None, &mut sent);
            let mut last_gossip = Instant::now();
            let mut fault_stopped = false;
            while !stop.load(Ordering::Acquire) {
                if mute[pid].load(Ordering::Acquire) {
                    // Fail-stop: fall permanently silent. The one-time
                    // marker is the last event this pid ever records.
                    if !fault_stopped {
                        fault_stopped = true;
                        record_causal(&recorder, &mut pending, "fault:stop", view[worker_pos].ph);
                    }
                    if started.elapsed() > config.deadline {
                        stop.store(true, Ordering::Release);
                    }
                    std::thread::yield_now();
                    continue;
                }
                if poison[pid].swap(false, Ordering::AcqRel) {
                    for &p in &owned {
                        let old = view[p].cp;
                        detect.apply(pid, &mut view[p], &mut rng);
                        if p == worker_pos && old != view[p].cp {
                            events.push(CpEvent {
                                at: started.elapsed(),
                                pid,
                                ph: view[p].ph,
                                old,
                                new: view[p].cp,
                            });
                        }
                    }
                    record_causal(
                        &recorder,
                        &mut pending,
                        "fault:detectable",
                        view[worker_pos].ph,
                    );
                    gossip(
                        &view,
                        &mut my_senders,
                        &owned,
                        recorder.last(pid),
                        &mut sent,
                    );
                }
                // Absorb incoming state (detectably corrupted deliveries are
                // discarded — masked as loss and healed by retransmission).
                for rx in &my_receivers {
                    while let Some(d) = rx.try_recv() {
                        if let Delivery::Ok(m) = d {
                            view[m.pos] = m.state;
                            if let Some(id) = m.tag {
                                pending.push(id);
                            }
                        }
                    }
                }
                // Evaluate the verified guarded commands on the local view.
                let mut moved = false;
                for &p in &owned {
                    for action in [RECV, WORK, T3, T4, T5] {
                        if !program.enabled(&view, p, action) {
                            continue;
                        }
                        if action == WORK {
                            if let Some(work) = &config.work {
                                work(pid, view[p].ph);
                            }
                        }
                        let old = view[p];
                        view[p] = program.execute(&view, p, action, &mut rng);
                        record_causal(
                            &recorder,
                            &mut pending,
                            program.action_name(p, action),
                            view[p].ph,
                        );
                        if p == worker_pos && old.cp != view[p].cp {
                            events.push(CpEvent {
                                at: started.elapsed(),
                                pid,
                                ph: view[p].ph,
                                old: old.cp,
                                new: view[p].cp,
                            });
                        }
                        if p == SweepDag::ROOT && old.ph != view[p].ph {
                            let total = root_advances.fetch_add(1, Ordering::AcqRel) + 1;
                            if total >= config.target_phases {
                                stop.store(true, Ordering::Release);
                            }
                        }
                        moved = true;
                        break; // re-evaluate guards after each state change
                    }
                }
                if moved || last_gossip.elapsed() >= config.retransmit_every {
                    if !moved {
                        // Heartbeat: keeps a live-but-idle process visibly
                        // fresh in the flight recorder, so a wedge dump's
                        // blame lands on the process that fell silent.
                        record_causal(&recorder, &mut pending, "retransmit", view[worker_pos].ph);
                    }
                    gossip(
                        &view,
                        &mut my_senders,
                        &owned,
                        recorder.last(pid),
                        &mut sent,
                    );
                    last_gossip = Instant::now();
                }
                if !moved {
                    std::thread::yield_now();
                }
                if started.elapsed() > config.deadline {
                    stop.store(true, Ordering::Release);
                }
            }
            (events, sent)
        }));
    }

    SweepMpRun {
        threads,
        handle: SweepMpHandle { poison, mute },
        stop,
        root_advances,
        started,
        n_processes: n,
        n_phases: config.n_phases,
        target_phases: config.target_phases,
        recorder,
    }
}

impl SweepMpRun {
    pub fn handle(&self) -> SweepMpHandle {
        self.handle.clone()
    }

    pub fn root_phase_advances(&self) -> u64 {
        self.root_advances.load(Ordering::Acquire)
    }

    pub fn stop(&self) {
        self.stop.store(true, Ordering::Release);
    }

    /// Join and replay the merged event log through the oracle.
    pub fn join(self) -> SweepMpReport {
        let mut events: Vec<CpEvent> = Vec::new();
        let mut messages_sent = Vec::new();
        for t in self.threads {
            let (ev, sent) = t.join().expect("sweep-mp process panicked");
            events.extend(ev);
            messages_sent.push(sent);
        }
        events.sort_by_key(|e| e.at);
        let mut oracle = BarrierOracle::new(OracleConfig {
            n_processes: self.n_processes,
            n_phases: self.n_phases,
            anchor: Anchor::StrictFromZero,
        });
        for e in &events {
            oracle.observe_cp(Time::new(e.at.as_secs_f64()), e.pid, e.ph, e.old, e.new);
        }
        let advances = self.root_advances.load(Ordering::Acquire);
        let reached_target = advances >= self.target_phases;
        let flight_dump = if reached_target {
            None
        } else {
            Some(self.recorder.snapshot().to_flight_json(
                "sweep_mp",
                self.n_processes,
                "wedge",
                "deadline",
            ))
        };
        SweepMpReport {
            root_phase_advances: advances,
            violations: oracle.violations().to_vec(),
            phases_completed: oracle.phases_completed(),
            instance_counts: oracle.instance_counts().to_vec(),
            messages_sent,
            elapsed: self.started.elapsed(),
            reached_target,
            flight_dump,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_barrier_over_clean_links() {
        let run = spawn(
            SweepDag::tree(8, 2).unwrap(),
            SweepMpConfig {
                target_phases: 10,
                ..Default::default()
            },
        );
        let report = run.join();
        assert!(report.reached_target, "{report:?}");
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert!(report.phases_completed >= 9);
    }

    #[test]
    fn tree_barrier_over_nasty_links() {
        let run = spawn(
            SweepDag::tree(8, 2).unwrap(),
            SweepMpConfig {
                target_phases: 8,
                faults: ChannelFaults::nasty(),
                seed: 0xABBA,
                ..Default::default()
            },
        );
        let report = run.join();
        assert!(report.reached_target, "{report:?}");
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }

    #[test]
    fn poison_masks_on_a_tree() {
        let run = spawn(
            SweepDag::tree(8, 2).unwrap(),
            SweepMpConfig {
                target_phases: 14,
                ..Default::default()
            },
        );
        let h = run.handle();
        while run.root_phase_advances() < 4 {
            std::thread::yield_now();
        }
        h.poison(5);
        while run.root_phase_advances() < 8 {
            std::thread::yield_now();
        }
        h.poison(2);
        let report = run.join();
        assert!(report.reached_target, "{report:?}");
        assert!(
            report.violations.is_empty(),
            "detectable faults must be masked on trees too: {:?}",
            report.violations
        );
    }

    #[test]
    fn ring_topology_matches_mb_semantics() {
        // The generalized runner on a plain ring is RB-over-messages.
        let run = spawn(
            SweepDag::ring(5).unwrap(),
            SweepMpConfig {
                target_phases: 8,
                faults: ChannelFaults {
                    loss: 0.2,
                    ..ChannelFaults::NONE
                },
                ..Default::default()
            },
        );
        let report = run.join();
        assert!(report.reached_target, "{report:?}");
        assert!(report.violations.is_empty());
    }

    #[test]
    fn double_tree_and_two_ring_also_run() {
        for dag in [
            SweepDag::double_tree(7, 2).unwrap(),
            SweepDag::two_ring(3, 3).unwrap(),
        ] {
            let run = spawn(
                dag,
                SweepMpConfig {
                    target_phases: 6,
                    ..Default::default()
                },
            );
            let report = run.join();
            assert!(report.reached_target, "{report:?}");
            assert!(report.violations.is_empty(), "{:?}", report.violations);
        }
    }

    #[test]
    fn log_depth_topologies_also_run_threaded() {
        // The subscription derivation turns the grids' per-round partner
        // schedule into gossip links with no topology-specific code.
        for dag in [
            SweepDag::dissemination(4, 2).unwrap(),
            SweepDag::hypercube(4).unwrap(),
            SweepDag::butterfly(4).unwrap(),
        ] {
            let run = spawn(
                dag,
                SweepMpConfig {
                    target_phases: 6,
                    ..Default::default()
                },
            );
            let report = run.join();
            assert!(report.reached_target, "{report:?}");
            assert!(report.violations.is_empty(), "{:?}", report.violations);
        }
    }

    #[test]
    fn muted_process_wedges_the_run_and_is_blamed_in_the_flight_dump() {
        use ftbarrier_telemetry::FlightDump;
        // Deliberately wedge a wall-clock run: fail-stop a leaf once the
        // barrier is in steady state. The deadline fires and the dump's
        // causal graph must end at the culpable process.
        let run = spawn(
            SweepDag::tree(4, 2).unwrap(),
            SweepMpConfig {
                target_phases: 1_000_000,
                deadline: Duration::from_millis(600),
                retransmit_every: Duration::from_millis(2),
                flight_capacity: 1 << 16,
                ..Default::default()
            },
        );
        let h = run.handle();
        while run.root_phase_advances() < 3 {
            std::thread::yield_now();
        }
        h.mute(3);
        let report = run.join();
        assert!(!report.reached_target, "{report:?}");
        let dump = report.flight_dump.as_deref().expect("wedged run dumps");
        let parsed = FlightDump::parse(dump).expect("dump parses");
        parsed.replay().expect("dump replays");
        assert_eq!(parsed.program, "sweep_mp");
        assert_eq!(parsed.kind, "wedge");
        assert_eq!(parsed.reason, "deadline");
        assert_eq!(parsed.blamed, Some(3), "the muted process is the culprit");
        let last_of_3 = parsed
            .graph
            .events
            .iter()
            .rev()
            .find(|e| e.id.pid == 3)
            .expect("p3 recorded events");
        assert_eq!(last_of_3.label, "fault:stop");

        // A healthy run dumps nothing.
        let ok = spawn(
            SweepDag::tree(4, 2).unwrap(),
            SweepMpConfig {
                target_phases: 5,
                ..Default::default()
            },
        )
        .join();
        assert!(ok.reached_target);
        assert!(ok.flight_dump.is_none());
    }

    #[test]
    fn work_closure_runs_per_phase() {
        let counter = Arc::new(AtomicU64::new(0));
        let c2 = Arc::clone(&counter);
        let run = spawn(
            SweepDag::tree(4, 2).unwrap(),
            SweepMpConfig {
                target_phases: 5,
                work: Some(Arc::new(move |_pid, _ph| {
                    c2.fetch_add(1, Ordering::Relaxed);
                })),
                ..Default::default()
            },
        );
        let report = run.join();
        assert!(report.reached_target);
        assert!(counter.load(Ordering::Relaxed) >= 5 * 4);
    }
}
