//! Faulty channels: unidirectional links that lose, duplicate, reorder, and
//! detectably corrupt messages, with configurable per-message probabilities.
//!
//! These are the §1 "communication faults" — all *detectable* per §2's
//! classification (a corrupted message carries a poisoned checksum, so the
//! receiver sees [`Delivery::Corrupted`] and can discard it; a lost message
//! is simply absent). Program MB's gossip-with-retransmission makes all of
//! them equivalent to transient loss.

use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use ftbarrier_gcs::SimRng;
use parking_lot::Mutex;

/// Per-message fault probabilities of a link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelFaults {
    /// Message silently dropped.
    pub loss: f64,
    /// Message delivered twice.
    pub duplication: f64,
    /// Message delivered with a detectable corruption flag.
    pub corruption: f64,
    /// Message swapped with the next message sent on the link.
    pub reorder: f64,
}

impl ChannelFaults {
    /// A perfect link.
    pub const NONE: ChannelFaults = ChannelFaults {
        loss: 0.0,
        duplication: 0.0,
        corruption: 0.0,
        reorder: 0.0,
    };

    /// A nasty link for stress tests.
    pub fn nasty() -> ChannelFaults {
        ChannelFaults {
            loss: 0.2,
            duplication: 0.1,
            corruption: 0.1,
            reorder: 0.1,
        }
    }

    fn validate(&self) {
        for (name, p) in [
            ("loss", self.loss),
            ("duplication", self.duplication),
            ("corruption", self.corruption),
            ("reorder", self.reorder),
        ] {
            assert!(
                (0.0..=1.0).contains(&p),
                "{name} probability {p} out of range"
            );
        }
    }
}

/// What the receiver observes for one delivered message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery<T> {
    /// Intact payload.
    Ok(T),
    /// The message arrived but its integrity check failed — a *detectable*
    /// corruption; the payload is withheld.
    Corrupted,
}

impl<T> Delivery<T> {
    pub fn ok(self) -> Option<T> {
        match self {
            Delivery::Ok(t) => Some(t),
            Delivery::Corrupted => None,
        }
    }
}

/// Sending half of a faulty link. Fault decisions are made at send time from
/// a seeded RNG, so a single-threaded test is fully reproducible.
pub struct FaultySender<T> {
    tx: Sender<Delivery<T>>,
    faults: ChannelFaults,
    rng: Mutex<SimRng>,
    /// A message held back for reordering (swapped with the next send).
    held: Mutex<Option<Delivery<T>>>,
}

/// Receiving half of a faulty link.
pub struct FaultyReceiver<T> {
    rx: Receiver<Delivery<T>>,
}

/// Create a faulty link.
pub fn faulty_channel<T: Clone>(
    faults: ChannelFaults,
    seed: u64,
) -> (FaultySender<T>, FaultyReceiver<T>) {
    faults.validate();
    let (tx, rx) = unbounded();
    (
        FaultySender {
            tx,
            faults,
            rng: Mutex::new(SimRng::seed_from_u64(seed)),
            held: Mutex::new(None),
        },
        FaultyReceiver { rx },
    )
}

impl<T: Clone> FaultySender<T> {
    /// Send a message through the fault model. Returns `false` if the
    /// receiver is gone.
    pub fn send(&self, msg: T) -> bool {
        let mut rng = self.rng.lock();
        if rng.chance(self.faults.loss) {
            return true; // silently dropped
        }
        let delivery = if rng.chance(self.faults.corruption) {
            Delivery::Corrupted
        } else {
            Delivery::Ok(msg)
        };
        let duplicate = rng.chance(self.faults.duplication);
        let hold = rng.chance(self.faults.reorder);
        drop(rng);

        // Reordering: park this message; release any previously held one
        // after the next send (a swap of adjacent messages).
        let mut to_send: Vec<Delivery<T>> = Vec::with_capacity(3);
        {
            let mut held = self.held.lock();
            if hold && held.is_none() {
                *held = Some(delivery.clone());
            } else {
                to_send.push(delivery.clone());
                if let Some(prev) = held.take() {
                    to_send.push(prev);
                }
            }
        }
        if duplicate {
            to_send.push(delivery);
        }
        for d in to_send {
            if self.tx.send(d).is_err() {
                return false;
            }
        }
        true
    }

    /// Flush a held (reordered) message — call when a link goes quiet.
    pub fn flush(&self) -> bool {
        if let Some(prev) = self.held.lock().take() {
            return self.tx.send(prev).is_ok();
        }
        true
    }
}

impl<T> FaultyReceiver<T> {
    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Delivery<T>> {
        match self.rx.try_recv() {
            Ok(d) => Some(d),
            Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => None,
        }
    }

    /// Drain everything currently queued.
    pub fn drain(&self) -> Vec<Delivery<T>> {
        let mut out = Vec::new();
        while let Some(d) = self.try_recv() {
            out.push(d);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_link_delivers_in_order() {
        let (tx, rx) = faulty_channel::<u32>(ChannelFaults::NONE, 1);
        for i in 0..100 {
            assert!(tx.send(i));
        }
        let got: Vec<u32> = rx.drain().into_iter().filter_map(Delivery::ok).collect();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn loss_rate_is_respected() {
        let (tx, rx) = faulty_channel::<u32>(
            ChannelFaults {
                loss: 0.5,
                ..ChannelFaults::NONE
            },
            7,
        );
        for i in 0..10_000 {
            tx.send(i);
        }
        let got = rx.drain().len();
        assert!(
            (4000..6000).contains(&got),
            "got {got} of 10000 at 50% loss"
        );
    }

    #[test]
    fn duplication_inflates_count() {
        let (tx, rx) = faulty_channel::<u32>(
            ChannelFaults {
                duplication: 0.5,
                ..ChannelFaults::NONE
            },
            7,
        );
        for i in 0..10_000 {
            tx.send(i);
        }
        let got = rx.drain().len();
        assert!((14_000..16_000).contains(&got), "got {got}");
    }

    #[test]
    fn corruption_is_detectable() {
        let (tx, rx) = faulty_channel::<u32>(
            ChannelFaults {
                corruption: 1.0,
                ..ChannelFaults::NONE
            },
            7,
        );
        tx.send(42);
        assert_eq!(rx.try_recv(), Some(Delivery::Corrupted));
        assert_eq!(rx.try_recv(), None);
    }

    #[test]
    fn reorder_swaps_adjacent_messages() {
        let (tx, rx) = faulty_channel::<u32>(
            ChannelFaults {
                reorder: 1.0,
                ..ChannelFaults::NONE
            },
            7,
        );
        // With reorder=1, the first message is held; the second send parks
        // nothing new (held is occupied) and releases the first afterwards.
        tx.send(1);
        tx.send(2);
        tx.flush();
        let got: Vec<u32> = rx.drain().into_iter().filter_map(Delivery::ok).collect();
        assert_eq!(got, vec![2, 1]);
    }

    #[test]
    fn flush_releases_held_message() {
        let (tx, rx) = faulty_channel::<u32>(
            ChannelFaults {
                reorder: 1.0,
                ..ChannelFaults::NONE
            },
            7,
        );
        tx.send(9);
        assert_eq!(rx.try_recv(), None, "message is parked");
        tx.flush();
        assert_eq!(rx.try_recv(), Some(Delivery::Ok(9)));
    }

    #[test]
    fn all_messages_conserved_without_loss() {
        // dup + corruption + reorder but no loss: every send yields >= 1
        // delivery.
        let (tx, rx) = faulty_channel::<u32>(
            ChannelFaults {
                loss: 0.0,
                duplication: 0.3,
                corruption: 0.3,
                reorder: 0.3,
            },
            11,
        );
        let n = 5000;
        for i in 0..n {
            tx.send(i);
        }
        tx.flush();
        let got = rx.drain();
        assert!(got.len() >= n as usize, "got {} < {n}", got.len());
    }

    #[test]
    fn flush_on_quiet_link_with_nothing_held_is_a_no_op() {
        let (tx, rx) = faulty_channel::<u32>(
            ChannelFaults {
                reorder: 1.0,
                ..ChannelFaults::NONE
            },
            7,
        );
        // Nothing held yet: flush must succeed and deliver nothing.
        assert!(tx.flush());
        assert_eq!(rx.try_recv(), None);
        tx.send(9);
        assert!(tx.flush(), "flush releases the held message");
        assert_eq!(rx.try_recv(), Some(Delivery::Ok(9)));
        // Held slot is now empty again: flushing twice is harmless.
        assert!(tx.flush());
        assert_eq!(rx.try_recv(), None);
    }

    #[test]
    fn duplication_and_reorder_can_hit_the_same_message() {
        let (tx, rx) = faulty_channel::<u32>(
            ChannelFaults {
                duplication: 1.0,
                reorder: 1.0,
                ..ChannelFaults::NONE
            },
            7,
        );
        // send(1): the original is parked for reordering but its duplicate
        // goes out immediately — the receiver sees a copy of a message that
        // is still "in flight".
        tx.send(1);
        assert_eq!(rx.drain(), vec![Delivery::Ok(1)]);
        // send(2): held slot is occupied, so 2 goes out, releases the parked
        // 1 behind it, and 2's duplicate follows.
        tx.send(2);
        let got: Vec<u32> = rx.drain().into_iter().filter_map(Delivery::ok).collect();
        assert_eq!(got, vec![2, 1, 2]);
        assert!(tx.flush());
        assert_eq!(rx.try_recv(), None, "nothing left in the held slot");
    }

    #[test]
    fn corruption_always_surfaces_as_corrupted_never_as_a_wrong_payload() {
        // Statistical check over a seeded run: with corruption the only
        // fault, every send is delivered exactly once, each delivery is
        // either the intact payload or an explicit `Corrupted` marker, and
        // no payload is ever altered in flight.
        let p = 0.3;
        let n: u32 = 10_000;
        let (tx, rx) = faulty_channel::<u32>(
            ChannelFaults {
                corruption: p,
                ..ChannelFaults::NONE
            },
            0xC0FFEE,
        );
        for i in 0..n {
            tx.send(i);
        }
        let got = rx.drain();
        assert_eq!(got.len(), n as usize, "no loss, dup, or reorder configured");
        let mut corrupted = 0u32;
        let mut expected = 0u32;
        for d in got {
            match d {
                Delivery::Corrupted => corrupted += 1,
                Delivery::Ok(v) => {
                    // Intact deliveries appear in order and are drawn only
                    // from the sent values — corruption withholds a payload,
                    // it never substitutes one.
                    while expected != v {
                        assert!(expected < v, "payload {v} was never sent intact");
                        expected += 1;
                    }
                    expected += 1;
                }
            }
        }
        let expected_corrupted = (n as f64 * p) as u32;
        assert!(
            corrupted.abs_diff(expected_corrupted) < n / 20,
            "corrupted {corrupted} of {n} at p={p}"
        );
    }

    #[test]
    #[should_panic]
    fn rejects_bad_probability() {
        let _ = faulty_channel::<u32>(
            ChannelFaults {
                loss: 1.5,
                ..ChannelFaults::NONE
            },
            0,
        );
    }
}
