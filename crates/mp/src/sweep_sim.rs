//! Deterministic simnet execution of the sweep program over *arbitrary*
//! topologies — the discrete-event analogue of the threaded
//! [`crate::sweep_mp`] backend, on the same simulated network the MB ring
//! uses ([`crate::simnet`]).
//!
//! One link per (producer process → consumer process) pair carries absolute
//! position-state gossip; each process evaluates the verified
//! [`SweepBarrier`] guarded commands against its local view, which is
//! accurate wherever its guards look (own positions + subscriptions). The
//! per-round partner schedule of the log-depth topologies (dissemination,
//! hypercube, butterfly) falls out of the subscription derivation — nothing
//! here is topology-specific.
//!
//! One seed determines everything — link latencies and fault draws, the
//! perturbation values of scheduled poisons, the event interleaving — so a
//! run is byte-for-byte replayable: [`SweepSimReport::trace`] of two runs
//! with the same config is identical.

use crate::channel::Delivery;
use crate::simnet::{LinkConfig, NetStats, SimNet};
use ftbarrier_core::spec::{Anchor, BarrierOracle, OracleConfig, Violation};
use ftbarrier_core::sweep::{
    pos_in_domain, PosState, SweepBarrier, SweepByzantineFault, SweepDetectableFault, RECV, T3, T4,
    T5, WORK,
};
use ftbarrier_gcs::{FaultAction, Protocol, SimRng, Time};
use ftbarrier_telemetry::{CausalRecorder, EventId};
use ftbarrier_topology::{Pos, SweepDag};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};
use std::fmt::Write as _;

/// Configuration of a deterministic sweep run over the simulated network.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSimConfig {
    pub n_phases: u32,
    /// Genuine root phase advances before the run stops.
    pub target_phases: u64,
    pub seed: u64,
    /// Model of every gossip link.
    pub link: LinkConfig,
    /// Gossip retransmission period (masks message loss), virtual time.
    pub retransmit_every: f64,
    /// Virtual-time safety limit.
    pub max_time: f64,
    /// `(time, pid)`: §4.1 detectable process faults.
    pub poisons: Vec<(f64, usize)>,
    /// `(time, pid)`: fail-stop the process — it stops gossiping and
    /// evaluating guards forever, wedging the barrier (the stalled-simnet
    /// scenario the flight recorder exists for).
    pub mutes: Vec<(f64, usize)>,
    /// `(time, pid)`: Byzantine message forgery — the process gossips forged
    /// *out-of-domain* position states (`sn` beyond the `L`-window, `ph`
    /// beyond `n_phases`) on every outgoing link, equivocating: each link
    /// gets an independent forgery draw. Its own view stays intact, modeling
    /// an in-flight forger rather than a corrupted process; periodic
    /// retransmission of the true state heals the receivers.
    pub forgeries: Vec<(f64, usize)>,
    /// Capacity of the always-armed flight recorder ring.
    pub flight_capacity: usize,
}

impl Default for SweepSimConfig {
    fn default() -> Self {
        SweepSimConfig {
            n_phases: 8,
            target_phases: 12,
            seed: 0x57EE5,
            link: LinkConfig::perfect(0.01),
            retransmit_every: 0.05,
            max_time: 10_000.0,
            poisons: Vec::new(),
            mutes: Vec::new(),
            forgeries: Vec::new(),
            flight_capacity: 8192,
        }
    }
}

/// Result of a deterministic sweep run (the simnet analogue of
/// [`crate::sweep_mp::SweepMpReport`]).
#[derive(Debug)]
pub struct SweepSimReport {
    /// Genuine phase advances observed at the root position.
    pub root_phase_advances: u64,
    /// Violations found by replaying the worker event log through the
    /// barrier specification oracle.
    pub violations: Vec<Violation>,
    pub phases_completed: u64,
    /// Messages sent per process (including retransmissions).
    pub messages_sent: Vec<u64>,
    pub reached_target: bool,
    pub virtual_elapsed: Time,
    /// Deliveries discarded because the carried position state was outside
    /// the program's variable domains — forged gossip convicted by
    /// inspection at the receiver (the paper's detectable-fault premise
    /// applied to Byzantine messages).
    pub forged_dropped: u64,
    pub net: NetStats,
    /// Full deterministic run log: byte-identical across runs of the same
    /// config, diverging for different seeds.
    pub trace: String,
    /// Flight-recorder dump (`flightrec/v1` JSON), written iff the run
    /// ended without reaching its target — the network went quiescent with
    /// the barrier incomplete, or `max_time` expired. Replayable via
    /// `FlightDump::parse` and naming the blocking process.
    pub flight_dump: Option<String>,
}

#[derive(Debug, Clone, Copy)]
struct PosMsg {
    pos: Pos,
    state: PosState,
}

#[derive(Debug, Clone, Copy)]
struct CpEvent {
    seq: u64,
    at: Time,
    pid: usize,
    ph: u32,
    old: ftbarrier_core::Cp,
    new: ftbarrier_core::Cp,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Ctl {
    Retransmit { pid: usize },
    Poison { pid: usize },
    Mute { pid: usize },
    Forge { pid: usize },
}

struct Driver {
    program: SweepBarrier,
    cfg: SweepSimConfig,
    net: SimNet<PosMsg>,
    ctl: BinaryHeap<Reverse<(Time, u64, Ctl)>>,
    ctl_seq: u64,
    now: Time,
    /// One local view per process.
    views: Vec<Vec<PosState>>,
    rngs: Vec<SimRng>,
    /// Outgoing link ids per process, and the consumer behind each link.
    out_links: Vec<Vec<usize>>,
    dest_of: Vec<usize>,
    worker_pos: Vec<Pos>,
    messages_sent: Vec<u64>,
    events: Vec<CpEvent>,
    seq: u64,
    advances: u64,
    trace: String,
    /// Always-armed flight recorder of recent causal events.
    recorder: CausalRecorder,
    /// Delivery tags observed since the process last recorded an event —
    /// the exact sends whose state it is now acting on.
    pending: Vec<Vec<EventId>>,
    muted: Vec<bool>,
    forged_dropped: u64,
}

impl Driver {
    fn schedule(&mut self, at: f64, ev: Ctl) {
        assert!(at.is_finite() && at >= 0.0, "fault plan time {at} invalid");
        self.ctl_seq += 1;
        self.ctl.push(Reverse((Time::new(at), self.ctl_seq, ev)));
    }

    /// Record a causal event for `pid`: program-order predecessor plus any
    /// delivery tags collected since its previous event.
    fn record_causal(&mut self, pid: usize, label: &str, phase: u32) {
        let mut preds: Vec<EventId> = Vec::with_capacity(1 + self.pending[pid].len());
        if let Some(own) = self.recorder.last(pid) {
            preds.push(own);
        }
        preds.append(&mut self.pending[pid]);
        preds.sort_unstable();
        preds.dedup();
        self.recorder
            .record(pid, label, self.now.as_f64(), Some(phase), &preds);
    }

    fn record_cp(&mut self, pid: usize, ph: u32, old: ftbarrier_core::Cp, new: ftbarrier_core::Cp) {
        self.seq += 1;
        self.events.push(CpEvent {
            seq: self.seq,
            at: self.now,
            pid,
            ph,
            old,
            new,
        });
    }

    /// Gossip every owned position's state on every outgoing link, tagging
    /// each message with the sender's last causal event so the receiver
    /// draws an exact delivery edge.
    fn gossip(&mut self, pid: usize) {
        if self.muted[pid] {
            return;
        }
        let tag = self.recorder.last(pid);
        for i in 0..self.out_links[pid].len() {
            let link = self.out_links[pid][i];
            for &p in self.program.dag().positions_of(pid) {
                self.net.send_tagged(
                    link,
                    PosMsg {
                        pos: p,
                        state: self.views[pid][p],
                    },
                    tag,
                );
            }
            self.net.flush(link);
            self.messages_sent[pid] += 1;
        }
    }

    /// Evaluate the verified guarded commands on `pid`'s local view until no
    /// owned position can move, then gossip if anything changed.
    fn drive(&mut self, pid: usize) {
        if self.muted[pid] {
            return;
        }
        let owned: Vec<Pos> = self.program.dag().positions_of(pid).to_vec();
        let worker = self.worker_pos[pid];
        let mut moved_any = false;
        loop {
            let mut moved = false;
            for &p in &owned {
                for action in [RECV, WORK, T3, T4, T5] {
                    if !self.program.enabled(&self.views[pid], p, action) {
                        continue;
                    }
                    let old = self.views[pid][p];
                    self.views[pid][p] =
                        self.program
                            .execute(&self.views[pid], p, action, &mut self.rngs[pid]);
                    let new = self.views[pid][p];
                    self.record_causal(pid, self.program.action_name(p, action), new.ph);
                    if p == worker && old.cp != new.cp {
                        self.record_cp(pid, new.ph, old.cp, new.cp);
                    }
                    if p == SweepDag::ROOT && old.ph != new.ph {
                        self.advances += 1;
                        let _ = writeln!(self.trace, "t {} root ph -> {}", self.now, new.ph);
                    }
                    moved = true;
                    break; // re-evaluate guards after each state change
                }
                if moved {
                    break;
                }
            }
            if !moved {
                break;
            }
            moved_any = true;
        }
        if moved_any {
            self.gossip(pid);
        }
    }

    /// §4.1 detectable fault: every position of `pid` is flagged.
    fn poison(&mut self, pid: usize) {
        let _ = writeln!(self.trace, "t {} poison p{pid}", self.now);
        let detect = SweepDetectableFault {
            n_phases: self.cfg.n_phases,
        };
        let worker = self.worker_pos[pid];
        for &p in &self.program.dag().positions_of(pid).to_vec() {
            let old = self.views[pid][p];
            detect.apply(pid, &mut self.views[pid][p], &mut self.rngs[pid]);
            let new = self.views[pid][p];
            if p == worker && old.cp != new.cp {
                self.record_cp(pid, new.ph, old.cp, new.cp);
            }
        }
        let ph = self.views[pid][worker].ph;
        self.record_causal(pid, "fault:detectable", ph);
        self.gossip(pid);
        self.drive(pid);
    }

    /// Byzantine message forgery: gossip forged out-of-domain position
    /// states on every outgoing link while the local view stays intact. Each
    /// link gets an independent forgery draw — the forger *equivocates*,
    /// telling every neighbor a different lie. The receivers' guarded
    /// commands read the forged predecessor copies until the next honest
    /// retransmission overwrites them.
    fn forge(&mut self, pid: usize) {
        if self.muted[pid] {
            return;
        }
        let _ = writeln!(self.trace, "t {} forge p{pid}", self.now);
        let byz = SweepByzantineFault {
            n_phases: self.cfg.n_phases,
            sn_domain: self.program.sn_domain(),
        };
        let ph = self.views[pid][self.worker_pos[pid]].ph;
        self.record_causal(pid, "fault:forgery", ph);
        let tag = self.recorder.last(pid);
        for i in 0..self.out_links[pid].len() {
            let link = self.out_links[pid][i];
            for &p in &self.program.dag().positions_of(pid).to_vec() {
                let mut forged = self.views[pid][p];
                byz.apply(pid, &mut forged, &mut self.rngs[pid]);
                self.net.send_tagged(
                    link,
                    PosMsg {
                        pos: p,
                        state: forged,
                    },
                    tag,
                );
            }
            self.net.flush(link);
            self.messages_sent[pid] += 1;
        }
    }

    /// Fail-stop `pid`: record the stop, then never gossip or drive again.
    fn mute(&mut self, pid: usize) {
        let _ = writeln!(self.trace, "t {} mute p{pid}", self.now);
        let ph = self.views[pid][self.worker_pos[pid]].ph;
        self.record_causal(pid, "fault:stop", ph);
        self.muted[pid] = true;
    }
}

/// Run the sweep program over `dag` deterministically on the simulated
/// network. Two calls with equal inputs return byte-identical reports
/// (including [`SweepSimReport::trace`]).
pub fn run(dag: SweepDag, cfg: SweepSimConfig) -> SweepSimReport {
    assert!(cfg.n_phases >= 2);
    assert!(
        cfg.retransmit_every > 0.0,
        "retransmit period must be positive"
    );
    let program = SweepBarrier::new(dag, cfg.n_phases);
    let dag = program.dag();
    let n = dag.num_processes();
    let mut rng = SimRng::seed_from_u64(cfg.seed);

    // Subscriptions: process `pid` needs every remote position its guards
    // read — predecessors and successors of each owned position. This is
    // where the partner schedule of the log-depth grids materializes as
    // links.
    let mut needs: Vec<BTreeSet<Pos>> = vec![BTreeSet::new(); n];
    for (pid, need) in needs.iter_mut().enumerate() {
        for &p in dag.positions_of(pid) {
            for &q in dag.preds(p).iter().chain(dag.succs(p)) {
                if dag.owner(q) != pid {
                    need.insert(q);
                }
            }
        }
    }
    let mut pairs: BTreeSet<(usize, usize)> = BTreeSet::new();
    for (pid, need) in needs.iter().enumerate() {
        for &q in need {
            pairs.insert((dag.owner(q), pid));
        }
    }
    let mut out_links: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut dest_of: Vec<usize> = Vec::with_capacity(pairs.len());
    let link_of: BTreeMap<(usize, usize), usize> = pairs
        .iter()
        .enumerate()
        .map(|(i, &(from, to))| {
            out_links[from].push(i);
            dest_of.push(to);
            ((from, to), i)
        })
        .collect();
    drop(link_of);

    let net: SimNet<PosMsg> = SimNet::new(vec![cfg.link; pairs.len()], rng.next_u64());
    let views: Vec<Vec<PosState>> = (0..n).map(|_| program.initial_state()).collect();
    let rngs: Vec<SimRng> = (0..n)
        .map(|_| SimRng::seed_from_u64(rng.next_u64()))
        .collect();
    let worker_pos: Vec<Pos> = (0..n).map(|pid| program.worker_position(pid)).collect();

    let recorder = CausalRecorder::bounded(cfg.flight_capacity);
    let mut d = Driver {
        cfg,
        net,
        ctl: BinaryHeap::new(),
        ctl_seq: 0,
        now: Time::ZERO,
        views,
        rngs,
        out_links,
        dest_of,
        worker_pos,
        messages_sent: vec![0; n],
        events: Vec::new(),
        seq: 0,
        advances: 0,
        trace: String::new(),
        recorder,
        pending: vec![Vec::new(); n],
        muted: vec![false; n],
        forged_dropped: 0,
        program,
    };

    for &(t, pid) in &d.cfg.poisons.clone() {
        assert!(pid < n, "poison target {pid} out of range");
        d.schedule(t, Ctl::Poison { pid });
    }
    for &(t, pid) in &d.cfg.mutes.clone() {
        assert!(pid < n, "mute target {pid} out of range");
        d.schedule(t, Ctl::Mute { pid });
    }
    for &(t, pid) in &d.cfg.forgeries.clone() {
        assert!(pid < n, "forgery target {pid} out of range");
        d.schedule(t, Ctl::Forge { pid });
    }
    for pid in 0..n {
        d.schedule(d.cfg.retransmit_every, Ctl::Retransmit { pid });
    }

    // t = 0: everyone announces its start state, then takes any enabled
    // steps (the root's first token action fires immediately).
    for pid in 0..n {
        d.gossip(pid);
    }
    for pid in 0..n {
        d.drive(pid);
    }

    let max_time = Time::new(d.cfg.max_time);
    let mut reached = d.advances >= d.cfg.target_phases;
    let mut wedge_reason: Option<&str> = None;
    while !reached {
        let t_net = d.net.next_event_time();
        let t_ctl = d.ctl.peek().map(|Reverse((t, _, _))| *t);
        // Deliveries win ties against control events.
        let (t, is_net) = match (t_net, t_ctl) {
            (None, None) => {
                // Quiescent: nothing can ever happen again.
                wedge_reason = Some("quiescent-without-completion");
                break;
            }
            (Some(tn), None) => (tn, true),
            (None, Some(tc)) => (tc, false),
            (Some(tn), Some(tc)) => {
                if tn <= tc {
                    (tn, true)
                } else {
                    (tc, false)
                }
            }
        };
        if t > max_time {
            wedge_reason = Some("max_time");
            break;
        }
        d.now = t;
        let ctl_ev = if is_net {
            None
        } else {
            let Reverse((_, _, ev)) = d.ctl.pop().expect("peeked");
            Some(ev)
        };
        let touched = d.net.advance_to(t);
        for link in touched {
            let dest = d.dest_of[link];
            // Detectably corrupted deliveries are discarded — masked as
            // loss and healed by retransmission. The same inspection
            // convicts forged gossip: a carried state outside the program's
            // variable domains cannot have been honestly produced, so it is
            // dropped before it can launder into the receiver's view.
            while let Some((delivery, tag)) = d.net.pop_inbox_tagged(link) {
                if let Delivery::Ok(m) = delivery {
                    if !pos_in_domain(&m.state, d.cfg.n_phases, d.program.sn_domain()) {
                        d.forged_dropped += 1;
                        continue;
                    }
                    d.views[dest][m.pos] = m.state;
                    if let Some(id) = tag {
                        d.pending[dest].push(id);
                    }
                }
            }
            d.drive(dest);
        }
        match ctl_ev {
            Some(Ctl::Retransmit { pid }) => {
                if !d.muted[pid] {
                    // Liveness heartbeat: a silent process stands out in
                    // the flight dump even when the barrier is wedged.
                    let ph = d.views[pid][d.worker_pos[pid]].ph;
                    d.record_causal(pid, "retransmit", ph);
                    d.gossip(pid);
                }
                let at = d.now.as_f64() + d.cfg.retransmit_every;
                d.schedule(at, Ctl::Retransmit { pid });
            }
            Some(Ctl::Poison { pid }) => d.poison(pid),
            Some(Ctl::Mute { pid }) => d.mute(pid),
            Some(Ctl::Forge { pid }) => d.forge(pid),
            None => {}
        }
        reached = d.advances >= d.cfg.target_phases;
    }

    // Replay the worker event log through the barrier specification oracle,
    // in global commit order.
    d.events.sort_by_key(|e| e.seq);
    let mut oracle = BarrierOracle::new(OracleConfig {
        n_processes: n,
        n_phases: d.cfg.n_phases,
        anchor: Anchor::StrictFromZero,
    });
    for e in &d.events {
        oracle.observe_cp(e.at, e.pid, e.ph, e.old, e.new);
    }

    let net_stats = d.net.stats();
    let _ = writeln!(
        d.trace,
        "end t {} advances {} net {:?}",
        d.now, d.advances, net_stats
    );
    let flight_dump = if reached {
        None
    } else {
        Some(d.recorder.snapshot().to_flight_json(
            "sweep_sim",
            n,
            "wedge",
            wedge_reason.unwrap_or("target-not-reached"),
        ))
    };
    SweepSimReport {
        root_phase_advances: d.advances,
        violations: oracle.violations().to_vec(),
        phases_completed: oracle.phases_completed(),
        messages_sent: d.messages_sent,
        reached_target: reached,
        virtual_elapsed: d.now,
        forged_dropped: d.forged_dropped,
        net: net_stats,
        trace: d.trace,
        flight_dump,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::ChannelFaults;
    use crate::simnet::LatencyModel;

    fn lossy() -> LinkConfig {
        LinkConfig {
            latency: LatencyModel::Fixed(0.01),
            faults: ChannelFaults {
                loss: 0.15,
                duplication: 0.05,
                corruption: 0.05,
                ..ChannelFaults::NONE
            },
        }
    }

    #[test]
    fn every_family_reaches_its_target_over_lossy_links() {
        for (name, dag) in [
            ("ring", SweepDag::ring(5).unwrap()),
            ("tree", SweepDag::tree(8, 2).unwrap()),
            ("dissemination", SweepDag::dissemination(8, 2).unwrap()),
            ("hypercube", SweepDag::hypercube(8).unwrap()),
            ("butterfly", SweepDag::butterfly(8).unwrap()),
        ] {
            let report = run(
                dag,
                SweepSimConfig {
                    target_phases: 8,
                    link: lossy(),
                    ..Default::default()
                },
            );
            assert!(report.reached_target, "{name}: {report:?}");
            assert!(
                report.violations.is_empty(),
                "{name}: {:?}",
                report.violations
            );
            assert!(report.phases_completed >= 7, "{name}: {report:?}");
        }
    }

    #[test]
    fn trace_is_byte_identical_across_runs_and_seed_sensitive() {
        let cfg = SweepSimConfig {
            target_phases: 6,
            link: lossy(),
            poisons: vec![(0.3, 3)],
            ..Default::default()
        };
        let a = run(SweepDag::dissemination(8, 2).unwrap(), cfg.clone());
        let b = run(SweepDag::dissemination(8, 2).unwrap(), cfg.clone());
        assert_eq!(a.trace, b.trace, "same config must replay byte-identically");
        assert_eq!(a.messages_sent, b.messages_sent);
        let c = run(
            SweepDag::dissemination(8, 2).unwrap(),
            SweepSimConfig {
                seed: cfg.seed ^ 1,
                ..cfg
            },
        );
        assert_ne!(a.trace, c.trace, "a different seed must diverge");
    }

    #[test]
    fn stalled_run_dumps_a_flight_record_naming_the_muted_process() {
        use ftbarrier_telemetry::FlightDump;
        let muted = 5;
        let report = run(
            SweepDag::tree(8, 2).unwrap(),
            SweepSimConfig {
                target_phases: 50,
                max_time: 10.0,
                mutes: vec![(2.0, muted)],
                ..Default::default()
            },
        );
        assert!(!report.reached_target, "a fail-stopped process must wedge");
        let text = report.flight_dump.expect("wedged run must dump");
        let dump = FlightDump::parse(&text).expect("dump parses");
        dump.replay().expect("dump replays");
        assert_eq!(dump.kind, "wedge");
        assert_eq!(dump.reason, "max_time");
        assert_eq!(
            dump.blamed,
            Some(muted as u32),
            "the causal graph must end at the muted process"
        );
        // The muted process's last event is the fail-stop itself, and no
        // event of its follows it.
        let last_of_muted = dump
            .graph
            .events
            .iter()
            .rfind(|e| e.id.pid == muted as u32)
            .expect("mute event on record");
        assert_eq!(last_of_muted.label, "fault:stop");
        // Everyone else stayed live (heartbeats) strictly later.
        for pid in 0..8u32 {
            if pid == muted as u32 {
                continue;
            }
            let last = dump
                .graph
                .events
                .iter()
                .rfind(|e| e.id.pid == pid)
                .unwrap_or_else(|| panic!("p{pid} has no events"));
            assert!(last.at > last_of_muted.at, "p{pid} went silent too");
        }
        // A healthy run of the same config does not dump.
        let ok = run(
            SweepDag::tree(8, 2).unwrap(),
            SweepSimConfig {
                target_phases: 8,
                ..Default::default()
            },
        );
        assert!(ok.reached_target);
        assert!(ok.flight_dump.is_none());
    }

    #[test]
    fn forged_messages_are_healed_by_honest_retransmission() {
        // Equivocating in-flight forgeries (out-of-domain sn/ph gossiped to
        // every neighbor, a different lie per link) must be transient: the
        // forger's own view is intact, so its periodic retransmissions
        // overwrite the lies and the barrier still completes cleanly.
        for (name, dag) in [
            ("ring", SweepDag::ring(5).unwrap()),
            ("tree", SweepDag::tree(8, 2).unwrap()),
            ("dissemination", SweepDag::dissemination(8, 2).unwrap()),
        ] {
            let report = run(
                dag,
                SweepSimConfig {
                    target_phases: 10,
                    forgeries: vec![(0.4, 1), (0.9, 2), (1.3, 1)],
                    ..Default::default()
                },
            );
            assert!(report.reached_target, "{name}: {report:?}");
            assert!(
                report.violations.is_empty(),
                "{name}: forged gossip must be masked: {:?}",
                report.violations
            );
            assert!(
                report.forged_dropped > 0,
                "{name}: receivers must convict the forgeries by inspection"
            );
            assert!(report.trace.contains("forge p1"), "{name} trace logs it");
        }
    }

    #[test]
    fn forgery_trace_is_deterministic_and_diverges_from_clean() {
        let cfg = SweepSimConfig {
            target_phases: 6,
            forgeries: vec![(0.5, 3)],
            ..Default::default()
        };
        let a = run(SweepDag::hypercube(8).unwrap(), cfg.clone());
        let b = run(SweepDag::hypercube(8).unwrap(), cfg.clone());
        assert_eq!(a.trace, b.trace, "forgery draws are seed-deterministic");
        let clean = run(
            SweepDag::hypercube(8).unwrap(),
            SweepSimConfig {
                forgeries: Vec::new(),
                ..cfg
            },
        );
        assert!(clean.reached_target);
        assert!(!clean.trace.contains("forge"));
    }

    #[test]
    fn poisons_are_masked_on_the_log_depth_grids() {
        for (name, dag) in [
            ("dissemination", SweepDag::dissemination(8, 2).unwrap()),
            ("hypercube", SweepDag::hypercube(8).unwrap()),
            ("butterfly", SweepDag::butterfly(8).unwrap()),
        ] {
            let report = run(
                dag,
                SweepSimConfig {
                    target_phases: 10,
                    poisons: vec![(0.5, 2), (1.1, 5)],
                    ..Default::default()
                },
            );
            assert!(report.reached_target, "{name}: {report:?}");
            assert!(
                report.violations.is_empty(),
                "{name}: detectable faults must be masked: {:?}",
                report.violations
            );
        }
    }
}
