//! The transport abstraction over program MB's communication.
//!
//! One [`Endpoint`] per process: `send` gossips the process's state to its
//! ring successor, `try_recv` yields deliveries from its predecessor. The MB
//! step logic (`proc::pump`) is written against this trait only, so the same
//! program runs on two backends:
//!
//! * [`ChannelEndpoint`] — real crossbeam channels with send-time fault
//!   injection ([`faulty_channel`]), one OS thread per process;
//! * `mb_sim::SimEndpoint` — a handle into the discrete-event simulated
//!   network, single-threaded and byte-for-byte replayable from a seed.

use crate::channel::{faulty_channel, ChannelFaults, Delivery, FaultyReceiver, FaultySender};
use crate::proc::StateMsg;
use ftbarrier_gcs::SimRng;

/// A process's view of the ring: its outgoing link to the successor and its
/// incoming link from the predecessor.
pub trait Endpoint {
    /// Gossip `msg` to the successor. Returns `false` if the peer is gone.
    fn send(&mut self, msg: StateMsg) -> bool;
    /// Next pending delivery from the predecessor, if any.
    fn try_recv(&mut self) -> Option<Delivery<StateMsg>>;
    /// Release any message held back by the link's reorder model.
    fn flush(&mut self) -> bool;
}

/// Threaded backend endpoint: a faulty crossbeam channel pair.
pub struct ChannelEndpoint {
    tx: FaultySender<StateMsg>,
    rx: FaultyReceiver<StateMsg>,
}

impl Endpoint for ChannelEndpoint {
    fn send(&mut self, msg: StateMsg) -> bool {
        self.tx.send(msg)
    }

    fn try_recv(&mut self) -> Option<Delivery<StateMsg>> {
        self.rx.try_recv()
    }

    fn flush(&mut self) -> bool {
        self.tx.flush()
    }
}

/// Build the ring of faulty links for `n` processes: endpoint `j` sends on
/// link `j → j+1` and receives on link `j-1 → j`. Each link's fault stream is
/// forked off `rng` so the whole ring is reproducible from one seed.
pub fn channel_ring(n: usize, faults: ChannelFaults, rng: &mut SimRng) -> Vec<ChannelEndpoint> {
    let mut senders = Vec::with_capacity(n);
    let mut receivers = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = faulty_channel::<StateMsg>(faults, rng.range_u64(0, u64::MAX));
        senders.push(Some(tx));
        receivers.push(Some(rx));
    }
    (0..n)
        .map(|pid| ChannelEndpoint {
            tx: senders[pid].take().expect("sender taken once"),
            rx: receivers[(pid + n - 1) % n]
                .take()
                .expect("receiver taken once"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_ring_connects_successors() {
        let mut rng = SimRng::seed_from_u64(1);
        let mut eps = channel_ring(3, ChannelFaults::NONE, &mut rng);
        let msg = StateMsg::initial();
        // 0 sends; 1 (its successor) receives.
        assert!(eps[0].send(msg));
        assert_eq!(eps[1].try_recv(), Some(Delivery::Ok(msg)));
        assert_eq!(eps[2].try_recv(), None);
        // The ring wraps: 2 sends; 0 receives.
        assert!(eps[2].send(msg));
        assert_eq!(eps[0].try_recv(), Some(Delivery::Ok(msg)));
    }
}
