//! The transport abstraction over program MB's communication.
//!
//! One [`Endpoint`] per process: `send` gossips the process's state to its
//! ring successor, `try_recv` yields deliveries from its predecessor. The MB
//! step logic (`proc::pump`) is written against this trait only, so the same
//! program runs on two backends:
//!
//! * [`ChannelEndpoint`] — real crossbeam channels with send-time fault
//!   injection ([`faulty_channel`]), one OS thread per process;
//! * `mb_sim::SimEndpoint` — a handle into the discrete-event simulated
//!   network, single-threaded and byte-for-byte replayable from a seed.
//!
//! # Causal tags
//!
//! The tagged variants ([`Endpoint::send_tagged`] /
//! [`Endpoint::try_recv_tagged`]) carry the sender's latest causal
//! [`EventId`] alongside the payload, so a receiver can link its next
//! committed event to the exact send that enabled it — the happens-before
//! delivery edge of the flight recorder. The default methods discard tags,
//! so an `Endpoint` implementation that predates the causal model keeps
//! working unchanged (its delivery edges simply stay unrecorded).

use crate::channel::{faulty_channel, ChannelFaults, Delivery, FaultyReceiver, FaultySender};
use crate::proc::StateMsg;
use ftbarrier_gcs::SimRng;
use ftbarrier_telemetry::EventId;

/// A process's view of the ring: its outgoing link to the successor and its
/// incoming link from the predecessor.
pub trait Endpoint {
    /// Gossip `msg` to the successor. Returns `false` if the peer is gone.
    fn send(&mut self, msg: StateMsg) -> bool;
    /// Next pending delivery from the predecessor, if any.
    fn try_recv(&mut self) -> Option<Delivery<StateMsg>>;
    /// Release any message held back by the link's reorder model.
    fn flush(&mut self) -> bool;

    /// [`Endpoint::send`] stamped with the sender's latest causal event.
    /// Default: drop the tag.
    fn send_tagged(&mut self, msg: StateMsg, _tag: Option<EventId>) -> bool {
        self.send(msg)
    }

    /// [`Endpoint::try_recv`] plus the causal tag the message was sent
    /// with. Default: no tag.
    fn try_recv_tagged(&mut self) -> Option<(Delivery<StateMsg>, Option<EventId>)> {
        self.try_recv().map(|d| (d, None))
    }
}

/// What travels on a threaded-backend link: the gossiped state plus the
/// sender's causal tag. The tag rides *inside* the payload, so duplication
/// copies it and detectable corruption withholds it along with the state —
/// exactly the semantics a receiver needs (no applied state, no edge).
pub type TaggedMsg = (StateMsg, Option<EventId>);

/// Threaded backend endpoint: a faulty crossbeam channel pair.
pub struct ChannelEndpoint {
    tx: FaultySender<TaggedMsg>,
    rx: FaultyReceiver<TaggedMsg>,
}

impl Endpoint for ChannelEndpoint {
    fn send(&mut self, msg: StateMsg) -> bool {
        self.tx.send((msg, None))
    }

    fn try_recv(&mut self) -> Option<Delivery<StateMsg>> {
        self.try_recv_tagged().map(|(d, _)| d)
    }

    fn flush(&mut self) -> bool {
        self.tx.flush()
    }

    fn send_tagged(&mut self, msg: StateMsg, tag: Option<EventId>) -> bool {
        self.tx.send((msg, tag))
    }

    fn try_recv_tagged(&mut self) -> Option<(Delivery<StateMsg>, Option<EventId>)> {
        Some(match self.rx.try_recv()? {
            Delivery::Ok((msg, tag)) => (Delivery::Ok(msg), tag),
            Delivery::Corrupted => (Delivery::Corrupted, None),
        })
    }
}

/// Build the ring of faulty links for `n` processes: endpoint `j` sends on
/// link `j → j+1` and receives on link `j-1 → j`. Each link's fault stream is
/// forked off `rng` so the whole ring is reproducible from one seed.
pub fn channel_ring(n: usize, faults: ChannelFaults, rng: &mut SimRng) -> Vec<ChannelEndpoint> {
    let mut senders = Vec::with_capacity(n);
    let mut receivers = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = faulty_channel::<TaggedMsg>(faults, rng.next_u64());
        senders.push(Some(tx));
        receivers.push(Some(rx));
    }
    (0..n)
        .map(|pid| ChannelEndpoint {
            tx: senders[pid].take().expect("sender taken once"),
            rx: receivers[(pid + n - 1) % n]
                .take()
                .expect("receiver taken once"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_ring_connects_successors() {
        let mut rng = SimRng::seed_from_u64(1);
        let mut eps = channel_ring(3, ChannelFaults::NONE, &mut rng);
        let msg = StateMsg::initial();
        // 0 sends; 1 (its successor) receives.
        assert!(eps[0].send(msg));
        assert_eq!(eps[1].try_recv(), Some(Delivery::Ok(msg)));
        assert_eq!(eps[2].try_recv(), None);
        // The ring wraps: 2 sends; 0 receives.
        assert!(eps[2].send(msg));
        assert_eq!(eps[0].try_recv(), Some(Delivery::Ok(msg)));
    }

    #[test]
    fn causal_tags_ride_the_channel_and_untagged_sends_stay_untagged() {
        let mut rng = SimRng::seed_from_u64(2);
        let mut eps = channel_ring(2, ChannelFaults::NONE, &mut rng);
        let msg = StateMsg::initial();
        let id = EventId { pid: 0, seq: 3 };
        assert!(eps[0].send_tagged(msg, Some(id)));
        assert!(eps[0].send(msg));
        assert_eq!(
            eps[1].try_recv_tagged(),
            Some((Delivery::Ok(msg), Some(id)))
        );
        assert_eq!(eps[1].try_recv_tagged(), Some((Delivery::Ok(msg), None)));
        assert_eq!(eps[1].try_recv_tagged(), None);
    }
}
