//! The third [`Endpoint`] backend: length-prefixed TCP sockets between OS
//! processes.
//!
//! Each ring link `j → j+1` is one TCP connection on the loopback (or any)
//! interface: process `j` connects to its successor's listener and gossips
//! frames; process `j` also owns a listener its *predecessor* connects to.
//! The MB program's assumptions map onto real sockets as follows:
//!
//! * **`try_recv` stays non-blocking** — the incoming stream runs in
//!   non-blocking mode and complete frames are peeled out of a partial-frame
//!   buffer, so `proc::pump` keeps its exact channel-backend semantics.
//! * **A peer crash is the §4.1 detectable fault** — a broken pipe or
//!   connection reset on send drops the stream and schedules a
//!   reconnect-with-backoff; until the peer returns, its silence is
//!   indistinguishable from total message loss, which gossip +
//!   retransmission already masks, and the crash itself is *detected* by
//!   the failure-detector layer exactly as the paper's `sn = ⊥, cp = error`
//!   state is.
//! * **Causal tags ride in-frame** — the sender's latest [`EventId`] is
//!   serialized next to the state, so flight-recorder delivery edges
//!   survive the wire (and corruption withholds the tag with the payload,
//!   as on the channel backend).
//! * **Corruption stays detectable** — every frame carries an FNV-1a
//!   checksum; a mismatch (or an injected in-flight corruption flag)
//!   surfaces as [`Delivery::Corrupted`], never as a wrong payload.
//!
//! Send-time fault injection reuses [`ChannelFaults`] with the same
//! draw order as [`crate::channel::FaultySender`], so the loopback
//! differential suite can compare the two backends under one fault plan.

use crate::channel::{ChannelFaults, Delivery};
use crate::proc::StateMsg;
use crate::transport::Endpoint;
use ftbarrier_core::{Cp, Sn};
use ftbarrier_gcs::SimRng;
use ftbarrier_telemetry::EventId;
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::{Duration, Instant};

/// Upper bound on a frame body; anything larger is a protocol violation
/// (state frames are tens of bytes, server control frames are small).
pub const MAX_FRAME: usize = 64 * 1024;

/// Typed violation of the length-prefixed framing.
///
/// Raised by [`FrameReader`] *before* the declared length sizes any buffer:
/// a hostile prefix (say `0xFFFF_FFFF`) is rejected from its four header
/// bytes alone and can never balloon memory. On the server a frame error is
/// a detectable fault — the session is dropped like a crashed client — not
/// an OOM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The length prefix declared a body larger than [`MAX_FRAME`] —
    /// either a hostile peer or a stream that lost frame sync.
    Oversized { len: usize, max: usize },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Oversized { len, max } => {
                write!(f, "frame length {len} exceeds {max}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

impl From<FrameError> for io::Error {
    fn from(e: FrameError) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, e)
    }
}

/// Prefix `payload` with its big-endian `u32` length.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    assert!(payload.len() <= MAX_FRAME, "frame too large");
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(payload);
    out
}

/// Incremental length-prefixed frame parser over a byte stream. Shared by
/// the ring transport here and the `ftbarrier-server` session protocol.
#[derive(Default)]
pub struct FrameReader {
    buf: Vec<u8>,
}

impl FrameReader {
    pub fn new() -> FrameReader {
        FrameReader::default()
    }

    /// Feed raw stream bytes; every completed frame body is appended to
    /// `out`. Errors with [`FrameError::Oversized`] on a hostile or
    /// out-of-sync length prefix — checked from the four header bytes,
    /// before the declared length sizes any allocation.
    pub fn push(&mut self, bytes: &[u8], out: &mut Vec<Vec<u8>>) -> io::Result<()> {
        self.buf.extend_from_slice(bytes);
        loop {
            if self.buf.len() < 4 {
                return Ok(());
            }
            let len =
                u32::from_be_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]) as usize;
            if len > MAX_FRAME {
                return Err(FrameError::Oversized {
                    len,
                    max: MAX_FRAME,
                }
                .into());
            }
            if self.buf.len() < 4 + len {
                return Ok(());
            }
            out.push(self.buf[4..4 + len].to_vec());
            self.buf.drain(..4 + len);
        }
    }

    /// Drain everything currently readable from a non-blocking stream.
    /// `Ok(true)` means the stream is still open, `Ok(false)` means the
    /// peer closed it (EOF — over TCP, the observable face of a crash).
    pub fn read_from(
        &mut self,
        stream: &mut TcpStream,
        out: &mut Vec<Vec<u8>>,
    ) -> io::Result<bool> {
        let mut chunk = [0u8; 4096];
        loop {
            match stream.read(&mut chunk) {
                Ok(0) => return Ok(false),
                Ok(n) => self.push(&chunk[..n], out)?,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(true),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

const MSG_STATE: u8 = 0x01;
const FLAG_CORRUPT: u8 = 0b01;
const FLAG_TAGGED: u8 = 0b10;

fn fnv1a(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

fn sn_to_wire(sn: Sn) -> (u8, u32) {
    match sn {
        Sn::Bot => (0, 0),
        Sn::Top => (1, 0),
        Sn::Val(v) => (2, v),
    }
}

fn sn_from_wire(tag: u8, v: u32) -> Option<Sn> {
    match tag {
        0 => Some(Sn::Bot),
        1 => Some(Sn::Top),
        2 => Some(Sn::Val(v)),
        _ => None,
    }
}

fn cp_to_wire(cp: Cp) -> u8 {
    match cp {
        Cp::Ready => 0,
        Cp::Execute => 1,
        Cp::Success => 2,
        Cp::Error => 3,
        Cp::Repeat => 4,
    }
}

fn cp_from_wire(b: u8) -> Option<Cp> {
    match b {
        0 => Some(Cp::Ready),
        1 => Some(Cp::Execute),
        2 => Some(Cp::Success),
        3 => Some(Cp::Error),
        4 => Some(Cp::Repeat),
        _ => None,
    }
}

/// Serialize a state gossip (and its causal tag) into a frame body. The
/// `corrupt` flag models in-flight detectable corruption: the frame stays
/// parseable but the receiver must observe [`Delivery::Corrupted`].
pub fn encode_state(msg: StateMsg, tag: Option<EventId>, corrupt: bool) -> Vec<u8> {
    let mut body = Vec::with_capacity(24);
    body.push(MSG_STATE);
    let mut flags = 0u8;
    if corrupt {
        flags |= FLAG_CORRUPT;
    }
    if tag.is_some() {
        flags |= FLAG_TAGGED;
    }
    body.push(flags);
    let (sn_tag, sn_val) = sn_to_wire(msg.sn);
    body.push(sn_tag);
    body.extend_from_slice(&sn_val.to_be_bytes());
    body.push(cp_to_wire(msg.cp));
    body.extend_from_slice(&msg.ph.to_be_bytes());
    let id = tag.unwrap_or(EventId { pid: 0, seq: 0 });
    body.extend_from_slice(&id.pid.to_be_bytes());
    body.extend_from_slice(&id.seq.to_be_bytes());
    let sum = fnv1a(&body);
    body.extend_from_slice(&sum.to_be_bytes());
    body
}

/// Decode a frame body produced by [`encode_state`]. Any integrity failure
/// — wrong checksum, bad enum byte, wrong length, or the in-flight corrupt
/// flag — is a *detectable* fault and yields [`Delivery::Corrupted`].
pub fn decode_state(body: &[u8]) -> (Delivery<StateMsg>, Option<EventId>) {
    const LEN: usize = 1 + 1 + 1 + 4 + 1 + 4 + 4 + 4 + 4;
    if body.len() != LEN || body[0] != MSG_STATE {
        return (Delivery::Corrupted, None);
    }
    let (payload, sum_bytes) = body.split_at(LEN - 4);
    let sum = u32::from_be_bytes(sum_bytes.try_into().unwrap());
    if fnv1a(payload) != sum {
        return (Delivery::Corrupted, None);
    }
    let flags = body[1];
    if flags & FLAG_CORRUPT != 0 {
        return (Delivery::Corrupted, None);
    }
    let be32 = |at: usize| u32::from_be_bytes(body[at..at + 4].try_into().unwrap());
    let (sn, cp) = match (sn_from_wire(body[2], be32(3)), cp_from_wire(body[7])) {
        (Some(sn), Some(cp)) => (sn, cp),
        _ => return (Delivery::Corrupted, None),
    };
    let msg = StateMsg {
        sn,
        cp,
        ph: be32(8),
    };
    let tag = (flags & FLAG_TAGGED != 0).then(|| EventId {
        pid: be32(12),
        seq: be32(16),
    });
    (Delivery::Ok(msg), tag)
}

/// Outgoing half: a connection to the successor's listener, re-established
/// with capped, jittered exponential backoff after any write failure. While
/// disconnected, sends degrade to loss — which retransmission masks.
struct SendLink {
    peer: SocketAddr,
    stream: Option<TcpStream>,
    /// Consecutive failures since the last successful connect; indexes the
    /// backoff schedule.
    attempt: u32,
    /// Per-link jitter seed (hash of the peer address) so links that fail
    /// together do not retry in lockstep.
    jitter_seed: u32,
    retry_at: Option<Instant>,
}

const BACKOFF_MIN: Duration = Duration::from_millis(5);
const BACKOFF_MAX: Duration = Duration::from_millis(500);

/// Un-jittered backoff schedule: 5 ms doubling per consecutive failure,
/// capped at 500 ms. Attempt 0 is the first retry after a failure.
fn backoff_base(attempt: u32) -> Duration {
    // 5 ms << 7 = 640 ms is already past the cap; clamping the exponent
    // keeps the shift from overflowing for absurd attempt counts.
    let exp = attempt.min(7);
    (BACKOFF_MIN * 2u32.pow(exp)).min(BACKOFF_MAX)
}

/// Jittered delay before retry `attempt`: a deterministic draw in
/// [base/2, base] where `base` follows [`backoff_base`]. The seed varies
/// per link, decorrelating reconnect storms when a shared peer dies, while
/// any single link's schedule stays reproducible. The cap is a hard bound:
/// no jittered delay ever exceeds `BACKOFF_MAX`.
fn backoff_delay(attempt: u32, seed: u32) -> Duration {
    let base = backoff_base(attempt).as_millis() as u64;
    // splitmix64 finalizer over (seed, attempt).
    let mut h = u64::from(seed) ^ u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    h ^= h >> 30;
    h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^= h >> 31;
    let lo = base / 2;
    Duration::from_millis(lo + h % (base - lo + 1))
}

impl SendLink {
    fn new(peer: SocketAddr) -> SendLink {
        SendLink {
            peer,
            stream: None,
            attempt: 0,
            jitter_seed: fnv1a(peer.to_string().as_bytes()),
            retry_at: None,
        }
    }

    /// Arm the reconnect timer for the current failure streak and advance it.
    fn arm_retry(&mut self) {
        self.retry_at = Some(Instant::now() + backoff_delay(self.attempt, self.jitter_seed));
        self.attempt = self.attempt.saturating_add(1);
    }

    fn ensure_connected(&mut self) {
        if self.stream.is_some() {
            return;
        }
        if let Some(at) = self.retry_at {
            if Instant::now() < at {
                return;
            }
        }
        match TcpStream::connect(self.peer) {
            Ok(s) => {
                let _ = s.set_nodelay(true);
                self.stream = Some(s);
                self.attempt = 0;
                self.retry_at = None;
            }
            Err(_) => self.arm_retry(),
        }
    }

    /// Write one frame. A peer that is gone (broken pipe, reset, refused)
    /// turns the send into a loss and arms the reconnect timer.
    fn write_frame(&mut self, body: &[u8]) {
        self.ensure_connected();
        let Some(stream) = self.stream.as_mut() else {
            return;
        };
        if stream.write_all(&frame(body)).is_err() {
            // The §4.1 observable: the successor crashed (or the network
            // partitioned). Drop the stream; subsequent sends retry.
            self.stream = None;
            self.arm_retry();
        }
    }
}

/// Incoming half: this process's listener plus the currently accepted
/// predecessor connection. A reconnecting predecessor replaces the old
/// stream; EOF drops it (silence until the peer returns).
struct RecvLink {
    listener: TcpListener,
    stream: Option<TcpStream>,
    reader: FrameReader,
}

impl RecvLink {
    fn new(listener: TcpListener) -> io::Result<RecvLink> {
        listener.set_nonblocking(true)?;
        Ok(RecvLink {
            listener,
            stream: None,
            reader: FrameReader::new(),
        })
    }

    /// Accept any newly arrived connection, then drain complete frames.
    fn poll(&mut self, out: &mut Vec<Vec<u8>>) {
        match self.listener.accept() {
            Ok((s, _)) => {
                if s.set_nonblocking(true).is_ok() {
                    let _ = s.set_nodelay(true);
                    // A fresh connection supersedes the old one: the peer
                    // rebooted (its old stream is dead) — start a clean
                    // frame buffer so a torn partial frame from the old
                    // incarnation can't prefix the new stream.
                    self.stream = Some(s);
                    self.reader = FrameReader::new();
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
            Err(_) => {}
        }
        if let Some(stream) = self.stream.as_mut() {
            match self.reader.read_from(stream, out) {
                Ok(true) => {}
                // EOF or stream error: the predecessor is gone. Fall
                // silent; gossip retransmission carries the ring until the
                // peer reconnects through the listener.
                Ok(false) | Err(_) => self.stream = None,
            }
        }
    }
}

/// A process's ring endpoint over real TCP sockets.
pub struct SocketEndpoint {
    out: SendLink,
    incoming: RecvLink,
    faults: ChannelFaults,
    rng: SimRng,
    /// Encoded frame body parked for reordering (swapped with next send).
    held: Option<Vec<u8>>,
    queue: VecDeque<(Delivery<StateMsg>, Option<EventId>)>,
}

impl SocketEndpoint {
    /// Assemble an endpoint from an accepted predecessor listener and a
    /// successor address. `fault_seed` drives send-time fault injection
    /// (same model and draw order as the channel backend).
    pub fn new(
        listener: TcpListener,
        successor: SocketAddr,
        faults: ChannelFaults,
        fault_seed: u64,
    ) -> io::Result<SocketEndpoint> {
        Ok(SocketEndpoint {
            out: SendLink::new(successor),
            incoming: RecvLink::new(listener)?,
            faults,
            rng: SimRng::seed_from_u64(fault_seed),
            held: None,
            queue: VecDeque::new(),
        })
    }

    /// The local address the predecessor should connect to.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.incoming.listener.local_addr()
    }

    fn pump_incoming(&mut self) {
        let mut frames = Vec::new();
        self.incoming.poll(&mut frames);
        for body in frames {
            self.queue.push_back(decode_state(&body));
        }
    }
}

impl Endpoint for SocketEndpoint {
    fn send(&mut self, msg: StateMsg) -> bool {
        self.send_tagged(msg, None)
    }

    fn try_recv(&mut self) -> Option<Delivery<StateMsg>> {
        self.try_recv_tagged().map(|(d, _)| d)
    }

    fn flush(&mut self) -> bool {
        if let Some(body) = self.held.take() {
            self.out.write_frame(&body);
        }
        true
    }

    fn send_tagged(&mut self, msg: StateMsg, tag: Option<EventId>) -> bool {
        // Mirror FaultySender's draw order exactly: loss, corruption,
        // duplication, reorder — one seeded stream per link.
        if self.rng.chance(self.faults.loss) {
            return true;
        }
        let corrupt = self.rng.chance(self.faults.corruption);
        let duplicate = self.rng.chance(self.faults.duplication);
        let hold = self.rng.chance(self.faults.reorder);
        let body = encode_state(msg, if corrupt { None } else { tag }, corrupt);

        let mut to_send: Vec<Vec<u8>> = Vec::with_capacity(3);
        if hold && self.held.is_none() {
            self.held = Some(body.clone());
        } else {
            to_send.push(body.clone());
            if let Some(prev) = self.held.take() {
                to_send.push(prev);
            }
        }
        if duplicate {
            to_send.push(body);
        }
        for b in to_send {
            self.out.write_frame(&b);
        }
        true
    }

    fn try_recv_tagged(&mut self) -> Option<(Delivery<StateMsg>, Option<EventId>)> {
        self.pump_incoming();
        self.queue.pop_front()
    }
}

/// Build a fully connected loopback ring of `n` socket endpoints: endpoint
/// `j` sends to `j+1`'s listener and has accepted `j-1`'s connection. Fault
/// streams fork off `rng` with the same per-link draw order as
/// [`crate::transport::channel_ring`].
pub fn socket_ring(
    n: usize,
    faults: ChannelFaults,
    rng: &mut SimRng,
) -> io::Result<Vec<SocketEndpoint>> {
    assert!(n >= 2, "a ring needs at least two endpoints");
    let mut listeners = Vec::with_capacity(n);
    let mut addrs = Vec::with_capacity(n);
    for _ in 0..n {
        let l = TcpListener::bind("127.0.0.1:0")?;
        addrs.push(l.local_addr()?);
        listeners.push(l);
    }
    let mut endpoints = Vec::with_capacity(n);
    for (j, listener) in listeners.into_iter().enumerate() {
        let mut ep = SocketEndpoint::new(listener, addrs[(j + 1) % n], faults, rng.next_u64())?;
        // Eager connect: the successor's listener already exists, so the
        // connection lands in its backlog even before it accepts.
        ep.out.ensure_connected();
        if ep.out.stream.is_none() {
            return Err(io::Error::other(format!(
                "socket_ring: connect {j} -> {}",
                addrs[(j + 1) % n]
            )));
        }
        endpoints.push(ep);
    }
    // Adopt each predecessor connection now so the ring starts connected
    // (first gossip must not race the accept loop).
    let deadline = Instant::now() + Duration::from_secs(5);
    for ep in &mut endpoints {
        while ep.incoming.stream.is_none() {
            ep.pump_incoming();
            if Instant::now() > deadline {
                return Err(io::Error::other("socket_ring: accept timed out"));
            }
            std::thread::yield_now();
        }
    }
    Ok(endpoints)
}

/// Connect a lone endpoint into an existing ring position: used by true
/// multi-OS-process deployments where each process builds its own endpoint
/// from a pre-agreed address map.
pub fn connect_endpoint(
    listen: &str,
    successor: &str,
    faults: ChannelFaults,
    fault_seed: u64,
) -> io::Result<SocketEndpoint> {
    let listener = TcpListener::bind(listen)?;
    let successor: SocketAddr = successor
        .parse()
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, format!("{successor}: {e}")))?;
    SocketEndpoint::new(listener, successor, faults, fault_seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_schedule_is_capped_jittered_and_deterministic() {
        // The un-jittered base schedule is pinned exactly: doubling from
        // 5 ms, saturating at the 500 ms cap and holding there.
        let pinned: [u64; 10] = [5, 10, 20, 40, 80, 160, 320, 500, 500, 500];
        for (attempt, &ms) in pinned.iter().enumerate() {
            assert_eq!(
                backoff_base(attempt as u32),
                Duration::from_millis(ms),
                "base schedule diverged at attempt {attempt}"
            );
        }
        assert_eq!(backoff_base(u32::MAX), BACKOFF_MAX, "cap holds forever");

        // Jitter stays inside the [base/2, base] envelope — the cap is a
        // hard bound — and the schedule is a pure function of (attempt, seed).
        for seed in [0u32, 1, 0xB127_CAFE, u32::MAX] {
            for attempt in 0..16u32 {
                let d = backoff_delay(attempt, seed);
                let base = backoff_base(attempt);
                // The delay works in whole milliseconds, so the envelope
                // floor is base_ms / 2 rounded down.
                let lo = Duration::from_millis(base.as_millis() as u64 / 2);
                assert!(
                    d >= lo && d <= base,
                    "attempt {attempt} seed {seed:#x}: {d:?} outside [{lo:?}, {base:?}]"
                );
                assert!(d <= BACKOFF_MAX, "jitter must never exceed the cap");
                assert_eq!(d, backoff_delay(attempt, seed), "schedule must be pure");
            }
        }

        // Different links (seeds) decorrelate: the schedules differ.
        let a: Vec<_> = (0..10).map(|i| backoff_delay(i, 1)).collect();
        let b: Vec<_> = (0..10).map(|i| backoff_delay(i, 2)).collect();
        assert_ne!(a, b, "jitter seeds failed to decorrelate the schedules");
    }

    #[test]
    fn send_link_advances_and_resets_the_backoff_attempt() {
        // Connecting to a port nobody listens on fails immediately and must
        // walk the schedule: each failed attempt arms a longer retry window.
        let dead: SocketAddr = "127.0.0.1:1".parse().unwrap();
        let mut link = SendLink::new(dead);
        assert_eq!(link.attempt, 0);
        link.ensure_connected();
        assert!(link.stream.is_none());
        assert_eq!(link.attempt, 1, "first failure advances the schedule");
        let first_retry = link.retry_at.expect("failure arms the retry timer");
        // Within the armed window a retry is a no-op (no connect, no advance).
        link.ensure_connected();
        assert_eq!(link.attempt, 1, "armed window suppresses reconnects");
        assert_eq!(link.retry_at, Some(first_retry));

        // A successful connect resets the streak to the start of the schedule.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut link = SendLink::new(listener.local_addr().unwrap());
        link.attempt = 6;
        link.ensure_connected();
        assert!(link.stream.is_some());
        assert_eq!(link.attempt, 0, "successful connect resets the backoff");
        assert_eq!(link.retry_at, None);
    }

    #[test]
    fn state_frames_round_trip_with_and_without_tags() {
        for msg in [
            StateMsg::initial(),
            StateMsg::poisoned(3),
            StateMsg {
                sn: Sn::Top,
                cp: Cp::Repeat,
                ph: 7,
            },
        ] {
            for tag in [None, Some(EventId { pid: 9, seq: 1234 })] {
                let body = encode_state(msg, tag, false);
                assert_eq!(decode_state(&body), (Delivery::Ok(msg), tag));
            }
        }
    }

    #[test]
    fn corrupt_flag_and_checksum_mismatch_are_detectable() {
        let msg = StateMsg::initial();
        let body = encode_state(msg, Some(EventId { pid: 1, seq: 2 }), true);
        assert_eq!(decode_state(&body), (Delivery::Corrupted, None));

        let mut flipped = encode_state(msg, None, false);
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0xFF;
        assert_eq!(decode_state(&flipped), (Delivery::Corrupted, None));

        assert_eq!(decode_state(&[]), (Delivery::Corrupted, None));
        assert_eq!(decode_state(&[MSG_STATE; 3]), (Delivery::Corrupted, None));
    }

    #[test]
    fn frame_reader_reassembles_across_arbitrary_splits() {
        let bodies: Vec<Vec<u8>> = (0..5u8)
            .map(|i| {
                encode_state(
                    StateMsg::initial(),
                    Some(EventId {
                        pid: i as u32,
                        seq: 0,
                    }),
                    false,
                )
            })
            .collect();
        let wire: Vec<u8> = bodies.iter().flat_map(|b| frame(b)).collect();
        // Feed the byte stream one byte at a time.
        let mut reader = FrameReader::new();
        let mut out = Vec::new();
        for b in &wire {
            reader.push(std::slice::from_ref(b), &mut out).unwrap();
        }
        assert_eq!(out, bodies);
    }

    #[test]
    fn frame_reader_rejects_oversized_length_prefix() {
        let mut reader = FrameReader::new();
        let mut out = Vec::new();
        let bad = ((MAX_FRAME + 1) as u32).to_be_bytes();
        assert!(reader.push(&bad, &mut out).is_err());
    }

    #[test]
    fn socket_ring_connects_successors() {
        let mut rng = SimRng::seed_from_u64(1);
        let mut eps = socket_ring(3, ChannelFaults::NONE, &mut rng).unwrap();
        let msg = StateMsg::initial();
        assert!(eps[0].send(msg));
        assert_eq!(recv_blocking(&mut eps[1]), Some((Delivery::Ok(msg), None)));
        assert!(eps[1].try_recv().is_none());
        assert!(eps[2].try_recv().is_none());
        // The ring wraps: 2 sends; 0 receives.
        let id = EventId { pid: 2, seq: 7 };
        assert!(eps[2].send_tagged(msg, Some(id)));
        assert_eq!(
            recv_blocking(&mut eps[0]),
            Some((Delivery::Ok(msg), Some(id)))
        );
    }

    #[test]
    fn peer_crash_degrades_to_loss_and_reconnect_resumes_delivery() {
        let mut rng = SimRng::seed_from_u64(2);
        let mut eps = socket_ring(2, ChannelFaults::NONE, &mut rng).unwrap();
        let msg = StateMsg::initial();
        let addr1 = eps[1].local_addr().unwrap();

        // Crash endpoint 1: its listener and accepted stream vanish.
        let survivor_faults = ChannelFaults::NONE;
        drop(eps.remove(1));
        // Sends from 0 keep "succeeding" (loss semantics) while the peer is
        // gone; the write error is absorbed and the backoff timer armed.
        for _ in 0..50 {
            assert!(eps[0].send(msg));
        }
        assert!(eps[0].out.stream.is_none(), "broken pipe drops the stream");

        // The peer reboots at the same address (its old listener port).
        let listener = TcpListener::bind(addr1).unwrap();
        let mut reborn =
            SocketEndpoint::new(listener, eps[0].local_addr().unwrap(), survivor_faults, 99)
                .unwrap();
        // Retransmission drives reconnection; wait out the backoff.
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            assert!(eps[0].send(msg));
            if let Some(got) = reborn.try_recv() {
                assert_eq!(got, Delivery::Ok(msg));
                break;
            }
            assert!(Instant::now() < deadline, "reconnect never delivered");
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn injected_faults_match_channel_semantics() {
        // corruption=1: every delivery surfaces as Corrupted.
        let mut rng = SimRng::seed_from_u64(3);
        let mut eps = socket_ring(
            2,
            ChannelFaults {
                corruption: 1.0,
                ..ChannelFaults::NONE
            },
            &mut rng,
        )
        .unwrap();
        let msg = StateMsg::initial();
        assert!(eps[0].send(msg));
        assert_eq!(
            recv_blocking(&mut eps[1]),
            Some((Delivery::Corrupted, None))
        );

        // reorder=1: first send parked, flush releases it.
        let mut rng = SimRng::seed_from_u64(4);
        let mut eps = socket_ring(
            2,
            ChannelFaults {
                reorder: 1.0,
                ..ChannelFaults::NONE
            },
            &mut rng,
        )
        .unwrap();
        assert!(eps[0].send(msg));
        std::thread::sleep(Duration::from_millis(10));
        assert!(eps[1].try_recv().is_none(), "message is parked");
        assert!(eps[0].flush());
        assert_eq!(recv_blocking(&mut eps[1]), Some((Delivery::Ok(msg), None)));
    }

    /// TCP delivery is asynchronous even on loopback: poll with a deadline.
    fn recv_blocking(ep: &mut SocketEndpoint) -> Option<(Delivery<StateMsg>, Option<EventId>)> {
        let deadline = Instant::now() + Duration::from_secs(5);
        while Instant::now() < deadline {
            if let Some(got) = ep.try_recv_tagged() {
                return Some(got);
            }
            std::thread::yield_now();
        }
        None
    }
}
