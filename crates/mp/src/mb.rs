//! Executable program MB: real threads, real (faulty) channels.
//!
//! Each process `j` runs §5's refined program: it owns `sn.j, cp.j, ph.j`
//! plus a local copy of `sn.(j-1), cp.(j-1), ph.(j-1)`, updated only from
//! messages whose sequence number is ordinary. Processes gossip their state
//! to their successor on every change and on a retransmission tick, which
//! masks message loss/duplication/reordering/detectable-corruption exactly
//! as the guarded-command formulation assumes ("j can read the state of
//! j-1 at any time").
//!
//! Detectable process faults are injected live via [`MbProcessHandle::poison`]
//! (the §4.1 fault: `ph, cp, sn := ?, error, ⊥`, plus flagged local copies
//! per §5); undetectable ones via [`MbProcessHandle::scramble`].

use crate::channel::{faulty_channel, ChannelFaults, Delivery, FaultySender};
use ftbarrier_core::cp::Cp;
use ftbarrier_core::sn::Sn;
use ftbarrier_core::spec::{Anchor, BarrierOracle, OracleConfig, Violation};
use ftbarrier_gcs::{SimRng, Time};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The state a process gossips to its successor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct StateMsg {
    sn: Sn,
    cp: Cp,
    ph: u32,
}

/// A recorded control-position change, for the post-hoc oracle check.
#[derive(Debug, Clone, Copy)]
struct CpEvent {
    at: Duration,
    pid: usize,
    ph: u32,
    old: Cp,
    new: Cp,
}

/// Configuration of an MB run.
#[derive(Clone)]
pub struct MbConfig {
    /// Number of processes (≥ 2).
    pub n: usize,
    /// Cyclic phase domain (≥ 2).
    pub n_phases: u32,
    /// Phases the root must advance through before the run stops.
    pub target_phases: u64,
    /// Fault model of every link.
    pub faults: ChannelFaults,
    pub seed: u64,
    /// Gossip retransmission period (masks message loss).
    pub retransmit_every: Duration,
    /// Per-phase workload; `None` means an empty phase body.
    pub work: Option<Arc<dyn Fn(usize, u32) + Send + Sync>>,
    /// Wall-clock safety limit.
    pub deadline: Duration,
}

impl Default for MbConfig {
    fn default() -> Self {
        MbConfig {
            n: 4,
            n_phases: 8,
            target_phases: 12,
            faults: ChannelFaults::NONE,
            seed: 0x4DB,
            retransmit_every: Duration::from_micros(200),
            work: None,
            deadline: Duration::from_secs(30),
        }
    }
}

/// Result of an MB run.
#[derive(Debug)]
pub struct MbReport {
    /// Phase advances observed at the root.
    pub root_phase_advances: u64,
    /// Specification violations found by replaying the event log through
    /// the oracle.
    pub violations: Vec<Violation>,
    /// Successful phases per the oracle.
    pub phases_completed: u64,
    /// Instances consumed per successful phase.
    pub instance_counts: Vec<u64>,
    /// Messages sent per process (including retransmissions).
    pub messages_sent: Vec<u64>,
    pub elapsed: Duration,
    /// Whether the run hit its target (vs. the deadline).
    pub reached_target: bool,
}

/// Handle for injecting faults into a running MB system.
#[derive(Clone)]
pub struct MbProcessHandle {
    poison: Arc<Vec<AtomicBool>>,
    scramble: Arc<Vec<AtomicBool>>,
}

impl MbProcessHandle {
    /// Inject a detectable fault at `pid`.
    pub fn poison(&self, pid: usize) {
        self.poison[pid].store(true, Ordering::Release);
    }

    /// Inject an undetectable fault at `pid`.
    pub fn scramble(&self, pid: usize) {
        self.scramble[pid].store(true, Ordering::Release);
    }
}

/// A running MB system.
pub struct MbRun {
    threads: Vec<JoinHandle<(Vec<CpEvent>, u64)>>,
    handle: MbProcessHandle,
    stop: Arc<AtomicBool>,
    root_advances: Arc<AtomicU64>,
    started: Instant,
    config: MbConfig,
}

struct Process {
    pid: usize,
    n: usize,
    n_phases: u32,
    sn_domain: u32,
    own: StateMsg,
    done: bool,
    copy: StateMsg, // local copy of the predecessor's state
    tx: FaultySender<StateMsg>,
    rx: crate::channel::FaultyReceiver<StateMsg>,
    rng: SimRng,
    events: Vec<CpEvent>,
    sent: u64,
    started: Instant,
    work: Option<Arc<dyn Fn(usize, u32) + Send + Sync>>,
}

impl Process {
    fn record(&mut self, old: Cp) {
        if old != self.own.cp {
            self.events.push(CpEvent {
                at: self.started.elapsed(),
                pid: self.pid,
                ph: self.own.ph,
                old,
                new: self.own.cp,
            });
        }
    }

    /// Run the phase body when entering `execute`.
    fn maybe_work(&mut self) {
        if self.own.cp == Cp::Execute && !self.done {
            if let Some(work) = &self.work {
                work(self.pid, self.own.ph);
            }
            self.done = true;
        }
    }

    /// Root token action (T1 + superposed update) against the local copy of
    /// process N.
    fn step_root(&mut self) -> bool {
        let pred = self.copy;
        let token = pred.sn.is_valid() && (self.own.sn == pred.sn || !self.own.sn.is_valid());
        if !token {
            return false;
        }
        if self.own.cp == Cp::Execute && !self.done {
            return false; // finish the phase body first
        }
        let old = self.own.cp;
        self.own.sn = pred.sn.next(self.sn_domain);
        match self.own.cp {
            Cp::Ready => {
                if pred.cp == Cp::Ready && pred.ph == self.own.ph {
                    self.own.cp = Cp::Execute;
                    self.done = false;
                }
            }
            Cp::Execute => self.own.cp = Cp::Success,
            Cp::Success => {
                if pred.cp == Cp::Success && pred.ph == self.own.ph {
                    self.own.ph = (self.own.ph + 1) % self.n_phases;
                } else {
                    self.own.ph = pred.ph;
                }
                self.own.cp = Cp::Ready;
            }
            Cp::Error | Cp::Repeat => {
                self.own.ph = pred.ph;
                self.own.cp = Cp::Ready;
            }
        }
        self.record(old);
        true
    }

    /// Non-root token action (T2 + superposed update).
    fn step_nonroot(&mut self) -> bool {
        let pred = self.copy;
        if !pred.sn.is_valid() || self.own.sn == pred.sn {
            return false;
        }
        if self.own.cp == Cp::Execute && !self.done && pred.cp == Cp::Success {
            return false; // gate the success transition on the phase body
        }
        let old = self.own.cp;
        self.own.sn = pred.sn;
        self.own.ph = pred.ph;
        match (old, pred.cp) {
            (Cp::Ready, Cp::Execute) => {
                self.own.cp = Cp::Execute;
                self.done = false;
            }
            (Cp::Execute, Cp::Success) => self.own.cp = Cp::Success,
            (cp, Cp::Ready) if cp != Cp::Execute => self.own.cp = Cp::Ready,
            (cp, pred_cp) => {
                if cp == Cp::Error || pred_cp != cp {
                    self.own.cp = Cp::Repeat;
                }
            }
        }
        self.record(old);
        true
    }

    fn gossip(&mut self) {
        self.tx.send(self.own);
        self.tx.flush();
        self.sent += 1;
    }

    fn apply_poison(&mut self) {
        let old = self.own.cp;
        self.own = StateMsg {
            sn: Sn::Bot,
            cp: Cp::Error,
            ph: self.rng.range_u64(0, self.n_phases as u64) as u32,
        };
        self.done = false;
        // §5: the fault also flags the local copies.
        self.copy = StateMsg {
            sn: Sn::Bot,
            cp: Cp::Error,
            ph: 0,
        };
        self.record(old);
    }

    fn apply_scramble(&mut self) {
        let old = self.own.cp;
        let arbitrary = |rng: &mut SimRng, n_phases: u32, l: u32| StateMsg {
            sn: Sn::arbitrary(l, rng),
            cp: *rng.choose(&Cp::RB_DOMAIN),
            ph: rng.range_u64(0, n_phases as u64) as u32,
        };
        self.own = arbitrary(&mut self.rng, self.n_phases, self.sn_domain);
        self.copy = arbitrary(&mut self.rng, self.n_phases, self.sn_domain);
        self.done = self.rng.chance(0.5);
        self.record(old);
    }

    fn drain_inbox(&mut self) {
        while let Some(d) = self.rx.try_recv() {
            if let Delivery::Ok(m) = d {
                // §5: "the local copy of sn.(j-1) in j is updated only if
                // sn.(j-1) is different from ⊥ and ⊤". Detectably corrupted
                // deliveries are discarded (masked as loss).
                if m.sn.is_valid() {
                    self.copy = m;
                }
            }
        }
    }
}

/// Spawn an MB system. Use [`MbRun::handle`] to inject faults, then
/// [`MbRun::join`] to collect the report.
pub fn spawn(config: MbConfig) -> MbRun {
    assert!(config.n >= 2, "MB needs at least two processes");
    assert!(config.n_phases >= 2);
    let n = config.n;
    let sn_domain = 4 * n as u32 + 3; // L > 2N+1 with headroom
    let mut rng = SimRng::seed_from_u64(config.seed);

    // Link j → j+1 carries j's state.
    let mut senders = Vec::with_capacity(n);
    let mut receivers = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = faulty_channel::<StateMsg>(config.faults, rng.fork_seed());
        senders.push(Some(tx));
        receivers.push(Some(rx));
    }

    let stop = Arc::new(AtomicBool::new(false));
    let root_advances = Arc::new(AtomicU64::new(0));
    let poison: Arc<Vec<AtomicBool>> = Arc::new((0..n).map(|_| AtomicBool::new(false)).collect());
    let scramble: Arc<Vec<AtomicBool>> = Arc::new((0..n).map(|_| AtomicBool::new(false)).collect());
    let started = Instant::now();

    let mut threads = Vec::with_capacity(n);
    for pid in 0..n {
        let tx = senders[pid].take().expect("sender taken once");
        // Process pid listens on the link from its predecessor.
        let rx = receivers[(pid + n - 1) % n]
            .take()
            .expect("receiver taken once");
        let stop = Arc::clone(&stop);
        let root_advances = Arc::clone(&root_advances);
        let poison = Arc::clone(&poison);
        let scramble = Arc::clone(&scramble);
        let seed = rng.fork_seed();
        let config = config.clone();
        threads.push(std::thread::spawn(move || {
            let mut p = Process {
                pid,
                n,
                n_phases: config.n_phases,
                sn_domain,
                own: StateMsg {
                    sn: Sn::Val(0),
                    cp: Cp::Ready,
                    ph: 0,
                },
                done: true,
                copy: StateMsg {
                    sn: Sn::Val(0),
                    cp: Cp::Ready,
                    ph: 0,
                },
                tx,
                rx,
                rng: SimRng::seed_from_u64(seed),
                events: Vec::new(),
                sent: 0,
                started,
                work: config.work.clone(),
            };
            let _ = p.n;
            let mut last_gossip = Instant::now();
            p.gossip();
            while !stop.load(Ordering::Acquire) {
                if poison[pid].swap(false, Ordering::AcqRel) {
                    p.apply_poison();
                    p.gossip();
                }
                if scramble[pid].swap(false, Ordering::AcqRel) {
                    p.apply_scramble();
                    p.gossip();
                }
                p.drain_inbox();
                let moved = if pid == 0 {
                    let before_ph = p.own.ph;
                    let moved = p.step_root();
                    if moved && p.own.ph != before_ph {
                        let total = root_advances.fetch_add(1, Ordering::AcqRel) + 1;
                        if total >= config.target_phases {
                            stop.store(true, Ordering::Release);
                        }
                    }
                    moved
                } else {
                    p.step_nonroot()
                };
                p.maybe_work();
                if moved || last_gossip.elapsed() >= config.retransmit_every {
                    p.gossip();
                    last_gossip = Instant::now();
                }
                if !moved {
                    std::thread::yield_now();
                }
                if started.elapsed() > config.deadline {
                    stop.store(true, Ordering::Release);
                }
            }
            (p.events, p.sent)
        }));
    }

    MbRun {
        threads,
        handle: MbProcessHandle { poison, scramble },
        stop,
        root_advances,
        started,
        config,
    }
}

impl MbRun {
    pub fn handle(&self) -> MbProcessHandle {
        self.handle.clone()
    }

    /// Phase advances observed at the root so far.
    pub fn root_phase_advances(&self) -> u64 {
        self.root_advances.load(Ordering::Acquire)
    }

    /// Request an early stop.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Release);
    }

    /// Wait for completion and replay the merged event log through the
    /// barrier specification oracle.
    pub fn join(self) -> MbReport {
        let mut events: Vec<CpEvent> = Vec::new();
        let mut messages_sent = Vec::new();
        for t in self.threads {
            let (ev, sent) = t.join().expect("MB process panicked");
            events.extend(ev);
            messages_sent.push(sent);
        }
        events.sort_by_key(|e| e.at);

        let mut oracle = BarrierOracle::new(OracleConfig {
            n_processes: self.config.n,
            n_phases: self.config.n_phases,
            anchor: Anchor::StrictFromZero,
        });
        for e in &events {
            oracle.observe_cp(Time::new(e.at.as_secs_f64()), e.pid, e.ph, e.old, e.new);
        }
        let advances = self.root_advances.load(Ordering::Acquire);
        MbReport {
            root_phase_advances: advances,
            violations: oracle.violations().to_vec(),
            phases_completed: oracle.phases_completed(),
            instance_counts: oracle.instance_counts().to_vec(),
            messages_sent,
            elapsed: self.started.elapsed(),
            reached_target: advances >= self.config.target_phases,
        }
    }
}

trait ForkSeed {
    fn fork_seed(&mut self) -> u64;
}

impl ForkSeed for SimRng {
    fn fork_seed(&mut self) -> u64 {
        self.range_u64(0, u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_run_completes_cleanly() {
        let run = spawn(MbConfig {
            n: 4,
            target_phases: 10,
            ..Default::default()
        });
        let report = run.join();
        assert!(report.reached_target, "timed out: {report:?}");
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert!(report.phases_completed >= 9, "{report:?}");
        assert!(report.instance_counts.iter().all(|&c| c == 1));
    }

    #[test]
    fn lossy_links_are_masked_by_retransmission() {
        let run = spawn(MbConfig {
            n: 4,
            target_phases: 8,
            faults: ChannelFaults {
                loss: 0.3,
                ..ChannelFaults::NONE
            },
            ..Default::default()
        });
        let report = run.join();
        assert!(report.reached_target, "{report:?}");
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }

    #[test]
    fn nasty_links_still_clean() {
        let run = spawn(MbConfig {
            n: 3,
            target_phases: 6,
            faults: ChannelFaults::nasty(),
            seed: 99,
            ..Default::default()
        });
        let report = run.join();
        assert!(report.reached_target, "{report:?}");
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }

    #[test]
    fn poison_forces_reexecution_but_masks() {
        let run = spawn(MbConfig {
            n: 4,
            target_phases: 12,
            ..Default::default()
        });
        let h = run.handle();
        // Let it get going, then hit process 2 a few times.
        while run.root_phase_advances() < 3 {
            std::thread::yield_now();
        }
        h.poison(2);
        while run.root_phase_advances() < 6 {
            std::thread::yield_now();
        }
        h.poison(1);
        let report = run.join();
        assert!(report.reached_target, "{report:?}");
        assert!(
            report.violations.is_empty(),
            "detectable faults must be masked: {:?}",
            report.violations
        );
    }

    #[test]
    fn scramble_recovers_and_makes_progress() {
        let run = spawn(MbConfig {
            n: 4,
            target_phases: 14,
            seed: 5,
            ..Default::default()
        });
        let h = run.handle();
        while run.root_phase_advances() < 3 {
            std::thread::yield_now();
        }
        h.scramble(3);
        let report = run.join();
        // Progress is the stabilization guarantee; the interim may violate.
        assert!(
            report.reached_target,
            "no post-scramble progress: {report:?}"
        );
    }

    #[test]
    fn work_closure_runs_once_per_phase_per_process() {
        let counter = Arc::new(AtomicU64::new(0));
        let c2 = Arc::clone(&counter);
        let run = spawn(MbConfig {
            n: 3,
            target_phases: 5,
            work: Some(Arc::new(move |_pid, _ph| {
                c2.fetch_add(1, Ordering::Relaxed);
            })),
            ..Default::default()
        });
        let report = run.join();
        assert!(report.reached_target);
        let executed = counter.load(Ordering::Relaxed);
        // At least target*n executions (the final phase may be in flight).
        assert!(executed >= 5 * 3, "only {executed} phase bodies ran");
    }

    #[test]
    #[should_panic]
    fn rejects_single_process() {
        let _ = spawn(MbConfig {
            n: 1,
            ..Default::default()
        });
    }
}
