//! Executable program MB: real threads, real (faulty) channels.
//!
//! Each process `j` runs §5's refined program via the shared
//! [`MbCore`](crate::proc::MbCore) state machine: it owns `sn.j, cp.j, ph.j`
//! plus a local copy of `sn.(j-1), cp.(j-1), ph.(j-1)`, updated only from
//! messages whose sequence number is ordinary. Processes gossip their state
//! to their successor on every change and on a retransmission tick, which
//! masks message loss/duplication/reordering/detectable-corruption exactly
//! as the guarded-command formulation assumes ("j can read the state of
//! j-1 at any time").
//!
//! All timing — the retransmission period and the run deadline — flows
//! through a [`Clock`], so tests can drive a threaded run on virtual time
//! (a [`TestClock`](crate::clock::TestClock) advanced by the test) and the
//! default test lane needs no wall-clock sleeps. The deterministic
//! single-threaded twin of this driver lives in [`crate::mb_sim`].
//!
//! Detectable process faults are injected live via [`MbProcessHandle::poison`]
//! (the §4.1 fault: `ph, cp, sn := ?, error, ⊥`, plus flagged local copies
//! per §5); undetectable ones via [`MbProcessHandle::scramble`].

use crate::channel::ChannelFaults;
use crate::clock::{Clock, WallClock};
use crate::proc::{pump, sn_domain, CpEvent, MbCore};
use crate::transport::{channel_ring, Endpoint};
use ftbarrier_core::spec::{Anchor, BarrierOracle, OracleConfig, Violation};
use ftbarrier_gcs::{SimRng, Time};
use ftbarrier_telemetry::{CausalRecorder, Telemetry};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Configuration of a threaded MB run. Times are in [`Time`] units — seconds
/// under the default [`WallClock`], virtual units under a test clock.
#[derive(Clone)]
pub struct MbConfig {
    /// Number of processes (≥ 2).
    pub n: usize,
    /// Cyclic phase domain (≥ 2).
    pub n_phases: u32,
    /// Genuine phase advances the root must observe before the run stops.
    pub target_phases: u64,
    /// Fault model of every link.
    pub faults: ChannelFaults,
    pub seed: u64,
    /// Gossip retransmission period (masks message loss).
    pub retransmit_every: Time,
    /// Per-phase workload; `None` means an empty phase body.
    pub work: Option<Arc<dyn Fn(usize, u32) + Send + Sync>>,
    /// Clock-time safety limit.
    pub deadline: Time,
    /// Observability sink (disabled by default). Recorded post-run from the
    /// merged event log; the protocol path never touches it.
    pub telemetry: Telemetry,
    /// Sequence-number domain override; `None` uses the default
    /// [`sn_domain`]`(n)`. Validated against the paper's `L > 2N+1`
    /// precondition at run start.
    pub sn_domain: Option<u32>,
    /// Capacity of the always-on causal flight recorder (recent events
    /// kept per run; older ones are evicted and counted).
    pub flight_capacity: usize,
}

impl Default for MbConfig {
    fn default() -> Self {
        MbConfig {
            n: 4,
            n_phases: 8,
            target_phases: 12,
            faults: ChannelFaults::NONE,
            seed: 0x4DB,
            retransmit_every: Time::new(200e-6),
            work: None,
            deadline: Time::new(30.0),
            telemetry: Telemetry::off(),
            sn_domain: None,
            flight_capacity: 8192,
        }
    }
}

/// Result of an MB run.
#[derive(Debug)]
pub struct MbReport {
    /// Genuine phase advances observed at the root.
    pub root_phase_advances: u64,
    /// Specification violations found by replaying the event log through
    /// the oracle.
    pub violations: Vec<Violation>,
    /// Successful phases per the oracle.
    pub phases_completed: u64,
    /// Instances consumed per successful phase.
    pub instance_counts: Vec<u64>,
    /// Messages sent per process (including retransmissions).
    pub messages_sent: Vec<u64>,
    pub elapsed: Duration,
    /// Whether the run hit its target (vs. the deadline).
    pub reached_target: bool,
    /// Flight-recorder dump of the recent causal events (replayable JSON),
    /// written when the run hit its deadline instead of its target.
    pub flight_dump: Option<String>,
}

/// Handle for injecting faults into a running MB system.
#[derive(Clone)]
pub struct MbProcessHandle {
    poison: Arc<Vec<AtomicBool>>,
    scramble: Arc<Vec<AtomicBool>>,
    mute: Arc<Vec<AtomicBool>>,
}

impl MbProcessHandle {
    /// Inject a detectable fault at `pid`.
    pub fn poison(&self, pid: usize) {
        self.poison[pid].store(true, Ordering::Release);
    }

    /// Inject an undetectable fault at `pid`.
    pub fn scramble(&self, pid: usize) {
        self.scramble[pid].store(true, Ordering::Release);
    }

    /// Fail-stop `pid`: it permanently stops stepping and gossiping (the
    /// observable face of a killed OS process on the socket backend). The
    /// ring wedges, the deadline fires, and the flight dump names `pid`.
    pub fn mute(&self, pid: usize) {
        self.mute[pid].store(true, Ordering::Release);
    }
}

/// A running MB system.
pub struct MbRun {
    threads: Vec<JoinHandle<(Vec<CpEvent>, u64)>>,
    handle: MbProcessHandle,
    stop: Arc<AtomicBool>,
    root_advances: Arc<AtomicU64>,
    started: Instant,
    config: MbConfig,
    recorder: CausalRecorder,
}

/// Spawn an MB system on faulty crossbeam channels and the wall clock. Use
/// [`MbRun::handle`] to inject faults, then [`MbRun::join`] to collect the
/// report.
pub fn spawn(config: MbConfig) -> MbRun {
    let faults = config.faults;
    let mut rng = SimRng::seed_from_u64(config.seed);
    let endpoints = channel_ring(config.n.max(1), faults, &mut rng);
    spawn_on(config, endpoints, Arc::new(WallClock::start()))
}

/// Spawn an MB system on caller-provided transport endpoints (one per
/// process, see [`channel_ring`]) and an explicit clock — the generic entry
/// point program MB compiles against.
pub fn spawn_on<E: Endpoint + Send + 'static>(
    config: MbConfig,
    endpoints: Vec<E>,
    clock: Arc<dyn Clock>,
) -> MbRun {
    assert!(config.n >= 2, "MB needs at least two processes");
    assert!(config.n_phases >= 2);
    assert_eq!(endpoints.len(), config.n, "one endpoint per process");
    let n = config.n;
    let l = match config.sn_domain {
        Some(l) => crate::proc::try_sn_domain(n, l).expect("MbConfig.sn_domain"),
        None => sn_domain(n),
    };
    let mut rng = SimRng::seed_from_u64(config.seed ^ 0xC0DE);
    let seq = Arc::new(AtomicU64::new(0));

    let stop = Arc::new(AtomicBool::new(false));
    let root_advances = Arc::new(AtomicU64::new(0));
    let poison: Arc<Vec<AtomicBool>> = Arc::new((0..n).map(|_| AtomicBool::new(false)).collect());
    let scramble: Arc<Vec<AtomicBool>> = Arc::new((0..n).map(|_| AtomicBool::new(false)).collect());
    let mute: Arc<Vec<AtomicBool>> = Arc::new((0..n).map(|_| AtomicBool::new(false)).collect());
    let started = Instant::now();
    // The always-on flight recorder: one bounded ring shared by every
    // process thread (events interleave in global commit order).
    let recorder = CausalRecorder::bounded(config.flight_capacity);

    let mut threads = Vec::with_capacity(n);
    for (pid, mut ep) in endpoints.into_iter().enumerate() {
        let stop = Arc::clone(&stop);
        let root_advances = Arc::clone(&root_advances);
        let poison = Arc::clone(&poison);
        let scramble = Arc::clone(&scramble);
        let mute = Arc::clone(&mute);
        let clock = Arc::clone(&clock);
        let seed = rng.next_u64();
        let seq = Arc::clone(&seq);
        let config = config.clone();
        let recorder = recorder.clone();
        threads.push(std::thread::spawn(move || {
            let mut core = MbCore::new(pid, config.n_phases, l, seed, seq);
            core.recorder = recorder;
            let mut last_gossip = clock.now();
            core.events.reserve(256);
            let mut sent = 0u64;
            let gossip = |core: &MbCore, ep: &mut E, sent: &mut u64| {
                *sent += 1;
                ep.send_tagged(core.own, core.causal_tag());
            };
            gossip(&core, &mut ep, &mut sent);
            let mut fault_stopped = false;
            while !stop.load(Ordering::Acquire) {
                let now = clock.now();
                if mute[pid].load(Ordering::Acquire) {
                    // Fail-stop: fall permanently silent. The one-time
                    // marker is the last event this pid ever records.
                    if !fault_stopped {
                        fault_stopped = true;
                        core.record_fail_stop(now);
                    }
                    if now > config.deadline {
                        stop.store(true, Ordering::Release);
                    }
                    std::thread::yield_now();
                    continue;
                }
                if poison[pid].swap(false, Ordering::AcqRel) {
                    core.apply_poison(now);
                    gossip(&core, &mut ep, &mut sent);
                }
                if scramble[pid].swap(false, Ordering::AcqRel) {
                    core.apply_scramble(now);
                    gossip(&core, &mut ep, &mut sent);
                }
                let mut out = pump(&mut core, &mut ep, now);
                while core.needs_work() {
                    // Run the phase body, then let the gated steps fire.
                    if let Some(work) = &config.work {
                        work(pid, core.own.ph);
                    }
                    let token = core.work_token;
                    core.complete_work(token);
                    let more = pump(&mut core, &mut ep, now);
                    out.moved |= more.moved;
                    out.advances += more.advances;
                }
                if out.advances > 0 {
                    let total =
                        root_advances.fetch_add(out.advances, Ordering::AcqRel) + out.advances;
                    if total >= config.target_phases {
                        stop.store(true, Ordering::Release);
                    }
                }
                if out.moved {
                    gossip(&core, &mut ep, &mut sent);
                    last_gossip = now;
                } else if now.saturating_sub(last_gossip) >= config.retransmit_every {
                    // The link went quiet: release any reorder-held message
                    // and retransmit. The heartbeat event keeps live
                    // processes visibly fresh in the flight recorder.
                    ep.flush();
                    core.record_heartbeat(now);
                    gossip(&core, &mut ep, &mut sent);
                    last_gossip = now;
                } else {
                    std::thread::yield_now();
                }
                if now > config.deadline {
                    stop.store(true, Ordering::Release);
                }
            }
            (core.events, sent)
        }));
    }

    MbRun {
        threads,
        handle: MbProcessHandle {
            poison,
            scramble,
            mute,
        },
        stop,
        root_advances,
        started,
        config,
        recorder,
    }
}

impl MbRun {
    pub fn handle(&self) -> MbProcessHandle {
        self.handle.clone()
    }

    /// Genuine phase advances observed at the root so far.
    pub fn root_phase_advances(&self) -> u64 {
        self.root_advances.load(Ordering::Acquire)
    }

    /// Whether the run has stopped (target, deadline, or [`MbRun::stop`]).
    /// After this returns `true`, [`MbRun::join`] will not block.
    pub fn stopped(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }

    /// Request an early stop.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Release);
    }

    /// Wait for completion and replay the merged event log through the
    /// barrier specification oracle.
    pub fn join(self) -> MbReport {
        let mut events: Vec<CpEvent> = Vec::new();
        let mut messages_sent = Vec::new();
        for t in self.threads {
            let (ev, sent) = t.join().expect("MB process panicked");
            events.extend(ev);
            messages_sent.push(sent);
        }
        // The shared sequence counter orders the merged log: it respects
        // per-process program order and message causality even when the
        // clock is coarse (many events per virtual instant).
        events.sort_by_key(|e| e.seq);

        let mut oracle = BarrierOracle::new(OracleConfig {
            n_processes: self.config.n,
            n_phases: self.config.n_phases,
            anchor: Anchor::StrictFromZero,
        });
        for e in &events {
            oracle.observe_cp(e.at, e.pid, e.ph, e.old, e.new);
        }
        let advances = self.root_advances.load(Ordering::Acquire);
        if self.config.telemetry.is_enabled() {
            let end = events.last().map_or(Time::ZERO, |e| e.at);
            crate::telemetry::record_cp_timeline(&self.config.telemetry, &events, end);
            for (pid, &sent) in messages_sent.iter().enumerate() {
                self.config.telemetry.counter(
                    "mb_messages_sent_total",
                    &[("pid", &pid.to_string())],
                    sent,
                );
            }
            self.config
                .telemetry
                .counter("mb_root_phase_advances_total", &[], advances);
        }
        let reached_target = advances >= self.config.target_phases;
        let flight_dump = if reached_target {
            None
        } else {
            Some(
                self.recorder
                    .snapshot()
                    .to_flight_json("mb", self.config.n, "wedge", "deadline"),
            )
        };
        MbReport {
            root_phase_advances: advances,
            violations: oracle.violations().to_vec(),
            phases_completed: oracle.phases_completed(),
            instance_counts: oracle.instance_counts().to_vec(),
            messages_sent,
            elapsed: self.started.elapsed(),
            reached_target,
            flight_dump,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::TestClock;

    /// Drive a spawned run to completion on virtual time: advance the test
    /// clock while the worker threads spin, injecting planned poisons when
    /// their virtual instants pass. No wall-clock timing is asserted.
    fn drive_virtual(run: &MbRun, clock: &TestClock, plan: &[(f64, usize)]) {
        let h = run.handle();
        let mut next = 0;
        while !run.stopped() {
            clock.advance(0.01);
            let now = clock.now().as_f64();
            while next < plan.len() && plan[next].0 <= now {
                h.poison(plan[next].1);
                next += 1;
            }
            std::thread::yield_now();
        }
    }

    fn virtual_config(faults: ChannelFaults, target: u64, seed: u64) -> MbConfig {
        MbConfig {
            n: 4,
            target_phases: target,
            faults,
            seed,
            retransmit_every: Time::new(0.05),
            // Virtual deadline: generous, but guarantees the driver loop
            // terminates even if progress stalls.
            deadline: Time::new(2_000.0),
            ..Default::default()
        }
    }

    fn spawn_virtual(config: MbConfig) -> (MbRun, Arc<TestClock>) {
        let clock = TestClock::new();
        let mut rng = SimRng::seed_from_u64(config.seed);
        let endpoints = channel_ring(config.n, config.faults, &mut rng);
        let run = spawn_on(config, endpoints, clock.clone() as Arc<dyn Clock>);
        (run, clock)
    }

    #[test]
    fn fault_free_run_completes_cleanly_on_virtual_time() {
        let (run, clock) = spawn_virtual(virtual_config(ChannelFaults::NONE, 10, 1));
        drive_virtual(&run, &clock, &[]);
        let report = run.join();
        assert!(report.reached_target, "timed out: {report:?}");
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert!(report.phases_completed >= 9, "{report:?}");
        assert!(report.instance_counts.iter().all(|&c| c == 1));
    }

    #[test]
    fn lossy_links_are_masked_by_retransmission_on_virtual_time() {
        let (run, clock) = spawn_virtual(virtual_config(
            ChannelFaults {
                loss: 0.3,
                ..ChannelFaults::NONE
            },
            8,
            2,
        ));
        drive_virtual(&run, &clock, &[]);
        let report = run.join();
        assert!(report.reached_target, "{report:?}");
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }

    #[test]
    fn poison_plan_is_masked_on_virtual_time() {
        let (run, clock) = spawn_virtual(virtual_config(ChannelFaults::NONE, 12, 3));
        drive_virtual(&run, &clock, &[(0.5, 2), (1.5, 1)]);
        let report = run.join();
        assert!(report.reached_target, "{report:?}");
        assert!(
            report.violations.is_empty(),
            "detectable faults must be masked: {:?}",
            report.violations
        );
    }

    #[test]
    fn work_closure_runs_once_per_phase_per_process() {
        let counter = Arc::new(AtomicU64::new(0));
        let c2 = Arc::clone(&counter);
        let mut config = virtual_config(ChannelFaults::NONE, 5, 4);
        config.n = 3;
        config.work = Some(Arc::new(move |_pid, _ph| {
            c2.fetch_add(1, Ordering::Relaxed);
        }));
        let (run, clock) = spawn_virtual(config);
        drive_virtual(&run, &clock, &[]);
        let report = run.join();
        assert!(report.reached_target);
        let executed = counter.load(Ordering::Relaxed);
        // At least target*n executions (the final phase may be in flight).
        assert!(executed >= 5 * 3, "only {executed} phase bodies ran");
    }

    #[test]
    #[should_panic]
    fn rejects_single_process() {
        let _ = spawn(MbConfig {
            n: 1,
            ..Default::default()
        });
    }

    // ----- wall-clock stress lane (CI runs these with `-- --ignored`) -----

    #[test]
    #[ignore = "wall-clock stress; run explicitly or via the CI smoke step"]
    fn wall_clock_nasty_links_still_clean() {
        let run = spawn(MbConfig {
            n: 3,
            target_phases: 6,
            faults: ChannelFaults::nasty(),
            seed: 99,
            ..Default::default()
        });
        let report = run.join();
        assert!(report.reached_target, "{report:?}");
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }

    #[test]
    #[ignore = "wall-clock stress; run explicitly or via the CI smoke step"]
    fn wall_clock_scramble_recovers_and_makes_progress() {
        let run = spawn(MbConfig {
            n: 4,
            target_phases: 14,
            seed: 5,
            ..Default::default()
        });
        let h = run.handle();
        while run.root_phase_advances() < 3 {
            std::thread::yield_now();
        }
        h.scramble(3);
        let report = run.join();
        // Progress is the stabilization guarantee; the interim may violate.
        assert!(
            report.reached_target,
            "no post-scramble progress: {report:?}"
        );
    }
}
