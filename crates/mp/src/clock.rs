//! Clocks for the threaded MB backend.
//!
//! The threaded driver reads retransmission and deadline timing through the
//! [`Clock`] trait instead of `Instant::elapsed`, so tests can drive a run on
//! *virtual* time: a [`TestClock`] advances only when the test says so, which
//! removes every wall-clock race from the default test lane. Production use
//! keeps [`WallClock`].

use ftbarrier_gcs::Time;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A monotone source of [`Time`], shared by every process of a run.
pub trait Clock: Send + Sync + 'static {
    /// Time elapsed since the run started.
    fn now(&self) -> Time;
}

/// Real time: seconds since construction.
pub struct WallClock {
    start: Instant,
}

impl WallClock {
    pub fn start() -> WallClock {
        WallClock {
            start: Instant::now(),
        }
    }
}

impl Clock for WallClock {
    fn now(&self) -> Time {
        Time::new(self.start.elapsed().as_secs_f64())
    }
}

/// Manually advanced virtual time (stored as `f64` bits in an atomic).
///
/// A test thread calls [`TestClock::advance`] in a loop while the MB worker
/// threads spin; retransmissions and deadlines then fire at exactly the
/// virtual instants the test dictates, independent of machine load.
pub struct TestClock {
    bits: AtomicU64,
}

impl TestClock {
    pub fn new() -> Arc<TestClock> {
        Arc::new(TestClock {
            bits: AtomicU64::new(0f64.to_bits()),
        })
    }

    /// Advance virtual time by `by` (must be non-negative).
    pub fn advance(&self, by: f64) {
        assert!(by >= 0.0 && by.is_finite(), "advance({by})");
        let mut cur = self.bits.load(Ordering::Acquire);
        loop {
            let next = (f64::from_bits(cur) + by).to_bits();
            match self
                .bits
                .compare_exchange(cur, next, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }
}

impl Clock for TestClock {
    fn now(&self) -> Time {
        Time::new(f64::from_bits(self.bits.load(Ordering::Acquire)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_clock_starts_at_zero_and_advances() {
        let c = TestClock::new();
        assert_eq!(c.now(), Time::ZERO);
        c.advance(0.5);
        c.advance(0.25);
        assert_eq!(c.now(), Time::new(0.75));
    }

    #[test]
    fn wall_clock_is_monotone() {
        let c = WallClock::start();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }

    #[test]
    #[should_panic]
    fn test_clock_rejects_negative_advance() {
        TestClock::new().advance(-1.0);
    }
}
