//! Deterministic program MB: the same §5 process state machine as the
//! threaded backend ([`crate::mb`]), driven by a discrete-event loop over
//! the simulated network ([`crate::simnet`]) on virtual time.
//!
//! One seed determines everything — per-link latencies and fault draws, the
//! fault plan's random perturbation values, the event interleaving — so a
//! run is byte-for-byte replayable: [`SimMbReport::trace`] of two runs with
//! the same [`SimMbConfig`] is identical, and every test and experiment on
//! this backend is free of wall-clock effects.
//!
//! The fault plan covers the paper's full fault menu: message loss,
//! duplication, reordering and detectable corruption (per-link
//! probabilities), link partitions with healing, the §4.1 detectable process
//! fault (scheduled or Poisson-arriving `poison`), the undetectable
//! `scramble`, and process crash/reboot — a crash silences the process and
//! drops its inbound traffic; the reboot re-enters through the §4.1
//! detectable-fault state (`sn = ⊥, cp = error`).
//!
//! # Dynamic membership
//!
//! With [`SimMbConfig::churn`] enabled the run carries a
//! [`Membership`](ftbarrier_topology::Membership) over the base ring and the
//! root (the driver, acting as the paper's distinguished detector) runs a
//! periodic membership check:
//!
//! * **Detection** — a live member whose link has been silent longer than
//!   [`ChurnConfig::suspect_after`] is suspected fail-stop and *spliced*
//!   out: its ring neighbors are re-linked and the epoch is bumped. Because
//!   every process gossips its full state continuously, the splice itself
//!   regenerates the sweep — the successor simply reads the predecessor of
//!   the dead process from then on.
//! * **Epochs on the wire** — every message is stamped with the sender's
//!   believed epoch ([`WireMsg`]). A receiver drops older-epoch messages as
//!   detectably stale (masked like loss) and adopts newer epochs, so the
//!   root's epoch bump sweeps the ring like any other gossip.
//! * **Rejoin** — traffic from a live spliced-out process (a healed
//!   partition), or the reboot of a spliced-out crashed process, triggers a
//!   *graft*: the ring edges its departure contracted are restored and the
//!   §4.1 rejoin handshake runs — the rejoiner adopts `sn`/`ph` from its
//!   upstream neighbor with `cp = ready` and participates from the next
//!   sweep (at worst the in-flight phase is re-executed, per §4.1).
//! * **Anti-entropy** — the periodic check also re-derives every member's
//!   routing from the membership and fast-forwards the root past the
//!   largest epoch any member believes, so a forged epoch or a scrambled
//!   membership view re-stabilizes instead of wedging the ring.
//!
//! With `churn: None` (the default) the run is byte-identical to the
//! pre-membership backend; with churn enabled but no faults firing it still
//! is — the check draws no randomness and writes no trace unless it acts.

use crate::channel::Delivery;
use crate::proc::{pump, sn_domain, try_sn_domain, CpEvent, MbCore, StateMsg};
use crate::simnet::{LinkConfig, NetStats, SimNet};
use crate::transport::Endpoint;
use ftbarrier_core::spec::{Anchor, BarrierOracle, OracleConfig, Violation};
use ftbarrier_core::{Cp, DomainError, Sn};
use ftbarrier_gcs::{SimRng, Time};
use ftbarrier_telemetry::{names, CausalRecorder, EventId, Telemetry};
use ftbarrier_topology::Membership;
use ftbarrier_topology::SweepDag;
use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt::Write as _;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A scheduled process crash: the process stops stepping and gossiping at
/// `at` and its inbound deliveries are dropped; at `reboot_at` it resumes in
/// the §4.1 detectable-fault state (or, if it was spliced out in the
/// meantime, through the membership rejoin handshake).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrashPlan {
    pub pid: usize,
    pub at: f64,
    pub reboot_at: f64,
}

/// A scheduled link partition: sends on `link` are dropped in `[at, heal_at)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionPlan {
    pub link: usize,
    pub at: f64,
    pub heal_at: f64,
}

/// The scheduled (and optionally Poisson-arriving) fault injections of a
/// simulated MB run. All times are virtual.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// `(time, pid)`: §4.1 detectable process faults.
    pub poisons: Vec<(f64, usize)>,
    /// `(time, pid)`: undetectable faults (arbitrary state).
    pub scrambles: Vec<(f64, usize)>,
    /// `(time, pid)`: undetectable corruption of the *local neighbor copy*
    /// only — `own` stays intact, the cached predecessor state is replaced
    /// by an arbitrary domain value (a scrambled receive buffer).
    pub copy_scrambles: Vec<(f64, usize)>,
    /// `(time, link)`: forge the `sn` of every message in flight on `link`
    /// to one arbitrary value drawn from the full `u32` range — i.e.
    /// possibly far beyond the `L > 2N+1` window. Unlike the fault model's
    /// `corruption` probability this is undetectable: the payload is
    /// rewritten in place and the receiver sees a well-formed message.
    pub forges: Vec<(f64, usize)>,
    /// `(time, link)`: forge the membership *epoch* of every message in
    /// flight on `link` to one arbitrary `u64`. Requires churn to be
    /// enabled; the anti-entropy pass of the membership check re-stabilizes
    /// the ring afterwards.
    pub epoch_forges: Vec<(f64, usize)>,
    /// `(time, pid)`: scramble a process's *membership view* — its believed
    /// epoch and which link it reads deliveries from. Requires churn to be
    /// enabled; repaired by the next membership check.
    pub view_scrambles: Vec<(f64, usize)>,
    pub crashes: Vec<CrashPlan>,
    pub partitions: Vec<PartitionPlan>,
    /// Poisson rate of additional poisons landing on uniformly random
    /// processes (0 = none) — the figs' fault-frequency axis.
    pub poison_rate: f64,
}

/// Failure-detector parameters of the root's periodic membership check.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnConfig {
    /// Silence on a live member's link longer than this suspects fail-stop.
    /// Must comfortably exceed the retransmission period plus the worst
    /// link latency, or a slow link reads as a dead process.
    pub suspect_after: f64,
    /// Period of the membership check (detection + anti-entropy).
    pub check_every: f64,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            suspect_after: 0.5,
            check_every: 0.1,
        }
    }
}

/// Configuration of a deterministic MB run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimMbConfig {
    /// Number of processes (≥ 2).
    pub n: usize,
    /// Cyclic phase domain (≥ 2).
    pub n_phases: u32,
    /// Genuine root phase advances before the run stops.
    pub target_phases: u64,
    pub seed: u64,
    /// Model of every link `j → j+1`.
    pub link: LinkConfig,
    /// Gossip retransmission period (masks message loss), virtual time.
    pub retransmit_every: f64,
    /// Virtual duration of one phase body (the paper's unit of measure).
    pub phase_cost: f64,
    /// Virtual-time safety limit.
    pub max_time: f64,
    pub plan: FaultPlan,
    /// Sequence-number domain override; `None` uses the default
    /// [`sn_domain`]`(n)`. Validated against the paper's `L > 2N+1`
    /// precondition at run start.
    pub sn_domain: Option<u32>,
    /// Dynamic membership: `None` runs the fixed ring (the pre-membership
    /// behavior, byte-identical traces); `Some` enables fail-stop
    /// detection, splice/graft repair, and epoch-stamped messages.
    pub churn: Option<ChurnConfig>,
    /// Capacity of the always-on causal flight recorder (recent events
    /// kept per run; older ones are evicted and counted). A pure observer:
    /// the trace stays byte-identical whatever the capacity.
    pub flight_capacity: usize,
}

impl SimMbConfig {
    /// Check the paper's domain precondition `L > 2N+1` for an explicit
    /// sequence-number domain (the default is always valid).
    pub fn validate(&self) -> Result<(), DomainError> {
        if let Some(l) = self.sn_domain {
            try_sn_domain(self.n, l)?;
        }
        Ok(())
    }
}

impl Default for SimMbConfig {
    fn default() -> Self {
        SimMbConfig {
            n: 4,
            n_phases: 8,
            target_phases: 12,
            seed: 0x51B,
            link: LinkConfig::perfect(0.01),
            retransmit_every: 0.05,
            phase_cost: 1.0,
            max_time: 10_000.0,
            plan: FaultPlan::default(),
            sn_domain: None,
            churn: None,
            flight_capacity: 8192,
        }
    }
}

/// What actually travels on a simulated link: the §5 state gossip stamped
/// with the sender's believed membership epoch. With churn disabled every
/// epoch is 0 and the stamp is inert.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireMsg {
    pub epoch: u64,
    pub msg: StateMsg,
}

/// Result of a deterministic MB run.
#[derive(Debug)]
pub struct SimMbReport {
    /// Genuine phase advances observed at the root.
    pub root_phase_advances: u64,
    /// Specification violations found by replaying the event log through
    /// the oracle (per membership epoch when churn reconfigured the ring).
    pub violations: Vec<Violation>,
    /// Successful phases per the oracle.
    pub phases_completed: u64,
    /// Instances consumed per successful phase.
    pub instance_counts: Vec<u64>,
    /// Messages sent per process (including retransmissions).
    pub messages_sent: Vec<u64>,
    /// Whether the run hit its target (vs. the virtual-time limit).
    pub reached_target: bool,
    /// Virtual time when the run stopped.
    pub virtual_elapsed: Time,
    /// Scheduling points processed by the event loop (membership checks are
    /// counted separately in [`SimMbReport::churn_checks`]).
    pub events_processed: u64,
    pub net: NetStats,
    /// Full deterministic run log: byte-identical across runs of the same
    /// config, diverging for different seeds.
    pub trace: String,
    /// Periodic membership checks run (0 with churn disabled).
    pub churn_checks: u64,
    /// Processes suspected fail-stop and spliced out.
    pub suspicions: u64,
    /// Processes grafted back in (healed partition or reboot of a spliced
    /// process).
    pub rejoins: u64,
    /// Final membership epoch (0 with churn disabled or no reconfiguration).
    pub epoch: u64,
    /// Deliveries dropped for carrying a stale membership epoch.
    pub stale_epoch_dropped: u64,
    /// Per reconfiguration: virtual time from the epoch bump until every
    /// live member had adopted the new epoch.
    pub reconfig_latencies: Vec<f64>,
    /// Successful phases within the last membership segment (equals
    /// [`SimMbReport::phases_completed`] when no reconfiguration happened).
    pub phases_after_last_change: u64,
    /// Virtual time of the last reconfiguration (0 when none happened) —
    /// with [`SimMbReport::phases_after_last_change`], the post-repair
    /// availability numerator/denominator.
    pub last_change_at: f64,
    /// The merged control-position event log, in global commit order.
    pub cp_events: Vec<CpEvent>,
    /// Flight-recorder dump of the recent causal events (replayable JSON),
    /// written when the run stalled — it went quiescent or hit its
    /// virtual-time limit without reaching the phase target.
    pub flight_dump: Option<String>,
}

impl SimMbReport {
    pub fn mean_instances_per_phase(&self) -> f64 {
        if self.instance_counts.is_empty() {
            return f64::NAN;
        }
        self.instance_counts.iter().sum::<u64>() as f64 / self.instance_counts.len() as f64
    }
}

/// Mutable membership state shared between the driver and the endpoints:
/// who believes which epoch, and which link each process reads.
struct ChurnShared {
    /// Per-process believed membership epoch, stamped on every send.
    epoch: Vec<u64>,
    /// Per-process link to pop deliveries from (the ring predecessor in the
    /// current view; with churn disabled, always `pid - 1 mod n`).
    pred_link: Vec<usize>,
    stale_dropped: u64,
}

/// Simulated-network endpoint: the second implementation of the MB
/// transport trait (single-threaded, so the network is shared via `Rc`).
/// Epoch stamping and stale-epoch filtering live here, below the `Endpoint`
/// trait — the MB state machine never sees membership metadata.
pub struct SimEndpoint {
    net: Rc<RefCell<SimNet<WireMsg>>>,
    churn: Rc<RefCell<ChurnShared>>,
    pid: usize,
    out_link: usize,
}

impl Endpoint for SimEndpoint {
    fn send(&mut self, msg: StateMsg) -> bool {
        self.send_tagged(msg, None)
    }

    fn try_recv(&mut self) -> Option<Delivery<StateMsg>> {
        self.try_recv_tagged().map(|(d, _)| d)
    }

    fn flush(&mut self) -> bool {
        self.net.borrow_mut().flush(self.out_link);
        true
    }

    fn send_tagged(&mut self, msg: StateMsg, tag: Option<EventId>) -> bool {
        let epoch = self.churn.borrow().epoch[self.pid];
        self.net
            .borrow_mut()
            .send_tagged(self.out_link, WireMsg { epoch, msg }, tag);
        true
    }

    fn try_recv_tagged(&mut self) -> Option<(Delivery<StateMsg>, Option<EventId>)> {
        loop {
            let in_link = self.churn.borrow().pred_link[self.pid];
            match self.net.borrow_mut().pop_inbox_tagged(in_link)? {
                // A withheld payload never reaches the state machine, so
                // its causal tag is withheld with it.
                (Delivery::Corrupted, _) => return Some((Delivery::Corrupted, None)),
                (Delivery::Ok(w), tag) => {
                    let mut sh = self.churn.borrow_mut();
                    if w.epoch < sh.epoch[self.pid] {
                        // A stale-epoch message is detectably from a
                        // pre-reconfiguration view: masked as loss.
                        sh.stale_dropped += 1;
                        continue;
                    }
                    // Adopting a newer epoch is how the root's bump sweeps
                    // the ring.
                    sh.epoch[self.pid] = w.epoch;
                    return Some((Delivery::Ok(w.msg), tag));
                }
            }
        }
    }
}

/// Control events of the event loop (message deliveries live in the
/// [`SimNet`] queue; everything else lives here).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Ctl {
    Retransmit { pid: usize },
    WorkDone { pid: usize, token: u64 },
    Poison { pid: usize },
    Scramble { pid: usize },
    ScrambleCopy { pid: usize },
    Forge { link: usize },
    EpochForge { link: usize },
    ScrambleView { pid: usize },
    Crash { pid: usize },
    Reboot { pid: usize },
    Cut { link: usize },
    Heal { link: usize },
    PoissonPoison,
    ChurnCheck,
}

struct Driver {
    cfg: SimMbConfig,
    cores: Vec<MbCore>,
    eps: Vec<SimEndpoint>,
    net: Rc<RefCell<SimNet<WireMsg>>>,
    ctl: BinaryHeap<Reverse<(Time, u64, Ctl)>>,
    ctl_seq: u64,
    now: Time,
    alive: Vec<bool>,
    /// `work_token` value for which a `WorkDone` is already scheduled.
    work_scheduled: Vec<Option<u64>>,
    messages_sent: Vec<u64>,
    advances: u64,
    fault_rng: SimRng,
    trace: String,
    events_processed: u64,
    // --- dynamic membership (inert when `cfg.churn` is `None`) ---
    membership: Option<Membership>,
    churn: Rc<RefCell<ChurnShared>>,
    seq: Arc<AtomicU64>,
    /// Current successor of each link's sender (`None`: spliced out).
    succ_of: Vec<Option<usize>>,
    /// Virtual time of the last delivery that arrived from each sender.
    last_heard: Vec<f64>,
    /// Epoch bumps not yet adopted by every live member: `(epoch, at)`.
    pending_epochs: Vec<(u64, f64)>,
    /// Oracle segmentation: `(first event seq, members)` per epoch.
    segments: Vec<(u64, Vec<usize>)>,
    /// Virtual time each segment started (index-parallel to `segments`).
    segment_times: Vec<f64>,
    churn_checks: u64,
    suspicions: u64,
    rejoins: u64,
    reconfig_latencies: Vec<f64>,
}

impl Driver {
    fn schedule(&mut self, at: f64, ev: Ctl) {
        assert!(at.is_finite() && at >= 0.0, "fault plan time {at} invalid");
        self.ctl_seq += 1;
        self.ctl.push(Reverse((Time::new(at), self.ctl_seq, ev)));
    }

    fn gossip(&mut self, pid: usize) {
        self.messages_sent[pid] += 1;
        let msg = self.cores[pid].own;
        let tag = self.cores[pid].causal_tag();
        self.eps[pid].send_tagged(msg, tag);
    }

    /// Pump `pid` to quiescence, gossiping on movement and handling the
    /// phase-body gate (instant when `phase_cost == 0`, a scheduled timer
    /// otherwise).
    fn drive(&mut self, pid: usize) {
        loop {
            let out = pump(&mut self.cores[pid], &mut self.eps[pid], self.now);
            self.advances += out.advances;
            if out.moved {
                self.gossip(pid);
                let _ = writeln!(
                    self.trace,
                    "  p{pid} -> {:?} adv={}",
                    self.cores[pid].own, out.advances
                );
            }
            if self.cores[pid].needs_work() {
                let token = self.cores[pid].work_token;
                if self.cfg.phase_cost == 0.0 {
                    self.cores[pid].complete_work(token);
                    continue;
                }
                if self.work_scheduled[pid] != Some(token) {
                    self.work_scheduled[pid] = Some(token);
                    let at = self.now.as_f64() + self.cfg.phase_cost;
                    self.schedule(at, Ctl::WorkDone { pid, token });
                }
            }
            return;
        }
    }

    fn poison(&mut self, pid: usize, kind: &str) {
        let _ = writeln!(self.trace, "t {} {kind} p{pid}", self.now);
        if kind == "scramble" {
            self.cores[pid].apply_scramble(self.now);
        } else {
            self.cores[pid].apply_poison(self.now);
        }
        self.gossip(pid);
        self.drive(pid);
    }

    fn drain_link(&mut self, link: usize) {
        let mut net = self.net.borrow_mut();
        while net.pop_inbox(link).is_some() {}
    }

    /// Record the current membership as a new oracle segment, starting at
    /// the next event sequence number.
    fn push_segment(&mut self) {
        let mem = self.membership.as_ref().expect("churn enabled");
        let members: Vec<usize> = (0..self.cfg.n).filter(|&p| mem.is_alive(p)).collect();
        self.segments
            .push((self.seq.load(Ordering::Acquire), members));
        self.segment_times.push(self.now.as_f64());
    }

    /// Re-derive routing (who reads which link, who is whose successor)
    /// from the membership. Idempotent — also the anti-entropy repair for a
    /// scrambled view.
    fn sync_routing(&mut self) {
        let mem = self.membership.as_ref().expect("churn enabled");
        let view = mem.view();
        let mut sh = self.churn.borrow_mut();
        for s in self.succ_of.iter_mut() {
            *s = None;
        }
        for p in 0..self.cfg.n {
            if mem.is_alive(p) {
                // Base position == pid on the ring; the upstream neighbor
                // through any chain of spliced processes is the link to read.
                let up = view.upstream_of(p).expect("ring member has an upstream");
                sh.pred_link[p] = up;
                self.succ_of[up] = Some(p);
            }
        }
    }

    /// Suspect `pid` fail-stop and splice it out of the ring.
    fn splice_out(&mut self, pid: usize) {
        let mem = self.membership.as_mut().expect("churn enabled");
        if mem.splice(pid).is_err() {
            // The root is immortal and a 2-member ring cannot shrink.
            return;
        }
        let e = mem.epoch();
        self.suspicions += 1;
        let _ = writeln!(self.trace, "t {} suspect p{pid} epoch {e}", self.now);
        self.push_segment();
        self.sync_routing();
        // The root initiates the new epoch; its gossip sweeps it around the
        // repaired ring.
        self.churn.borrow_mut().epoch[0] = e;
        self.pending_epochs.push((e, self.now.as_f64()));
        self.gossip(0);
        // The splice may hand the token to the dead process's successor
        // right away: its next read comes from the contracted predecessor.
        let old_pred = self.churn.borrow().pred_link[pid];
        if let Some(s) = self.succ_of[old_pred] {
            if self.alive[s] {
                self.drive(s);
            }
        }
    }

    /// Graft a spliced-out process back in and run the §4.1 rejoin
    /// handshake against its upstream neighbor in the repaired view.
    fn readmit(&mut self, pid: usize) {
        let mem = self.membership.as_mut().expect("churn enabled");
        if mem.graft(pid).is_err() {
            return;
        }
        let e = mem.epoch();
        self.rejoins += 1;
        let _ = writeln!(self.trace, "t {} readmit p{pid} epoch {e}", self.now);
        self.push_segment();
        self.sync_routing();
        let up = self.churn.borrow().pred_link[pid];
        let upstream = self.cores[up].own;
        self.cores[pid].rejoin(self.now, upstream);
        self.work_scheduled[pid] = None;
        {
            let mut sh = self.churn.borrow_mut();
            sh.epoch[pid] = e;
            sh.epoch[0] = e;
        }
        self.pending_epochs.push((e, self.now.as_f64()));
        self.last_heard[pid] = self.now.as_f64();
        self.gossip(0);
        self.gossip(pid);
        self.drive(pid);
    }

    /// The root's periodic membership check: anti-entropy repair of the
    /// epoch/routing state, then fail-stop detection by link silence. In a
    /// fault-free run this draws no randomness, writes no trace, and every
    /// write below is value-preserving.
    fn on_churn_check(&mut self) {
        let cc = self.cfg.churn.expect("churn enabled");
        self.schedule(self.now.as_f64() + cc.check_every, Ctl::ChurnCheck);
        let n = self.cfg.n;
        // Anti-entropy: fast-forward past the largest epoch any member
        // believes (a forged future epoch must not wedge its victim), and
        // re-derive the routing (repairing any scrambled view).
        let max_e = {
            let sh = self.churn.borrow();
            let mem = self.membership.as_ref().expect("churn enabled");
            (0..n)
                .filter(|&p| mem.is_alive(p))
                .map(|p| sh.epoch[p])
                .max()
                .unwrap_or(0)
        };
        let mem = self.membership.as_mut().expect("churn enabled");
        mem.observe_epoch(max_e);
        let e = mem.epoch();
        self.churn.borrow_mut().epoch[0] = e;
        self.sync_routing();
        // Fail-stop detection: the root is immortal, everyone else must
        // have been heard from recently.
        let now = self.now.as_f64();
        let mem = self.membership.as_ref().expect("churn enabled");
        let suspects: Vec<usize> = (1..n)
            .filter(|&p| mem.is_alive(p) && now - self.last_heard[p] > cc.suspect_after)
            .collect();
        for p in suspects {
            self.splice_out(p);
        }
    }

    /// Retire pending epoch bumps once every live member has adopted them.
    fn check_epochs(&mut self) {
        let min_e = {
            let sh = self.churn.borrow();
            let mem = self.membership.as_ref().expect("churn enabled");
            (0..self.cfg.n)
                .filter(|&p| mem.is_alive(p) && self.alive[p])
                .map(|p| sh.epoch[p])
                .min()
                .unwrap_or(0)
        };
        let now = self.now.as_f64();
        let mut i = 0;
        while i < self.pending_epochs.len() {
            let (e, t0) = self.pending_epochs[i];
            if min_e >= e {
                self.pending_epochs.remove(i);
                self.reconfig_latencies.push(now - t0);
                let _ = writeln!(
                    self.trace,
                    "t {} epoch {e} settled dt {:.3}",
                    self.now,
                    now - t0
                );
            } else {
                i += 1;
            }
        }
    }

    fn on_ctl(&mut self, ev: Ctl) {
        match ev {
            Ctl::Retransmit { pid } => {
                if self.alive[pid] {
                    // A retransmission tick is the link-gone-quiet moment:
                    // release any reorder-held message, then re-gossip. The
                    // heartbeat event keeps live processes visibly fresh in
                    // the flight recorder (a crashed one stops and stands
                    // out as stalest in a wedge dump).
                    self.eps[pid].flush();
                    self.cores[pid].record_heartbeat(self.now);
                    self.gossip(pid);
                }
                let at = self.now.as_f64() + self.cfg.retransmit_every;
                self.schedule(at, Ctl::Retransmit { pid });
            }
            Ctl::WorkDone { pid, token } => {
                if self.alive[pid] {
                    let _ = writeln!(self.trace, "t {} work-done p{pid} tok={token}", self.now);
                    self.cores[pid].complete_work(token);
                    self.drive(pid);
                }
            }
            Ctl::Poison { pid } => {
                if self.alive[pid] {
                    self.poison(pid, "poison");
                }
            }
            Ctl::Scramble { pid } => {
                if self.alive[pid] {
                    self.poison(pid, "scramble");
                }
            }
            Ctl::ScrambleCopy { pid } => {
                if self.alive[pid] {
                    let _ = writeln!(self.trace, "t {} scramble-copy p{pid}", self.now);
                    self.cores[pid].apply_copy_scramble(self.now);
                    // `own` is intact, so no gossip — but the corrupted copy
                    // may enable token actions at `pid` right now.
                    self.drive(pid);
                }
            }
            Ctl::Forge { link } => {
                // Forge beyond the L window: any u32, including values no
                // honest sender could have produced.
                let forged = self.fault_rng.next_u64() as u32;
                let hit = self.net.borrow_mut().corrupt_in_flight(link, &mut |w| {
                    w.msg.sn = Sn::Val(forged);
                });
                let _ = writeln!(
                    self.trace,
                    "t {} forge link {link} sn={forged} x{hit}",
                    self.now
                );
            }
            Ctl::EpochForge { link } => {
                let forged = self.fault_rng.next_u64();
                let hit = self.net.borrow_mut().corrupt_in_flight(link, &mut |w| {
                    w.epoch = forged;
                });
                let _ = writeln!(
                    self.trace,
                    "t {} forge-epoch link {link} e={forged} x{hit}",
                    self.now
                );
            }
            Ctl::ScrambleView { pid } => {
                let e = self.fault_rng.next_u64();
                let l = self.fault_rng.below(self.cfg.n);
                {
                    let mut sh = self.churn.borrow_mut();
                    sh.epoch[pid] = e;
                    sh.pred_link[pid] = l;
                }
                let _ = writeln!(
                    self.trace,
                    "t {} scramble-view p{pid} e={e} link {l}",
                    self.now
                );
            }
            Ctl::Crash { pid } => {
                let _ = writeln!(self.trace, "t {} crash p{pid}", self.now);
                self.alive[pid] = false;
            }
            Ctl::Reboot { pid } => {
                let _ = writeln!(self.trace, "t {} reboot p{pid}", self.now);
                self.alive[pid] = true;
                if self.membership.as_ref().is_some_and(|m| !m.is_alive(pid)) {
                    // Detected and spliced while down: rejoin through the
                    // membership handshake instead of the blind §4.1 poison.
                    self.readmit(pid);
                } else {
                    // Rebooting is the §4.1 detectable fault made literal:
                    // the process lost its state and knows it.
                    self.poison(pid, "poison");
                    if self.membership.is_some() {
                        self.last_heard[pid] = self.now.as_f64();
                    }
                }
            }
            Ctl::Cut { link } => {
                let _ = writeln!(self.trace, "t {} cut link {link}", self.now);
                self.net.borrow_mut().set_partitioned(link, true);
            }
            Ctl::Heal { link } => {
                let _ = writeln!(self.trace, "t {} heal link {link}", self.now);
                self.net.borrow_mut().set_partitioned(link, false);
            }
            Ctl::PoissonPoison => {
                let pid = self.fault_rng.below(self.cfg.n);
                let next =
                    self.now.as_f64() + self.fault_rng.exponential(self.cfg.plan.poison_rate);
                if next.is_finite() {
                    self.schedule(next, Ctl::PoissonPoison);
                }
                if self.alive[pid] {
                    self.poison(pid, "poison");
                }
            }
            Ctl::ChurnCheck => self.on_churn_check(),
        }
    }
}

/// Replay the merged event log through the barrier specification oracle,
/// one oracle per membership segment. With a single segment (no
/// reconfiguration) this is the classic whole-run strict replay. After a
/// reconfiguration the instance straddling the boundary is exempt (§4.1
/// allows the in-flight phase to be re-executed); the oracle re-attaches at
/// the first fresh instance the root opens in the new view, with membership
/// pids compacted to the oracle's contiguous process ids.
fn replay_segments(
    n_phases: u32,
    n: usize,
    events: &[CpEvent],
    segments: &[(u64, Vec<usize>)],
) -> (Vec<Violation>, u64, Vec<u64>, u64) {
    let mut violations = Vec::new();
    let mut phases = 0u64;
    let mut counts = Vec::new();
    let mut phases_last = 0u64;
    for (i, (from, members)) in segments.iter().enumerate() {
        let to = segments.get(i + 1).map_or(u64::MAX, |s| s.0);
        let mut vpid: Vec<Option<usize>> = vec![None; n];
        for (v, &p) in members.iter().enumerate() {
            vpid[p] = Some(v);
        }
        let mut oracle = BarrierOracle::new(OracleConfig {
            n_processes: members.len(),
            n_phases,
            anchor: if i == 0 {
                Anchor::StrictFromZero
            } else {
                Anchor::Free
            },
        });
        let mut attached = i == 0;
        for e in events.iter().filter(|e| e.seq >= *from && e.seq < to) {
            let Some(p) = vpid[e.pid] else { continue };
            if !attached {
                // The execute sweep starts at the root, so the root's start
                // is the first event of any fresh instance.
                if e.pid == 0 && e.new == Cp::Execute {
                    attached = true;
                } else {
                    continue;
                }
            }
            oracle.observe_cp(e.at, p, e.ph, e.old, e.new);
        }
        violations.extend(oracle.violations().iter().cloned());
        phases += oracle.phases_completed();
        counts.extend_from_slice(oracle.instance_counts());
        phases_last = oracle.phases_completed();
    }
    (violations, phases, counts, phases_last)
}

/// Run program MB deterministically. Two calls with equal configs return
/// byte-identical reports (including [`SimMbReport::trace`]).
pub fn run(cfg: SimMbConfig) -> SimMbReport {
    run_with_telemetry(cfg, &Telemetry::off())
}

/// [`run`], additionally mirroring the network into per-link telemetry and
/// replaying the merged event log into phase spans / fault instants / the
/// `mb_phase_duration` histogram (see [`crate::telemetry`]), plus the
/// membership metric family when churn is enabled. With a disabled handle
/// this is exactly [`run`]; with an enabled one the [`SimMbReport::trace`]
/// is still byte-identical — recording never draws from the simulation's
/// RNG streams.
pub fn run_with_telemetry(cfg: SimMbConfig, telemetry: &Telemetry) -> SimMbReport {
    assert!(cfg.n >= 2, "MB needs at least two processes");
    assert!(cfg.n_phases >= 2);
    assert!(
        cfg.retransmit_every > 0.0,
        "retransmit period must be positive"
    );
    assert!(cfg.phase_cost >= 0.0 && cfg.phase_cost.is_finite());
    assert!(
        cfg.churn.is_some()
            || (cfg.plan.epoch_forges.is_empty() && cfg.plan.view_scrambles.is_empty()),
        "epoch/view faults require churn to be enabled"
    );
    let n = cfg.n;
    let l = match cfg.sn_domain {
        Some(l) => try_sn_domain(n, l).expect("SimMbConfig.sn_domain"),
        None => sn_domain(n),
    };

    let mut rng = SimRng::seed_from_u64(cfg.seed);
    let seq = Arc::new(AtomicU64::new(0));
    // The always-on flight recorder, shared by every core so the ring holds
    // the run's events in global commit order.
    let recorder = CausalRecorder::bounded(cfg.flight_capacity);
    let cores: Vec<MbCore> = (0..n)
        .map(|pid| {
            let mut core = MbCore::new(pid, cfg.n_phases, l, rng.next_u64(), Arc::clone(&seq));
            core.recorder = recorder.clone();
            core
        })
        .collect();
    let net = Rc::new(RefCell::new(
        SimNet::new(vec![cfg.link; n], rng.next_u64()).with_telemetry(telemetry.clone()),
    ));
    let churn_shared = Rc::new(RefCell::new(ChurnShared {
        epoch: vec![0; n],
        pred_link: (0..n).map(|pid| (pid + n - 1) % n).collect(),
        stale_dropped: 0,
    }));
    let eps: Vec<SimEndpoint> = (0..n)
        .map(|pid| SimEndpoint {
            net: Rc::clone(&net),
            churn: Rc::clone(&churn_shared),
            pid,
            out_link: pid,
        })
        .collect();

    let membership = cfg
        .churn
        .map(|_| Membership::new(SweepDag::ring(n).expect("ring(n >= 2)")));
    let mut d = Driver {
        cores,
        eps,
        net: Rc::clone(&net),
        ctl: BinaryHeap::new(),
        ctl_seq: 0,
        now: Time::ZERO,
        alive: vec![true; n],
        work_scheduled: vec![None; n],
        messages_sent: vec![0; n],
        advances: 0,
        fault_rng: rng.fork(),
        trace: String::new(),
        events_processed: 0,
        membership,
        churn: churn_shared,
        seq: Arc::clone(&seq),
        succ_of: (0..n).map(|pid| Some((pid + 1) % n)).collect(),
        last_heard: vec![0.0; n],
        pending_epochs: Vec::new(),
        segments: vec![(0, (0..n).collect())],
        segment_times: vec![0.0],
        churn_checks: 0,
        suspicions: 0,
        rejoins: 0,
        reconfig_latencies: Vec::new(),
        cfg,
    };

    // Schedule the fault plan and the retransmission ticks.
    let plan = d.cfg.plan.clone();
    for &(t, pid) in &plan.poisons {
        d.schedule(t, Ctl::Poison { pid });
    }
    for &(t, pid) in &plan.scrambles {
        d.schedule(t, Ctl::Scramble { pid });
    }
    for &(t, pid) in &plan.copy_scrambles {
        d.schedule(t, Ctl::ScrambleCopy { pid });
    }
    for &(t, link) in &plan.forges {
        d.schedule(t, Ctl::Forge { link });
    }
    for &(t, link) in &plan.epoch_forges {
        d.schedule(t, Ctl::EpochForge { link });
    }
    for &(t, pid) in &plan.view_scrambles {
        d.schedule(t, Ctl::ScrambleView { pid });
    }
    for c in &plan.crashes {
        assert!(c.reboot_at >= c.at, "reboot before crash");
        d.schedule(c.at, Ctl::Crash { pid: c.pid });
        d.schedule(c.reboot_at, Ctl::Reboot { pid: c.pid });
    }
    for p in &plan.partitions {
        assert!(p.heal_at >= p.at, "heal before cut");
        d.schedule(p.at, Ctl::Cut { link: p.link });
        d.schedule(p.heal_at, Ctl::Heal { link: p.link });
    }
    if plan.poison_rate > 0.0 {
        let first = d.fault_rng.exponential(plan.poison_rate);
        d.schedule(first, Ctl::PoissonPoison);
    }
    for pid in 0..n {
        d.schedule(d.cfg.retransmit_every, Ctl::Retransmit { pid });
    }
    // Scheduled last so the control-event sequence numbers of everything
    // above are unchanged from a churn-disabled run.
    if let Some(cc) = d.cfg.churn {
        d.schedule(cc.check_every, Ctl::ChurnCheck);
    }

    // t = 0: everyone announces its start state, then takes any enabled
    // steps (the root's first token action fires immediately, as in the
    // threaded backend).
    for pid in 0..n {
        d.gossip(pid);
    }
    for pid in 0..n {
        d.drive(pid);
    }

    let max_time = Time::new(d.cfg.max_time);
    let mut reached = d.advances >= d.cfg.target_phases;
    let mut wedge_reason = "target-not-reached";
    while !reached {
        let t_net = d.net.borrow().next_event_time();
        let t_ctl = d.ctl.peek().map(|Reverse((t, _, _))| *t);
        // Deliveries win ties against control events.
        let (t, is_net) = match (t_net, t_ctl) {
            (None, None) => {
                // Quiescent: nothing can ever happen again.
                wedge_reason = "quiescent-without-completion";
                break;
            }
            (Some(tn), None) => (tn, true),
            (None, Some(tc)) => (tc, false),
            (Some(tn), Some(tc)) => {
                if tn <= tc {
                    (tn, true)
                } else {
                    (tc, false)
                }
            }
        };
        if t > max_time {
            wedge_reason = "max_time";
            break;
        }
        d.now = t;
        let ctl_ev = if is_net {
            None
        } else {
            let Reverse((_, _, ev)) = d.ctl.pop().expect("peeked");
            Some(ev)
        };
        // The membership check is bookkept separately so the event count
        // (and the end-of-trace line) of a fault-free run is unchanged by
        // merely enabling churn.
        if ctl_ev == Some(Ctl::ChurnCheck) {
            d.churn_checks += 1;
        } else {
            d.events_processed += 1;
        }
        // Always advance the network clock to the scheduling point, even for
        // control events — messages sent while handling them must be
        // timestamped at `t`, not at the network's last delivery time.
        let touched = d.net.borrow_mut().advance_to(t);
        if is_net {
            let _ = writeln!(d.trace, "t {} deliver x{}", d.now, touched.len());
        }
        for link in touched {
            if d.membership.is_some() {
                d.last_heard[link] = t.as_f64();
            }
            match d.succ_of[link] {
                Some(dest) if d.alive[dest] => d.drive(dest),
                Some(_) => {
                    // A crashed process loses its inbound traffic.
                    d.drain_link(link);
                }
                None => {
                    if d.alive[link] {
                        // Traffic from a live spliced-out process: a healed
                        // partition. Graft it back in.
                        d.readmit(link);
                        if let Some(s) = d.succ_of[link] {
                            d.drive(s);
                        }
                    } else {
                        d.drain_link(link);
                    }
                }
            }
        }
        if let Some(ev) = ctl_ev {
            d.on_ctl(ev);
        }
        if !d.pending_epochs.is_empty() {
            d.check_epochs();
        }
        reached = d.advances >= d.cfg.target_phases;
    }

    // Replay the merged event log through the barrier specification oracle,
    // in global commit order (one oracle per membership segment).
    let mut events: Vec<CpEvent> = Vec::new();
    for core in &d.cores {
        events.extend(core.events.iter().copied());
    }
    events.sort_by_key(|e| e.seq);
    let (violations, phases_completed, instance_counts, phases_after_last_change) =
        replay_segments(d.cfg.n_phases, n, &events, &d.segments);
    let last_change_at = d.segment_times.last().copied().unwrap_or(0.0);

    let epoch = d.membership.as_ref().map_or(0, |m| m.epoch());
    let stale_epoch_dropped = d.churn.borrow().stale_dropped;
    if telemetry.is_enabled() {
        crate::telemetry::record_cp_timeline(telemetry, &events, d.now);
        for (pid, &sent) in d.messages_sent.iter().enumerate() {
            telemetry.counter("mb_messages_sent_total", &[("pid", &pid.to_string())], sent);
        }
        telemetry.counter("mb_root_phase_advances_total", &[], d.advances);
        if d.membership.is_some() {
            telemetry.gauge(names::MEMBERSHIP_EPOCH, &[], epoch as f64);
            telemetry.counter(names::SUSPICIONS_TOTAL, &[], d.suspicions);
            telemetry.counter(names::REJOINS_TOTAL, &[], d.rejoins);
            telemetry.counter(names::STALE_EPOCH_DROPPED_TOTAL, &[], stale_epoch_dropped);
            for &lat in &d.reconfig_latencies {
                telemetry.observe(names::RECONFIGURATION_LATENCY, &[], lat);
            }
        }
    }

    let net_stats = d.net.borrow().stats();
    let _ = writeln!(
        d.trace,
        "end t {} advances {} events {} net {:?}",
        d.now, d.advances, d.events_processed, net_stats
    );
    let flight_dump = if reached {
        None
    } else {
        Some(
            recorder
                .snapshot()
                .to_flight_json("mb_sim", n, "wedge", wedge_reason),
        )
    };
    SimMbReport {
        root_phase_advances: d.advances,
        violations,
        phases_completed,
        instance_counts,
        messages_sent: d.messages_sent,
        reached_target: reached,
        virtual_elapsed: d.now,
        events_processed: d.events_processed,
        net: net_stats,
        trace: d.trace,
        churn_checks: d.churn_checks,
        suspicions: d.suspicions,
        rejoins: d.rejoins,
        epoch,
        stale_epoch_dropped,
        reconfig_latencies: d.reconfig_latencies,
        phases_after_last_change,
        last_change_at,
        cp_events: events,
        flight_dump,
    }
}
