//! Deterministic program MB: the same §5 process state machine as the
//! threaded backend ([`crate::mb`]), driven by a discrete-event loop over
//! the simulated network ([`crate::simnet`]) on virtual time.
//!
//! One seed determines everything — per-link latencies and fault draws, the
//! fault plan's random perturbation values, the event interleaving — so a
//! run is byte-for-byte replayable: [`SimMbReport::trace`] of two runs with
//! the same [`SimMbConfig`] is identical, and every test and experiment on
//! this backend is free of wall-clock effects.
//!
//! The fault plan covers the paper's full fault menu: message loss,
//! duplication, reordering and detectable corruption (per-link
//! probabilities), link partitions with healing, the §4.1 detectable process
//! fault (scheduled or Poisson-arriving `poison`), the undetectable
//! `scramble`, and process crash/reboot — a crash silences the process and
//! drops its inbound traffic; the reboot re-enters through the §4.1
//! detectable-fault state (`sn = ⊥, cp = error`).

use crate::channel::Delivery;
use crate::proc::{pump, sn_domain, try_sn_domain, CpEvent, MbCore, StateMsg};
use crate::simnet::{LinkConfig, NetStats, SimNet};
use crate::transport::Endpoint;
use ftbarrier_core::spec::{Anchor, BarrierOracle, OracleConfig, Violation};
use ftbarrier_core::{DomainError, Sn};
use ftbarrier_gcs::{SimRng, Time};
use ftbarrier_telemetry::Telemetry;
use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt::Write as _;
use std::rc::Rc;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

/// A scheduled process crash: the process stops stepping and gossiping at
/// `at` and its inbound deliveries are dropped; at `reboot_at` it resumes in
/// the §4.1 detectable-fault state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrashPlan {
    pub pid: usize,
    pub at: f64,
    pub reboot_at: f64,
}

/// A scheduled link partition: sends on `link` are dropped in `[at, heal_at)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionPlan {
    pub link: usize,
    pub at: f64,
    pub heal_at: f64,
}

/// The scheduled (and optionally Poisson-arriving) fault injections of a
/// simulated MB run. All times are virtual.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// `(time, pid)`: §4.1 detectable process faults.
    pub poisons: Vec<(f64, usize)>,
    /// `(time, pid)`: undetectable faults (arbitrary state).
    pub scrambles: Vec<(f64, usize)>,
    /// `(time, pid)`: undetectable corruption of the *local neighbor copy*
    /// only — `own` stays intact, the cached predecessor state is replaced
    /// by an arbitrary domain value (a scrambled receive buffer).
    pub copy_scrambles: Vec<(f64, usize)>,
    /// `(time, link)`: forge the `sn` of every message in flight on `link`
    /// to one arbitrary value drawn from the full `u32` range — i.e.
    /// possibly far beyond the `L > 2N+1` window. Unlike the fault model's
    /// `corruption` probability this is undetectable: the payload is
    /// rewritten in place and the receiver sees a well-formed message.
    pub forges: Vec<(f64, usize)>,
    pub crashes: Vec<CrashPlan>,
    pub partitions: Vec<PartitionPlan>,
    /// Poisson rate of additional poisons landing on uniformly random
    /// processes (0 = none) — the figs' fault-frequency axis.
    pub poison_rate: f64,
}

/// Configuration of a deterministic MB run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimMbConfig {
    /// Number of processes (≥ 2).
    pub n: usize,
    /// Cyclic phase domain (≥ 2).
    pub n_phases: u32,
    /// Genuine root phase advances before the run stops.
    pub target_phases: u64,
    pub seed: u64,
    /// Model of every link `j → j+1`.
    pub link: LinkConfig,
    /// Gossip retransmission period (masks message loss), virtual time.
    pub retransmit_every: f64,
    /// Virtual duration of one phase body (the paper's unit of measure).
    pub phase_cost: f64,
    /// Virtual-time safety limit.
    pub max_time: f64,
    pub plan: FaultPlan,
    /// Sequence-number domain override; `None` uses the default
    /// [`sn_domain`]`(n)`. Validated against the paper's `L > 2N+1`
    /// precondition at run start.
    pub sn_domain: Option<u32>,
}

impl SimMbConfig {
    /// Check the paper's domain precondition `L > 2N+1` for an explicit
    /// sequence-number domain (the default is always valid).
    pub fn validate(&self) -> Result<(), DomainError> {
        if let Some(l) = self.sn_domain {
            try_sn_domain(self.n, l)?;
        }
        Ok(())
    }
}

impl Default for SimMbConfig {
    fn default() -> Self {
        SimMbConfig {
            n: 4,
            n_phases: 8,
            target_phases: 12,
            seed: 0x51B,
            link: LinkConfig::perfect(0.01),
            retransmit_every: 0.05,
            phase_cost: 1.0,
            max_time: 10_000.0,
            plan: FaultPlan::default(),
            sn_domain: None,
        }
    }
}

/// Result of a deterministic MB run.
#[derive(Debug)]
pub struct SimMbReport {
    /// Genuine phase advances observed at the root.
    pub root_phase_advances: u64,
    /// Specification violations found by replaying the event log through
    /// the oracle.
    pub violations: Vec<Violation>,
    /// Successful phases per the oracle.
    pub phases_completed: u64,
    /// Instances consumed per successful phase.
    pub instance_counts: Vec<u64>,
    /// Messages sent per process (including retransmissions).
    pub messages_sent: Vec<u64>,
    /// Whether the run hit its target (vs. the virtual-time limit).
    pub reached_target: bool,
    /// Virtual time when the run stopped.
    pub virtual_elapsed: Time,
    /// Scheduling points processed by the event loop.
    pub events_processed: u64,
    pub net: NetStats,
    /// Full deterministic run log: byte-identical across runs of the same
    /// config, diverging for different seeds.
    pub trace: String,
}

impl SimMbReport {
    pub fn mean_instances_per_phase(&self) -> f64 {
        if self.instance_counts.is_empty() {
            return f64::NAN;
        }
        self.instance_counts.iter().sum::<u64>() as f64 / self.instance_counts.len() as f64
    }
}

/// Simulated-network endpoint: the second implementation of the MB
/// transport trait (single-threaded, so the network is shared via `Rc`).
pub struct SimEndpoint {
    net: Rc<RefCell<SimNet<StateMsg>>>,
    out_link: usize,
    in_link: usize,
}

impl Endpoint for SimEndpoint {
    fn send(&mut self, msg: StateMsg) -> bool {
        self.net.borrow_mut().send(self.out_link, msg);
        true
    }

    fn try_recv(&mut self) -> Option<Delivery<StateMsg>> {
        self.net.borrow_mut().pop_inbox(self.in_link)
    }

    fn flush(&mut self) -> bool {
        self.net.borrow_mut().flush(self.out_link);
        true
    }
}

/// Control events of the event loop (message deliveries live in the
/// [`SimNet`] queue; everything else lives here).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Ctl {
    Retransmit { pid: usize },
    WorkDone { pid: usize, token: u64 },
    Poison { pid: usize },
    Scramble { pid: usize },
    ScrambleCopy { pid: usize },
    Forge { link: usize },
    Crash { pid: usize },
    Reboot { pid: usize },
    Cut { link: usize },
    Heal { link: usize },
    PoissonPoison,
}

struct Driver {
    cfg: SimMbConfig,
    cores: Vec<MbCore>,
    eps: Vec<SimEndpoint>,
    net: Rc<RefCell<SimNet<StateMsg>>>,
    ctl: BinaryHeap<Reverse<(Time, u64, Ctl)>>,
    ctl_seq: u64,
    now: Time,
    alive: Vec<bool>,
    /// `work_token` value for which a `WorkDone` is already scheduled.
    work_scheduled: Vec<Option<u64>>,
    messages_sent: Vec<u64>,
    advances: u64,
    fault_rng: SimRng,
    trace: String,
    events_processed: u64,
}

impl Driver {
    fn schedule(&mut self, at: f64, ev: Ctl) {
        assert!(at.is_finite() && at >= 0.0, "fault plan time {at} invalid");
        self.ctl_seq += 1;
        self.ctl.push(Reverse((Time::new(at), self.ctl_seq, ev)));
    }

    fn gossip(&mut self, pid: usize) {
        self.messages_sent[pid] += 1;
        let msg = self.cores[pid].own;
        self.eps[pid].send(msg);
    }

    /// Pump `pid` to quiescence, gossiping on movement and handling the
    /// phase-body gate (instant when `phase_cost == 0`, a scheduled timer
    /// otherwise).
    fn drive(&mut self, pid: usize) {
        loop {
            let out = pump(&mut self.cores[pid], &mut self.eps[pid], self.now);
            self.advances += out.advances;
            if out.moved {
                self.gossip(pid);
                let _ = writeln!(
                    self.trace,
                    "  p{pid} -> {:?} adv={}",
                    self.cores[pid].own, out.advances
                );
            }
            if self.cores[pid].needs_work() {
                let token = self.cores[pid].work_token;
                if self.cfg.phase_cost == 0.0 {
                    self.cores[pid].complete_work(token);
                    continue;
                }
                if self.work_scheduled[pid] != Some(token) {
                    self.work_scheduled[pid] = Some(token);
                    let at = self.now.as_f64() + self.cfg.phase_cost;
                    self.schedule(at, Ctl::WorkDone { pid, token });
                }
            }
            return;
        }
    }

    fn poison(&mut self, pid: usize, kind: &str) {
        let _ = writeln!(self.trace, "t {} {kind} p{pid}", self.now);
        if kind == "scramble" {
            self.cores[pid].apply_scramble(self.now);
        } else {
            self.cores[pid].apply_poison(self.now);
        }
        self.gossip(pid);
        self.drive(pid);
    }

    fn on_ctl(&mut self, ev: Ctl) {
        match ev {
            Ctl::Retransmit { pid } => {
                if self.alive[pid] {
                    // A retransmission tick is the link-gone-quiet moment:
                    // release any reorder-held message, then re-gossip.
                    self.eps[pid].flush();
                    self.gossip(pid);
                }
                let at = self.now.as_f64() + self.cfg.retransmit_every;
                self.schedule(at, Ctl::Retransmit { pid });
            }
            Ctl::WorkDone { pid, token } => {
                if self.alive[pid] {
                    let _ = writeln!(self.trace, "t {} work-done p{pid} tok={token}", self.now);
                    self.cores[pid].complete_work(token);
                    self.drive(pid);
                }
            }
            Ctl::Poison { pid } => {
                if self.alive[pid] {
                    self.poison(pid, "poison");
                }
            }
            Ctl::Scramble { pid } => {
                if self.alive[pid] {
                    self.poison(pid, "scramble");
                }
            }
            Ctl::ScrambleCopy { pid } => {
                if self.alive[pid] {
                    let _ = writeln!(self.trace, "t {} scramble-copy p{pid}", self.now);
                    self.cores[pid].apply_copy_scramble(self.now);
                    // `own` is intact, so no gossip — but the corrupted copy
                    // may enable token actions at `pid` right now.
                    self.drive(pid);
                }
            }
            Ctl::Forge { link } => {
                // Forge beyond the L window: any u32, including values no
                // honest sender could have produced.
                let forged = self.fault_rng.range_u64(0, u64::MAX) as u32;
                let hit = self.net.borrow_mut().corrupt_in_flight(link, &mut |m| {
                    m.sn = Sn::Val(forged);
                });
                let _ = writeln!(
                    self.trace,
                    "t {} forge link {link} sn={forged} x{hit}",
                    self.now
                );
            }
            Ctl::Crash { pid } => {
                let _ = writeln!(self.trace, "t {} crash p{pid}", self.now);
                self.alive[pid] = false;
            }
            Ctl::Reboot { pid } => {
                let _ = writeln!(self.trace, "t {} reboot p{pid}", self.now);
                self.alive[pid] = true;
                // Rebooting is the §4.1 detectable fault made literal: the
                // process lost its state and knows it.
                self.poison(pid, "poison");
            }
            Ctl::Cut { link } => {
                let _ = writeln!(self.trace, "t {} cut link {link}", self.now);
                self.net.borrow_mut().set_partitioned(link, true);
            }
            Ctl::Heal { link } => {
                let _ = writeln!(self.trace, "t {} heal link {link}", self.now);
                self.net.borrow_mut().set_partitioned(link, false);
            }
            Ctl::PoissonPoison => {
                let pid = self.fault_rng.below(self.cfg.n);
                let next =
                    self.now.as_f64() + self.fault_rng.exponential(self.cfg.plan.poison_rate);
                if next.is_finite() {
                    self.schedule(next, Ctl::PoissonPoison);
                }
                if self.alive[pid] {
                    self.poison(pid, "poison");
                }
            }
        }
    }
}

/// Run program MB deterministically. Two calls with equal configs return
/// byte-identical reports (including [`SimMbReport::trace`]).
pub fn run(cfg: SimMbConfig) -> SimMbReport {
    run_with_telemetry(cfg, &Telemetry::off())
}

/// [`run`], additionally mirroring the network into per-link telemetry and
/// replaying the merged event log into phase spans / fault instants / the
/// `mb_phase_duration` histogram (see [`crate::telemetry`]). With a
/// disabled handle this is exactly [`run`]; with an enabled one the
/// [`SimMbReport::trace`] is still byte-identical — recording never draws
/// from the simulation's RNG streams.
pub fn run_with_telemetry(cfg: SimMbConfig, telemetry: &Telemetry) -> SimMbReport {
    assert!(cfg.n >= 2, "MB needs at least two processes");
    assert!(cfg.n_phases >= 2);
    assert!(
        cfg.retransmit_every > 0.0,
        "retransmit period must be positive"
    );
    assert!(cfg.phase_cost >= 0.0 && cfg.phase_cost.is_finite());
    let n = cfg.n;
    let l = match cfg.sn_domain {
        Some(l) => try_sn_domain(n, l).expect("SimMbConfig.sn_domain"),
        None => sn_domain(n),
    };

    let mut rng = SimRng::seed_from_u64(cfg.seed);
    let seq = Arc::new(AtomicU64::new(0));
    let cores: Vec<MbCore> = (0..n)
        .map(|pid| {
            MbCore::new(
                pid,
                cfg.n_phases,
                l,
                rng.range_u64(0, u64::MAX),
                Arc::clone(&seq),
            )
        })
        .collect();
    let net = Rc::new(RefCell::new(
        SimNet::new(vec![cfg.link; n], rng.range_u64(0, u64::MAX))
            .with_telemetry(telemetry.clone()),
    ));
    let eps: Vec<SimEndpoint> = (0..n)
        .map(|pid| SimEndpoint {
            net: Rc::clone(&net),
            out_link: pid,
            in_link: (pid + n - 1) % n,
        })
        .collect();

    let mut d = Driver {
        cores,
        eps,
        net: Rc::clone(&net),
        ctl: BinaryHeap::new(),
        ctl_seq: 0,
        now: Time::ZERO,
        alive: vec![true; n],
        work_scheduled: vec![None; n],
        messages_sent: vec![0; n],
        advances: 0,
        fault_rng: rng.fork(),
        trace: String::new(),
        events_processed: 0,
        cfg,
    };

    // Schedule the fault plan and the retransmission ticks.
    let plan = d.cfg.plan.clone();
    for &(t, pid) in &plan.poisons {
        d.schedule(t, Ctl::Poison { pid });
    }
    for &(t, pid) in &plan.scrambles {
        d.schedule(t, Ctl::Scramble { pid });
    }
    for &(t, pid) in &plan.copy_scrambles {
        d.schedule(t, Ctl::ScrambleCopy { pid });
    }
    for &(t, link) in &plan.forges {
        d.schedule(t, Ctl::Forge { link });
    }
    for c in &plan.crashes {
        assert!(c.reboot_at >= c.at, "reboot before crash");
        d.schedule(c.at, Ctl::Crash { pid: c.pid });
        d.schedule(c.reboot_at, Ctl::Reboot { pid: c.pid });
    }
    for p in &plan.partitions {
        assert!(p.heal_at >= p.at, "heal before cut");
        d.schedule(p.at, Ctl::Cut { link: p.link });
        d.schedule(p.heal_at, Ctl::Heal { link: p.link });
    }
    if plan.poison_rate > 0.0 {
        let first = d.fault_rng.exponential(plan.poison_rate);
        d.schedule(first, Ctl::PoissonPoison);
    }
    for pid in 0..n {
        d.schedule(d.cfg.retransmit_every, Ctl::Retransmit { pid });
    }

    // t = 0: everyone announces its start state, then takes any enabled
    // steps (the root's first token action fires immediately, as in the
    // threaded backend).
    for pid in 0..n {
        d.gossip(pid);
    }
    for pid in 0..n {
        d.drive(pid);
    }

    let max_time = Time::new(d.cfg.max_time);
    let mut reached = d.advances >= d.cfg.target_phases;
    while !reached {
        let t_net = d.net.borrow().next_event_time();
        let t_ctl = d.ctl.peek().map(|Reverse((t, _, _))| *t);
        // Deliveries win ties against control events.
        let (t, is_net) = match (t_net, t_ctl) {
            (None, None) => break, // quiescent: nothing can ever happen
            (Some(tn), None) => (tn, true),
            (None, Some(tc)) => (tc, false),
            (Some(tn), Some(tc)) => {
                if tn <= tc {
                    (tn, true)
                } else {
                    (tc, false)
                }
            }
        };
        if t > max_time {
            break;
        }
        d.now = t;
        d.events_processed += 1;
        // Always advance the network clock to the scheduling point, even for
        // control events — messages sent while handling them must be
        // timestamped at `t`, not at the network's last delivery time.
        let touched = d.net.borrow_mut().advance_to(t);
        if is_net {
            let _ = writeln!(d.trace, "t {} deliver x{}", d.now, touched.len());
        }
        for link in touched {
            let dest = (link + 1) % n;
            if d.alive[dest] {
                d.drive(dest);
            } else {
                // A crashed process loses its inbound traffic.
                while d.eps[dest].try_recv().is_some() {}
            }
        }
        if !is_net {
            let Reverse((_, _, ev)) = d.ctl.pop().expect("peeked");
            d.on_ctl(ev);
        }
        reached = d.advances >= d.cfg.target_phases;
    }

    // Replay the merged event log through the barrier specification oracle,
    // in global commit order.
    let mut events: Vec<CpEvent> = Vec::new();
    for core in &d.cores {
        events.extend(core.events.iter().copied());
    }
    events.sort_by_key(|e| e.seq);
    let mut oracle = BarrierOracle::new(OracleConfig {
        n_processes: n,
        n_phases: d.cfg.n_phases,
        anchor: Anchor::StrictFromZero,
    });
    for e in &events {
        oracle.observe_cp(e.at, e.pid, e.ph, e.old, e.new);
    }

    if telemetry.is_enabled() {
        crate::telemetry::record_cp_timeline(telemetry, &events, d.now);
        for (pid, &sent) in d.messages_sent.iter().enumerate() {
            telemetry.counter("mb_messages_sent_total", &[("pid", &pid.to_string())], sent);
        }
        telemetry.counter("mb_root_phase_advances_total", &[], d.advances);
    }

    let net_stats = d.net.borrow().stats();
    let _ = writeln!(
        d.trace,
        "end t {} advances {} events {} net {:?}",
        d.now, d.advances, d.events_processed, net_stats
    );
    SimMbReport {
        root_phase_advances: d.advances,
        violations: oracle.violations().to_vec(),
        phases_completed: oracle.phases_completed(),
        instance_counts: oracle.instance_counts().to_vec(),
        messages_sent: d.messages_sent,
        reached_target: reached,
        virtual_elapsed: d.now,
        events_processed: d.events_processed,
        net: net_stats,
        trace: d.trace,
    }
}
