//! Differential suite: program MB is one state machine ([`MbCore`]) compiled
//! against two transports — real threads over faulty channels (driven on
//! virtual time by a [`TestClock`]) and the seeded discrete-event simulated
//! network. The same topology, fault plan, and seed must produce oracle-clean
//! runs with identical successful-phase counts on both; the sim backend must
//! additionally be byte-for-byte replayable. Mirrors the style of
//! `crates/core/tests/differential.rs` (engine vs. incremental scheduler).

use ftbarrier_gcs::{SimRng, Time};
use ftbarrier_mp::channel::ChannelFaults;
use ftbarrier_mp::clock::{Clock, TestClock};
use ftbarrier_mp::mb::{spawn_on, MbConfig, MbReport, MbRun};
use ftbarrier_mp::mb_sim::{self, FaultPlan, SimMbConfig, SimMbReport};
use ftbarrier_mp::simnet::{LatencyModel, LinkConfig};
use ftbarrier_mp::transport::channel_ring;
use std::sync::Arc;

/// One scenario, expressed once and lowered onto both backends.
#[derive(Clone)]
struct Scenario {
    n: usize,
    target_phases: u64,
    seed: u64,
    faults: ChannelFaults,
    /// `(virtual time, pid)` detectable-fault injections.
    poisons: Vec<(f64, usize)>,
}

fn run_sim(s: &Scenario) -> SimMbReport {
    mb_sim::run(SimMbConfig {
        n: s.n,
        target_phases: s.target_phases,
        seed: s.seed,
        link: LinkConfig {
            latency: LatencyModel::Fixed(0.01),
            faults: s.faults,
        },
        plan: FaultPlan {
            poisons: s.poisons.clone(),
            ..Default::default()
        },
        // Poisons land mid-phase only if phases take time; match the
        // threaded run, whose phase body is empty, by keeping cost small
        // relative to the poison schedule.
        phase_cost: 0.0,
        ..Default::default()
    })
}

/// Drive a spawned threaded run to completion on virtual time, injecting the
/// scenario's poisons as their virtual instants pass. No sleeps.
fn drive_virtual(run: &MbRun, clock: &TestClock, plan: &[(f64, usize)]) {
    let h = run.handle();
    let mut next = 0;
    while !run.stopped() {
        clock.advance(0.01);
        let now = clock.now().as_f64();
        while next < plan.len() && plan[next].0 <= now {
            h.poison(plan[next].1);
            next += 1;
        }
        std::thread::yield_now();
    }
}

fn run_threaded(s: &Scenario) -> MbReport {
    let config = MbConfig {
        n: s.n,
        target_phases: s.target_phases,
        faults: s.faults,
        seed: s.seed,
        retransmit_every: Time::new(0.05),
        deadline: Time::new(2_000.0),
        ..Default::default()
    };
    let clock = TestClock::new();
    let mut rng = SimRng::seed_from_u64(s.seed);
    let endpoints = channel_ring(s.n, s.faults, &mut rng);
    let run = spawn_on(config, endpoints, clock.clone() as Arc<dyn Clock>);
    drive_virtual(&run, &clock, &s.poisons);
    run.join()
}

/// The differential invariant: both backends mask the scenario's faults
/// (oracle-clean), reach the target, and agree on the number of
/// successfully completed phases.
fn assert_agreement(s: &Scenario) {
    let sim = run_sim(s);
    let thr = run_threaded(s);

    assert!(sim.reached_target, "sim timed out: {sim:?}");
    assert!(thr.reached_target, "threaded timed out: {thr:?}");
    assert!(
        sim.violations.is_empty(),
        "sim violations: {:?}",
        sim.violations
    );
    assert!(
        thr.violations.is_empty(),
        "threaded violations: {:?}",
        thr.violations
    );
    assert_eq!(
        sim.phases_completed, thr.phases_completed,
        "backends disagree on successful phases (sim {:?} vs threaded {:?})",
        sim.instance_counts, thr.instance_counts
    );
    assert_eq!(sim.phases_completed, s.target_phases);
}

#[test]
fn fault_free_backends_agree() {
    assert_agreement(&Scenario {
        n: 4,
        target_phases: 10,
        seed: 11,
        faults: ChannelFaults::NONE,
        poisons: vec![],
    });
}

#[test]
fn lossy_backends_agree() {
    assert_agreement(&Scenario {
        n: 4,
        target_phases: 8,
        seed: 22,
        faults: ChannelFaults {
            loss: 0.25,
            ..ChannelFaults::NONE
        },
        poisons: vec![],
    });
}

#[test]
fn nasty_backends_agree() {
    assert_agreement(&Scenario {
        n: 3,
        target_phases: 6,
        seed: 33,
        faults: ChannelFaults::nasty(),
        poisons: vec![],
    });
}

#[test]
fn poisoned_backends_agree() {
    assert_agreement(&Scenario {
        n: 4,
        target_phases: 12,
        seed: 44,
        faults: ChannelFaults {
            loss: 0.1,
            ..ChannelFaults::NONE
        },
        poisons: vec![(0.4, 2), (1.1, 1)],
    });
}

#[test]
fn many_seeds_agree() {
    for seed in [1u64, 7, 1998] {
        assert_agreement(&Scenario {
            n: 4,
            target_phases: 6,
            seed,
            faults: ChannelFaults {
                loss: 0.15,
                duplication: 0.1,
                ..ChannelFaults::NONE
            },
            poisons: vec![],
        });
    }
}

/// The sim half of the differential promise: determinism. Two runs of the
/// same seed are byte-identical down to the trace; a different seed takes a
/// visibly different run.
#[test]
fn sim_is_replayable_threads_need_not_be() {
    let s = Scenario {
        n: 4,
        target_phases: 8,
        seed: 55,
        faults: ChannelFaults {
            loss: 0.2,
            reorder: 0.1,
            ..ChannelFaults::NONE
        },
        poisons: vec![(0.7, 3)],
    };
    let a = run_sim(&s);
    let b = run_sim(&s);
    assert_eq!(a.trace, b.trace);
    assert_eq!(a.instance_counts, b.instance_counts);
    assert_eq!(a.messages_sent, b.messages_sent);
    assert_eq!(a.virtual_elapsed, b.virtual_elapsed);
    assert_eq!(a.net, b.net);

    let c = run_sim(&Scenario { seed: 56, ..s });
    assert_ne!(a.trace, c.trace);
}
