//! Loopback-socket differential suite: program MB is one state machine
//! compiled against the threaded channel transport and the real-TCP
//! [`SocketEndpoint`] transport. The same topology, fault plan, and seed
//! must produce oracle-clean runs with identical successful-phase counts on
//! both — the wire adds latency and framing but no new behaviour. Mirrors
//! `tests/differential_mb.rs` (threaded vs. simulated network).
//!
//! Also the socket half of the crash story: a fail-stopped (killed) process
//! wedges the ring over real sockets and the flight dump names it.

use ftbarrier_gcs::{SimRng, Time};
use ftbarrier_mp::channel::ChannelFaults;
use ftbarrier_mp::clock::{Clock, TestClock};
use ftbarrier_mp::mb::{spawn_on, MbConfig, MbReport, MbRun};
use ftbarrier_mp::socket::{socket_ring, SocketEndpoint};
use ftbarrier_mp::transport::channel_ring;
use ftbarrier_telemetry::FlightDump;
use std::sync::Arc;

/// One scenario, expressed once and lowered onto both transports.
#[derive(Clone)]
struct Scenario {
    n: usize,
    target_phases: u64,
    seed: u64,
    faults: ChannelFaults,
    /// `(virtual time, pid)` detectable-fault injections.
    poisons: Vec<(f64, usize)>,
}

fn config_for(s: &Scenario) -> MbConfig {
    MbConfig {
        n: s.n,
        target_phases: s.target_phases,
        faults: s.faults,
        seed: s.seed,
        retransmit_every: Time::new(0.05),
        deadline: Time::new(2_000.0),
        ..Default::default()
    }
}

/// Drive a spawned run to completion on virtual time, injecting the
/// scenario's poisons as their virtual instants pass. No sleeps.
fn drive_virtual(run: &MbRun, clock: &TestClock, plan: &[(f64, usize)]) {
    let h = run.handle();
    let mut next = 0;
    while !run.stopped() {
        clock.advance(0.01);
        let now = clock.now().as_f64();
        while next < plan.len() && plan[next].0 <= now {
            h.poison(plan[next].1);
            next += 1;
        }
        std::thread::yield_now();
    }
}

fn run_on_channels(s: &Scenario) -> MbReport {
    let clock = TestClock::new();
    let mut rng = SimRng::seed_from_u64(s.seed);
    let endpoints = channel_ring(s.n, s.faults, &mut rng);
    let run = spawn_on(config_for(s), endpoints, clock.clone() as Arc<dyn Clock>);
    drive_virtual(&run, &clock, &s.poisons);
    run.join()
}

fn run_on_sockets(s: &Scenario) -> MbReport {
    let clock = TestClock::new();
    let mut rng = SimRng::seed_from_u64(s.seed);
    let endpoints: Vec<SocketEndpoint> =
        socket_ring(s.n, s.faults, &mut rng).expect("loopback ring");
    let run = spawn_on(config_for(s), endpoints, clock.clone() as Arc<dyn Clock>);
    drive_virtual(&run, &clock, &s.poisons);
    run.join()
}

/// The differential invariant: both transports mask the scenario's faults
/// (oracle-clean), reach the target, and agree on the number of
/// successfully completed phases.
fn assert_agreement(s: &Scenario) {
    let chan = run_on_channels(s);
    let sock = run_on_sockets(s);

    assert!(chan.reached_target, "channel run timed out: {chan:?}");
    assert!(sock.reached_target, "socket run timed out: {sock:?}");
    assert!(
        chan.violations.is_empty(),
        "channel violations: {:?}",
        chan.violations
    );
    assert!(
        sock.violations.is_empty(),
        "socket violations: {:?}",
        sock.violations
    );
    assert_eq!(
        chan.phases_completed, sock.phases_completed,
        "transports disagree on successful phases (channel {:?} vs socket {:?})",
        chan.instance_counts, sock.instance_counts
    );
    assert_eq!(chan.phases_completed, s.target_phases);
}

#[test]
fn fault_free_transports_agree_across_seeds() {
    for seed in [1u64, 2, 3] {
        assert_agreement(&Scenario {
            n: 4,
            target_phases: 8,
            seed,
            faults: ChannelFaults::NONE,
            poisons: vec![],
        });
    }
}

#[test]
fn lossy_transports_agree_across_seeds() {
    for seed in [1u64, 2, 3] {
        assert_agreement(&Scenario {
            n: 4,
            target_phases: 6,
            seed,
            faults: ChannelFaults {
                loss: 0.25,
                ..ChannelFaults::NONE
            },
            poisons: vec![],
        });
    }
}

#[test]
fn nasty_transports_agree_across_seeds() {
    for seed in [1u64, 2, 3] {
        assert_agreement(&Scenario {
            n: 3,
            target_phases: 6,
            seed,
            faults: ChannelFaults::nasty(),
            poisons: vec![],
        });
    }
}

#[test]
fn poisoned_transports_agree() {
    assert_agreement(&Scenario {
        n: 4,
        target_phases: 10,
        seed: 44,
        faults: ChannelFaults {
            loss: 0.1,
            ..ChannelFaults::NONE
        },
        poisons: vec![(0.4, 2), (1.1, 1)],
    });
}

/// A killed client over sockets: once the barrier is in steady state,
/// fail-stop one process. No repair wave can pass a silent ring member, so
/// the run wedges, the deadline fires, and the flight dump must blame the
/// exact pid that went dark.
#[test]
fn killed_socket_process_is_blamed_in_the_flight_dump() {
    let clock = TestClock::new();
    let mut rng = SimRng::seed_from_u64(77);
    let endpoints = socket_ring(4, ChannelFaults::NONE, &mut rng).expect("loopback ring");
    let config = MbConfig {
        n: 4,
        target_phases: 1_000,
        seed: 77,
        retransmit_every: Time::new(0.05),
        deadline: Time::new(60.0),
        ..Default::default()
    };
    let run = spawn_on(config, endpoints, clock.clone() as Arc<dyn Clock>);
    let h = run.handle();
    while run.root_phase_advances() < 3 {
        clock.advance(0.01);
        std::thread::yield_now();
    }
    h.mute(2);
    while !run.stopped() {
        clock.advance(0.01);
        std::thread::yield_now();
    }
    let report = run.join();
    assert!(!report.reached_target, "{report:?}");
    let dump = report.flight_dump.as_deref().expect("wedged run dumps");
    let parsed = FlightDump::parse(dump).expect("dump parses");
    parsed.replay().expect("dump replays");
    assert_eq!(parsed.program, "mb");
    assert_eq!(parsed.kind, "wedge");
    assert_eq!(parsed.reason, "deadline");
    assert_eq!(parsed.blamed, Some(2), "the killed process is the culprit");
    let last_of_2 = parsed
        .graph
        .events
        .iter()
        .rev()
        .find(|e| e.id.pid == 2)
        .expect("p2 recorded events");
    assert_eq!(last_of_2.label, "fault:stop");
}
