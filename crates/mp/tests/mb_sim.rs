//! The deterministic MB correctness suite: every test runs on virtual time
//! (the discrete-event backend), so there is not a single sleep or
//! wall-clock assertion in this file — results are a pure function of the
//! configuration.

use ftbarrier_mp::channel::ChannelFaults;
use ftbarrier_mp::mb_sim::{
    run, run_with_telemetry, CrashPlan, FaultPlan, PartitionPlan, SimMbConfig,
};
use ftbarrier_mp::simnet::{LatencyModel, LinkConfig};
use ftbarrier_telemetry::{Telemetry, TimeDomain};

fn lossy(loss: f64) -> LinkConfig {
    LinkConfig {
        latency: LatencyModel::Fixed(0.01),
        faults: ChannelFaults {
            loss,
            ..ChannelFaults::NONE
        },
    }
}

#[test]
fn fault_free_run_completes_cleanly() {
    let report = run(SimMbConfig {
        n: 4,
        target_phases: 10,
        ..Default::default()
    });
    assert!(report.reached_target, "{report:?}");
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    assert!(report.phases_completed >= 9, "{report:?}");
    assert!(report.instance_counts.iter().all(|&c| c == 1));
    // Fault-free: no message ever lost, every phase costs ~1 unit + sweeps.
    assert_eq!(report.net.lost, 0);
    assert!(report.virtual_elapsed.as_f64() >= 10.0 * 1.0);
}

#[test]
fn lossy_links_are_masked_by_retransmission() {
    let report = run(SimMbConfig {
        n: 4,
        target_phases: 8,
        link: lossy(0.3),
        ..Default::default()
    });
    assert!(report.reached_target, "{report:?}");
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    assert!(
        report.net.lost > 0,
        "the link was supposed to drop messages"
    );
    // Communication faults are masked *without* re-execution: §5's claim
    // that they all reduce to transient loss.
    assert!(report.instance_counts.iter().all(|&c| c == 1), "{report:?}");
}

#[test]
fn nasty_links_still_clean() {
    let report = run(SimMbConfig {
        n: 3,
        target_phases: 6,
        seed: 99,
        link: LinkConfig {
            latency: LatencyModel::Uniform { lo: 0.0, hi: 0.04 },
            faults: ChannelFaults::nasty(),
        },
        ..Default::default()
    });
    assert!(report.reached_target, "{report:?}");
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    assert!(report.net.corrupted > 0 && report.net.duplicated > 0);
    // Reordering can transiently fault a local copy, which the recovery
    // actions repair — occasionally at the cost of a benign re-execution —
    // so unlike pure loss we only assert masking, not instances == 1.
}

#[test]
fn poison_forces_reexecution_but_masks() {
    let report = run(SimMbConfig {
        n: 4,
        target_phases: 12,
        plan: FaultPlan {
            // Mid-phase detectable faults on two different processes.
            poisons: vec![(3.5, 2), (7.3, 1)],
            ..Default::default()
        },
        ..Default::default()
    });
    assert!(report.reached_target, "{report:?}");
    assert!(
        report.violations.is_empty(),
        "detectable faults must be masked: {:?}",
        report.violations
    );
    // The poisons cost extra instances somewhere.
    let total: u64 = report.instance_counts.iter().sum();
    assert!(total > report.phases_completed, "{report:?}");
}

#[test]
fn scramble_recovers_and_makes_progress() {
    let report = run(SimMbConfig {
        n: 4,
        target_phases: 14,
        seed: 5,
        plan: FaultPlan {
            scrambles: vec![(4.2, 3)],
            ..Default::default()
        },
        ..Default::default()
    });
    // Progress is the stabilization guarantee; the interim may violate.
    assert!(
        report.reached_target,
        "no post-scramble progress: {report:?}"
    );
}

#[test]
fn crash_and_reboot_is_masked_as_detectable_fault() {
    let report = run(SimMbConfig {
        n: 4,
        target_phases: 12,
        plan: FaultPlan {
            crashes: vec![CrashPlan {
                pid: 2,
                at: 3.0,
                reboot_at: 5.0,
            }],
            ..Default::default()
        },
        ..Default::default()
    });
    assert!(report.reached_target, "{report:?}");
    assert!(
        report.violations.is_empty(),
        "crash/reboot is the §4.1 detectable fault and must be masked: {:?}",
        report.violations
    );
    let total: u64 = report.instance_counts.iter().sum();
    assert!(total >= report.phases_completed);
}

#[test]
fn partition_with_healing_is_masked_as_loss() {
    let report = run(SimMbConfig {
        n: 4,
        target_phases: 10,
        plan: FaultPlan {
            partitions: vec![PartitionPlan {
                link: 1,
                at: 2.0,
                heal_at: 6.0,
            }],
            ..Default::default()
        },
        ..Default::default()
    });
    assert!(report.reached_target, "{report:?}");
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    assert!(report.net.blocked > 0, "the partition was supposed to bite");
    // A partition is pure message loss: no instance is ever aborted.
    assert!(report.instance_counts.iter().all(|&c| c == 1), "{report:?}");
}

#[test]
fn unhealed_partition_stalls_without_violation() {
    // Cut link 1 forever: the token cannot circulate, so the run times out —
    // but Safety still holds (no phase is ever skipped or overlapped).
    let report = run(SimMbConfig {
        n: 4,
        target_phases: 50,
        max_time: 50.0,
        plan: FaultPlan {
            partitions: vec![PartitionPlan {
                link: 1,
                at: 2.0,
                heal_at: 1e9,
            }],
            ..Default::default()
        },
        ..Default::default()
    });
    assert!(!report.reached_target, "{report:?}");
    assert!(report.violations.is_empty(), "{:?}", report.violations);
}

#[test]
fn poisson_poison_storm_is_masked() {
    let report = run(SimMbConfig {
        n: 5,
        target_phases: 25,
        seed: 0x0570_0012,
        plan: FaultPlan {
            poison_rate: 0.15,
            ..Default::default()
        },
        ..Default::default()
    });
    assert!(report.reached_target, "{report:?}");
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    let total: u64 = report.instance_counts.iter().sum();
    assert!(total >= report.phases_completed);
}

#[test]
fn everything_at_once_is_masked() {
    // The full menu: hostile links, a partition that heals, a crash/reboot,
    // and scheduled poisons — all detectable fault classes together.
    let report = run(SimMbConfig {
        n: 5,
        target_phases: 15,
        seed: 77,
        link: LinkConfig {
            latency: LatencyModel::Uniform {
                lo: 0.005,
                hi: 0.03,
            },
            faults: ChannelFaults {
                loss: 0.2,
                duplication: 0.1,
                corruption: 0.1,
                reorder: 0.1,
            },
        },
        plan: FaultPlan {
            poisons: vec![(4.5, 3)],
            crashes: vec![CrashPlan {
                pid: 1,
                at: 8.0,
                reboot_at: 9.5,
            }],
            partitions: vec![PartitionPlan {
                link: 2,
                at: 12.0,
                heal_at: 13.0,
            }],
            ..Default::default()
        },
        ..Default::default()
    });
    assert!(report.reached_target, "{report:?}");
    assert!(report.violations.is_empty(), "{:?}", report.violations);
}

#[test]
fn same_seed_is_byte_identical_different_seed_differs() {
    let cfg = SimMbConfig {
        n: 4,
        target_phases: 10,
        seed: 1234,
        link: lossy(0.25),
        plan: FaultPlan {
            poisons: vec![(3.0, 1)],
            ..Default::default()
        },
        ..Default::default()
    };
    let a = run(cfg.clone());
    let b = run(cfg.clone());
    assert_eq!(a.trace, b.trace, "same seed must replay byte-for-byte");
    assert_eq!(a.messages_sent, b.messages_sent);
    assert_eq!(a.instance_counts, b.instance_counts);
    assert_eq!(a.virtual_elapsed, b.virtual_elapsed);
    assert_eq!(a.events_processed, b.events_processed);
    assert_eq!(a.net, b.net);

    let c = run(SimMbConfig { seed: 1235, ..cfg });
    assert_ne!(
        a.trace, c.trace,
        "a different seed must take a different run"
    );
}

#[test]
fn telemetry_recording_leaves_replay_byte_identical() {
    // The network counters and the post-run timeline replay are pure
    // observers: a recording handle must not move a single virtual-time
    // event relative to the plain run.
    let cfg = SimMbConfig {
        n: 4,
        target_phases: 10,
        seed: 1234,
        link: lossy(0.25),
        plan: FaultPlan {
            poisons: vec![(3.0, 1)],
            ..Default::default()
        },
        ..Default::default()
    };
    let off = run(cfg.clone());
    let tele = Telemetry::recording(TimeDomain::Virtual);
    let on = run_with_telemetry(cfg, &tele);
    assert_eq!(off.trace, on.trace, "telemetry perturbed the replay");
    assert_eq!(off.messages_sent, on.messages_sent);
    assert_eq!(off.instance_counts, on.instance_counts);
    assert_eq!(off.virtual_elapsed, on.virtual_elapsed);
    assert_eq!(off.events_processed, on.events_processed);
    assert_eq!(off.net, on.net);
    let snap = tele.snapshot();
    assert!(!snap.events.is_empty(), "timeline was recorded");
    // The mirrored counters agree with the report's own accounting.
    let sent: u64 = (0..4)
        .map(|p| {
            snap.metrics
                .counter("mb_messages_sent_total", &[("pid", &p.to_string())])
        })
        .sum();
    assert_eq!(sent, on.messages_sent.iter().sum::<u64>());
}

#[test]
fn zero_phase_cost_still_sequences_phases() {
    let report = run(SimMbConfig {
        n: 4,
        target_phases: 20,
        phase_cost: 0.0,
        ..Default::default()
    });
    assert!(report.reached_target, "{report:?}");
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    assert_eq!(report.phases_completed, 20);
}

#[test]
fn virtual_phase_time_scales_with_latency() {
    let time_per_phase = |latency: f64| {
        let r = run(SimMbConfig {
            n: 4,
            target_phases: 10,
            link: LinkConfig::perfect(latency),
            ..Default::default()
        });
        assert!(r.reached_target);
        r.virtual_elapsed.as_f64() / r.phases_completed as f64
    };
    let fast = time_per_phase(0.01);
    let slow = time_per_phase(0.10);
    assert!(
        slow > fast,
        "higher link latency must lengthen the phase period ({fast} vs {slow})"
    );
}

#[test]
#[should_panic]
fn rejects_single_process() {
    let _ = run(SimMbConfig {
        n: 1,
        ..Default::default()
    });
}

#[test]
fn copy_scramble_recovers_and_makes_progress() {
    // A scrambled receive buffer (local neighbor copy only) is an
    // undetectable fault: the run may transiently misbehave but must
    // re-stabilize and keep advancing phases.
    for seed in [5, 17, 901] {
        let report = run(SimMbConfig {
            n: 4,
            target_phases: 14,
            seed,
            plan: FaultPlan {
                copy_scrambles: vec![(4.2, 3), (6.1, 0)],
                ..Default::default()
            },
            ..Default::default()
        });
        assert!(
            report.reached_target,
            "seed {seed}: no post-copy-scramble progress: {report:?}"
        );
    }
}

#[test]
fn forged_in_flight_sn_recovers_and_makes_progress() {
    // Forging the sn of in-flight messages to an arbitrary u32 (far beyond
    // the L > 2N+1 window) is undetectable wire corruption; the ring must
    // still stabilize. This exercised the Sn::next overflow fixed in core.
    for seed in [1, 42, 7777] {
        let report = run(SimMbConfig {
            n: 4,
            target_phases: 14,
            seed,
            plan: FaultPlan {
                forges: vec![(3.0, 0), (3.5, 2), (5.0, 1)],
                ..Default::default()
            },
            ..Default::default()
        });
        assert!(
            report.reached_target,
            "seed {seed}: no post-forge progress: {report:?}"
        );
    }
}

#[test]
fn sn_domain_below_window_is_rejected() {
    use ftbarrier_core::DomainError;
    // n = 4: the paper needs L > 2N+1, i.e. at least 10 here.
    let cfg = SimMbConfig {
        n: 4,
        sn_domain: Some(9),
        ..Default::default()
    };
    assert_eq!(
        cfg.validate(),
        Err(DomainError::LTooSmall { l: 9, min: 10 })
    );
    let ok = SimMbConfig {
        n: 4,
        sn_domain: Some(10),
        target_phases: 6,
        ..Default::default()
    };
    assert_eq!(ok.validate(), Ok(()));
    let report = run(ok);
    assert!(report.reached_target, "{report:?}");
    assert!(report.violations.is_empty(), "{:?}", report.violations);
}

#[test]
#[should_panic]
fn run_rejects_invalid_sn_domain() {
    let _ = run(SimMbConfig {
        n: 4,
        sn_domain: Some(3),
        ..Default::default()
    });
}
