//! The deterministic MB correctness suite: every test runs on virtual time
//! (the discrete-event backend), so there is not a single sleep or
//! wall-clock assertion in this file — results are a pure function of the
//! configuration.

use ftbarrier_core::Cp;
use ftbarrier_mp::channel::ChannelFaults;
use ftbarrier_mp::mb_sim::{
    run, run_with_telemetry, ChurnConfig, CrashPlan, FaultPlan, PartitionPlan, SimMbConfig,
};
use ftbarrier_mp::simnet::{LatencyModel, LinkConfig};
use ftbarrier_telemetry::{FlightDump, Telemetry, TimeDomain};

fn lossy(loss: f64) -> LinkConfig {
    LinkConfig {
        latency: LatencyModel::Fixed(0.01),
        faults: ChannelFaults {
            loss,
            ..ChannelFaults::NONE
        },
    }
}

#[test]
fn fault_free_run_completes_cleanly() {
    let report = run(SimMbConfig {
        n: 4,
        target_phases: 10,
        ..Default::default()
    });
    assert!(report.reached_target, "{report:?}");
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    assert!(report.phases_completed >= 9, "{report:?}");
    assert!(report.instance_counts.iter().all(|&c| c == 1));
    // Fault-free: no message ever lost, every phase costs ~1 unit + sweeps.
    assert_eq!(report.net.lost, 0);
    assert!(report.virtual_elapsed.as_f64() >= 10.0 * 1.0);
}

#[test]
fn lossy_links_are_masked_by_retransmission() {
    let report = run(SimMbConfig {
        n: 4,
        target_phases: 8,
        link: lossy(0.3),
        ..Default::default()
    });
    assert!(report.reached_target, "{report:?}");
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    assert!(
        report.net.lost > 0,
        "the link was supposed to drop messages"
    );
    // Communication faults are masked *without* re-execution: §5's claim
    // that they all reduce to transient loss.
    assert!(report.instance_counts.iter().all(|&c| c == 1), "{report:?}");
}

#[test]
fn nasty_links_still_clean() {
    let report = run(SimMbConfig {
        n: 3,
        target_phases: 6,
        seed: 99,
        link: LinkConfig {
            latency: LatencyModel::Uniform { lo: 0.0, hi: 0.04 },
            faults: ChannelFaults::nasty(),
        },
        ..Default::default()
    });
    assert!(report.reached_target, "{report:?}");
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    assert!(report.net.corrupted > 0 && report.net.duplicated > 0);
    // Reordering can transiently fault a local copy, which the recovery
    // actions repair — occasionally at the cost of a benign re-execution —
    // so unlike pure loss we only assert masking, not instances == 1.
}

#[test]
fn poison_forces_reexecution_but_masks() {
    let report = run(SimMbConfig {
        n: 4,
        target_phases: 12,
        plan: FaultPlan {
            // Mid-phase detectable faults on two different processes.
            poisons: vec![(3.5, 2), (7.3, 1)],
            ..Default::default()
        },
        ..Default::default()
    });
    assert!(report.reached_target, "{report:?}");
    assert!(
        report.violations.is_empty(),
        "detectable faults must be masked: {:?}",
        report.violations
    );
    // The poisons cost extra instances somewhere.
    let total: u64 = report.instance_counts.iter().sum();
    assert!(total > report.phases_completed, "{report:?}");
}

#[test]
fn scramble_recovers_and_makes_progress() {
    let report = run(SimMbConfig {
        n: 4,
        target_phases: 14,
        seed: 5,
        plan: FaultPlan {
            scrambles: vec![(4.2, 3)],
            ..Default::default()
        },
        ..Default::default()
    });
    // Progress is the stabilization guarantee; the interim may violate.
    assert!(
        report.reached_target,
        "no post-scramble progress: {report:?}"
    );
}

#[test]
fn crash_and_reboot_is_masked_as_detectable_fault() {
    let report = run(SimMbConfig {
        n: 4,
        target_phases: 12,
        plan: FaultPlan {
            crashes: vec![CrashPlan {
                pid: 2,
                at: 3.0,
                reboot_at: 5.0,
            }],
            ..Default::default()
        },
        ..Default::default()
    });
    assert!(report.reached_target, "{report:?}");
    assert!(
        report.violations.is_empty(),
        "crash/reboot is the §4.1 detectable fault and must be masked: {:?}",
        report.violations
    );
    let total: u64 = report.instance_counts.iter().sum();
    assert!(total >= report.phases_completed);
}

#[test]
fn partition_with_healing_is_masked_as_loss() {
    let report = run(SimMbConfig {
        n: 4,
        target_phases: 10,
        plan: FaultPlan {
            partitions: vec![PartitionPlan {
                link: 1,
                at: 2.0,
                heal_at: 6.0,
            }],
            ..Default::default()
        },
        ..Default::default()
    });
    assert!(report.reached_target, "{report:?}");
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    assert!(report.net.blocked > 0, "the partition was supposed to bite");
    // A partition is pure message loss: no instance is ever aborted.
    assert!(report.instance_counts.iter().all(|&c| c == 1), "{report:?}");
}

#[test]
fn unhealed_partition_stalls_without_violation() {
    // Cut link 1 forever: the token cannot circulate, so the run times out —
    // but Safety still holds (no phase is ever skipped or overlapped).
    let report = run(SimMbConfig {
        n: 4,
        target_phases: 50,
        max_time: 50.0,
        plan: FaultPlan {
            partitions: vec![PartitionPlan {
                link: 1,
                at: 2.0,
                heal_at: 1e9,
            }],
            ..Default::default()
        },
        ..Default::default()
    });
    assert!(!report.reached_target, "{report:?}");
    assert!(report.violations.is_empty(), "{:?}", report.violations);
}

#[test]
fn poisson_poison_storm_is_masked() {
    let report = run(SimMbConfig {
        n: 5,
        target_phases: 25,
        seed: 0x0570_0012,
        plan: FaultPlan {
            poison_rate: 0.15,
            ..Default::default()
        },
        ..Default::default()
    });
    assert!(report.reached_target, "{report:?}");
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    let total: u64 = report.instance_counts.iter().sum();
    assert!(total >= report.phases_completed);
}

#[test]
fn everything_at_once_is_masked() {
    // The full menu: hostile links, a partition that heals, a crash/reboot,
    // and scheduled poisons — all detectable fault classes together.
    let report = run(SimMbConfig {
        n: 5,
        target_phases: 15,
        seed: 77,
        link: LinkConfig {
            latency: LatencyModel::Uniform {
                lo: 0.005,
                hi: 0.03,
            },
            faults: ChannelFaults {
                loss: 0.2,
                duplication: 0.1,
                corruption: 0.1,
                reorder: 0.1,
            },
        },
        plan: FaultPlan {
            poisons: vec![(4.5, 3)],
            crashes: vec![CrashPlan {
                pid: 1,
                at: 8.0,
                reboot_at: 9.5,
            }],
            partitions: vec![PartitionPlan {
                link: 2,
                at: 12.0,
                heal_at: 13.0,
            }],
            ..Default::default()
        },
        ..Default::default()
    });
    assert!(report.reached_target, "{report:?}");
    assert!(report.violations.is_empty(), "{:?}", report.violations);
}

#[test]
fn same_seed_is_byte_identical_different_seed_differs() {
    let cfg = SimMbConfig {
        n: 4,
        target_phases: 10,
        seed: 1234,
        link: lossy(0.25),
        plan: FaultPlan {
            poisons: vec![(3.0, 1)],
            ..Default::default()
        },
        ..Default::default()
    };
    let a = run(cfg.clone());
    let b = run(cfg.clone());
    assert_eq!(a.trace, b.trace, "same seed must replay byte-for-byte");
    assert_eq!(a.messages_sent, b.messages_sent);
    assert_eq!(a.instance_counts, b.instance_counts);
    assert_eq!(a.virtual_elapsed, b.virtual_elapsed);
    assert_eq!(a.events_processed, b.events_processed);
    assert_eq!(a.net, b.net);

    let c = run(SimMbConfig { seed: 1235, ..cfg });
    assert_ne!(
        a.trace, c.trace,
        "a different seed must take a different run"
    );
}

#[test]
fn telemetry_recording_leaves_replay_byte_identical() {
    // The network counters and the post-run timeline replay are pure
    // observers: a recording handle must not move a single virtual-time
    // event relative to the plain run.
    let cfg = SimMbConfig {
        n: 4,
        target_phases: 10,
        seed: 1234,
        link: lossy(0.25),
        plan: FaultPlan {
            poisons: vec![(3.0, 1)],
            ..Default::default()
        },
        ..Default::default()
    };
    let off = run(cfg.clone());
    let tele = Telemetry::recording(TimeDomain::Virtual);
    let on = run_with_telemetry(cfg, &tele);
    assert_eq!(off.trace, on.trace, "telemetry perturbed the replay");
    assert_eq!(off.messages_sent, on.messages_sent);
    assert_eq!(off.instance_counts, on.instance_counts);
    assert_eq!(off.virtual_elapsed, on.virtual_elapsed);
    assert_eq!(off.events_processed, on.events_processed);
    assert_eq!(off.net, on.net);
    let snap = tele.snapshot();
    assert!(!snap.events.is_empty(), "timeline was recorded");
    // The mirrored counters agree with the report's own accounting.
    let sent: u64 = (0..4)
        .map(|p| {
            snap.metrics
                .counter("mb_messages_sent_total", &[("pid", &p.to_string())])
        })
        .sum();
    assert_eq!(sent, on.messages_sent.iter().sum::<u64>());
}

#[test]
fn zero_phase_cost_still_sequences_phases() {
    let report = run(SimMbConfig {
        n: 4,
        target_phases: 20,
        phase_cost: 0.0,
        ..Default::default()
    });
    assert!(report.reached_target, "{report:?}");
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    assert_eq!(report.phases_completed, 20);
}

#[test]
fn virtual_phase_time_scales_with_latency() {
    let time_per_phase = |latency: f64| {
        let r = run(SimMbConfig {
            n: 4,
            target_phases: 10,
            link: LinkConfig::perfect(latency),
            ..Default::default()
        });
        assert!(r.reached_target);
        r.virtual_elapsed.as_f64() / r.phases_completed as f64
    };
    let fast = time_per_phase(0.01);
    let slow = time_per_phase(0.10);
    assert!(
        slow > fast,
        "higher link latency must lengthen the phase period ({fast} vs {slow})"
    );
}

#[test]
#[should_panic]
fn rejects_single_process() {
    let _ = run(SimMbConfig {
        n: 1,
        ..Default::default()
    });
}

#[test]
fn copy_scramble_recovers_and_makes_progress() {
    // A scrambled receive buffer (local neighbor copy only) is an
    // undetectable fault: the run may transiently misbehave but must
    // re-stabilize and keep advancing phases.
    for seed in [5, 17, 901] {
        let report = run(SimMbConfig {
            n: 4,
            target_phases: 14,
            seed,
            plan: FaultPlan {
                copy_scrambles: vec![(4.2, 3), (6.1, 0)],
                ..Default::default()
            },
            ..Default::default()
        });
        assert!(
            report.reached_target,
            "seed {seed}: no post-copy-scramble progress: {report:?}"
        );
    }
}

#[test]
fn forged_in_flight_sn_recovers_and_makes_progress() {
    // Forging the sn of in-flight messages to an arbitrary u32 (far beyond
    // the L > 2N+1 window) is undetectable wire corruption; the ring must
    // still stabilize. This exercised the Sn::next overflow fixed in core.
    for seed in [1, 42, 7777] {
        let report = run(SimMbConfig {
            n: 4,
            target_phases: 14,
            seed,
            plan: FaultPlan {
                forges: vec![(3.0, 0), (3.5, 2), (5.0, 1)],
                ..Default::default()
            },
            ..Default::default()
        });
        assert!(
            report.reached_target,
            "seed {seed}: no post-forge progress: {report:?}"
        );
    }
}

#[test]
fn sn_domain_below_window_is_rejected() {
    use ftbarrier_core::DomainError;
    // n = 4: the paper needs L > 2N+1, i.e. at least 10 here.
    let cfg = SimMbConfig {
        n: 4,
        sn_domain: Some(9),
        ..Default::default()
    };
    assert_eq!(
        cfg.validate(),
        Err(DomainError::LTooSmall { l: 9, min: 10 })
    );
    let ok = SimMbConfig {
        n: 4,
        sn_domain: Some(10),
        target_phases: 6,
        ..Default::default()
    };
    assert_eq!(ok.validate(), Ok(()));
    let report = run(ok);
    assert!(report.reached_target, "{report:?}");
    assert!(report.violations.is_empty(), "{:?}", report.violations);
}

#[test]
#[should_panic]
fn run_rejects_invalid_sn_domain() {
    let _ = run(SimMbConfig {
        n: 4,
        sn_domain: Some(3),
        ..Default::default()
    });
}

// ---------------------------------------------------------------------------
// Dynamic membership (fail-stop detection, splice/graft repair, epochs)
// ---------------------------------------------------------------------------

#[test]
fn churn_enabled_fault_free_run_is_byte_identical() {
    // Merely enabling the failure detector must not move a single event:
    // the membership check draws no randomness and the epoch stamps are
    // inert while every epoch is 0.
    for seed in [1234u64, 0xDEAD] {
        let base = SimMbConfig {
            n: 5,
            target_phases: 10,
            seed,
            link: lossy(0.2),
            ..Default::default()
        };
        let off = run(base.clone());
        let on = run(SimMbConfig {
            churn: Some(ChurnConfig::default()),
            ..base
        });
        assert_eq!(off.trace, on.trace, "seed {seed}: churn perturbed the run");
        assert_eq!(off.messages_sent, on.messages_sent);
        assert_eq!(off.events_processed, on.events_processed);
        assert_eq!(off.instance_counts, on.instance_counts);
        assert_eq!(off.net, on.net);
        assert!(on.churn_checks > 0, "the detector was supposed to run");
        assert_eq!(on.suspicions, 0);
        assert_eq!(on.rejoins, 0);
        assert_eq!(on.epoch, 0);
        assert_eq!(on.stale_epoch_dropped, 0);
    }
}

#[test]
fn permanent_crash_is_detected_spliced_and_survivors_progress() {
    // Without churn this exact plan wedges the ring forever (see
    // `unhealed_partition_stalls_without_violation` for the analogous
    // stall); with the detector the dead process is spliced out and the
    // survivors keep completing barriers.
    let report = run(SimMbConfig {
        n: 8,
        target_phases: 30,
        max_time: 120.0,
        plan: FaultPlan {
            crashes: vec![CrashPlan {
                pid: 3,
                at: 3.0,
                reboot_at: 1e5, // never, within this run
            }],
            ..Default::default()
        },
        churn: Some(ChurnConfig::default()),
        ..Default::default()
    });
    assert!(report.reached_target, "{report:?}");
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    assert_eq!(report.suspicions, 1);
    assert_eq!(report.rejoins, 0);
    assert_eq!(report.epoch, 1);
    assert!(report.phases_completed >= 25, "{report:?}");
    assert_eq!(report.reconfig_latencies.len(), 1, "{report:?}");
    // The dead process took no further steps after its crash.
    assert!(report
        .cp_events
        .iter()
        .all(|e| e.pid != 3 || e.at.as_f64() <= 3.0));
}

#[test]
fn crashed_then_rebooted_process_rejoins_and_participates() {
    // Crash long enough to be detected and spliced; the reboot then goes
    // through the graft + §4.1 handshake and the process executes phases
    // again in the restored ring.
    let report = run(SimMbConfig {
        n: 6,
        target_phases: 20,
        max_time: 120.0,
        plan: FaultPlan {
            crashes: vec![CrashPlan {
                pid: 2,
                at: 3.0,
                reboot_at: 6.0,
            }],
            ..Default::default()
        },
        churn: Some(ChurnConfig::default()),
        ..Default::default()
    });
    assert!(report.reached_target, "{report:?}");
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    assert_eq!(report.suspicions, 1);
    assert_eq!(report.rejoins, 1);
    assert_eq!(report.epoch, 2, "splice + graft");
    assert_eq!(report.reconfig_latencies.len(), 2, "{report:?}");
    assert!(
        report
            .cp_events
            .iter()
            .any(|e| e.pid == 2 && e.new == Cp::Execute && e.at.as_f64() > 6.0),
        "the rejoined process never executed a phase: {:?}",
        report
            .cp_events
            .iter()
            .filter(|e| e.pid == 2)
            .collect::<Vec<_>>()
    );
}

#[test]
fn reboot_before_detection_stays_in_the_old_epoch() {
    // A crash shorter than the suspicion threshold is repaired by the plain
    // §4.1 reboot poison — no reconfiguration happens at all.
    let report = run(SimMbConfig {
        n: 5,
        target_phases: 15,
        plan: FaultPlan {
            crashes: vec![CrashPlan {
                pid: 2,
                at: 3.0,
                reboot_at: 3.2,
            }],
            ..Default::default()
        },
        churn: Some(ChurnConfig::default()),
        ..Default::default()
    });
    assert!(report.reached_target, "{report:?}");
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    assert_eq!(report.suspicions, 0, "{report:?}");
    assert_eq!(report.rejoins, 0);
    assert_eq!(report.epoch, 0);
}

#[test]
fn crash_during_reconfiguration_does_not_wedge_the_new_epoch() {
    // The second process dies while the first splice's epoch bump is still
    // sweeping the ring (the first check fires at ~2.5; the second crash
    // lands right in the reconfiguration window). The detector must chain a
    // second splice instead of waiting forever for the dead member to adopt
    // the new epoch.
    let report = run(SimMbConfig {
        n: 8,
        target_phases: 25,
        max_time: 120.0,
        plan: FaultPlan {
            crashes: vec![
                CrashPlan {
                    pid: 2,
                    at: 2.0,
                    reboot_at: 1e5,
                },
                CrashPlan {
                    pid: 4,
                    at: 2.55,
                    reboot_at: 1e5,
                },
            ],
            ..Default::default()
        },
        churn: Some(ChurnConfig::default()),
        ..Default::default()
    });
    assert!(report.reached_target, "{report:?}");
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    assert_eq!(report.suspicions, 2);
    assert_eq!(report.epoch, 2);
    // Both epoch bumps eventually settled on the surviving members.
    assert_eq!(report.reconfig_latencies.len(), 2, "{report:?}");
}

#[test]
fn healed_partition_is_suspected_then_grafted_back() {
    // An unhealed partition used to stall the run forever; with churn the
    // silenced process is spliced out (fail-stop and partition are
    // indistinguishable to a silence detector), survivors progress, and the
    // heal triggers the graft as soon as its traffic reappears.
    let report = run(SimMbConfig {
        n: 5,
        target_phases: 20,
        max_time: 120.0,
        plan: FaultPlan {
            partitions: vec![PartitionPlan {
                link: 2,
                at: 2.0,
                heal_at: 5.0,
            }],
            ..Default::default()
        },
        churn: Some(ChurnConfig::default()),
        ..Default::default()
    });
    assert!(report.reached_target, "{report:?}");
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    assert!(report.suspicions >= 1, "{report:?}");
    assert!(report.rejoins >= 1, "{report:?}");
    assert!(report.epoch >= 2, "{report:?}");
    // The exiled process kept executing after its graft.
    assert!(
        report
            .cp_events
            .iter()
            .any(|e| e.pid == 2 && e.new == Cp::Execute && e.at.as_f64() > 5.0),
        "{report:?}"
    );
}

#[test]
fn forged_epoch_restabilizes_via_anti_entropy() {
    // Corrupting the epoch of an in-flight message to an arbitrary u64 makes
    // the receiver drop all honest traffic as stale — until the membership
    // check's anti-entropy fast-forwards the root past the forged value and
    // the gossip wave re-unifies the ring. Forge times sit just after a
    // retransmission tick so a message is guaranteed to be in flight.
    let report = run(SimMbConfig {
        n: 5,
        target_phases: 15,
        max_time: 120.0,
        plan: FaultPlan {
            epoch_forges: vec![(2.055, 1), (3.055, 3)],
            ..Default::default()
        },
        churn: Some(ChurnConfig::default()),
        ..Default::default()
    });
    assert!(report.reached_target, "{report:?}");
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    assert!(
        report.stale_epoch_dropped > 0,
        "the forged epoch was supposed to bite: {report:?}"
    );
    assert!(
        report.epoch > 0,
        "anti-entropy must fast-forward: {report:?}"
    );
    assert_eq!(report.suspicions, 0, "no false fail-stop: {report:?}");
}

#[test]
fn scrambled_membership_view_is_repaired_by_the_check() {
    // An undetectable fault on the membership state itself: the victim's
    // believed epoch and its routing are overwritten with garbage. The next
    // periodic check re-derives both from the membership, so the run keeps
    // its target without any reconfiguration.
    for seed in [7u64, 0xBEEF] {
        let report = run(SimMbConfig {
            n: 5,
            target_phases: 15,
            max_time: 120.0,
            seed,
            plan: FaultPlan {
                view_scrambles: vec![(2.0, 2), (4.0, 0)],
                ..Default::default()
            },
            churn: Some(ChurnConfig::default()),
            ..Default::default()
        });
        assert!(report.reached_target, "seed {seed}: {report:?}");
        assert!(
            report.violations.is_empty(),
            "seed {seed}: {:?}",
            report.violations
        );
        assert_eq!(report.suspicions, 0, "seed {seed}: {report:?}");
    }
}

#[test]
fn churn_metrics_are_mirrored_into_telemetry() {
    let tele = Telemetry::recording(TimeDomain::Virtual);
    let report = run_with_telemetry(
        SimMbConfig {
            n: 6,
            target_phases: 20,
            max_time: 120.0,
            plan: FaultPlan {
                crashes: vec![CrashPlan {
                    pid: 2,
                    at: 3.0,
                    reboot_at: 6.0,
                }],
                ..Default::default()
            },
            churn: Some(ChurnConfig::default()),
            ..Default::default()
        },
        &tele,
    );
    let snap = tele.snapshot();
    assert_eq!(
        snap.metrics.counter("suspicions_total", &[]),
        report.suspicions
    );
    assert_eq!(snap.metrics.counter("rejoins_total", &[]), report.rejoins);
    assert_eq!(
        snap.metrics.gauge("membership_epoch", &[]),
        Some(report.epoch as f64)
    );
    assert!(snap
        .metrics
        .histogram("reconfiguration_latency", &[])
        .is_some());
}

#[test]
#[should_panic]
fn epoch_faults_without_churn_are_rejected() {
    let _ = run(SimMbConfig {
        plan: FaultPlan {
            epoch_forges: vec![(1.0, 0)],
            ..Default::default()
        },
        ..Default::default()
    });
}

#[test]
fn crashed_process_is_blamed_in_the_flight_dump() {
    // A crash whose reboot lies beyond the horizon wedges the fixed ring:
    // the token can never pass the dead process again. The wedged run must
    // produce a replayable flight dump whose causal graph ends at the
    // culpable process — every live process keeps recording retransmission
    // heartbeats, so the crashed one is the unique stale pid.
    let report = run(SimMbConfig {
        n: 4,
        target_phases: 1_000,
        max_time: 20.0,
        plan: FaultPlan {
            crashes: vec![CrashPlan {
                pid: 2,
                at: 1.0,
                reboot_at: 1e9,
            }],
            ..Default::default()
        },
        ..Default::default()
    });
    assert!(!report.reached_target, "{report:?}");
    let dump = report.flight_dump.as_deref().expect("wedged run dumps");
    let parsed = FlightDump::parse(dump).expect("dump parses");
    parsed.replay().expect("dump replays");
    assert_eq!(parsed.program, "mb_sim");
    assert_eq!(parsed.kind, "wedge");
    assert_eq!(parsed.reason, "max_time");
    assert_eq!(parsed.n, 4);
    assert_eq!(parsed.blamed, Some(2), "the crashed process is the culprit");
    // Its last recorded event predates the crash; every live process's
    // last event is strictly later.
    let last_at = |pid: u32| {
        parsed
            .graph
            .events
            .iter()
            .filter(|e| e.id.pid == pid)
            .map(|e| e.at)
            .fold(f64::NEG_INFINITY, f64::max)
    };
    for pid in [0, 1, 3] {
        assert!(last_at(pid) > last_at(2), "p{pid} went stale before p2");
    }

    // A healthy run dumps nothing.
    let ok = run(SimMbConfig {
        n: 4,
        target_phases: 5,
        ..Default::default()
    });
    assert!(ok.reached_target);
    assert!(ok.flight_dump.is_none());
}
