//! Reproducibility: a run is a pure function of (protocol, seed, config).
//! Every stochastic choice flows through the seeded RNG, so identical seeds
//! give identical traces, and different seeds genuinely differ.

use ftbarrier_gcs::fault::{FaultAction, NoFaults, PoissonFaults, VictimPolicy};
use ftbarrier_gcs::*;
use proptest::prelude::*;

/// Dijkstra's K-state ring (the same protocol as the crate's unit tests,
/// reconstructed here since test utilities are crate-private).
struct Ring {
    n: usize,
    k: u64,
    cost: Time,
}

impl Protocol for Ring {
    type State = u64;
    fn num_processes(&self) -> usize {
        self.n
    }
    fn num_actions(&self, _p: Pid) -> usize {
        1
    }
    fn action_name(&self, pid: Pid, _a: ActionId) -> &'static str {
        if pid == 0 {
            "bottom"
        } else {
            "other"
        }
    }
    fn enabled(&self, g: &[u64], p: Pid, _a: ActionId) -> bool {
        if p == 0 {
            g[0] == g[self.n - 1]
        } else {
            g[p] != g[p - 1]
        }
    }
    fn execute(&self, g: &[u64], p: Pid, _a: ActionId, _r: &mut SimRng) -> u64 {
        if p == 0 {
            (g[0] + 1) % self.k
        } else {
            g[p - 1]
        }
    }
    fn cost(&self, _p: Pid, _a: ActionId) -> Time {
        self.cost
    }
    fn initial_state(&self) -> Vec<u64> {
        vec![0; self.n]
    }
    fn arbitrary_state(&self, _p: Pid, r: &mut SimRng) -> u64 {
        r.range_u64(0, self.k)
    }
}

struct Zap;
impl FaultAction<u64> for Zap {
    fn kind(&self) -> FaultKind {
        FaultKind::Undetectable
    }
    fn apply(&self, _p: Pid, s: &mut u64, rng: &mut SimRng) {
        *s = rng.range_u64(0, 100);
    }
}

fn run_fingerprint(seed: u64, fault_seed_offset: u64) -> (Vec<u64>, u64, u64, String) {
    let ring = Ring {
        n: 6,
        k: 13,
        cost: Time::new(0.25),
    };
    let mut engine = Engine::new(&ring, seed);
    let mut trace: Trace<u64> = Trace::unbounded();
    let mut faults = PoissonFaults::with_frequency(0.3, VictimPolicy::Random, Zap);
    let config = EngineConfig {
        seed: seed + fault_seed_offset,
        max_time: Some(Time::new(40.0)),
        ..Default::default()
    };
    let out = engine.run(&config, &mut faults, &mut trace);
    let log: String = trace
        .events()
        .map(|e| format!("{:?}@{:?};", e.pid(), e.time()))
        .collect();
    (
        engine.global().to_vec(),
        out.stats.actions_executed,
        out.stats.faults,
        log,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24 })]

    /// Same seed ⇒ byte-identical trace, final state, and statistics.
    #[test]
    fn identical_seeds_identical_runs(seed in 0u64..10_000) {
        let a = run_fingerprint(seed, 0);
        let b = run_fingerprint(seed, 0);
        prop_assert_eq!(a, b);
    }

    /// The untimed executor is equally deterministic.
    #[test]
    fn interleaving_is_deterministic(seed in 0u64..10_000) {
        let ring = Ring { n: 5, k: 11, cost: Time::ZERO };
        let run = |seed| {
            let mut exec = Interleaving::new(
                &ring,
                InterleavingConfig { seed, ..Default::default() },
            );
            exec.perturb_all();
            exec.run(500, &mut NullMonitor);
            (exec.global().to_vec(), exec.stats().count_of("bottom"))
        };
        prop_assert_eq!(run(seed), run(seed));
    }
}

#[test]
fn different_seeds_differ_somewhere() {
    // Not a theorem, but over 20 seeds the traces must not all collide.
    let distinct: std::collections::HashSet<String> =
        (0..20).map(|s| run_fingerprint(s, 0).3).collect();
    assert!(
        distinct.len() > 15,
        "only {} distinct traces",
        distinct.len()
    );
}

#[test]
fn fault_free_timed_run_is_schedule_invariant() {
    // Without faults and with deterministic guards, the engine's outcome
    // depends only on the protocol (the RNG is only consulted for
    // tie-breaks that don't exist here).
    let ring = Ring {
        n: 4,
        k: 9,
        cost: Time::new(1.0),
    };
    let mut finals = Vec::new();
    for seed in 0..10 {
        let mut engine = Engine::new(&ring, seed);
        let config = EngineConfig {
            max_time: Some(Time::new(25.0)),
            ..Default::default()
        };
        engine.run(&config, &mut NoFaults, &mut NullMonitor);
        finals.push(engine.global().to_vec());
    }
    assert!(finals.windows(2).all(|w| w[0] == w[1]));
}
