//! Worker-count policy, shared by every parallel component.
//!
//! Both the experiment fan-out in `ftbarrier-bench` and the sharded dense
//! engine ([`crate::dense_engine::DenseEngine`]) honor the same environment
//! variable, `FTBARRIER_WORKERS`, through the same parsing and validation
//! rules — a typo must not silently fall back to the detected core count,
//! and the two layers must never disagree about what a given value means.

/// Detected hardware parallelism, with a serial fallback when the platform
/// cannot answer (the same `1` a one-core container reports).
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Parse an `FTBARRIER_WORKERS` value: a positive integer, or a clear error
/// (a typo must not silently fall back to the detected core count).
///
/// Values above the detected core count are accepted — oversubscription is a
/// legitimate request (e.g. exercising the sharded engine's merge logic on a
/// small machine); consumers that cannot use the surplus clamp it themselves.
pub fn parse_workers(raw: &str) -> Result<usize, String> {
    match raw.trim().parse::<usize>() {
        Ok(0) => Err(format!(
            "FTBARRIER_WORKERS must be a positive integer, got `{raw}` (use 1 for the serial path)"
        )),
        Ok(n) => Ok(n),
        Err(_) => Err(format!(
            "FTBARRIER_WORKERS must be a positive integer, got `{raw}`"
        )),
    }
}

/// Number of worker threads to fan work across.
///
/// `FTBARRIER_WORKERS` overrides the detected core count (set it to 1 to
/// force the serial path, e.g. when timing a single cell). An invalid value
/// is a configuration error and panics rather than being silently ignored.
pub fn worker_count() -> usize {
    if let Ok(v) = std::env::var("FTBARRIER_WORKERS") {
        return parse_workers(&v).unwrap_or_else(|e| panic!("{e}"));
    }
    available_parallelism()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_positive_integers() {
        assert_eq!(parse_workers("1"), Ok(1));
        assert_eq!(parse_workers("8"), Ok(8));
        assert_eq!(
            parse_workers(" 4 "),
            Ok(4),
            "surrounding whitespace is fine"
        );
    }

    #[test]
    fn rejects_zero_and_garbage() {
        for bad in ["0", "", "abc", "-2", "3.5", "4x"] {
            let err = parse_workers(bad).unwrap_err();
            assert!(
                err.contains("FTBARRIER_WORKERS") && err.contains(bad),
                "error for `{bad}` must name the variable and echo the value: {err}"
            );
        }
    }

    #[test]
    fn accepts_over_core_values() {
        // Oversubscription is allowed: consumers clamp where it matters
        // (the sharded engine clamps to its shard count), but the parse
        // itself must not second-guess an explicit request.
        let cores = available_parallelism();
        assert_eq!(parse_workers(&format!("{}", cores * 64)), Ok(cores * 64));
        assert_eq!(parse_workers("4096"), Ok(4096));
    }

    #[test]
    fn worker_count_is_positive() {
        assert!(worker_count() >= 1);
    }

    #[test]
    fn available_parallelism_is_positive() {
        assert!(available_parallelism() >= 1);
    }
}
