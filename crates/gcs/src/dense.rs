//! Opt-in struct-of-arrays extension of [`Protocol`].
//!
//! The classic [`crate::engine::Engine`] simulates over an array-of-structs
//! `Vec<P::State>`: every guard evaluation chases `Vec<Vec<_>>` adjacency and
//! loads whole state structs, and every commit clones a `P::State` through
//! the `updates: Vec<(Pid, ActionId, P::State)>` scratch vector. That layout
//! tops out around N=10³. A [`DenseProtocol`] instead exposes the global
//! state as a set of parallel flat arrays (`sn: Vec<u64>`, `cp: Vec<u8>`,
//! `ph: Vec<u32>`, …) behind the [`DenseState`] trait, so guard evaluation
//! is cache-linear and the sharded engine
//! ([`crate::dense_engine::DenseEngine`]) can split the arrays into
//! contiguous pid ranges that different workers own.
//!
//! The extension is strictly opt-in: `DenseProtocol: Protocol`, and the
//! dense guard/statement methods must agree exactly with their slice-based
//! counterparts — `dense_enabled(d, p, a) == enabled(&d.to_states(), p, a)`
//! and likewise for `dense_execute` (including the order of RNG draws).
//! The differential test suite holds every implementation to this.
//!
//! Monitors and fault plans read/write global state too, so they get dense
//! counterparts ([`DenseMonitor`], [`DenseFaultPlan`]) with the same
//! callback order and RNG discipline as the slice versions.

use crate::fault::{FaultHit, FaultKind};
use crate::protocol::{ActionId, Pid, Protocol};
use crate::rng::SimRng;
use crate::time::Time;

/// A dense (typically struct-of-arrays) encoding of a global state
/// `Vec<Elem>`. Element access by pid must round-trip exactly:
/// `from_states(&v).get(p) == v[p]` for all `p`.
pub trait DenseState: Send + Sync {
    /// The per-process state this encodes (the protocol's `State`).
    type Elem: Copy + PartialEq + std::fmt::Debug + Send + Sync;

    /// Pack a global state vector into the dense layout.
    fn from_states(states: &[Self::Elem]) -> Self;

    /// Number of processes.
    fn len(&self) -> usize;

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Read process `pid`'s state back out of the arrays.
    fn get(&self, pid: Pid) -> Self::Elem;

    /// Overwrite process `pid`'s state.
    fn set(&mut self, pid: Pid, value: Self::Elem);

    /// Unpack into the array-of-structs form the slice-based APIs use.
    fn to_states(&self) -> Vec<Self::Elem> {
        (0..self.len()).map(|p| self.get(p)).collect()
    }
}

/// Fallback dense encoding: the array-of-structs layout itself. Gives any
/// `Copy`-state protocol access to the sharded engine without committing to
/// a struct-of-arrays split (no locality win, but the sharding still works).
impl<S: Copy + PartialEq + std::fmt::Debug + Send + Sync> DenseState for Vec<S> {
    type Elem = S;

    fn from_states(states: &[S]) -> Self {
        states.to_vec()
    }

    fn len(&self) -> usize {
        <[S]>::len(self)
    }

    fn get(&self, pid: Pid) -> S {
        self[pid]
    }

    fn set(&mut self, pid: Pid, value: S) {
        self[pid] = value;
    }

    fn to_states(&self) -> Vec<S> {
        self.clone()
    }
}

/// A [`Protocol`] that can evaluate guards and statements directly against a
/// dense state, without materializing `Vec<State>`.
///
/// Contract: for every reachable dense state `d`,
/// `dense_enabled(d, p, a) == enabled(&d.to_states(), p, a)` and
/// `dense_execute(d, p, a, rng) == execute(&d.to_states(), p, a, rng)`
/// with identical RNG draw sequences. The engine relies on this to keep the
/// dense trace byte-identical to the classic engine's.
pub trait DenseProtocol: Protocol<State: Copy + Send + Sync> + Sync {
    /// The dense encoding of this protocol's global state.
    type Dense: DenseState<Elem = Self::State>;

    /// Guard of `(pid, action)` against the dense state.
    fn dense_enabled(&self, dense: &Self::Dense, pid: Pid, action: ActionId) -> bool;

    /// Statement of `(pid, action)`: the new state for `pid`.
    fn dense_execute(
        &self,
        dense: &Self::Dense,
        pid: Pid,
        action: ActionId,
        rng: &mut SimRng,
    ) -> Self::State;

    /// Push the ids of all enabled actions at `pid`, ascending. Protocols
    /// override this with a fused single-pass evaluation (one load of the
    /// neighborhood instead of one per action).
    fn dense_enabled_actions(&self, dense: &Self::Dense, pid: Pid, out: &mut Vec<ActionId>) {
        out.clear();
        for a in 0..self.num_actions(pid) {
            if self.dense_enabled(dense, pid, a) {
                out.push(a);
            }
        }
    }
}

/// Observer hooks for the dense engine; mirrors [`crate::monitor::Monitor`]
/// with the global state passed in its dense form.
pub trait DenseMonitor<P: DenseProtocol + ?Sized> {
    /// Called once per committed transition, after the whole step's writes
    /// are applied, in ascending pid order within the step.
    #[allow(clippy::too_many_arguments)]
    fn on_transition(
        &mut self,
        now: Time,
        pid: Pid,
        action: ActionId,
        name: &'static str,
        old: &P::State,
        new: &P::State,
        dense: &P::Dense,
    );

    /// Called when a fault hits, after its write is applied.
    fn on_fault(
        &mut self,
        _now: Time,
        _pid: Pid,
        _kind: FaultKind,
        _old: &P::State,
        _new: &P::State,
        _dense: &P::Dense,
    ) {
    }

    /// Checked after every step and fault; `true` stops the run.
    fn should_stop(&mut self) -> bool {
        false
    }
}

impl<P: DenseProtocol + ?Sized> DenseMonitor<P> for crate::monitor::NullMonitor {
    fn on_transition(
        &mut self,
        _now: Time,
        _pid: Pid,
        _action: ActionId,
        _name: &'static str,
        _old: &P::State,
        _new: &P::State,
        _dense: &P::Dense,
    ) {
    }
}

/// Fault injection against a dense state; mirrors
/// [`crate::fault::FaultPlan`] with identical RNG draw order so fault
/// schedules match the classic engine draw for draw.
pub trait DenseFaultPlan<D: DenseState> {
    /// Earliest pending fault time at or after `now`, if any.
    fn peek(&mut self, now: Time, rng: &mut SimRng) -> Option<Time>;

    /// Fire the fault due at `at`: mutate the dense state, push every pid
    /// whose state changed into `touched`, and report the hit.
    fn fire(
        &mut self,
        at: Time,
        dense: &mut D,
        rng: &mut SimRng,
        touched: &mut Vec<Pid>,
    ) -> FaultHit<D::Elem>;
}

impl<D: DenseState> DenseFaultPlan<D> for crate::fault::NoFaults {
    fn peek(&mut self, _now: Time, _rng: &mut SimRng) -> Option<Time> {
        None
    }

    fn fire(
        &mut self,
        _at: Time,
        _dense: &mut D,
        _rng: &mut SimRng,
        _touched: &mut Vec<Pid>,
    ) -> FaultHit<D::Elem> {
        unreachable!("NoFaults::fire called, but peek never schedules one")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_dense_round_trips() {
        let states = vec![3u64, 1, 4, 1, 5];
        let mut d = <Vec<u64> as DenseState>::from_states(&states);
        assert_eq!(DenseState::len(&d), 5);
        assert!(!DenseState::is_empty(&d));
        assert_eq!(d.get(2), 4);
        d.set(2, 9);
        assert_eq!(d.get(2), 9);
        assert_eq!(d.to_states(), vec![3, 1, 9, 1, 5]);
    }
}
