//! Guarded-command simulation substrate — a reimplementation of the modeling
//! power of SIEFAST, the simulator used in Kulkarni & Arora's ICPP 1998 paper
//! *Low-cost Fault-tolerance in Barrier Synchronizations*.
//!
//! Programs are expressed exactly as in the paper: each process owns a finite
//! state and a finite set of guarded actions `⟨name⟩ :: ⟨guard⟩ → ⟨statement⟩`.
//! A guard may read the state of any process (the refinements in the paper
//! restrict *which* processes a guard reads; this crate does not need to know),
//! while a statement updates only the state of its own process.
//!
//! Two execution semantics are provided, matching §2 and §6 of the paper:
//!
//! * [`interleave::Interleaving`] — the classic *weakly fair interleaving*
//!   semantics used for the correctness arguments: in every step one enabled
//!   action executes atomically, and every continuously enabled action is
//!   eventually chosen.
//! * [`engine::Engine`] — the *maximal parallelism* semantics with per-action
//!   real-time costs used for the performance evaluation (§6): "in each step
//!   every process executes one of its enabled actions unless all its actions
//!   are disabled", where each action takes a configurable amount of real time.
//!
//! Faults are modeled as the paper models them — extra actions that perturb a
//! process's state — and are injected by a [`fault::FaultPlan`] (Poisson
//! arrivals reproducing the paper's `(1-f)^d` survival function, scripted
//! schedules, or one-shot arbitrary perturbations).

pub mod byzantine;
pub mod causal;
pub mod dense;
pub mod dense_engine;
pub mod engine;
pub mod explore;
pub mod fault;
pub mod interleave;
pub mod mask;
pub mod monitor;
pub mod protocol;
pub mod rng;
pub mod stats;
pub mod telemetry;
pub mod time;
pub mod trace;
pub mod workers;

pub use byzantine::{ByzantineFaults, ByzantineProcess};
pub use causal::{CausalMonitor, CausalPhaseProjector};
pub use dense::{DenseFaultPlan, DenseMonitor, DenseProtocol, DenseState};
pub use dense_engine::{DenseEngine, DenseEngineConfig};
pub use engine::{Engine, EngineConfig, RunOutcome, StopReason};
pub use explore::{
    universe, CheckFailure, CounterExample, Exploration, Explorer, NotClosed, StabilizationReport,
    StuckKind,
};
pub use fault::{
    rate_for_frequency, FaultAction, FaultHit, FaultKind, FaultPlan, PoissonFaults, ScriptedFault,
    ScriptedFaults, VictimPolicy,
};
pub use interleave::{ChoicePolicy, Interleaving, InterleavingConfig};
pub use mask::Masked;
pub use monitor::{Monitor, MonitorSet, NullMonitor};
pub use protocol::{ActionId, Pid, Protocol, ReaderSet};
pub use rng::SimRng;
pub use stats::RunStats;
pub use telemetry::{PhaseProjector, TelemetryMonitor};
pub use time::Time;
pub use trace::{Trace, TraceEvent};
pub use workers::{available_parallelism, parse_workers, worker_count};
