//! Sharded timed engine over struct-of-arrays state.
//!
//! [`DenseEngine`] is the [`crate::engine::Engine`] rebuilt for scale: the
//! global state lives in a [`DenseState`] (typically parallel flat arrays),
//! and the pid range is partitioned into contiguous **shards**, each owning
//! its own dirty set, commit heap, and scratch buffers. One round of the
//! event loop runs four phases:
//!
//! 1. **Schedule** — every shard with dirty pids re-evaluates guards and
//!    commits single-enabled actions locally. Multi-enabled pids are *not*
//!    resolved here: their candidate sets are parked in a per-shard buffer.
//! 2. **Resolve** — the coordinator walks shards in ascending order and
//!    draws every parked nondeterministic choice from the single *control*
//!    RNG stream, in ascending pid order.
//! 3. **Commit** — the earliest maturing commit time is the min over the
//!    per-shard heaps; every shard due at that instant pops its equal-time
//!    batch and computes updates against the pre-step state.
//! 4. **Apply/merge** — the coordinator applies all writes, then fires
//!    monitor callbacks shard-by-shard in ascending order.
//!
//! # Determinism
//!
//! The committed trace is **byte-identical to the classic serial engine for
//! any worker count**, and this is what the differential test suite pins:
//!
//! * Shards are contiguous ascending pid ranges, and each shard's heap pops
//!   equal-time entries in ascending pid order, so concatenating due shards
//!   in index order reproduces the classic engine's global ascending batch.
//! * All nondeterminism the classic engine feeds from its single RNG —
//!   multi-enabled action choices, fault arrival/victim draws, and
//!   [`DenseEngine::perturb_all`] — is fed from one *control* stream seeded
//!   exactly like `Engine::new`, consumed in the classic engine's order.
//!   Deferring choice draws to the resolve phase is sound because
//!   single-enabled commits draw nothing, so the draw sequence is the
//!   ascending multi-enabled pids either way.
//! * Each shard additionally owns an *execution* RNG (seeded from the root
//!   seed plus the shard id) used only for statement draws. Every protocol
//!   in this repository has deterministic statements, so classic and dense
//!   runs match exactly; a protocol with randomized statements would still
//!   be deterministic across worker counts (the stream depends on the shard
//!   partition, not on which thread runs it).
//! * Worker threads only ever run the embarrassingly parallel phases
//!   (schedule, commit) on disjoint shards behind barriers; every
//!   cross-shard effect (choice resolution, fault injection, write
//!   application, monitor callbacks, dirty marks) happens on the
//!   coordinator between barriers. Whether a phase runs inline or on
//!   workers is a pure routing decision (`parallel_threshold`) with no
//!   observable effect.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Barrier, Mutex, RwLock};

use crate::dense::{DenseFaultPlan, DenseMonitor, DenseProtocol, DenseState};
use crate::engine::{RunOutcome, StopReason};
use crate::protocol::{ActionId, Pid, ReaderSet};
use crate::rng::SimRng;
use crate::stats::RunStats;
use crate::time::Time;
use crate::workers;

/// Configuration of a [`DenseEngine`] run. Mirrors
/// [`crate::engine::EngineConfig`] plus the sharding knobs.
#[derive(Debug, Clone)]
pub struct DenseEngineConfig {
    /// Stop when simulation time reaches this horizon.
    pub max_time: Option<Time>,
    /// Stop after this many committed actions.
    pub max_commits: Option<u64>,
    /// Force the reference scheduler that rescans every guard after every
    /// event. Byte-identical to the incremental scheduler; for tests.
    pub full_rescan: bool,
    /// Worker threads. `Some(1)` (the default) runs everything on the
    /// calling thread; `None` resolves via [`workers::worker_count`]
    /// (honoring `FTBARRIER_WORKERS`). Always clamped to the shard count.
    pub workers: Option<usize>,
    /// Minimum number of shards with work in a phase before that phase is
    /// dispatched to workers instead of run inline; purely a routing
    /// decision, results are identical either way.
    pub parallel_threshold: usize,
}

impl Default for DenseEngineConfig {
    fn default() -> Self {
        DenseEngineConfig {
            max_time: None,
            max_commits: Some(100_000_000),
            full_rescan: false,
            workers: Some(1),
            parallel_threshold: 2,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Pending {
    action: ActionId,
    at: Time,
}

/// Flat CSR form of the reader table: `dat[off[q]..off[q+1]]` are the sorted
/// pids whose guards read q's state (including q itself).
struct ReaderCsr {
    off: Vec<u32>,
    dat: Vec<u32>,
}

/// Work-queue item broadcast to workers between barriers.
#[derive(Debug, Clone, Copy)]
enum Job {
    Idle,
    Schedule { now: Time },
    Commit { at: Time },
    Exit,
}

/// One contiguous pid range with its own scheduling state. All per-pid
/// vectors are indexed by `pid - lo`.
struct Shard<P: DenseProtocol> {
    lo: Pid,
    hi: Pid,
    pending: Vec<Option<Pending>>,
    commits: BinaryHeap<Reverse<(Time, Pid)>>,
    dirty_flag: Vec<bool>,
    dirty_list: Vec<Pid>,
    /// Statement-draw stream for this shard (root seed + shard id).
    exec_rng: SimRng,
    /// Multi-enabled pids found by the last schedule pass, with their
    /// candidate actions parked in `choice_buf[off..off+len]`, awaiting a
    /// control-stream draw by the coordinator.
    choices: Vec<(Pid, u32, u32)>,
    choice_buf: Vec<ActionId>,
    batch: Vec<Pid>,
    updates: Vec<(Pid, ActionId, P::State)>,
    dropped: Vec<Pid>,
    scratch: Vec<ActionId>,
}

impl<P: DenseProtocol> Shard<P> {
    fn new(lo: Pid, hi: Pid, exec_seed: u64) -> Self {
        let size = hi - lo;
        Shard {
            lo,
            hi,
            pending: vec![None; size],
            commits: BinaryHeap::with_capacity(size),
            dirty_flag: vec![false; size],
            dirty_list: Vec::with_capacity(size),
            exec_rng: SimRng::seed_from_u64(exec_seed),
            choices: Vec::new(),
            choice_buf: Vec::new(),
            batch: Vec::new(),
            updates: Vec::new(),
            dropped: Vec::new(),
            scratch: Vec::new(),
        }
    }

    /// Dirty-mark `pid`; returns true iff the dirty list just became
    /// non-empty (the caller then registers the shard as active).
    fn mark(&mut self, pid: Pid) -> bool {
        let i = pid - self.lo;
        if self.dirty_flag[i] {
            return false;
        }
        self.dirty_flag[i] = true;
        self.dirty_list.push(pid);
        self.dirty_list.len() == 1
    }

    fn clear_pending(&mut self, pid: Pid) {
        self.pending[pid - self.lo] = None;
    }

    /// Schedule commits for idle dirty pids (or every pid when
    /// `!incremental`), in ascending pid order — same order, and hence same
    /// deferred-choice sequence, as the classic engine.
    fn schedule(&mut self, protocol: &P, dense: &P::Dense, now: Time, incremental: bool) {
        self.choices.clear();
        self.choice_buf.clear();
        if incremental {
            self.dirty_list.sort_unstable();
            let mut i = 0;
            while i < self.dirty_list.len() {
                let pid = self.dirty_list[i];
                i += 1;
                self.dirty_flag[pid - self.lo] = false;
                if self.pending[pid - self.lo].is_none() {
                    self.try_commit(protocol, dense, now, pid);
                }
            }
            self.dirty_list.clear();
        } else {
            for pid in self.lo..self.hi {
                self.dirty_flag[pid - self.lo] = false;
                if self.pending[pid - self.lo].is_none() {
                    self.try_commit(protocol, dense, now, pid);
                }
            }
            self.dirty_list.clear();
        }
    }

    fn try_commit(&mut self, protocol: &P, dense: &P::Dense, now: Time, pid: Pid) {
        protocol.dense_enabled_actions(dense, pid, &mut self.scratch);
        match self.scratch.len() {
            0 => {}
            1 => {
                let action = self.scratch[0];
                let at = now + protocol.cost(pid, action);
                self.pending[pid - self.lo] = Some(Pending { action, at });
                self.commits.push(Reverse((at, pid)));
            }
            len => {
                // Park the candidate set; the coordinator draws from the
                // control stream in global ascending pid order.
                let off = self.choice_buf.len() as u32;
                self.choice_buf.extend_from_slice(&self.scratch);
                self.choices.push((pid, off, len as u32));
            }
        }
    }

    /// Earliest live commit, discarding stale heap entries from the top.
    fn earliest(&mut self) -> Option<Time> {
        while let Some(&Reverse((at, pid))) = self.commits.peek() {
            if matches!(self.pending[pid - self.lo], Some(p) if p.at == at) {
                return Some(at);
            }
            self.commits.pop();
        }
        None
    }

    /// Pop the equal-time batch maturing at `at`; returns its size.
    fn pop_batch(&mut self, at: Time) -> usize {
        self.batch.clear();
        while let Some(&Reverse((t, pid))) = self.commits.peek() {
            if t != at {
                break;
            }
            self.commits.pop();
            if matches!(self.pending[pid - self.lo], Some(p) if p.at == t) {
                self.batch.push(pid);
            }
        }
        self.batch.len()
    }

    /// Re-check guards and compute updates for the popped batch against the
    /// pre-step state. Guard failures land in `dropped`.
    fn compute(&mut self, protocol: &P, dense: &P::Dense) {
        self.updates.clear();
        self.dropped.clear();
        let mut i = 0;
        while i < self.batch.len() {
            let pid = self.batch[i];
            i += 1;
            let Some(p) = self.pending[pid - self.lo].take() else {
                continue; // duplicate heap entry already consumed
            };
            if protocol.dense_enabled(dense, pid, p.action) {
                let new = protocol.dense_execute(dense, pid, p.action, &mut self.exec_rng);
                self.updates.push((pid, p.action, new));
            } else {
                self.dropped.push(pid);
            }
        }
    }
}

fn shard_of(starts: &[Pid], pid: Pid) -> usize {
    starts.partition_point(|&s| s <= pid) - 1
}

fn min_opt(a: Option<Time>, b: Option<Time>) -> Option<Time> {
    match (a, b) {
        (None, x) | (x, None) => x,
        (Some(x), Some(y)) => Some(x.min(y)),
    }
}

fn mark_stale(stale: &mut Vec<usize>, stale_flag: &mut [bool], s: usize) {
    if !stale_flag[s] {
        stale_flag[s] = true;
        stale.push(s);
    }
}

fn mark_pid<P: DenseProtocol>(
    shards: &mut [Shard<P>],
    starts: &[Pid],
    active: &mut Vec<usize>,
    active_flag: &mut [bool],
    pid: Pid,
) {
    let s = shard_of(starts, pid);
    if shards[s].mark(pid) && !active_flag[s] {
        active_flag[s] = true;
        active.push(s);
    }
}

fn mark_readers<P: DenseProtocol>(
    readers: Option<&ReaderCsr>,
    shards: &mut [Shard<P>],
    starts: &[Pid],
    active: &mut Vec<usize>,
    active_flag: &mut [bool],
    pid: Pid,
) {
    let Some(csr) = readers else { return };
    let lo = csr.off[pid] as usize;
    let hi = csr.off[pid + 1] as usize;
    for i in lo..hi {
        let r = csr.dat[i] as usize;
        let s = shard_of(starts, r);
        if shards[s].mark(r) && !active_flag[s] {
            active_flag[s] = true;
            active.push(s);
        }
    }
}

fn mark_pid_locked<P: DenseProtocol>(
    cells: &[Mutex<&mut Shard<P>>],
    starts: &[Pid],
    active: &mut Vec<usize>,
    active_flag: &mut [bool],
    pid: Pid,
) {
    let s = shard_of(starts, pid);
    if cells[s].lock().unwrap().mark(pid) && !active_flag[s] {
        active_flag[s] = true;
        active.push(s);
    }
}

fn mark_readers_locked<P: DenseProtocol>(
    readers: Option<&ReaderCsr>,
    cells: &[Mutex<&mut Shard<P>>],
    starts: &[Pid],
    active: &mut Vec<usize>,
    active_flag: &mut [bool],
    pid: Pid,
) {
    let Some(csr) = readers else { return };
    let lo = csr.off[pid] as usize;
    let hi = csr.off[pid + 1] as usize;
    for i in lo..hi {
        mark_pid_locked(cells, starts, active, active_flag, csr.dat[i] as usize);
    }
}

/// Draw every parked choice of one shard from the control stream (ascending
/// pid within the shard; the caller walks shards in ascending order).
fn resolve_choices<P: DenseProtocol>(
    protocol: &P,
    shard: &mut Shard<P>,
    control: &mut SimRng,
    now: Time,
) {
    let mut i = 0;
    while i < shard.choices.len() {
        let (pid, off, len) = shard.choices[i];
        i += 1;
        let action = *control.choose(&shard.choice_buf[off as usize..(off + len) as usize]);
        let at = now + protocol.cost(pid, action);
        shard.pending[pid - shard.lo] = Some(Pending { action, at });
        shard.commits.push(Reverse((at, pid)));
    }
    shard.choices.clear();
    shard.choice_buf.clear();
}

/// Swap each update's new state in; the slot then holds the *old* state for
/// the monitor callbacks.
fn apply_writes<P: DenseProtocol>(dense: &mut P::Dense, updates: &mut [(Pid, ActionId, P::State)]) {
    for u in updates.iter_mut() {
        let old = dense.get(u.0);
        dense.set(u.0, u.2);
        u.2 = old;
    }
}

/// Fire monitor callbacks and count actions for one shard's applied updates.
#[allow(clippy::too_many_arguments)]
fn notify_shard<P: DenseProtocol>(
    protocol: &P,
    dense: &P::Dense,
    updates: &[(Pid, ActionId, P::State)],
    now: Time,
    action_counts: &mut [u64],
    action_offsets: &[usize],
    stats: &mut RunStats,
    monitor: &mut dyn DenseMonitor<P>,
) {
    for u in updates {
        let (pid, action) = (u.0, u.1);
        let old = &u.2;
        action_counts[action_offsets[pid] + action] += 1;
        stats.actions_executed += 1;
        let name = protocol.action_name(pid, action);
        let new = dense.get(pid);
        monitor.on_transition(now, pid, action, name, old, &new, dense);
    }
}

fn exec_seed(seed: u64, shard: u64) -> u64 {
    (seed ^ 0x9E37_79B9_7F4A_7C15).wrapping_add(shard.wrapping_mul(0x2545_F491_4F6C_DD1D))
}

/// Default shard count: serial below 4096 pids (a single shard is exactly
/// the classic engine's bookkeeping), then roughly one shard per 16k pids,
/// capped at 64. Deterministic in `n` only — never a function of the worker
/// count, so the shard partition (and with it any statement-draw stream) is
/// machine-independent.
fn auto_shards(n: usize) -> usize {
    if n < 4096 {
        1
    } else {
        (n / 16384 + 1).min(64)
    }
}

/// The sharded struct-of-arrays engine. See the module docs for the round
/// structure and the determinism argument.
pub struct DenseEngine<'p, P: DenseProtocol> {
    protocol: &'p P,
    dense: P::Dense,
    n: usize,
    seed: u64,
    now: Time,
    /// The classic engine's RNG: choices, fault draws, perturbations.
    control: SimRng,
    shards: Vec<Shard<P>>,
    /// Shard boundaries: `shards[s]` owns `starts[s]..starts[s+1]`.
    starts: Vec<Pid>,
    readers: Option<ReaderCsr>,
    /// Shards with non-empty dirty lists (list + flag, like the dirty set).
    active: Vec<usize>,
    active_flag: Vec<bool>,
    /// Cached earliest live commit per shard, recomputed only for shards
    /// whose heap or pending slots changed since the last round.
    next_at: Vec<Option<Time>>,
    stale: Vec<usize>,
    stale_flag: Vec<bool>,
    /// Scratch: shards due at the current event time / scheduled this round.
    due: Vec<usize>,
    scheduled: Vec<usize>,
    touched: Vec<Pid>,
    action_counts: Vec<u64>,
    action_offsets: Vec<usize>,
}

impl<'p, P: DenseProtocol> DenseEngine<'p, P> {
    pub fn new(protocol: &'p P, seed: u64) -> Self {
        let states = protocol.initial_state();
        Self::from_state(protocol, seed, states)
    }

    pub fn from_state(protocol: &'p P, seed: u64, states: Vec<P::State>) -> Self {
        assert_eq!(states.len(), protocol.num_processes());
        let n = states.len();

        let mut off = Vec::with_capacity(n + 1);
        let mut dat = Vec::new();
        off.push(0u32);
        let mut complete = true;
        for pid in 0..n {
            match protocol.readers_of(pid) {
                ReaderSet::All => {
                    complete = false;
                    break;
                }
                ReaderSet::These(mut readers) => {
                    readers.push(pid);
                    readers.sort_unstable();
                    readers.dedup();
                    assert!(
                        readers.iter().all(|&r| r < n),
                        "readers_of({pid}) names a pid out of range (n={n})"
                    );
                    dat.extend(readers.iter().map(|&r| r as u32));
                    off.push(dat.len() as u32);
                }
            }
        }

        let mut action_offsets = Vec::with_capacity(n);
        let mut total_actions = 0;
        for pid in 0..n {
            action_offsets.push(total_actions);
            total_actions += protocol.num_actions(pid);
        }

        let mut engine = DenseEngine {
            protocol,
            dense: P::Dense::from_states(&states),
            n,
            seed,
            now: Time::ZERO,
            control: SimRng::seed_from_u64(seed),
            shards: Vec::new(),
            starts: Vec::new(),
            readers: complete.then_some(ReaderCsr { off, dat }),
            active: Vec::new(),
            active_flag: Vec::new(),
            next_at: Vec::new(),
            stale: Vec::new(),
            stale_flag: Vec::new(),
            due: Vec::new(),
            scheduled: Vec::new(),
            touched: Vec::new(),
            action_counts: vec![0; total_actions],
            action_offsets,
        };
        engine.build_shards(auto_shards(n));
        engine
    }

    /// Repartition into `count` contiguous shards (clamped to `1..=n`).
    /// Resets scheduling state; call before running.
    pub fn with_shards(mut self, count: usize) -> Self {
        self.build_shards(count);
        self
    }

    fn build_shards(&mut self, count: usize) {
        let count = count.clamp(1, self.n.max(1));
        let q = self.n / count;
        let rem = self.n % count;
        self.shards.clear();
        self.starts.clear();
        self.starts.push(0);
        let mut lo = 0;
        for s in 0..count {
            let hi = lo + q + usize::from(s < rem);
            self.shards
                .push(Shard::new(lo, hi, exec_seed(self.seed, s as u64)));
            self.starts.push(hi);
            lo = hi;
        }
        debug_assert_eq!(lo, self.n);
        self.active.clear();
        self.active_flag = vec![false; count];
        self.next_at = vec![None; count];
        self.stale.clear();
        self.stale_flag = vec![false; count];
        self.due.clear();
        self.scheduled.clear();
        for s in 0..count {
            let shard = &mut self.shards[s];
            for pid in shard.lo..shard.hi {
                shard.mark(pid);
            }
            if shard.lo < shard.hi {
                self.active_flag[s] = true;
                self.active.push(s);
            }
            self.stale_flag[s] = true;
            self.stale.push(s);
        }
    }

    pub fn now(&self) -> Time {
        self.now
    }

    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    pub fn dense(&self) -> &P::Dense {
        &self.dense
    }

    /// Unpack the global state into the array-of-structs form.
    pub fn global_states(&self) -> Vec<P::State> {
        self.dense.to_states()
    }

    /// The control RNG (the classic engine's `rng()`).
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.control
    }

    pub fn set_state(&mut self, pid: Pid, state: P::State) {
        self.dense.set(pid, state);
        let s = shard_of(&self.starts, pid);
        self.shards[s].clear_pending(pid);
        mark_stale(&mut self.stale, &mut self.stale_flag, s);
        mark_readers(
            self.readers.as_ref(),
            &mut self.shards,
            &self.starts,
            &mut self.active,
            &mut self.active_flag,
            pid,
        );
        mark_pid(
            &mut self.shards,
            &self.starts,
            &mut self.active,
            &mut self.active_flag,
            pid,
        );
    }

    /// Replace every process's state with an arbitrary domain value, drawing
    /// from the control stream in ascending pid order — the identical draws
    /// the classic engine's `perturb_all` makes.
    pub fn perturb_all(&mut self) {
        for pid in 0..self.n {
            let state = self.protocol.arbitrary_state(pid, &mut self.control);
            self.dense.set(pid, state);
        }
        for s in 0..self.shards.len() {
            let shard = &mut self.shards[s];
            for slot in shard.pending.iter_mut() {
                *slot = None;
            }
            for pid in shard.lo..shard.hi {
                shard.mark(pid);
            }
            if !self.active_flag[s] && self.shards[s].lo < self.shards[s].hi {
                self.active_flag[s] = true;
                self.active.push(s);
            }
            mark_stale(&mut self.stale, &mut self.stale_flag, s);
        }
    }

    /// Run until a stop condition; the dense counterpart of
    /// [`crate::engine::Engine::run`].
    pub fn run(
        &mut self,
        config: &DenseEngineConfig,
        faults: &mut dyn DenseFaultPlan<P::Dense>,
        monitor: &mut dyn DenseMonitor<P>,
    ) -> RunOutcome {
        let requested = match config.workers {
            Some(w) => {
                assert!(w >= 1, "DenseEngineConfig.workers must be >= 1");
                w
            }
            None => workers::worker_count(),
        };
        let worker_n = requested.min(self.shards.len());
        self.action_counts.fill(0);
        let (reason, mut stats) = if worker_n <= 1 {
            self.run_serial(config, faults, monitor)
        } else {
            self.run_parallel(config, worker_n, faults, monitor)
        };
        stats.elapsed = self.now;
        for pid in 0..self.n {
            for a in 0..self.protocol.num_actions(pid) {
                let count = self.action_counts[self.action_offsets[pid] + a];
                if count > 0 {
                    stats.add_action_count(self.protocol.action_name(pid, a), count);
                }
            }
        }
        RunOutcome { reason, stats }
    }

    fn run_serial(
        &mut self,
        config: &DenseEngineConfig,
        faults: &mut dyn DenseFaultPlan<P::Dense>,
        monitor: &mut dyn DenseMonitor<P>,
    ) -> (StopReason, RunStats) {
        let incremental = self.readers.is_some() && !config.full_rescan;
        let mut stats = RunStats::default();
        let DenseEngine {
            protocol,
            dense,
            shards,
            starts,
            readers,
            active,
            active_flag,
            next_at,
            stale,
            stale_flag,
            due,
            scheduled,
            touched,
            action_counts,
            action_offsets,
            control,
            now,
            ..
        } = self;
        let protocol: &P = protocol;
        let readers = readers.as_ref();
        let s_count = shards.len();
        let mut drop_scratch: Vec<Pid> = Vec::new();
        let mut writer_scratch: Vec<Pid> = Vec::new();

        let reason = 'run: loop {
            // Phase 1: schedule. Only shards with dirty pids have work;
            // cross-shard order is irrelevant because draws are deferred.
            scheduled.clear();
            if incremental {
                std::mem::swap(active, scheduled);
                for &s in scheduled.iter() {
                    active_flag[s] = false;
                }
                for &s in scheduled.iter() {
                    shards[s].schedule(protocol, dense, *now, true);
                    mark_stale(stale, stale_flag, s);
                }
            } else {
                scheduled.extend(0..s_count);
                for &s in active.iter() {
                    active_flag[s] = false;
                }
                active.clear();
                for &s in scheduled.iter() {
                    shards[s].schedule(protocol, dense, *now, false);
                    mark_stale(stale, stale_flag, s);
                }
            }

            // Phase 2: resolve parked choices in global ascending pid order.
            scheduled.sort_unstable();
            for &s in scheduled.iter() {
                if !shards[s].choices.is_empty() {
                    resolve_choices(protocol, &mut shards[s], control, *now);
                }
            }

            // Refresh the per-shard earliest-commit cache.
            for &s in stale.iter() {
                next_at[s] = shards[s].earliest();
            }
            for &s in stale.iter() {
                stale_flag[s] = false;
            }
            stale.clear();
            let mut next_commit: Option<Time> = None;
            for &at in next_at.iter().take(s_count) {
                next_commit = min_opt(next_commit, at);
            }

            let next_fault = faults.peek(*now, control);

            let next_event = match (next_commit, next_fault) {
                (None, None) => break 'run StopReason::Fixpoint,
                (Some(c), None) => c,
                (None, Some(f)) => f,
                (Some(c), Some(f)) => c.min(f),
            };

            if let Some(horizon) = config.max_time {
                if next_event > horizon {
                    *now = horizon;
                    break 'run StopReason::MaxTime;
                }
            }
            *now = (*now).max(next_event);

            if let Some(f) = next_fault {
                if f <= next_event {
                    touched.clear();
                    let hit = faults.fire(f, dense, control, touched);
                    let vs = shard_of(starts, hit.pid);
                    shards[vs].clear_pending(hit.pid);
                    mark_stale(stale, stale_flag, vs);
                    for &p in touched.iter() {
                        mark_readers(readers, shards, starts, active, active_flag, p);
                    }
                    mark_pid(shards, starts, active, active_flag, hit.pid);
                    stats.faults += 1;
                    let new = dense.get(hit.pid);
                    monitor.on_fault(*now, hit.pid, hit.kind, &hit.old, &new, dense);
                    if monitor.should_stop() {
                        break 'run StopReason::MonitorStop;
                    }
                    continue;
                }
            }

            // Phase 3: pop and compute the equal-time batch, shard by shard.
            due.clear();
            let mut batch_total = 0;
            for s in 0..s_count {
                if next_at[s] == Some(next_event) {
                    let popped = shards[s].pop_batch(next_event);
                    mark_stale(stale, stale_flag, s);
                    if popped > 0 {
                        due.push(s);
                        batch_total += popped;
                    }
                }
            }
            debug_assert!(batch_total > 0, "an event time with no commits");
            for &s in due.iter() {
                shards[s].compute(protocol, dense);
            }

            // Phase 4: apply all writes, then fire callbacks in ascending
            // shard (= ascending pid) order, exactly like the classic apply.
            for &s in due.iter() {
                apply_writes::<P>(dense, &mut shards[s].updates);
            }
            for &s in due.iter() {
                let updates = std::mem::take(&mut shards[s].updates);
                notify_shard(
                    protocol,
                    dense,
                    &updates,
                    *now,
                    action_counts,
                    action_offsets,
                    &mut stats,
                    monitor,
                );
                shards[s].updates = updates;
            }
            drop_scratch.clear();
            writer_scratch.clear();
            for &s in due.iter() {
                drop_scratch.extend_from_slice(&shards[s].dropped);
                writer_scratch.extend(shards[s].updates.iter().map(|u| u.0));
            }
            for &pid in drop_scratch.iter() {
                stats.commits_dropped += 1;
                mark_pid(shards, starts, active, active_flag, pid);
            }
            for &pid in writer_scratch.iter() {
                mark_readers(readers, shards, starts, active, active_flag, pid);
            }

            if monitor.should_stop() {
                break 'run StopReason::MonitorStop;
            }
            if let Some(max) = config.max_commits {
                if stats.actions_executed >= max {
                    break 'run StopReason::MaxCommits;
                }
            }
        };
        (reason, stats)
    }

    fn run_parallel(
        &mut self,
        config: &DenseEngineConfig,
        worker_n: usize,
        faults: &mut dyn DenseFaultPlan<P::Dense>,
        monitor: &mut dyn DenseMonitor<P>,
    ) -> (StopReason, RunStats) {
        let incremental = self.readers.is_some() && !config.full_rescan;
        let threshold = config.parallel_threshold.max(1);
        let mut stats = RunStats::default();
        let DenseEngine {
            protocol,
            dense,
            shards,
            starts,
            readers,
            active,
            active_flag,
            next_at,
            stale,
            stale_flag,
            due,
            scheduled,
            touched,
            action_counts,
            action_offsets,
            control,
            now,
            ..
        } = self;
        let protocol: &P = protocol;
        let readers = readers.as_ref();
        let starts: &[Pid] = starts;
        let s_count = shards.len();
        let mut drop_scratch: Vec<Pid> = Vec::new();
        let mut writer_scratch: Vec<Pid> = Vec::new();

        let cells: Vec<Mutex<&mut Shard<P>>> = shards.iter_mut().map(Mutex::new).collect();
        let dense_cell: RwLock<&mut P::Dense> = RwLock::new(dense);
        let job = Mutex::new(Job::Idle);
        let start_gate = Barrier::new(worker_n + 1);
        let done_gate = Barrier::new(worker_n + 1);
        let poisoned = AtomicBool::new(false);

        let reason = std::thread::scope(|scope| {
            for w in 0..worker_n {
                let cells = &cells;
                let dense_cell = &dense_cell;
                let job = &job;
                let start_gate = &start_gate;
                let done_gate = &done_gate;
                let poisoned = &poisoned;
                scope.spawn(move || loop {
                    start_gate.wait();
                    let j = *job.lock().unwrap();
                    if matches!(j, Job::Exit) {
                        break;
                    }
                    let res = std::panic::catch_unwind(AssertUnwindSafe(|| {
                        let dense_guard = dense_cell.read().unwrap();
                        let dense: &P::Dense = &dense_guard;
                        for s in (w..cells.len()).step_by(worker_n) {
                            let mut shard = cells[s].lock().unwrap();
                            match j {
                                Job::Schedule { now } => {
                                    if !incremental || !shard.dirty_list.is_empty() {
                                        shard.schedule(protocol, dense, now, incremental);
                                    }
                                }
                                Job::Commit { at } => {
                                    if shard.pop_batch(at) > 0 {
                                        shard.compute(protocol, dense);
                                    } else {
                                        shard.updates.clear();
                                        shard.dropped.clear();
                                    }
                                }
                                Job::Idle | Job::Exit => {}
                            }
                        }
                    }));
                    if res.is_err() {
                        poisoned.store(true, Ordering::SeqCst);
                    }
                    done_gate.wait();
                });
            }

            let round = std::panic::catch_unwind(AssertUnwindSafe(|| {
                let dispatch = |j: Job| {
                    *job.lock().unwrap() = j;
                    start_gate.wait();
                    done_gate.wait();
                    if poisoned.load(Ordering::SeqCst) {
                        panic!("a worker thread panicked; aborting the run");
                    }
                };

                'run: loop {
                    // Phase 1: schedule — on workers when enough shards have
                    // work, inline otherwise (identical results either way).
                    scheduled.clear();
                    if incremental {
                        std::mem::swap(active, scheduled);
                        for &s in scheduled.iter() {
                            active_flag[s] = false;
                        }
                    } else {
                        scheduled.extend(0..s_count);
                        for &s in active.iter() {
                            active_flag[s] = false;
                        }
                        active.clear();
                    }
                    if scheduled.len() >= threshold {
                        dispatch(Job::Schedule { now: *now });
                    } else {
                        let dense_guard = dense_cell.read().unwrap();
                        for &s in scheduled.iter() {
                            cells[s].lock().unwrap().schedule(
                                protocol,
                                &dense_guard,
                                *now,
                                incremental,
                            );
                        }
                    }
                    for &s in scheduled.iter() {
                        mark_stale(stale, stale_flag, s);
                    }

                    // Phase 2: resolve choices in global ascending pid order.
                    scheduled.sort_unstable();
                    for &s in scheduled.iter() {
                        let mut shard = cells[s].lock().unwrap();
                        if !shard.choices.is_empty() {
                            resolve_choices(protocol, &mut shard, control, *now);
                        }
                    }

                    for &s in stale.iter() {
                        next_at[s] = cells[s].lock().unwrap().earliest();
                    }
                    for &s in stale.iter() {
                        stale_flag[s] = false;
                    }
                    stale.clear();
                    let mut next_commit: Option<Time> = None;
                    for &at in next_at.iter().take(s_count) {
                        next_commit = min_opt(next_commit, at);
                    }

                    let next_fault = faults.peek(*now, control);

                    let next_event = match (next_commit, next_fault) {
                        (None, None) => break 'run StopReason::Fixpoint,
                        (Some(c), None) => c,
                        (None, Some(f)) => f,
                        (Some(c), Some(f)) => c.min(f),
                    };

                    if let Some(horizon) = config.max_time {
                        if next_event > horizon {
                            *now = horizon;
                            break 'run StopReason::MaxTime;
                        }
                    }
                    *now = (*now).max(next_event);

                    if let Some(f) = next_fault {
                        if f <= next_event {
                            touched.clear();
                            let hit = {
                                let mut dense_guard = dense_cell.write().unwrap();
                                faults.fire(f, &mut dense_guard, control, touched)
                            };
                            let vs = shard_of(starts, hit.pid);
                            cells[vs].lock().unwrap().clear_pending(hit.pid);
                            mark_stale(stale, stale_flag, vs);
                            for &p in touched.iter() {
                                mark_readers_locked(
                                    readers,
                                    &cells,
                                    starts,
                                    active,
                                    active_flag,
                                    p,
                                );
                            }
                            mark_pid_locked(&cells, starts, active, active_flag, hit.pid);
                            stats.faults += 1;
                            {
                                let dense_guard = dense_cell.read().unwrap();
                                let new = dense_guard.get(hit.pid);
                                monitor.on_fault(
                                    *now,
                                    hit.pid,
                                    hit.kind,
                                    &hit.old,
                                    &new,
                                    &dense_guard,
                                );
                            }
                            if monitor.should_stop() {
                                break 'run StopReason::MonitorStop;
                            }
                            continue;
                        }
                    }

                    // Phase 3: pop + compute the batch. Workers visit all
                    // their shards; non-due shards pop nothing.
                    due.clear();
                    for (s, &at) in next_at.iter().enumerate().take(s_count) {
                        if at == Some(next_event) {
                            due.push(s);
                            mark_stale(stale, stale_flag, s);
                        }
                    }
                    debug_assert!(!due.is_empty(), "an event time with no commits");
                    if due.len() >= threshold {
                        dispatch(Job::Commit { at: next_event });
                    } else {
                        let dense_guard = dense_cell.read().unwrap();
                        for &s in due.iter() {
                            let mut shard = cells[s].lock().unwrap();
                            if shard.pop_batch(next_event) > 0 {
                                shard.compute(protocol, &dense_guard);
                            } else {
                                shard.updates.clear();
                                shard.dropped.clear();
                            }
                        }
                    }

                    // Phase 4: merge — apply all writes, then callbacks in
                    // ascending shard order.
                    {
                        let mut dense_guard = dense_cell.write().unwrap();
                        for &s in due.iter() {
                            let mut shard = cells[s].lock().unwrap();
                            apply_writes::<P>(&mut dense_guard, &mut shard.updates);
                        }
                    }
                    {
                        let dense_guard = dense_cell.read().unwrap();
                        for &s in due.iter() {
                            let updates = {
                                let mut shard = cells[s].lock().unwrap();
                                std::mem::take(&mut shard.updates)
                            };
                            notify_shard(
                                protocol,
                                &dense_guard,
                                &updates,
                                *now,
                                action_counts,
                                action_offsets,
                                &mut stats,
                                monitor,
                            );
                            cells[s].lock().unwrap().updates = updates;
                        }
                    }
                    drop_scratch.clear();
                    writer_scratch.clear();
                    for &s in due.iter() {
                        let shard = cells[s].lock().unwrap();
                        drop_scratch.extend_from_slice(&shard.dropped);
                        writer_scratch.extend(shard.updates.iter().map(|u| u.0));
                    }
                    for &pid in drop_scratch.iter() {
                        stats.commits_dropped += 1;
                        mark_pid_locked(&cells, starts, active, active_flag, pid);
                    }
                    for &pid in writer_scratch.iter() {
                        mark_readers_locked(readers, &cells, starts, active, active_flag, pid);
                    }

                    if monitor.should_stop() {
                        break 'run StopReason::MonitorStop;
                    }
                    if let Some(max) = config.max_commits {
                        if stats.actions_executed >= max {
                            break 'run StopReason::MaxCommits;
                        }
                    }
                }
            }));

            // Always release the workers, even when the coordinator
            // panicked (they are parked at the start gate).
            *job.lock().unwrap() = Job::Exit;
            start_gate.wait();
            match round {
                Ok(reason) => reason,
                Err(payload) => std::panic::resume_unwind(payload),
            }
        });
        (reason, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, EngineConfig};
    use crate::fault::{FaultAction, FaultKind, NoFaults, PoissonFaults, VictimPolicy};
    use crate::protocol::testutil::DijkstraRing;
    use crate::protocol::{Protocol, ReaderSet};
    use crate::trace::Trace;

    impl DenseProtocol for DijkstraRing {
        type Dense = Vec<u64>;

        fn dense_enabled(&self, dense: &Vec<u64>, pid: Pid, action: ActionId) -> bool {
            self.enabled(dense, pid, action)
        }

        fn dense_execute(
            &self,
            dense: &Vec<u64>,
            pid: Pid,
            action: ActionId,
            rng: &mut SimRng,
        ) -> u64 {
            self.execute(dense, pid, action, rng)
        }
    }

    /// Undetectable scramble used to exercise the fault path; draws from the
    /// RNG so RNG-order divergence between engines would show immediately.
    struct Scramble;

    impl FaultAction<u64> for Scramble {
        fn kind(&self) -> FaultKind {
            FaultKind::Undetectable
        }
        fn apply(&self, _pid: Pid, state: &mut u64, rng: &mut SimRng) {
            *state = rng.range_u64(0, 1000);
        }
    }

    /// Two-action protocol where both actions are often enabled at once, so
    /// the engines must agree on the nondeterministic-choice draws (the dense
    /// engine defers them to a post-schedule resolve pass).
    struct TwoTick {
        n: usize,
        limit: u64,
    }

    impl Protocol for TwoTick {
        type State = u64;

        fn num_processes(&self) -> usize {
            self.n
        }
        fn num_actions(&self, _pid: Pid) -> usize {
            2
        }
        fn action_name(&self, _pid: Pid, action: ActionId) -> &'static str {
            if action == 0 {
                "tick1"
            } else {
                "tick2"
            }
        }
        fn enabled(&self, global: &[u64], pid: Pid, _action: ActionId) -> bool {
            global[pid] < self.limit
        }
        fn execute(&self, global: &[u64], pid: Pid, action: ActionId, _rng: &mut SimRng) -> u64 {
            global[pid] + if action == 0 { 1 } else { 2 }
        }
        fn cost(&self, _pid: Pid, action: ActionId) -> Time {
            if action == 0 {
                Time::new(0.5)
            } else {
                Time::new(0.75)
            }
        }
        fn initial_state(&self) -> Vec<u64> {
            vec![0; self.n]
        }
        fn arbitrary_state(&self, _pid: Pid, rng: &mut SimRng) -> u64 {
            rng.range_u64(0, self.limit + 2)
        }
        fn readers_of(&self, pid: Pid) -> ReaderSet {
            ReaderSet::These(vec![pid])
        }
    }

    impl DenseProtocol for TwoTick {
        type Dense = Vec<u64>;

        fn dense_enabled(&self, dense: &Vec<u64>, pid: Pid, action: ActionId) -> bool {
            self.enabled(dense, pid, action)
        }
        fn dense_execute(
            &self,
            dense: &Vec<u64>,
            pid: Pid,
            action: ActionId,
            rng: &mut SimRng,
        ) -> u64 {
            self.execute(dense, pid, action, rng)
        }
    }

    fn classic_run<P: DenseProtocol<State = u64>>(
        protocol: &P,
        seed: u64,
        rate: f64,
        perturb: bool,
        max_time: f64,
    ) -> (RunOutcome, Vec<u64>, Trace<u64>) {
        let mut engine = Engine::new(protocol, seed);
        if perturb {
            engine.perturb_all();
        }
        let mut trace = Trace::unbounded();
        let mut faults = PoissonFaults::with_rate(rate, VictimPolicy::Random, Scramble);
        let config = EngineConfig {
            max_time: Some(Time::new(max_time)),
            ..EngineConfig::default()
        };
        let outcome = engine.run(&config, &mut faults, &mut trace);
        (outcome, engine.global().to_vec(), trace)
    }

    fn dense_run<P: DenseProtocol<State = u64>>(
        protocol: &P,
        seed: u64,
        rate: f64,
        perturb: bool,
        max_time: f64,
        shards: usize,
        workers: usize,
    ) -> (RunOutcome, Vec<u64>, Trace<u64>) {
        let mut engine = DenseEngine::new(protocol, seed).with_shards(shards);
        if perturb {
            engine.perturb_all();
        }
        let mut trace = Trace::unbounded();
        let mut faults = PoissonFaults::with_rate(rate, VictimPolicy::Random, Scramble);
        let config = DenseEngineConfig {
            max_time: Some(Time::new(max_time)),
            workers: Some(workers),
            parallel_threshold: 1,
            ..DenseEngineConfig::default()
        };
        let outcome = engine.run(&config, &mut faults, &mut trace);
        (outcome, engine.global_states(), trace)
    }

    fn assert_matches_classic<P: DenseProtocol<State = u64>>(
        protocol: &P,
        rate: f64,
        perturb: bool,
        max_time: f64,
    ) {
        for seed in [3u64, 4] {
            let (c_out, c_state, c_trace) = classic_run(protocol, seed, rate, perturb, max_time);
            for (shards, workers) in [(1usize, 1usize), (3, 1), (3, 2), (5, 4)] {
                let (d_out, d_state, d_trace) =
                    dense_run(protocol, seed, rate, perturb, max_time, shards, workers);
                assert_eq!(
                    c_out, d_out,
                    "outcome diverged (seed {seed}, {shards} shards, {workers} workers)"
                );
                assert_eq!(
                    c_state, d_state,
                    "final state diverged (seed {seed}, {shards} shards, {workers} workers)"
                );
                let c_events: Vec<_> = c_trace.events().collect();
                let d_events: Vec<_> = d_trace.events().collect();
                assert_eq!(
                    c_events, d_events,
                    "trace diverged (seed {seed}, {shards} shards, {workers} workers)"
                );
            }
        }
    }

    #[test]
    fn ring_matches_classic_fault_free() {
        let ring = DijkstraRing {
            n: 17,
            k: 37,
            cost: Time::new(1.0),
        };
        assert_matches_classic(&ring, 0.0, true, 35.0);
    }

    #[test]
    fn ring_matches_classic_under_faults() {
        let ring = DijkstraRing {
            n: 17,
            k: 37,
            cost: Time::new(1.0),
        };
        assert_matches_classic(&ring, 0.5, true, 35.0);
    }

    #[test]
    fn two_tick_matches_classic_with_choice_draws() {
        let tt = TwoTick { n: 13, limit: 40 };
        assert_matches_classic(&tt, 0.0, false, 35.0);
        assert_matches_classic(&tt, 0.4, true, 35.0);
    }

    #[test]
    fn full_rescan_matches_incremental() {
        let ring = DijkstraRing {
            n: 11,
            k: 23,
            cost: Time::new(1.0),
        };
        let seed = 7;
        let mut base = DenseEngine::new(&ring, seed).with_shards(3);
        base.perturb_all();
        let mut base_trace = Trace::unbounded();
        let config = DenseEngineConfig {
            max_time: Some(Time::new(50.0)),
            ..DenseEngineConfig::default()
        };
        let base_out = base.run(&config, &mut NoFaults, &mut base_trace);

        let mut rescan = DenseEngine::new(&ring, seed).with_shards(3);
        rescan.perturb_all();
        let mut rescan_trace = Trace::unbounded();
        let rescan_config = DenseEngineConfig {
            full_rescan: true,
            ..config
        };
        let rescan_out = rescan.run(&rescan_config, &mut NoFaults, &mut rescan_trace);

        assert_eq!(base_out, rescan_out);
        assert_eq!(base.global_states(), rescan.global_states());
        let a: Vec<_> = base_trace.events().collect();
        let b: Vec<_> = rescan_trace.events().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn max_commits_is_honored() {
        let tt = TwoTick { n: 8, limit: 1000 };
        let mut engine = DenseEngine::new(&tt, 1).with_shards(2);
        let config = DenseEngineConfig {
            max_commits: Some(20),
            ..DenseEngineConfig::default()
        };
        let outcome = engine.run(&config, &mut NoFaults, &mut crate::monitor::NullMonitor);
        assert_eq!(outcome.reason, StopReason::MaxCommits);
        assert!(outcome.stats.actions_executed >= 20);
    }

    #[test]
    fn set_state_wakes_the_readers() {
        let ring = DijkstraRing {
            n: 6,
            k: 5,
            cost: Time::new(1.0),
        };
        let mut engine = DenseEngine::new(&ring, 9).with_shards(2);
        let config = DenseEngineConfig {
            max_time: Some(Time::new(100.0)),
            ..DenseEngineConfig::default()
        };
        // The initial state is the fixpoint-free legal state (one token), so
        // the first run makes progress; afterwards force a specific state and
        // check the engine notices the newly enabled guard.
        let first = engine.run(&config, &mut NoFaults, &mut crate::monitor::NullMonitor);
        assert!(first.stats.actions_executed > 0);
        let snapshot = engine.global_states();
        engine.set_state(3, (snapshot[3] + 1) % 5);
        let config2 = DenseEngineConfig {
            max_time: Some(Time::new(200.0)),
            ..DenseEngineConfig::default()
        };
        let second = engine.run(&config2, &mut NoFaults, &mut crate::monitor::NullMonitor);
        assert!(
            second.stats.actions_executed > 0,
            "set_state must re-dirty the changed pid and its readers"
        );
    }

    #[test]
    fn auto_shards_scales_with_n() {
        assert_eq!(auto_shards(16), 1);
        assert_eq!(auto_shards(4095), 1);
        assert!(auto_shards(100_000) > 1);
        assert!(auto_shards(10_000_000) <= 64);
    }
}
