//! Trace recording: a monitor that keeps every transition and fault, for
//! debugging protocol runs and for assertion-rich tests.

use crate::fault::FaultKind;
use crate::monitor::Monitor;
use crate::protocol::{ActionId, Pid};
use crate::time::Time;

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent<S> {
    Transition {
        now: Time,
        pid: Pid,
        action: ActionId,
        name: String,
        old: S,
        new: S,
    },
    Fault {
        now: Time,
        pid: Pid,
        kind: FaultKind,
        old: S,
        new: S,
    },
}

impl<S> TraceEvent<S> {
    pub fn time(&self) -> Time {
        match self {
            TraceEvent::Transition { now, .. } | TraceEvent::Fault { now, .. } => *now,
        }
    }

    pub fn pid(&self) -> Pid {
        match self {
            TraceEvent::Transition { pid, .. } | TraceEvent::Fault { pid, .. } => *pid,
        }
    }
}

/// A bounded event recorder. When `capacity` is exceeded the oldest events
/// are dropped (the tail of a run is usually what matters when debugging).
#[derive(Debug, Clone)]
pub struct Trace<S> {
    events: std::collections::VecDeque<TraceEvent<S>>,
    capacity: usize,
    dropped: usize,
}

impl<S: Clone> Trace<S> {
    pub fn unbounded() -> Self {
        Self::with_capacity(usize::MAX)
    }

    pub fn with_capacity(capacity: usize) -> Self {
        Trace {
            events: std::collections::VecDeque::new(),
            capacity: capacity.max(1),
            dropped: 0,
        }
    }

    fn push(&mut self, event: TraceEvent<S>) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    pub fn events(&self) -> impl Iterator<Item = &TraceEvent<S>> {
        self.events.iter()
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events discarded due to the capacity bound.
    pub fn dropped(&self) -> usize {
        self.dropped
    }

    /// All transitions executed by `pid`, in order.
    pub fn transitions_of(&self, pid: Pid) -> Vec<&TraceEvent<S>> {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Transition { .. }) && e.pid() == pid)
            .collect()
    }

    /// Count of transitions with the given action name.
    pub fn count_action(&self, name: &str) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Transition { name: n, .. } if n == name))
            .count()
    }
}

impl<S: Clone> Monitor<S> for Trace<S> {
    fn on_transition(
        &mut self,
        now: Time,
        pid: Pid,
        action: ActionId,
        name: &str,
        old: &S,
        new: &S,
        _global: &[S],
    ) {
        self.push(TraceEvent::Transition {
            now,
            pid,
            action,
            name: name.to_owned(),
            old: old.clone(),
            new: new.clone(),
        });
    }

    fn on_fault(&mut self, now: Time, pid: Pid, kind: FaultKind, old: &S, new: &S, _global: &[S]) {
        self.push(TraceEvent::Fault {
            now,
            pid,
            kind,
            old: old.clone(),
            new: new.clone(),
        });
    }
}

// The dense engine ignores nothing a trace cares about: both engines report
// the same (time, pid, action, name, old, new) tuples and the trace never
// reads the global state, so a classic and a dense run of the same seed
// produce equal `Trace`s — the differential tests compare them directly.
impl<P: crate::dense::DenseProtocol> crate::dense::DenseMonitor<P> for Trace<P::State> {
    fn on_transition(
        &mut self,
        now: Time,
        pid: Pid,
        action: ActionId,
        name: &'static str,
        old: &P::State,
        new: &P::State,
        _dense: &P::Dense,
    ) {
        self.push(TraceEvent::Transition {
            now,
            pid,
            action,
            name: name.to_owned(),
            old: *old,
            new: *new,
        });
    }

    fn on_fault(
        &mut self,
        now: Time,
        pid: Pid,
        kind: FaultKind,
        old: &P::State,
        new: &P::State,
        _dense: &P::Dense,
    ) {
        self.push(TraceEvent::Fault {
            now,
            pid,
            kind,
            old: *old,
            new: *new,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order() {
        let mut trace: Trace<u64> = Trace::unbounded();
        let g = [0u64];
        trace.on_transition(Time::new(0.5), 1, 0, "a", &0, &1, &g);
        trace.on_fault(Time::new(1.0), 2, FaultKind::Detectable, &1, &9, &g);
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.count_action("a"), 1);
        assert_eq!(trace.transitions_of(1).len(), 1);
        assert_eq!(trace.transitions_of(2).len(), 0);
        let times: Vec<Time> = trace.events().map(|e| e.time()).collect();
        assert_eq!(times, vec![Time::new(0.5), Time::new(1.0)]);
    }

    #[test]
    fn capacity_drops_oldest() {
        let mut trace: Trace<u64> = Trace::with_capacity(2);
        let g = [0u64];
        for i in 0..5u64 {
            trace.on_transition(Time::new(i as f64), 0, 0, "x", &i, &(i + 1), &g);
        }
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.dropped(), 3);
        let first = trace.events().next().unwrap();
        assert_eq!(first.time(), Time::new(3.0));
    }
}
