//! Timed maximal-parallelism engine (§6 semantics).
//!
//! The paper evaluates its programs under "maximum parallel semantics, i.e.,
//! time is computed in terms of steps, where in each step every process
//! executes one of its enabled actions unless all its actions are disabled",
//! with "a real-time value associated with each action to model the time
//! required to execute that action" (the SIEFAST model).
//!
//! This engine realizes that model as a discrete-event simulation:
//!
//! * An idle process whose guard holds **commits** to that action; the commit
//!   completes `cost(pid, action)` time later.
//! * At the commit time the guard is **re-checked** against the then-current
//!   state and the statement executes atomically; if the guard no longer
//!   holds the commit is dropped (counted in [`RunStats::commits_dropped`])
//!   and the process simply reschedules. In the paper's programs guards are
//!   *locally stable* — once process j holds the token only j can give it up —
//!   so drops occur only around fault hits, exactly where re-execution is the
//!   right model.
//! * All commits that complete at the same instant form one *maximal-parallel
//!   step*: each reads the pre-step state and writes its own post-state.
//! * Fault events from a [`FaultPlan`] interleave with commits in time order.
//!   A fault that strikes a process **aborts that process's in-flight
//!   action** (its state was just perturbed), which models a fault hitting a
//!   process mid-phase.

use crate::fault::FaultPlan;
use crate::monitor::Monitor;
use crate::protocol::{ActionId, Pid, Protocol};
use crate::rng::SimRng;
use crate::stats::RunStats;
use crate::time::Time;

/// Why a run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// No action enabled anywhere and no fault pending: a global fixpoint.
    Fixpoint,
    /// The configured time horizon was reached.
    MaxTime,
    /// The configured commit budget was exhausted.
    MaxCommits,
    /// A monitor requested the stop.
    MonitorStop,
}

/// Result of a run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    pub reason: StopReason,
    pub stats: RunStats,
}

#[derive(Debug, Clone)]
pub struct EngineConfig {
    pub seed: u64,
    /// Stop when simulation time reaches this horizon.
    pub max_time: Option<Time>,
    /// Stop after this many committed actions (guards against zero-cost
    /// livelock in buggy protocols).
    pub max_commits: Option<u64>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            seed: 0x051E_FA57,
            max_time: None,
            max_commits: Some(100_000_000),
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Pending {
    action: ActionId,
    at: Time,
}

/// The timed engine. Owns the global state between runs so that experiments
/// can inspect or perturb it.
///
/// ```
/// use ftbarrier_gcs::*;
///
/// // Any Protocol runs; here, the crate's doctest-friendly example is a
/// // trivial one-action counter protocol.
/// struct Count;
/// impl Protocol for Count {
///     type State = u32;
///     fn num_processes(&self) -> usize { 2 }
///     fn num_actions(&self, _p: Pid) -> usize { 1 }
///     fn action_name(&self, _p: Pid, _a: ActionId) -> &'static str { "tick" }
///     fn enabled(&self, g: &[u32], p: Pid, _a: ActionId) -> bool { g[p] < 5 }
///     fn execute(&self, g: &[u32], p: Pid, _a: ActionId, _r: &mut SimRng) -> u32 { g[p] + 1 }
///     fn cost(&self, _p: Pid, _a: ActionId) -> Time { Time::new(0.5) }
///     fn initial_state(&self) -> Vec<u32> { vec![0, 0] }
///     fn arbitrary_state(&self, _p: Pid, r: &mut SimRng) -> u32 { r.range_u64(0, 6) as u32 }
/// }
///
/// let protocol = Count;
/// let mut engine = Engine::new(&protocol, 1);
/// let out = engine.run(&EngineConfig::default(), &mut fault::NoFaults, &mut NullMonitor);
/// assert_eq!(out.reason, StopReason::Fixpoint);
/// assert_eq!(engine.global(), &[5, 5]);
/// assert_eq!(out.stats.elapsed, Time::new(2.5)); // 5 ticks of 0.5, in parallel
/// ```
pub struct Engine<'p, P: Protocol> {
    protocol: &'p P,
    global: Vec<P::State>,
    pending: Vec<Option<Pending>>,
    now: Time,
    rng: SimRng,
    enabled_scratch: Vec<ActionId>,
}

impl<'p, P: Protocol> Engine<'p, P> {
    pub fn new(protocol: &'p P, seed: u64) -> Self {
        let global = protocol.initial_state();
        Self::from_state(protocol, seed, global)
    }

    pub fn from_state(protocol: &'p P, seed: u64, global: Vec<P::State>) -> Self {
        assert_eq!(global.len(), protocol.num_processes());
        let n = protocol.num_processes();
        Engine {
            protocol,
            global,
            pending: vec![None; n],
            now: Time::ZERO,
            rng: SimRng::seed_from_u64(seed),
            enabled_scratch: Vec::new(),
        }
    }

    pub fn now(&self) -> Time {
        self.now
    }

    pub fn global(&self) -> &[P::State] {
        &self.global
    }

    pub fn set_state(&mut self, pid: Pid, state: P::State) {
        self.global[pid] = state;
        self.pending[pid] = None;
    }

    /// Replace every process's state with an arbitrary domain value — used to
    /// start recovery experiments (Fig 7) from an adversarial state.
    pub fn perturb_all(&mut self) {
        for pid in 0..self.protocol.num_processes() {
            self.global[pid] = self.protocol.arbitrary_state(pid, &mut self.rng);
            self.pending[pid] = None;
        }
    }

    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// Schedule commits for all idle processes with an enabled action.
    fn schedule(&mut self) {
        for pid in 0..self.protocol.num_processes() {
            if self.pending[pid].is_some() {
                continue;
            }
            self.enabled_scratch.clear();
            for a in 0..self.protocol.num_actions(pid) {
                if self.protocol.enabled(&self.global, pid, a) {
                    self.enabled_scratch.push(a);
                }
            }
            if self.enabled_scratch.is_empty() {
                continue;
            }
            let action = if self.enabled_scratch.len() == 1 {
                self.enabled_scratch[0]
            } else {
                *self.rng.choose(&self.enabled_scratch)
            };
            let at = self.now + self.protocol.cost(pid, action);
            self.pending[pid] = Some(Pending { action, at });
        }
    }

    fn earliest_commit(&self) -> Option<Time> {
        self.pending
            .iter()
            .flatten()
            .map(|p| p.at)
            .min()
    }

    /// Run until a stop condition. `faults` injects the fault environment;
    /// `monitor` observes every transition and fault.
    pub fn run(
        &mut self,
        config: &EngineConfig,
        faults: &mut dyn FaultPlan<P::State>,
        monitor: &mut dyn Monitor<P::State>,
    ) -> RunOutcome {
        let mut stats = RunStats::default();
        loop {
            self.schedule();

            let next_commit = self.earliest_commit();
            let next_fault = faults.peek(self.now, &mut self.rng);

            let next_event = match (next_commit, next_fault) {
                (None, None) => {
                    stats.elapsed = self.now;
                    return RunOutcome {
                        reason: StopReason::Fixpoint,
                        stats,
                    };
                }
                (Some(c), None) => c,
                (None, Some(f)) => f,
                (Some(c), Some(f)) => c.min(f),
            };

            if let Some(horizon) = config.max_time {
                if next_event > horizon {
                    self.now = horizon;
                    stats.elapsed = self.now;
                    return RunOutcome {
                        reason: StopReason::MaxTime,
                        stats,
                    };
                }
            }
            self.now = self.now.max(next_event);

            // Faults strictly before (or tying with) commits fire first: the
            // perturbation lands before the action's atomic execution.
            if let Some(f) = next_fault {
                if f <= next_event {
                    let snapshot_old = self.global.clone();
                    let hit = faults.fire(f, &mut self.global, &mut self.rng);
                    // The fault aborts the victim's in-flight action.
                    self.pending[hit.pid] = None;
                    stats.faults += 1;
                    monitor.on_fault(
                        self.now,
                        hit.pid,
                        hit.kind,
                        &snapshot_old[hit.pid],
                        &self.global[hit.pid].clone(),
                        &self.global,
                    );
                    if monitor.should_stop() {
                        stats.elapsed = self.now;
                        return RunOutcome {
                            reason: StopReason::MonitorStop,
                            stats,
                        };
                    }
                    continue;
                }
            }

            // Commit batch: all pending actions maturing exactly now execute
            // as one maximal-parallel step against the pre-step snapshot.
            let batch: Vec<Pid> = (0..self.pending.len())
                .filter(|&pid| matches!(self.pending[pid], Some(p) if p.at == next_event))
                .collect();
            debug_assert!(!batch.is_empty(), "an event time with no commits");

            let snapshot = self.global.clone();
            let mut updates: Vec<(Pid, ActionId, P::State)> = Vec::with_capacity(batch.len());
            for &pid in &batch {
                let p = self.pending[pid].take().expect("pid is in batch");
                if self.protocol.enabled(&snapshot, pid, p.action) {
                    let new = self.protocol.execute(&snapshot, pid, p.action, &mut self.rng);
                    updates.push((pid, p.action, new));
                } else {
                    stats.commits_dropped += 1;
                }
            }
            for (pid, _, new) in &updates {
                self.global[*pid] = new.clone();
            }
            for (pid, action, new) in &updates {
                let name = self.protocol.action_name(*pid, *action);
                stats.record_action(name);
                monitor.on_transition(
                    self.now,
                    *pid,
                    *action,
                    name,
                    &snapshot[*pid],
                    new,
                    &self.global,
                );
            }

            if monitor.should_stop() {
                stats.elapsed = self.now;
                return RunOutcome {
                    reason: StopReason::MonitorStop,
                    stats,
                };
            }
            if let Some(max) = config.max_commits {
                if stats.actions_executed >= max {
                    stats.elapsed = self.now;
                    return RunOutcome {
                        reason: StopReason::MaxCommits,
                        stats,
                    };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultAction, FaultKind, NoFaults, ScriptedFault, ScriptedFaults};
    use crate::monitor::NullMonitor;
    use crate::protocol::testutil::{tokens, DijkstraRing};
    use crate::trace::Trace;

    fn ring(n: usize, cost: f64) -> DijkstraRing {
        DijkstraRing {
            n,
            k: 2 * n as u64 + 1,
            cost: Time::new(cost),
        }
    }

    #[test]
    fn timing_matches_hop_cost() {
        // One full circulation of the token over n processes = n hops of
        // cost c each.
        let n = 8;
        let c = 0.25;
        let r = ring(n, c);
        let mut engine = Engine::new(&r, 1);
        let mut m = NullMonitor;
        let config = EngineConfig {
            max_commits: Some(3 * n as u64), // three circulations
            ..Default::default()
        };
        let out = engine.run(&config, &mut NoFaults, &mut m);
        assert_eq!(out.reason, StopReason::MaxCommits);
        let expect = 3.0 * n as f64 * c;
        assert!(
            (out.stats.elapsed.as_f64() - expect).abs() < 1e-9,
            "elapsed {} vs expected {expect}",
            out.stats.elapsed
        );
    }

    #[test]
    fn max_time_stops_run() {
        let r = ring(4, 1.0);
        let mut engine = Engine::new(&r, 2);
        let mut m = NullMonitor;
        let config = EngineConfig {
            max_time: Some(Time::new(10.5)),
            ..Default::default()
        };
        let out = engine.run(&config, &mut NoFaults, &mut m);
        assert_eq!(out.reason, StopReason::MaxTime);
        assert_eq!(out.stats.elapsed, Time::new(10.5));
        // 10 actions of cost 1 fit in 10.5 time units.
        assert_eq!(out.stats.actions_executed, 10);
    }

    #[test]
    fn zero_cost_actions_execute_at_same_instant() {
        let r = ring(4, 0.0);
        let mut engine = Engine::new(&r, 3);
        let mut m = NullMonitor;
        let config = EngineConfig {
            max_commits: Some(100),
            ..Default::default()
        };
        let out = engine.run(&config, &mut NoFaults, &mut m);
        assert_eq!(out.reason, StopReason::MaxCommits);
        assert_eq!(out.stats.elapsed, Time::ZERO);
        assert_eq!(tokens(&r, engine.global()), 1);
    }

    struct Scramble;
    impl FaultAction<u64> for Scramble {
        fn kind(&self) -> FaultKind {
            FaultKind::Undetectable
        }
        fn apply(&self, _pid: Pid, state: &mut u64, rng: &mut SimRng) {
            *state = rng.range_u64(0, 1000);
        }
    }

    #[test]
    fn scripted_fault_interleaves_and_is_observed() {
        let r = ring(4, 1.0);
        let mut engine = Engine::new(&r, 4);
        let mut trace: Trace<u64> = Trace::unbounded();
        let plan = vec![ScriptedFault {
            at: Time::new(2.5),
            pid: 2,
            action: Box::new(Scramble) as Box<dyn FaultAction<u64>>,
        }];
        let mut faults = ScriptedFaults::new(plan);
        let config = EngineConfig {
            max_time: Some(Time::new(6.0)),
            ..Default::default()
        };
        let out = engine.run(&config, &mut faults, &mut trace);
        assert_eq!(out.stats.faults, 1);
        let fault_events: Vec<_> = trace
            .events()
            .filter(|e| matches!(e, crate::trace::TraceEvent::Fault { .. }))
            .collect();
        assert_eq!(fault_events.len(), 1);
        assert_eq!(fault_events[0].time(), Time::new(2.5));
        assert_eq!(fault_events[0].pid(), 2);
    }

    #[test]
    fn stabilizes_under_engine_from_arbitrary_state() {
        let r = ring(6, 0.1);
        for seed in 0..10 {
            let mut engine = Engine::new(&r, seed);
            engine.perturb_all();
            let mut m = NullMonitor;
            let config = EngineConfig {
                max_time: Some(Time::new(50.0)),
                ..Default::default()
            };
            engine.run(&config, &mut NoFaults, &mut m);
            assert_eq!(tokens(&r, engine.global()), 1, "seed {seed}");
        }
    }

    #[test]
    fn monitor_stop_is_honored() {
        struct StopAfter(u64, u64);
        impl Monitor<u64> for StopAfter {
            fn on_transition(
                &mut self,
                _now: Time,
                _pid: Pid,
                _action: ActionId,
                _name: &str,
                _old: &u64,
                _new: &u64,
                _global: &[u64],
            ) {
                self.0 += 1;
            }
            fn should_stop(&mut self) -> bool {
                self.0 >= self.1
            }
        }
        let r = ring(4, 1.0);
        let mut engine = Engine::new(&r, 5);
        let mut m = StopAfter(0, 7);
        let out = engine.run(&EngineConfig::default(), &mut NoFaults, &mut m);
        assert_eq!(out.reason, StopReason::MonitorStop);
        assert_eq!(out.stats.actions_executed, 7);
    }
}
