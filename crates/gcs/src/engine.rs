//! Timed maximal-parallelism engine (§6 semantics).
//!
//! The paper evaluates its programs under "maximum parallel semantics, i.e.,
//! time is computed in terms of steps, where in each step every process
//! executes one of its enabled actions unless all its actions are disabled",
//! with "a real-time value associated with each action to model the time
//! required to execute that action" (the SIEFAST model).
//!
//! This engine realizes that model as a discrete-event simulation:
//!
//! * An idle process whose guard holds **commits** to that action; the commit
//!   completes `cost(pid, action)` time later.
//! * At the commit time the guard is **re-checked** against the then-current
//!   state and the statement executes atomically; if the guard no longer
//!   holds the commit is dropped (counted in [`RunStats::commits_dropped`])
//!   and the process simply reschedules. In the paper's programs guards are
//!   *locally stable* — once process j holds the token only j can give it up —
//!   so drops occur only around fault hits, exactly where re-execution is the
//!   right model.
//! * All commits that complete at the same instant form one *maximal-parallel
//!   step*: each reads the pre-step state and writes its own post-state.
//! * Fault events from a [`FaultPlan`] interleave with commits in time order.
//!   A fault that strikes a process **aborts that process's in-flight
//!   action** (its state was just perturbed), which models a fault hitting a
//!   process mid-phase.
//!
//! # Engine internals: event-incremental scheduling
//!
//! A naive implementation rescans every guard and linearly scans every
//! pending commit after every event — O(n) work per event even though the
//! paper's programs only ever change a constant-size neighborhood. This
//! engine is incremental in both dimensions:
//!
//! * **Dirty-set scheduling.** When [`Protocol::readers_of`] names each
//!   process's guard readers (every protocol in this repo does; the default
//!   [`ReaderSet::All`] falls back to full rescans), the engine re-evaluates
//!   guards only for the *dirty set*: processes whose state changed since the
//!   last scheduling pass, plus their readers. This is sound because guard
//!   truth at an untouched process cannot change when no state it reads
//!   changed — an idle, non-dirty process provably has no enabled action, so
//!   skipping it is exact, not approximate. Dirty pids are visited in
//!   ascending pid order, so the RNG consumes the identical stream the full
//!   rescan would (idle non-dirty pids never reach the nondeterministic
//!   choice), making both modes produce byte-identical runs.
//! * **Commit heap.** Pending commit times live in a min-heap with *lazy
//!   invalidation*: aborting a commit (fault hit) just clears the
//!   per-process slot; stale heap entries are discarded when popped. Finding
//!   the next event is O(log n) instead of an O(n) scan.
//! * **No per-event snapshots.** Maximal-parallel steps read pre-step state
//!   by computing all updates *before* applying any (the statements only
//!   read `global` and write their own process), and the old state each
//!   monitor callback needs is recovered by swapping new states in — the
//!   engine never clones the global state vector. Fault observers get the
//!   victim's pre-fault state from [`FaultHit::old`], captured by the plan.
//!
//! [`EngineConfig::full_rescan`] forces the reference O(n)-per-event
//! scheduler; the differential tests run both modes and assert identical
//! traces.
//!
//! [`FaultHit::old`]: crate::fault::FaultHit

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::fault::FaultPlan;
use crate::monitor::Monitor;
use crate::protocol::{ActionId, Pid, Protocol, ReaderSet};
use crate::rng::SimRng;
use crate::stats::RunStats;
use crate::time::Time;

/// Why a run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// No action enabled anywhere and no fault pending: a global fixpoint.
    Fixpoint,
    /// The configured time horizon was reached.
    MaxTime,
    /// The configured commit budget was exhausted.
    MaxCommits,
    /// A monitor requested the stop.
    MonitorStop,
}

/// Result of a run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    pub reason: StopReason,
    pub stats: RunStats,
}

#[derive(Debug, Clone)]
pub struct EngineConfig {
    pub seed: u64,
    /// Stop when simulation time reaches this horizon.
    pub max_time: Option<Time>,
    /// Stop after this many committed actions (guards against zero-cost
    /// livelock in buggy protocols).
    pub max_commits: Option<u64>,
    /// Force the reference scheduler that rescans every guard after every
    /// event, even when the protocol provides [`Protocol::readers_of`]
    /// hints. Produces byte-identical runs to the incremental scheduler;
    /// exists for differential tests and baseline benchmarks.
    pub full_rescan: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            seed: 0x051E_FA57,
            max_time: None,
            max_commits: Some(100_000_000),
            full_rescan: false,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Pending {
    action: ActionId,
    at: Time,
}

/// The timed engine. Owns the global state between runs so that experiments
/// can inspect or perturb it.
///
/// ```
/// use ftbarrier_gcs::*;
///
/// // Any Protocol runs; here, the crate's doctest-friendly example is a
/// // trivial one-action counter protocol.
/// struct Count;
/// impl Protocol for Count {
///     type State = u32;
///     fn num_processes(&self) -> usize { 2 }
///     fn num_actions(&self, _p: Pid) -> usize { 1 }
///     fn action_name(&self, _p: Pid, _a: ActionId) -> &'static str { "tick" }
///     fn enabled(&self, g: &[u32], p: Pid, _a: ActionId) -> bool { g[p] < 5 }
///     fn execute(&self, g: &[u32], p: Pid, _a: ActionId, _r: &mut SimRng) -> u32 { g[p] + 1 }
///     fn cost(&self, _p: Pid, _a: ActionId) -> Time { Time::new(0.5) }
///     fn initial_state(&self) -> Vec<u32> { vec![0, 0] }
///     fn arbitrary_state(&self, _p: Pid, r: &mut SimRng) -> u32 { r.range_u64(0, 6) as u32 }
/// }
///
/// let protocol = Count;
/// let mut engine = Engine::new(&protocol, 1);
/// let out = engine.run(&EngineConfig::default(), &mut fault::NoFaults, &mut NullMonitor);
/// assert_eq!(out.reason, StopReason::Fixpoint);
/// assert_eq!(engine.global(), &[5, 5]);
/// assert_eq!(out.stats.elapsed, Time::new(2.5)); // 5 ticks of 0.5, in parallel
/// ```
pub struct Engine<'p, P: Protocol> {
    protocol: &'p P,
    global: Vec<P::State>,
    pending: Vec<Option<Pending>>,
    now: Time,
    rng: SimRng,
    enabled_scratch: Vec<ActionId>,
    /// `readers[q]` = sorted, deduped pids whose guards read q's state
    /// (always including q itself). `None` when the protocol answered
    /// [`ReaderSet::All`] for some pid: every event then triggers a full
    /// guard rescan.
    readers: Option<Vec<Vec<Pid>>>,
    /// Dirty set: pids whose guards must be re-evaluated at the next
    /// scheduling pass. The flag vector makes membership O(1); the list
    /// makes iteration proportional to the set size.
    dirty_flag: Vec<bool>,
    dirty_list: Vec<Pid>,
    /// Commit queue with lazy invalidation: an entry is live iff
    /// `pending[pid]` still matures at exactly that time; stale entries are
    /// dropped when they surface at the top.
    commits: BinaryHeap<Reverse<(Time, Pid)>>,
    /// Scratch buffers reused across steps (no per-step allocation).
    batch: Vec<Pid>,
    updates: Vec<(Pid, ActionId, P::State)>,
    touched: Vec<Pid>,
    /// Dense per-(pid, action) execution counters, folded into the
    /// name-keyed histogram once per run; `action_offsets[pid] + action`
    /// indexes `action_counts`.
    action_counts: Vec<u64>,
    action_offsets: Vec<usize>,
}

impl<'p, P: Protocol> Engine<'p, P> {
    pub fn new(protocol: &'p P, seed: u64) -> Self {
        let global = protocol.initial_state();
        Self::from_state(protocol, seed, global)
    }

    pub fn from_state(protocol: &'p P, seed: u64, global: Vec<P::State>) -> Self {
        assert_eq!(global.len(), protocol.num_processes());
        let n = protocol.num_processes();

        let mut reader_table = Vec::with_capacity(n);
        let mut complete = true;
        for pid in 0..n {
            match protocol.readers_of(pid) {
                ReaderSet::All => {
                    complete = false;
                    break;
                }
                ReaderSet::These(mut readers) => {
                    readers.push(pid);
                    readers.sort_unstable();
                    readers.dedup();
                    assert!(
                        readers.iter().all(|&r| r < n),
                        "readers_of({pid}) names a pid out of range (n={n})"
                    );
                    reader_table.push(readers);
                }
            }
        }

        let mut action_offsets = Vec::with_capacity(n);
        let mut total_actions = 0;
        for pid in 0..n {
            action_offsets.push(total_actions);
            total_actions += protocol.num_actions(pid);
        }

        let mut engine = Engine {
            protocol,
            global,
            pending: vec![None; n],
            now: Time::ZERO,
            rng: SimRng::seed_from_u64(seed),
            enabled_scratch: Vec::new(),
            readers: complete.then_some(reader_table),
            dirty_flag: vec![false; n],
            dirty_list: Vec::with_capacity(n),
            commits: BinaryHeap::with_capacity(n),
            batch: Vec::new(),
            updates: Vec::new(),
            touched: Vec::new(),
            action_counts: vec![0; total_actions],
            action_offsets,
        };
        engine.mark_all();
        engine
    }

    pub fn now(&self) -> Time {
        self.now
    }

    pub fn global(&self) -> &[P::State] {
        &self.global
    }

    pub fn set_state(&mut self, pid: Pid, state: P::State) {
        self.global[pid] = state;
        self.pending[pid] = None;
        self.mark_readers_of(pid);
        self.mark(pid);
    }

    /// Replace every process's state with an arbitrary domain value — used to
    /// start recovery experiments (Fig 7) from an adversarial state.
    pub fn perturb_all(&mut self) {
        for pid in 0..self.protocol.num_processes() {
            self.global[pid] = self.protocol.arbitrary_state(pid, &mut self.rng);
            self.pending[pid] = None;
        }
        self.mark_all();
    }

    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    fn mark(&mut self, pid: Pid) {
        if !self.dirty_flag[pid] {
            self.dirty_flag[pid] = true;
            self.dirty_list.push(pid);
        }
    }

    fn mark_all(&mut self) {
        for pid in 0..self.dirty_flag.len() {
            self.mark(pid);
        }
    }

    /// State of `pid` changed: every process whose guard reads it may have
    /// flipped enabled-status. No-op under full rescans (`readers` absent).
    fn mark_readers_of(&mut self, pid: Pid) {
        let Some(readers) = self.readers.as_deref() else {
            return;
        };
        for &r in &readers[pid] {
            if !self.dirty_flag[r] {
                self.dirty_flag[r] = true;
                self.dirty_list.push(r);
            }
        }
    }

    /// Evaluate `pid`'s guards against the current state and commit to one
    /// enabled action, if any.
    fn try_commit(&mut self, pid: Pid) {
        self.enabled_scratch.clear();
        for a in 0..self.protocol.num_actions(pid) {
            if self.protocol.enabled(&self.global, pid, a) {
                self.enabled_scratch.push(a);
            }
        }
        let action = match self.enabled_scratch.len() {
            0 => return,
            1 => self.enabled_scratch[0],
            _ => *self.rng.choose(&self.enabled_scratch),
        };
        let at = self.now + self.protocol.cost(pid, action);
        self.pending[pid] = Some(Pending { action, at });
        self.commits.push(Reverse((at, pid)));
    }

    /// Schedule commits for all idle processes with an enabled action.
    ///
    /// In incremental mode only the dirty set is examined, in ascending pid
    /// order — the same order the full rescan uses, and idle non-dirty pids
    /// cannot have an enabled action, so both modes drive the RNG
    /// identically.
    fn schedule(&mut self, incremental: bool) {
        if incremental {
            self.dirty_list.sort_unstable();
            let mut i = 0;
            while i < self.dirty_list.len() {
                let pid = self.dirty_list[i];
                i += 1;
                self.dirty_flag[pid] = false;
                if self.pending[pid].is_none() {
                    self.try_commit(pid);
                }
            }
            self.dirty_list.clear();
        } else {
            // Reference path: rescan every guard. Dirty bookkeeping is
            // still cleared so a later incremental run starts from the same
            // invariant (every idle process has just been checked).
            for pid in 0..self.pending.len() {
                self.dirty_flag[pid] = false;
                if self.pending[pid].is_none() {
                    self.try_commit(pid);
                }
            }
            self.dirty_list.clear();
        }
    }

    /// Time of the next maturing commit, discarding stale heap entries
    /// (lazily invalidated by fault aborts) from the top.
    fn earliest_commit(&mut self) -> Option<Time> {
        while let Some(&Reverse((at, pid))) = self.commits.peek() {
            if matches!(self.pending[pid], Some(p) if p.at == at) {
                return Some(at);
            }
            self.commits.pop();
        }
        None
    }

    /// Run until a stop condition. `faults` injects the fault environment;
    /// `monitor` observes every transition and fault.
    pub fn run(
        &mut self,
        config: &EngineConfig,
        faults: &mut dyn FaultPlan<P::State>,
        monitor: &mut dyn Monitor<P::State>,
    ) -> RunOutcome {
        let incremental = self.readers.is_some() && !config.full_rescan;
        let mut stats = RunStats::default();
        self.action_counts.fill(0);

        let reason = 'run: loop {
            self.schedule(incremental);

            let next_commit = self.earliest_commit();
            let next_fault = faults.peek(self.now, &mut self.rng);

            let next_event = match (next_commit, next_fault) {
                (None, None) => break 'run StopReason::Fixpoint,
                (Some(c), None) => c,
                (None, Some(f)) => f,
                (Some(c), Some(f)) => c.min(f),
            };

            if let Some(horizon) = config.max_time {
                if next_event > horizon {
                    self.now = horizon;
                    break 'run StopReason::MaxTime;
                }
            }
            self.now = self.now.max(next_event);

            // Faults strictly before (or tying with) commits fire first: the
            // perturbation lands before the action's atomic execution.
            if let Some(f) = next_fault {
                if f <= next_event {
                    self.touched.clear();
                    let hit = faults.fire(f, &mut self.global, &mut self.rng, &mut self.touched);
                    // The fault aborts the victim's in-flight action (its
                    // heap entry goes stale and is dropped lazily).
                    self.pending[hit.pid] = None;
                    for i in 0..self.touched.len() {
                        let p = self.touched[i];
                        self.mark_readers_of(p); // includes p itself
                    }
                    self.mark(hit.pid); // must reschedule after the abort
                    stats.faults += 1;
                    monitor.on_fault(
                        self.now,
                        hit.pid,
                        hit.kind,
                        &hit.old,
                        &self.global[hit.pid],
                        &self.global,
                    );
                    if monitor.should_stop() {
                        break 'run StopReason::MonitorStop;
                    }
                    continue;
                }
            }

            // Commit batch: all pending actions maturing exactly now execute
            // as one maximal-parallel step against the pre-step state. The
            // heap yields equal-time entries in ascending pid order; a pid
            // may surface twice (abort + reschedule at the same instant),
            // which the `take()` below collapses.
            self.batch.clear();
            while let Some(&Reverse((at, pid))) = self.commits.peek() {
                if at != next_event {
                    break;
                }
                self.commits.pop();
                if matches!(self.pending[pid], Some(p) if p.at == at) {
                    self.batch.push(pid);
                }
            }
            debug_assert!(!self.batch.is_empty(), "an event time with no commits");

            // Compute phase: `global` is not mutated yet, so every statement
            // reads the pre-step state — no snapshot clone needed.
            self.updates.clear();
            for i in 0..self.batch.len() {
                let pid = self.batch[i];
                let Some(p) = self.pending[pid].take() else {
                    continue; // duplicate heap entry already consumed
                };
                if self.protocol.enabled(&self.global, pid, p.action) {
                    let new = self
                        .protocol
                        .execute(&self.global, pid, p.action, &mut self.rng);
                    self.updates.push((pid, p.action, new));
                } else {
                    stats.commits_dropped += 1;
                    self.mark(pid);
                }
            }

            // Apply phase: swap each new state in; the update slot then
            // holds the *old* state for the monitor callbacks below.
            for u in self.updates.iter_mut() {
                std::mem::swap(&mut self.global[u.0], &mut u.2);
            }
            for i in 0..self.updates.len() {
                let (pid, action, ref old) = self.updates[i];
                self.action_counts[self.action_offsets[pid] + action] += 1;
                stats.actions_executed += 1;
                let name = self.protocol.action_name(pid, action);
                monitor.on_transition(
                    self.now,
                    pid,
                    action,
                    name,
                    old,
                    &self.global[pid],
                    &self.global,
                );
            }
            for i in 0..self.updates.len() {
                // Writer changed state → its readers re-check; the writer
                // itself (now idle) is in its own reader set.
                let pid = self.updates[i].0;
                self.mark_readers_of(pid);
            }

            if monitor.should_stop() {
                break 'run StopReason::MonitorStop;
            }
            if let Some(max) = config.max_commits {
                if stats.actions_executed >= max {
                    break 'run StopReason::MaxCommits;
                }
            }
        };

        stats.elapsed = self.now;
        for pid in 0..self.protocol.num_processes() {
            for a in 0..self.protocol.num_actions(pid) {
                let count = self.action_counts[self.action_offsets[pid] + a];
                if count > 0 {
                    stats.add_action_count(self.protocol.action_name(pid, a), count);
                }
            }
        }
        RunOutcome { reason, stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{
        FaultAction, FaultKind, NoFaults, PoissonFaults, ScriptedFault, ScriptedFaults,
        VictimPolicy,
    };
    use crate::monitor::NullMonitor;
    use crate::protocol::testutil::{tokens, DijkstraRing};
    use crate::trace::Trace;

    fn ring(n: usize, cost: f64) -> DijkstraRing {
        DijkstraRing {
            n,
            k: 2 * n as u64 + 1,
            cost: Time::new(cost),
        }
    }

    #[test]
    fn timing_matches_hop_cost() {
        // One full circulation of the token over n processes = n hops of
        // cost c each.
        let n = 8;
        let c = 0.25;
        let r = ring(n, c);
        let mut engine = Engine::new(&r, 1);
        let mut m = NullMonitor;
        let config = EngineConfig {
            max_commits: Some(3 * n as u64), // three circulations
            ..Default::default()
        };
        let out = engine.run(&config, &mut NoFaults, &mut m);
        assert_eq!(out.reason, StopReason::MaxCommits);
        let expect = 3.0 * n as f64 * c;
        assert!(
            (out.stats.elapsed.as_f64() - expect).abs() < 1e-9,
            "elapsed {} vs expected {expect}",
            out.stats.elapsed
        );
    }

    #[test]
    fn max_time_stops_run() {
        let r = ring(4, 1.0);
        let mut engine = Engine::new(&r, 2);
        let mut m = NullMonitor;
        let config = EngineConfig {
            max_time: Some(Time::new(10.5)),
            ..Default::default()
        };
        let out = engine.run(&config, &mut NoFaults, &mut m);
        assert_eq!(out.reason, StopReason::MaxTime);
        assert_eq!(out.stats.elapsed, Time::new(10.5));
        // 10 actions of cost 1 fit in 10.5 time units.
        assert_eq!(out.stats.actions_executed, 10);
    }

    #[test]
    fn zero_cost_actions_execute_at_same_instant() {
        let r = ring(4, 0.0);
        let mut engine = Engine::new(&r, 3);
        let mut m = NullMonitor;
        let config = EngineConfig {
            max_commits: Some(100),
            ..Default::default()
        };
        let out = engine.run(&config, &mut NoFaults, &mut m);
        assert_eq!(out.reason, StopReason::MaxCommits);
        assert_eq!(out.stats.elapsed, Time::ZERO);
        assert_eq!(tokens(&r, engine.global()), 1);
    }

    struct Scramble;
    impl FaultAction<u64> for Scramble {
        fn kind(&self) -> FaultKind {
            FaultKind::Undetectable
        }
        fn apply(&self, _pid: Pid, state: &mut u64, rng: &mut SimRng) {
            *state = rng.range_u64(0, 1000);
        }
    }

    #[test]
    fn scripted_fault_interleaves_and_is_observed() {
        let r = ring(4, 1.0);
        let mut engine = Engine::new(&r, 4);
        let mut trace: Trace<u64> = Trace::unbounded();
        let plan = vec![ScriptedFault {
            at: Time::new(2.5),
            pid: 2,
            action: Box::new(Scramble) as Box<dyn FaultAction<u64>>,
        }];
        let mut faults = ScriptedFaults::new(plan);
        let config = EngineConfig {
            max_time: Some(Time::new(6.0)),
            ..Default::default()
        };
        let out = engine.run(&config, &mut faults, &mut trace);
        assert_eq!(out.stats.faults, 1);
        let fault_events: Vec<_> = trace
            .events()
            .filter(|e| matches!(e, crate::trace::TraceEvent::Fault { .. }))
            .collect();
        assert_eq!(fault_events.len(), 1);
        assert_eq!(fault_events[0].time(), Time::new(2.5));
        assert_eq!(fault_events[0].pid(), 2);
    }

    #[test]
    fn stabilizes_under_engine_from_arbitrary_state() {
        let r = ring(6, 0.1);
        for seed in 0..10 {
            let mut engine = Engine::new(&r, seed);
            engine.perturb_all();
            let mut m = NullMonitor;
            let config = EngineConfig {
                max_time: Some(Time::new(50.0)),
                ..Default::default()
            };
            engine.run(&config, &mut NoFaults, &mut m);
            assert_eq!(tokens(&r, engine.global()), 1, "seed {seed}");
        }
    }

    #[test]
    fn monitor_stop_is_honored() {
        struct StopAfter(u64, u64);
        impl Monitor<u64> for StopAfter {
            fn on_transition(
                &mut self,
                _now: Time,
                _pid: Pid,
                _action: ActionId,
                _name: &str,
                _old: &u64,
                _new: &u64,
                _global: &[u64],
            ) {
                self.0 += 1;
            }
            fn should_stop(&mut self) -> bool {
                self.0 >= self.1
            }
        }
        let r = ring(4, 1.0);
        let mut engine = Engine::new(&r, 5);
        let mut m = StopAfter(0, 7);
        let out = engine.run(&EngineConfig::default(), &mut NoFaults, &mut m);
        assert_eq!(out.reason, StopReason::MonitorStop);
        assert_eq!(out.stats.actions_executed, 7);
    }

    /// Run a full faulted scenario in both scheduler modes and return
    /// everything observable: the trace, the final state, and the stats.
    fn faulted_run(
        r: &DijkstraRing,
        seed: u64,
        fault_rate: f64,
        full_rescan: bool,
    ) -> (Vec<crate::trace::TraceEvent<u64>>, Vec<u64>, RunStats) {
        let mut engine = Engine::new(r, seed);
        engine.perturb_all();
        let mut trace: Trace<u64> = Trace::unbounded();
        let config = EngineConfig {
            seed,
            max_time: Some(Time::new(40.0)),
            full_rescan,
            ..Default::default()
        };
        let out = if fault_rate > 0.0 {
            let mut faults = PoissonFaults::with_rate(fault_rate, VictimPolicy::Random, Scramble);
            engine.run(&config, &mut faults, &mut trace)
        } else {
            engine.run(&config, &mut NoFaults, &mut trace)
        };
        (
            trace.events().cloned().collect(),
            engine.global().to_vec(),
            out.stats,
        )
    }

    #[test]
    fn incremental_scheduler_matches_full_rescan_exactly() {
        // The dirty-set scheduler must be observationally identical to the
        // reference full-rescan scheduler: same trace, same final state,
        // same stats — including under faults, which exercise commit drops
        // and lazy heap invalidation.
        let r = ring(7, 0.3);
        for seed in [11, 12, 13, 14] {
            for &rate in &[0.0, 0.4] {
                let (ev_inc, g_inc, s_inc) = faulted_run(&r, seed, rate, false);
                let (ev_full, g_full, s_full) = faulted_run(&r, seed, rate, true);
                assert_eq!(ev_inc, ev_full, "trace diverged (seed {seed}, rate {rate})");
                assert_eq!(g_inc, g_full, "state diverged (seed {seed}, rate {rate})");
                assert_eq!(s_inc.actions_executed, s_full.actions_executed);
                assert_eq!(s_inc.commits_dropped, s_full.commits_dropped);
                assert_eq!(s_inc.faults, s_full.faults);
                assert_eq!(s_inc.by_action, s_full.by_action);
            }
        }
    }

    #[test]
    fn set_state_wakes_incremental_scheduler() {
        // After a quiescent run, injecting state through set_state must
        // dirty-mark enough processes for the incremental scheduler to pick
        // the change up (a stale scheduler would report a false fixpoint).
        let r = ring(5, 1.0);
        let mut engine = Engine::new(&r, 9);
        let config = EngineConfig {
            max_time: Some(Time::new(3.5)),
            ..Default::default()
        };
        engine.run(&config, &mut NoFaults, &mut NullMonitor);
        let moved_before = engine.global().to_vec();
        engine.set_state(2, engine.global()[2] + 1); // forge a second token
        let out = engine.run(
            &EngineConfig {
                max_time: Some(Time::new(40.0)),
                ..Default::default()
            },
            &mut NoFaults,
            &mut NullMonitor,
        );
        assert!(out.stats.actions_executed > 0, "injected token was ignored");
        assert_eq!(tokens(&r, engine.global()), 1);
        assert_ne!(engine.global(), &moved_before[..]);
    }

    #[test]
    fn histogram_matches_dense_counter_fold() {
        let r = ring(4, 1.0);
        let mut engine = Engine::new(&r, 6);
        let config = EngineConfig {
            max_commits: Some(9),
            ..Default::default()
        };
        let out = engine.run(&config, &mut NoFaults, &mut NullMonitor);
        let total: u64 = out.stats.by_action.values().sum();
        assert_eq!(total, out.stats.actions_executed);
        assert_eq!(
            out.stats.count_of("bottom") + out.stats.count_of("other"),
            9
        );
    }
}
