//! Exhaustive state-space exploration for small protocol instances.
//!
//! The paper argues its lemmas with manual proofs; for small instances we
//! can do better than sampling schedules — enumerate *every* reachable state
//! under *every* interleaving (optionally with fault transitions included)
//! and check invariants, deadlock-freedom, and reachability ("from every
//! state, some fair schedule reaches the goal" — the heart of the
//! stabilization lemmas) exhaustively.
//!
//! Nondeterministic statements (the paper's `any k : …` choice) are handled
//! by sampling each transition's statement several times with distinct RNG
//! streams; for the protocols in this workspace the statements are
//! deterministic except for explicitly arbitrary phase choices, whose full
//! range is covered by the samples.

use crate::protocol::Protocol;
use crate::rng::SimRng;
use std::collections::{HashMap, VecDeque};

/// Result of an exhaustive forward exploration.
#[derive(Debug)]
pub struct Exploration<S> {
    /// Every distinct reachable global state.
    pub states: Vec<Vec<S>>,
    /// Reachable states with no enabled action (deadlocks/fixpoints).
    pub deadlocks: Vec<Vec<S>>,
    /// True if the search stopped at `limit` before exhausting the space.
    pub truncated: bool,
    /// The state limit the search ran under.
    pub limit: usize,
}

impl<S> Exploration<S> {
    /// Promote truncation to a typed hard failure: a truncated search proves
    /// nothing, so any consumer about to assert an invariant over
    /// [`Exploration::states`] must go through this first.
    pub fn require_complete(self) -> Result<Exploration<S>, CheckFailure<S>> {
        if self.truncated {
            return Err(CheckFailure::Truncated {
                limit: self.limit,
                explored: self.states.len(),
            });
        }
        Ok(self)
    }
}

/// A counterexample to an invariant: the violating state.
#[derive(Debug)]
pub struct CounterExample<S> {
    pub state: Vec<S>,
}

/// Why an exhaustive check did not pass.
#[derive(Debug)]
pub enum CheckFailure<S> {
    /// The search stopped at its state limit before exhausting the space;
    /// the exploration is *not* a proof and must not be treated as one.
    Truncated { limit: usize, explored: usize },
    /// The property genuinely fails in a reachable state.
    Violation(CounterExample<S>),
}

impl<S: std::fmt::Debug> std::fmt::Display for CheckFailure<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckFailure::Truncated { limit, explored } => write!(
                f,
                "state space exceeded limit {limit} ({explored} states explored); \
                 the check is inconclusive"
            ),
            CheckFailure::Violation(ce) => {
                write!(f, "invariant violated in state {:?}", ce.state)
            }
        }
    }
}

/// The universe handed to [`Explorer::stabilization`] was not closed under
/// the program's transitions: `state` has a successor outside the universe.
#[derive(Debug)]
pub struct NotClosed<S> {
    pub state: Vec<S>,
    pub successor: Vec<S>,
}

/// How a state that cannot reach the goal fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StuckKind {
    /// Every execution from the state halts in a fixpoint outside the goal.
    Deadlock,
    /// Some execution from the state runs forever (reaches a cycle) without
    /// ever passing through the goal.
    Livelock,
}

/// Result of a full-universe stabilization audit
/// ([`Explorer::stabilization`]).
#[derive(Debug)]
pub struct StabilizationReport<S> {
    /// For each universe state (parallel to the input), the minimal number
    /// of transitions to a goal state; `None` = the goal is unreachable.
    pub distances: Vec<Option<u32>>,
    /// The states that cannot reach the goal, classified. Empty iff the
    /// program is stabilizing over this universe.
    pub stuck: Vec<(Vec<S>, StuckKind)>,
}

impl<S> StabilizationReport<S> {
    pub fn is_stabilizing(&self) -> bool {
        self.stuck.is_empty()
    }

    /// Worst-case stabilization distance over the states that do converge.
    pub fn max_distance(&self) -> u32 {
        self.distances.iter().flatten().copied().max().unwrap_or(0)
    }

    /// Mean stabilization distance over the states that do converge.
    pub fn mean_distance(&self) -> f64 {
        let converging: Vec<u32> = self.distances.iter().flatten().copied().collect();
        if converging.is_empty() {
            return 0.0;
        }
        converging.iter().map(|&d| d as f64).sum::<f64>() / converging.len() as f64
    }
}

/// Exhaustive explorer over a protocol, with optional extra transitions
/// (fault actions, perturbations) supplied as a successor generator.
pub struct Explorer<'p, P: Protocol> {
    protocol: &'p P,
    /// How many RNG streams to sample per (state, pid, action) to cover
    /// nondeterministic statements. 1 suffices for deterministic programs.
    pub nondet_samples: u32,
}

impl<'p, P: Protocol> Explorer<'p, P>
where
    P::State: std::hash::Hash + Eq,
{
    pub fn new(protocol: &'p P) -> Explorer<'p, P> {
        Explorer {
            protocol,
            nondet_samples: 1,
        }
    }

    pub fn with_nondet_samples(mut self, samples: u32) -> Explorer<'p, P> {
        assert!(samples >= 1);
        self.nondet_samples = samples;
        self
    }

    /// All successor states of `state` under one program action (all
    /// processes, all enabled actions, all sampled nondeterministic
    /// resolutions).
    pub fn successors(&self, state: &[P::State]) -> Vec<Vec<P::State>> {
        let mut out = Vec::new();
        for pid in 0..self.protocol.num_processes() {
            for action in 0..self.protocol.num_actions(pid) {
                if !self.protocol.enabled(state, pid, action) {
                    continue;
                }
                for sample in 0..self.nondet_samples {
                    let mut rng = SimRng::seed_from_u64(0xE0_0E ^ sample as u64);
                    let new = self.protocol.execute(state, pid, action, &mut rng);
                    let mut next = state.to_vec();
                    next[pid] = new;
                    out.push(next);
                }
            }
        }
        out
    }

    /// Breadth-first forward exploration from `roots`, up to `limit` states.
    /// `extra` may add transitions beyond the program's (e.g. fault
    /// actions); it receives each discovered state and returns additional
    /// successors.
    pub fn reachable_with(
        &self,
        roots: Vec<Vec<P::State>>,
        limit: usize,
        mut extra: impl FnMut(&[P::State]) -> Vec<Vec<P::State>>,
    ) -> Exploration<P::State> {
        let mut index: HashMap<Vec<P::State>, usize> = HashMap::new();
        let mut states: Vec<Vec<P::State>> = Vec::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        let mut deadlocks = Vec::new();
        let mut truncated = false;

        let push = |s: Vec<P::State>,
                    index: &mut HashMap<Vec<P::State>, usize>,
                    states: &mut Vec<Vec<P::State>>,
                    queue: &mut VecDeque<usize>| {
            if !index.contains_key(&s) {
                let id = states.len();
                index.insert(s.clone(), id);
                states.push(s);
                queue.push_back(id);
            }
        };

        for root in roots {
            push(root, &mut index, &mut states, &mut queue);
        }
        while let Some(id) = queue.pop_front() {
            if states.len() >= limit {
                truncated = true;
                break;
            }
            let state = states[id].clone();
            let succs = self.successors(&state);
            if succs.is_empty() {
                deadlocks.push(state.clone());
            }
            for s in succs.into_iter().chain(extra(&state)) {
                push(s, &mut index, &mut states, &mut queue);
            }
        }
        Exploration {
            states,
            deadlocks,
            truncated,
            limit,
        }
    }

    /// Forward exploration with no extra transitions.
    pub fn reachable(&self, roots: Vec<Vec<P::State>>, limit: usize) -> Exploration<P::State> {
        self.reachable_with(roots, limit, |_| Vec::new())
    }

    /// Check that `invariant` holds in every reachable state. Truncation is
    /// a hard failure ([`CheckFailure::Truncated`]): a partial search must
    /// never read as a completed proof.
    pub fn check_invariant(
        &self,
        roots: Vec<Vec<P::State>>,
        limit: usize,
        invariant: impl Fn(&[P::State]) -> bool,
    ) -> Result<Exploration<P::State>, CheckFailure<P::State>> {
        let exploration = self.reachable(roots, limit).require_complete()?;
        for s in &exploration.states {
            if !invariant(s) {
                return Err(CheckFailure::Violation(CounterExample { state: s.clone() }));
            }
        }
        Ok(exploration)
    }

    /// Exhaustive stabilization check over a *complete universe* of states:
    /// from every state in `universe`, some execution reaches a state
    /// satisfying `goal` (CTL: `universe ⊨ EF goal`). Returns the states
    /// that *cannot* reach the goal (empty = property holds).
    ///
    /// The universe must be closed under transitions (a full domain product
    /// is; the check verifies closure and panics otherwise).
    pub fn states_not_reaching(
        &self,
        universe: &[Vec<P::State>],
        goal: impl Fn(&[P::State]) -> bool,
    ) -> Vec<Vec<P::State>> {
        self.stabilization(universe, goal)
            .expect("universe not closed under transitions")
            .stuck
            .into_iter()
            .map(|(s, _)| s)
            .collect()
    }

    /// The full stabilization audit behind [`Explorer::states_not_reaching`]:
    /// additionally computes, for every universe state, the minimal number of
    /// transitions to the goal (the stabilization distance — the paper's
    /// recovery-cost measure), and classifies each non-converging state as a
    /// deadlock (all executions halt) or a livelock (a cycle is reachable
    /// that never passes through the goal).
    pub fn stabilization(
        &self,
        universe: &[Vec<P::State>],
        goal: impl Fn(&[P::State]) -> bool,
    ) -> Result<StabilizationReport<P::State>, NotClosed<P::State>> {
        let index: HashMap<&[P::State], usize> = universe
            .iter()
            .enumerate()
            .map(|(i, s)| (s.as_slice(), i))
            .collect();
        // Forward and reverse adjacency (successor lists deduplicated so the
        // livelock peel below counts each edge exactly once).
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); universe.len()];
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); universe.len()];
        for (i, s) in universe.iter().enumerate() {
            let mut out: Vec<usize> = Vec::new();
            for succ in self.successors(s) {
                match index.get(succ.as_slice()) {
                    Some(&j) => out.push(j),
                    None => {
                        return Err(NotClosed {
                            state: s.clone(),
                            successor: succ,
                        })
                    }
                }
            }
            out.sort_unstable();
            out.dedup();
            for &j in &out {
                preds[j].push(i);
            }
            succs[i] = out;
        }
        // Multi-source backward BFS from the goal set: distance = minimal
        // transitions to *some* goal state.
        let mut distances: Vec<Option<u32>> = vec![None; universe.len()];
        let mut queue: VecDeque<usize> = VecDeque::new();
        for (i, s) in universe.iter().enumerate() {
            if goal(s) {
                distances[i] = Some(0);
                queue.push_back(i);
            }
        }
        while let Some(j) = queue.pop_front() {
            let d = distances[j].expect("queued states have distances");
            for &i in &preds[j] {
                if distances[i].is_none() {
                    distances[i] = Some(d + 1);
                    queue.push_back(i);
                }
            }
        }
        // Classify the stuck states. Every successor of a stuck state is
        // itself stuck, so within the stuck subgraph we peel states whose
        // every outgoing edge leads to an already-peeled state: the peeled
        // states' executions all halt (deadlock-bound); whatever survives
        // the peel can reach a cycle (livelock).
        let stuck_ids: Vec<usize> = (0..universe.len())
            .filter(|&i| distances[i].is_none())
            .collect();
        let mut outdeg: HashMap<usize, usize> =
            stuck_ids.iter().map(|&i| (i, succs[i].len())).collect();
        let mut peel: VecDeque<usize> = stuck_ids
            .iter()
            .copied()
            .filter(|i| outdeg[i] == 0)
            .collect();
        let mut peeled: Vec<bool> = vec![false; universe.len()];
        while let Some(j) = peel.pop_front() {
            peeled[j] = true;
            for &i in &preds[j] {
                if let Some(d) = outdeg.get_mut(&i) {
                    *d -= 1;
                    if *d == 0 {
                        peel.push_back(i);
                    }
                }
            }
        }
        let stuck = stuck_ids
            .into_iter()
            .map(|i| {
                let kind = if peeled[i] {
                    StuckKind::Deadlock
                } else {
                    StuckKind::Livelock
                };
                (universe[i].clone(), kind)
            })
            .collect();
        Ok(StabilizationReport { distances, stuck })
    }
}

/// Build the full cartesian universe from per-process domains.
pub fn universe<S: Clone>(domains: &[Vec<S>]) -> Vec<Vec<S>> {
    let mut states: Vec<Vec<S>> = vec![Vec::new()];
    for domain in domains {
        let mut next = Vec::with_capacity(states.len() * domain.len());
        for s in &states {
            for v in domain {
                let mut t = s.clone();
                t.push(v.clone());
                next.push(t);
            }
        }
        states = next;
    }
    states
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::testutil::{tokens, DijkstraRing};
    use crate::time::Time;

    fn ring(n: usize, k: u64) -> DijkstraRing {
        DijkstraRing {
            n,
            k,
            cost: Time::ZERO,
        }
    }

    #[test]
    fn reachable_set_of_legal_ring_is_exactly_legal_states() {
        // From the initial state, Dijkstra's ring visits exactly the legal
        // (one-token) states: n·k of them.
        let r = ring(3, 4);
        let explorer = Explorer::new(&r);
        let exploration = explorer.reachable(vec![r.initial_state()], 100_000);
        assert!(!exploration.truncated);
        assert!(exploration.deadlocks.is_empty());
        assert!(exploration.states.iter().all(|s| tokens(&r, s) == 1));
        assert_eq!(exploration.states.len(), 3 * 4);
    }

    #[test]
    fn invariant_checker_finds_counterexample() {
        let r = ring(3, 4);
        let explorer = Explorer::new(&r);
        let err = explorer
            .check_invariant(vec![r.initial_state()], 100_000, |s| s[0] == 0)
            .unwrap_err();
        match err {
            CheckFailure::Violation(ce) => assert_ne!(ce.state[0], 0),
            other => panic!("expected a violation, got {other}"),
        }
    }

    #[test]
    fn truncated_search_is_a_hard_failure_not_a_proof() {
        // The ring reaches 12 states; a limit of 5 truncates the search, and
        // the checker must refuse to conclude anything — even though every
        // state it *did* see satisfies the (true) invariant.
        let r = ring(3, 4);
        let explorer = Explorer::new(&r);
        let err = explorer
            .check_invariant(vec![r.initial_state()], 5, |s| tokens(&r, s) == 1)
            .unwrap_err();
        match err {
            CheckFailure::Truncated { limit, explored } => {
                assert_eq!(limit, 5);
                assert!(explored >= 5);
            }
            other => panic!("expected truncation, got {other}"),
        }
        // require_complete on an un-truncated search passes through.
        let full = explorer
            .reachable(vec![r.initial_state()], 100_000)
            .require_complete()
            .expect("complete search");
        assert_eq!(full.states.len(), 12);
    }

    #[test]
    fn exhaustive_stabilization_of_dijkstra_ring() {
        // THE classic: with k >= n, every state of the full universe
        // reaches a legal state. Universe: k^n states.
        let r = ring(3, 4);
        let explorer = Explorer::new(&r);
        let domain: Vec<u64> = (0..4).collect();
        let universe = universe(&[domain.clone(), domain.clone(), domain]);
        assert_eq!(universe.len(), 64);
        let stuck = explorer.states_not_reaching(&universe, |s| tokens(&r, s) == 1);
        assert!(stuck.is_empty(), "{} states cannot stabilize", stuck.len());
    }

    #[test]
    fn stabilization_distances_grow_with_corruption_depth() {
        let r = ring(3, 4);
        let explorer = Explorer::new(&r);
        let domain: Vec<u64> = (0..4).collect();
        let u = universe(&[domain.clone(), domain.clone(), domain]);
        let report = explorer
            .stabilization(&u, |s| tokens(&r, s) == 1)
            .expect("closed universe");
        assert!(report.is_stabilizing());
        // Legal states are at distance 0; the worst corrupted state needs a
        // positive, bounded number of steps.
        for (i, s) in u.iter().enumerate() {
            if tokens(&r, s) == 1 {
                assert_eq!(report.distances[i], Some(0));
            } else {
                assert!(report.distances[i].unwrap_or(0) >= 1);
            }
        }
        assert!(report.max_distance() >= 1);
        assert!(report.mean_distance() > 0.0);
        assert!(
            (report.max_distance() as usize) < u.len(),
            "a BFS distance is always shorter than the state count"
        );
    }

    #[test]
    fn stabilization_classifies_deadlocks_and_livelocks() {
        // Ask for an unreachable goal: the legal one-token states cycle
        // forever without ever reaching "two tokens" (livelock w.r.t. that
        // goal); the ring itself never deadlocks.
        let r = ring(3, 4);
        let explorer = Explorer::new(&r);
        let domain: Vec<u64> = (0..4).collect();
        let u = universe(&[domain.clone(), domain.clone(), domain]);
        let report = explorer
            .stabilization(&u, |_| false)
            .expect("closed universe");
        assert_eq!(report.stuck.len(), u.len(), "no state reaches `false`");
        assert!(
            report
                .stuck
                .iter()
                .all(|(_, kind)| *kind == StuckKind::Livelock),
            "Dijkstra's ring never halts, so every stuck state is a livelock"
        );
    }

    #[test]
    fn stabilization_rejects_unclosed_universe() {
        let r = ring(2, 3);
        let explorer = Explorer::new(&r);
        // A universe missing most states is not closed under transitions.
        let err = explorer.stabilization(&[vec![0, 0]], |_| true).unwrap_err();
        assert_eq!(err.state, vec![0, 0]);
    }

    #[test]
    fn checker_detects_unreachable_goals() {
        // Negative direction: legal (one-token) states of the ring never
        // return to an *illegal* state, so asking for an illegal goal must
        // flag every legal state as unable to reach it.
        let r = ring(3, 4);
        let explorer = Explorer::new(&r);
        let domain: Vec<u64> = (0..4).collect();
        let u = universe(&[domain.clone(), domain.clone(), domain]);
        let stuck = explorer.states_not_reaching(&u, |s| tokens(&r, s) == 2);
        assert!(
            stuck.iter().any(|s| tokens(&r, s) == 1),
            "legal states cannot reach a two-token state and must be flagged"
        );
        // And every flagged state is indeed legal already (illegal states
        // may pass through other illegal states on their way down).
        assert!(!stuck.is_empty());
    }

    #[test]
    fn extra_transitions_expand_the_reachable_set() {
        let r = ring(2, 3);
        let explorer = Explorer::new(&r);
        let plain = explorer.reachable(vec![r.initial_state()], 10_000);
        // Add a "fault" that can reset process 0 to any value.
        let with_faults = explorer.reachable_with(vec![r.initial_state()], 10_000, |s| {
            (0..3u64)
                .map(|v| {
                    let mut t = s.to_vec();
                    t[0] = v;
                    t
                })
                .collect()
        });
        assert!(with_faults.states.len() > plain.states.len());
    }

    #[test]
    fn universe_builder_covers_product() {
        let u = universe(&[vec![0u64, 1], vec![0, 1, 2]]);
        assert_eq!(u.len(), 6);
        assert!(u.contains(&vec![1, 2]));
        assert!(u.contains(&vec![0, 0]));
    }
}
