//! Exhaustive state-space exploration for small protocol instances.
//!
//! The paper argues its lemmas with manual proofs; for small instances we
//! can do better than sampling schedules — enumerate *every* reachable state
//! under *every* interleaving (optionally with fault transitions included)
//! and check invariants, deadlock-freedom, and reachability ("from every
//! state, some fair schedule reaches the goal" — the heart of the
//! stabilization lemmas) exhaustively.
//!
//! Nondeterministic statements (the paper's `any k : …` choice) are handled
//! by sampling each transition's statement several times with distinct RNG
//! streams; for the protocols in this workspace the statements are
//! deterministic except for explicitly arbitrary phase choices, whose full
//! range is covered by the samples.

use crate::protocol::Protocol;
use crate::rng::SimRng;
use std::collections::{HashMap, VecDeque};

/// Result of an exhaustive forward exploration.
#[derive(Debug)]
pub struct Exploration<S> {
    /// Every distinct reachable global state.
    pub states: Vec<Vec<S>>,
    /// Reachable states with no enabled action (deadlocks/fixpoints).
    pub deadlocks: Vec<Vec<S>>,
    /// True if the search stopped at `limit` before exhausting the space.
    pub truncated: bool,
}

/// A counterexample to an invariant: the violating state.
#[derive(Debug)]
pub struct CounterExample<S> {
    pub state: Vec<S>,
}

/// Exhaustive explorer over a protocol, with optional extra transitions
/// (fault actions, perturbations) supplied as a successor generator.
pub struct Explorer<'p, P: Protocol> {
    protocol: &'p P,
    /// How many RNG streams to sample per (state, pid, action) to cover
    /// nondeterministic statements. 1 suffices for deterministic programs.
    pub nondet_samples: u32,
}

impl<'p, P: Protocol> Explorer<'p, P>
where
    P::State: std::hash::Hash + Eq,
{
    pub fn new(protocol: &'p P) -> Explorer<'p, P> {
        Explorer {
            protocol,
            nondet_samples: 1,
        }
    }

    pub fn with_nondet_samples(mut self, samples: u32) -> Explorer<'p, P> {
        assert!(samples >= 1);
        self.nondet_samples = samples;
        self
    }

    /// All successor states of `state` under one program action (all
    /// processes, all enabled actions, all sampled nondeterministic
    /// resolutions).
    pub fn successors(&self, state: &[P::State]) -> Vec<Vec<P::State>> {
        let mut out = Vec::new();
        for pid in 0..self.protocol.num_processes() {
            for action in 0..self.protocol.num_actions(pid) {
                if !self.protocol.enabled(state, pid, action) {
                    continue;
                }
                for sample in 0..self.nondet_samples {
                    let mut rng = SimRng::seed_from_u64(0xE0_0E ^ sample as u64);
                    let new = self.protocol.execute(state, pid, action, &mut rng);
                    let mut next = state.to_vec();
                    next[pid] = new;
                    out.push(next);
                }
            }
        }
        out
    }

    /// Breadth-first forward exploration from `roots`, up to `limit` states.
    /// `extra` may add transitions beyond the program's (e.g. fault
    /// actions); it receives each discovered state and returns additional
    /// successors.
    pub fn reachable_with(
        &self,
        roots: Vec<Vec<P::State>>,
        limit: usize,
        mut extra: impl FnMut(&[P::State]) -> Vec<Vec<P::State>>,
    ) -> Exploration<P::State> {
        let mut index: HashMap<Vec<P::State>, usize> = HashMap::new();
        let mut states: Vec<Vec<P::State>> = Vec::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        let mut deadlocks = Vec::new();
        let mut truncated = false;

        let push = |s: Vec<P::State>,
                    index: &mut HashMap<Vec<P::State>, usize>,
                    states: &mut Vec<Vec<P::State>>,
                    queue: &mut VecDeque<usize>| {
            if !index.contains_key(&s) {
                let id = states.len();
                index.insert(s.clone(), id);
                states.push(s);
                queue.push_back(id);
            }
        };

        for root in roots {
            push(root, &mut index, &mut states, &mut queue);
        }
        while let Some(id) = queue.pop_front() {
            if states.len() >= limit {
                truncated = true;
                break;
            }
            let state = states[id].clone();
            let succs = self.successors(&state);
            if succs.is_empty() {
                deadlocks.push(state.clone());
            }
            for s in succs.into_iter().chain(extra(&state)) {
                push(s, &mut index, &mut states, &mut queue);
            }
        }
        Exploration {
            states,
            deadlocks,
            truncated,
        }
    }

    /// Forward exploration with no extra transitions.
    pub fn reachable(&self, roots: Vec<Vec<P::State>>, limit: usize) -> Exploration<P::State> {
        self.reachable_with(roots, limit, |_| Vec::new())
    }

    /// Check that `invariant` holds in every reachable state.
    pub fn check_invariant(
        &self,
        roots: Vec<Vec<P::State>>,
        limit: usize,
        invariant: impl Fn(&[P::State]) -> bool,
    ) -> Result<Exploration<P::State>, CounterExample<P::State>> {
        let exploration = self.reachable(roots, limit);
        assert!(!exploration.truncated, "state space exceeded limit {limit}");
        for s in &exploration.states {
            if !invariant(s) {
                return Err(CounterExample { state: s.clone() });
            }
        }
        Ok(exploration)
    }

    /// Exhaustive stabilization check over a *complete universe* of states:
    /// from every state in `universe`, some execution reaches a state
    /// satisfying `goal` (CTL: `universe ⊨ EF goal`). Returns the states
    /// that *cannot* reach the goal (empty = property holds).
    ///
    /// The universe must be closed under transitions (a full domain product
    /// is; the check verifies closure and panics otherwise).
    pub fn states_not_reaching(
        &self,
        universe: &[Vec<P::State>],
        goal: impl Fn(&[P::State]) -> bool,
    ) -> Vec<Vec<P::State>> {
        let index: HashMap<&[P::State], usize> = universe
            .iter()
            .enumerate()
            .map(|(i, s)| (s.as_slice(), i))
            .collect();
        // Build the reverse adjacency.
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); universe.len()];
        for (i, s) in universe.iter().enumerate() {
            for succ in self.successors(s) {
                let j = *index
                    .get(succ.as_slice())
                    .expect("universe not closed under transitions");
                preds[j].push(i);
            }
        }
        // Backward closure from the goal set.
        let mut can_reach = vec![false; universe.len()];
        let mut queue: VecDeque<usize> = VecDeque::new();
        for (i, s) in universe.iter().enumerate() {
            if goal(s) {
                can_reach[i] = true;
                queue.push_back(i);
            }
        }
        while let Some(j) = queue.pop_front() {
            for &i in &preds[j] {
                if !can_reach[i] {
                    can_reach[i] = true;
                    queue.push_back(i);
                }
            }
        }
        universe
            .iter()
            .enumerate()
            .filter(|&(i, _)| !can_reach[i])
            .map(|(_, s)| s.clone())
            .collect()
    }
}

/// Build the full cartesian universe from per-process domains.
pub fn universe<S: Clone>(domains: &[Vec<S>]) -> Vec<Vec<S>> {
    let mut states: Vec<Vec<S>> = vec![Vec::new()];
    for domain in domains {
        let mut next = Vec::with_capacity(states.len() * domain.len());
        for s in &states {
            for v in domain {
                let mut t = s.clone();
                t.push(v.clone());
                next.push(t);
            }
        }
        states = next;
    }
    states
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::testutil::{tokens, DijkstraRing};
    use crate::time::Time;

    fn ring(n: usize, k: u64) -> DijkstraRing {
        DijkstraRing {
            n,
            k,
            cost: Time::ZERO,
        }
    }

    #[test]
    fn reachable_set_of_legal_ring_is_exactly_legal_states() {
        // From the initial state, Dijkstra's ring visits exactly the legal
        // (one-token) states: n·k of them.
        let r = ring(3, 4);
        let explorer = Explorer::new(&r);
        let exploration = explorer.reachable(vec![r.initial_state()], 100_000);
        assert!(!exploration.truncated);
        assert!(exploration.deadlocks.is_empty());
        assert!(exploration.states.iter().all(|s| tokens(&r, s) == 1));
        assert_eq!(exploration.states.len(), 3 * 4);
    }

    #[test]
    fn invariant_checker_finds_counterexample() {
        let r = ring(3, 4);
        let explorer = Explorer::new(&r);
        let err = explorer
            .check_invariant(vec![r.initial_state()], 100_000, |s| s[0] == 0)
            .unwrap_err();
        assert_ne!(err.state[0], 0);
    }

    #[test]
    fn exhaustive_stabilization_of_dijkstra_ring() {
        // THE classic: with k >= n, every state of the full universe
        // reaches a legal state. Universe: k^n states.
        let r = ring(3, 4);
        let explorer = Explorer::new(&r);
        let domain: Vec<u64> = (0..4).collect();
        let universe = universe(&[domain.clone(), domain.clone(), domain]);
        assert_eq!(universe.len(), 64);
        let stuck = explorer.states_not_reaching(&universe, |s| tokens(&r, s) == 1);
        assert!(stuck.is_empty(), "{} states cannot stabilize", stuck.len());
    }

    #[test]
    fn checker_detects_unreachable_goals() {
        // Negative direction: legal (one-token) states of the ring never
        // return to an *illegal* state, so asking for an illegal goal must
        // flag every legal state as unable to reach it.
        let r = ring(3, 4);
        let explorer = Explorer::new(&r);
        let domain: Vec<u64> = (0..4).collect();
        let u = universe(&[domain.clone(), domain.clone(), domain]);
        let stuck = explorer.states_not_reaching(&u, |s| tokens(&r, s) == 2);
        assert!(
            stuck.iter().any(|s| tokens(&r, s) == 1),
            "legal states cannot reach a two-token state and must be flagged"
        );
        // And every flagged state is indeed legal already (illegal states
        // may pass through other illegal states on their way down).
        assert!(!stuck.is_empty());
    }

    #[test]
    fn extra_transitions_expand_the_reachable_set() {
        let r = ring(2, 3);
        let explorer = Explorer::new(&r);
        let plain = explorer.reachable(vec![r.initial_state()], 10_000);
        // Add a "fault" that can reset process 0 to any value.
        let with_faults = explorer.reachable_with(vec![r.initial_state()], 10_000, |s| {
            (0..3u64)
                .map(|v| {
                    let mut t = s.to_vec();
                    t[0] = v;
                    t
                })
                .collect()
        });
        assert!(with_faults.states.len() > plain.states.len());
    }

    #[test]
    fn universe_builder_covers_product() {
        let u = universe(&[vec![0u64, 1], vec![0, 1, 2]]);
        assert_eq!(u.len(), 6);
        assert!(u.contains(&vec![1, 2]));
        assert!(u.contains(&vec![0, 0]));
    }
}
