//! Observation hooks: monitors see every state transition and fault as it is
//! applied, with the global time. The barrier specification oracle in
//! `ftbarrier-core` is a monitor; traces and statistics collectors are too.

use crate::fault::FaultKind;
use crate::protocol::{ActionId, Pid};
use crate::time::Time;

/// Observer of a simulation run over per-process states `S`.
///
/// `global` is the state *after* the transition/fault has been applied.
pub trait Monitor<S> {
    /// An action `(pid, action)` named `name` executed at time `now`,
    /// changing `pid`'s state from `old` to `new`.
    #[allow(clippy::too_many_arguments)]
    fn on_transition(
        &mut self,
        now: Time,
        pid: Pid,
        action: ActionId,
        name: &str,
        old: &S,
        new: &S,
        global: &[S],
    );

    /// A fault of kind `kind` hit `pid` at time `now`.
    fn on_fault(
        &mut self,
        _now: Time,
        _pid: Pid,
        _kind: FaultKind,
        _old: &S,
        _new: &S,
        _global: &[S],
    ) {
    }

    /// Asked after every applied event; returning `true` stops the run.
    fn should_stop(&mut self) -> bool {
        false
    }
}

/// A monitor that observes nothing. Useful as a default.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullMonitor;

impl<S> Monitor<S> for NullMonitor {
    fn on_transition(
        &mut self,
        _now: Time,
        _pid: Pid,
        _action: ActionId,
        _name: &str,
        _old: &S,
        _new: &S,
        _global: &[S],
    ) {
    }
}

/// Combine several monitors; stops when any member asks to stop.
pub struct MonitorSet<'a, S> {
    members: Vec<&'a mut dyn Monitor<S>>,
}

impl<'a, S> MonitorSet<'a, S> {
    pub fn new() -> Self {
        MonitorSet {
            members: Vec::new(),
        }
    }

    pub fn with(mut self, monitor: &'a mut dyn Monitor<S>) -> Self {
        self.members.push(monitor);
        self
    }

    pub fn push(&mut self, monitor: &'a mut dyn Monitor<S>) {
        self.members.push(monitor);
    }
}

impl<'a, S> Default for MonitorSet<'a, S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<'a, S> Monitor<S> for MonitorSet<'a, S> {
    fn on_transition(
        &mut self,
        now: Time,
        pid: Pid,
        action: ActionId,
        name: &str,
        old: &S,
        new: &S,
        global: &[S],
    ) {
        for m in &mut self.members {
            m.on_transition(now, pid, action, name, old, new, global);
        }
    }

    fn on_fault(&mut self, now: Time, pid: Pid, kind: FaultKind, old: &S, new: &S, global: &[S]) {
        for m in &mut self.members {
            m.on_fault(now, pid, kind, old, new, global);
        }
    }

    fn should_stop(&mut self) -> bool {
        self.members.iter_mut().any(|m| m.should_stop())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter {
        transitions: usize,
        stop_after: usize,
    }

    impl Monitor<u64> for Counter {
        fn on_transition(
            &mut self,
            _now: Time,
            _pid: Pid,
            _action: ActionId,
            _name: &str,
            _old: &u64,
            _new: &u64,
            _global: &[u64],
        ) {
            self.transitions += 1;
        }

        fn should_stop(&mut self) -> bool {
            self.transitions >= self.stop_after
        }
    }

    #[test]
    fn set_fans_out_and_stops() {
        let mut a = Counter {
            transitions: 0,
            stop_after: 2,
        };
        let mut b = Counter {
            transitions: 0,
            stop_after: 100,
        };
        let mut set = MonitorSet::new().with(&mut a).with(&mut b);
        let g = [0u64];
        set.on_transition(Time::ZERO, 0, 0, "t", &0, &1, &g);
        assert!(!set.should_stop());
        set.on_transition(Time::ZERO, 0, 0, "t", &1, &2, &g);
        assert!(set.should_stop());
        assert_eq!(a.transitions, 2);
        assert_eq!(b.transitions, 2);
    }
}
