//! Run statistics: action counts, fault counts, elapsed time/steps. Collected
//! by both executors and returned with every run outcome.

use std::collections::BTreeMap;

use crate::time::Time;

/// Aggregate counters for one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunStats {
    /// Total guarded actions executed (committed).
    pub actions_executed: u64,
    /// Commits that were dropped because the guard no longer held at commit
    /// time (timed engine only; see `engine` docs).
    pub commits_dropped: u64,
    /// Faults applied, by kind name.
    pub faults: u64,
    /// Executed-action histogram by action name.
    pub by_action: BTreeMap<&'static str, u64>,
    /// Final simulation time (timed engine) — zero for the untimed executor.
    pub elapsed: Time,
    /// Interleaving steps taken (untimed executor) — zero for the timed one.
    pub steps: u64,
}

impl RunStats {
    pub fn record_action(&mut self, name: &'static str) {
        self.actions_executed += 1;
        *self.by_action.entry(name).or_insert(0) += 1;
    }

    /// Bulk-add to the histogram only (`actions_executed` is maintained
    /// separately). Used by the timed engine, which counts executions in
    /// dense per-(pid, action) counters and folds them in once per run.
    pub fn add_action_count(&mut self, name: &'static str, count: u64) {
        *self.by_action.entry(name).or_insert(0) += count;
    }

    pub fn count_of(&self, name: &str) -> u64 {
        self.by_action.get(name).copied().unwrap_or(0)
    }
}

/// Online mean/min/max/stddev accumulator for experiment harnesses
/// (Welford's algorithm; numerically stable).
#[derive(Debug, Clone, Default)]
pub struct Accumulator {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Accumulator {
    pub fn new() -> Self {
        Accumulator {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    pub fn count(&self) -> u64 {
        self.n
    }

    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    pub fn min(&self) -> f64 {
        self.min
    }

    pub fn max(&self) -> f64 {
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_histogram() {
        let mut s = RunStats::default();
        s.record_action("T1");
        s.record_action("T2");
        s.record_action("T1");
        assert_eq!(s.actions_executed, 3);
        assert_eq!(s.count_of("T1"), 2);
        assert_eq!(s.count_of("T2"), 1);
        assert_eq!(s.count_of("T9"), 0);
    }

    #[test]
    fn accumulator_matches_naive() {
        let xs = [1.0, 2.0, 3.0, 4.0, 10.0];
        let mut acc = Accumulator::new();
        for &x in &xs {
            acc.add(x);
        }
        let mean: f64 = xs.iter().sum::<f64>() / xs.len() as f64;
        let var: f64 =
            xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((acc.mean() - mean).abs() < 1e-12);
        assert!((acc.variance() - var).abs() < 1e-12);
        assert_eq!(acc.min(), 1.0);
        assert_eq!(acc.max(), 10.0);
        assert_eq!(acc.count(), 5);
    }

    #[test]
    fn accumulator_empty_is_nan() {
        let acc = Accumulator::new();
        assert!(acc.mean().is_nan());
        assert_eq!(acc.variance(), 0.0);
    }
}
