//! Untimed weakly-fair interleaving executor (§2 semantics).
//!
//! "Each computation of the program is a fair interleaving of steps: in every
//! step, some action that is enabled in the current state is chosen and its
//! statement is executed atomically." This executor implements that semantics
//! and is the workhorse for the correctness/stabilization tests, where time
//! does not matter but adversarial scheduling does.
//!
//! Two choice policies are offered: uniformly random (almost-surely fair, and
//! a good randomized adversary) and round-robin (deterministically weakly
//! fair).

use crate::fault::FaultAction;
use crate::monitor::Monitor;
use crate::protocol::{ActionId, Pid, Protocol};
use crate::rng::SimRng;
use crate::stats::RunStats;
use crate::time::Time;

/// How the next enabled action is chosen among all enabled actions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ChoicePolicy {
    /// Uniformly random among all enabled `(pid, action)` pairs.
    #[default]
    UniformRandom,
    /// Rotate over processes; within the scheduled process, take its first
    /// enabled action. Deterministically weakly fair.
    RoundRobin,
}

#[derive(Debug, Clone)]
pub struct InterleavingConfig {
    pub seed: u64,
    pub policy: ChoicePolicy,
}

impl Default for InterleavingConfig {
    fn default() -> Self {
        InterleavingConfig {
            seed: 0xF7BA_221E,
            policy: ChoicePolicy::UniformRandom,
        }
    }
}

/// The interleaving executor. Owns the global state.
pub struct Interleaving<'p, P: Protocol> {
    protocol: &'p P,
    global: Vec<P::State>,
    rng: SimRng,
    stats: RunStats,
    policy: ChoicePolicy,
    rr_cursor: usize,
    scratch: Vec<(Pid, ActionId)>,
}

impl<'p, P: Protocol> Interleaving<'p, P> {
    /// Start from the program's initial state.
    pub fn new(protocol: &'p P, config: InterleavingConfig) -> Self {
        let global = protocol.initial_state();
        Self::from_state(protocol, config, global)
    }

    /// Start from an explicit state (e.g. an adversarially corrupted one).
    pub fn from_state(protocol: &'p P, config: InterleavingConfig, global: Vec<P::State>) -> Self {
        assert_eq!(global.len(), protocol.num_processes());
        Interleaving {
            protocol,
            global,
            rng: SimRng::seed_from_u64(config.seed),
            stats: RunStats::default(),
            policy: config.policy,
            rr_cursor: 0,
            scratch: Vec::new(),
        }
    }

    pub fn global(&self) -> &[P::State] {
        &self.global
    }

    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// Overwrite one process's state (test setup).
    pub fn set_state(&mut self, pid: Pid, state: P::State) {
        self.global[pid] = state;
    }

    /// Replace every process's state with an arbitrary one from its domain —
    /// the aggregate effect of undetectable faults everywhere.
    pub fn perturb_all(&mut self) {
        for pid in 0..self.protocol.num_processes() {
            self.global[pid] = self.protocol.arbitrary_state(pid, &mut self.rng);
        }
    }

    /// Apply a fault action at `pid` mid-computation.
    pub fn apply_fault(
        &mut self,
        pid: Pid,
        action: &dyn FaultAction<P::State>,
        monitor: &mut dyn Monitor<P::State>,
    ) {
        let old = self.global[pid].clone();
        action.apply(pid, &mut self.global[pid], &mut self.rng);
        self.stats.faults += 1;
        monitor.on_fault(
            Time::ZERO,
            pid,
            action.kind(),
            &old,
            &self.global[pid],
            &self.global,
        );
    }

    fn pick(&mut self) -> Option<(Pid, ActionId)> {
        let n = self.protocol.num_processes();
        match self.policy {
            ChoicePolicy::UniformRandom => {
                self.scratch.clear();
                for pid in 0..n {
                    for a in 0..self.protocol.num_actions(pid) {
                        if self.protocol.enabled(&self.global, pid, a) {
                            self.scratch.push((pid, a));
                        }
                    }
                }
                if self.scratch.is_empty() {
                    None
                } else {
                    Some(self.scratch[self.rng.below(self.scratch.len())])
                }
            }
            ChoicePolicy::RoundRobin => {
                for off in 0..n {
                    let pid = (self.rr_cursor + off) % n;
                    for a in 0..self.protocol.num_actions(pid) {
                        if self.protocol.enabled(&self.global, pid, a) {
                            self.rr_cursor = (pid + 1) % n;
                            return Some((pid, a));
                        }
                    }
                }
                None
            }
        }
    }

    /// Execute one interleaving step. Returns `false` at a fixpoint (no
    /// action enabled anywhere).
    pub fn step(&mut self, monitor: &mut dyn Monitor<P::State>) -> bool {
        let Some((pid, action)) = self.pick() else {
            return false;
        };
        let mut old = self
            .protocol
            .execute(&self.global, pid, action, &mut self.rng);
        // Swap the new state in; `old` then holds the pre-step state for
        // the monitor callback — no extra clone.
        std::mem::swap(&mut self.global[pid], &mut old);
        self.stats.steps += 1;
        self.stats
            .record_action(self.protocol.action_name(pid, action));
        monitor.on_transition(
            Time::ZERO,
            pid,
            action,
            self.protocol.action_name(pid, action),
            &old,
            &self.global[pid],
            &self.global,
        );
        true
    }

    /// Run up to `max_steps` steps; returns the number actually executed
    /// (fewer only at a fixpoint or monitor stop).
    pub fn run(&mut self, max_steps: u64, monitor: &mut dyn Monitor<P::State>) -> u64 {
        let mut done = 0;
        while done < max_steps {
            if !self.step(monitor) {
                break;
            }
            done += 1;
            if monitor.should_stop() {
                break;
            }
        }
        done
    }

    /// Run until `pred` holds on the global state (checked after each step,
    /// and once before the first). Returns the number of steps taken, or
    /// `None` if `max_steps` elapsed first.
    pub fn run_until(
        &mut self,
        max_steps: u64,
        monitor: &mut dyn Monitor<P::State>,
        mut pred: impl FnMut(&[P::State]) -> bool,
    ) -> Option<u64> {
        if pred(&self.global) {
            return Some(0);
        }
        for done in 1..=max_steps {
            if !self.step(monitor) {
                // Fixpoint: predicate can never change again.
                return if pred(&self.global) {
                    Some(done - 1)
                } else {
                    None
                };
            }
            if pred(&self.global) {
                return Some(done);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::NullMonitor;
    use crate::protocol::testutil::{tokens, DijkstraRing};

    fn ring(n: usize) -> DijkstraRing {
        DijkstraRing {
            n,
            k: 2 * n as u64 + 1,
            cost: Time::ZERO,
        }
    }

    #[test]
    fn token_circulates_fairly() {
        let r = ring(5);
        let mut exec = Interleaving::new(&r, InterleavingConfig::default());
        let mut m = NullMonitor;
        let steps = exec.run(100, &mut m);
        assert_eq!(steps, 100, "ring never reaches a fixpoint");
        assert_eq!(
            tokens(&r, exec.global()),
            1,
            "exactly one token in legal states"
        );
    }

    #[test]
    fn stabilizes_from_arbitrary_state_random_policy() {
        let r = ring(7);
        for seed in 0..20 {
            let mut exec = Interleaving::new(
                &r,
                InterleavingConfig {
                    seed,
                    policy: ChoicePolicy::UniformRandom,
                },
            );
            exec.perturb_all();
            let mut m = NullMonitor;
            // Dijkstra's ring self-stabilizes to exactly one token.
            let steps = exec.run_until(100_000, &mut m, |g| tokens(&r, g) == 1 && { true });
            assert!(steps.is_some(), "seed {seed} did not stabilize");
            // Once stabilized, the one-token property is invariant.
            for _ in 0..200 {
                exec.step(&mut m);
                assert_eq!(tokens(&r, exec.global()), 1);
            }
        }
    }

    #[test]
    fn round_robin_is_weakly_fair() {
        let r = ring(4);
        let mut exec = Interleaving::new(
            &r,
            InterleavingConfig {
                seed: 1,
                policy: ChoicePolicy::RoundRobin,
            },
        );
        let mut m = NullMonitor;
        exec.run(400, &mut m);
        // Every process must have executed roughly the same number of actions
        // (the token visits everyone).
        let per = exec.stats().actions_executed as usize;
        assert_eq!(per, 400);
        assert!(exec.stats().count_of("bottom") >= 90);
        assert!(exec.stats().count_of("other") >= 250);
    }

    #[test]
    fn run_until_reports_zero_when_already_true() {
        let r = ring(3);
        let mut exec = Interleaving::new(&r, InterleavingConfig::default());
        let mut m = NullMonitor;
        assert_eq!(exec.run_until(10, &mut m, |_| true), Some(0));
    }

    #[test]
    fn run_until_gives_up_at_budget() {
        let r = ring(3);
        let mut exec = Interleaving::new(&r, InterleavingConfig::default());
        let mut m = NullMonitor;
        assert_eq!(exec.run_until(10, &mut m, |_| false), None);
    }
}
