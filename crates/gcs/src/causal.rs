//! Causal happens-before recording for the shared-memory engines.
//!
//! [`CausalMonitor`] turns every committed transition into a
//! [`ftbarrier_telemetry::CausalEvent`] whose predecessor set is derived
//! from the protocol's *declared read-sets*: inverting
//! [`Protocol::readers_of`] yields, for each process, exactly the
//! processes its guards read, so a commit at `pid` is causally linked to
//! the last event of every process whose state the deciding guard could
//! have observed — plus `pid`'s own previous event (program order).
//! Faults link to the victim's own previous event only.
//!
//! The monitor implements both [`Monitor`] (classic engine) and
//! [`DenseMonitor`] (sharded struct-of-arrays engine). Both engines fire
//! transition callbacks in the same committed order — pinned by the
//! byte-identity differential suite — so the causal dumps of a classic
//! and a dense run of the same seed are byte-identical too (the
//! `core::testkit` conformance battery asserts exactly that).
//!
//! Like every monitor this is a pure observer: with a disabled recorder
//! every hook is a single branch, and an enabled recorder never touches
//! engine RNG or scheduling.

use crate::dense::{DenseMonitor, DenseProtocol};
use crate::fault::FaultKind;
use crate::monitor::Monitor;
use crate::protocol::{ActionId, Pid, Protocol, ReaderSet};
use crate::time::Time;
use ftbarrier_telemetry::{CausalRecorder, EventId};

/// Optional projection from a committed state to its barrier phase, so
/// recorded events carry a `phase` label for per-phase critical paths.
pub type CausalPhaseProjector<S> = Box<dyn Fn(&S) -> Option<u32> + Send>;

/// Records the causal event graph of an engine run (see module docs).
pub struct CausalMonitor<S> {
    recorder: CausalRecorder,
    /// `reads[p]` = processes whose state `p`'s guards read (sorted,
    /// includes `p` itself) — the inverse of `readers_of`.
    reads: Vec<Vec<Pid>>,
    phase_of: Option<CausalPhaseProjector<S>>,
    scratch: Vec<EventId>,
}

impl<S> CausalMonitor<S> {
    /// Build from a protocol's declared read-sets. With a disabled
    /// recorder the monitor is a no-op.
    pub fn from_protocol<P: Protocol<State = S>>(
        protocol: &P,
        recorder: CausalRecorder,
    ) -> CausalMonitor<S> {
        let n = protocol.num_processes();
        let mut reads: Vec<Vec<Pid>> = vec![Vec::new(); n];
        for q in 0..n {
            match protocol.readers_of(q) {
                ReaderSet::All => {
                    for r in reads.iter_mut() {
                        r.push(q);
                    }
                }
                ReaderSet::These(ps) => {
                    for p in ps {
                        debug_assert!(p < n, "readers_of({q}) names pid {p} out of range");
                        reads[p].push(q);
                    }
                }
            }
        }
        for (p, r) in reads.iter_mut().enumerate() {
            r.push(p); // program order: every process reads itself
            r.sort_unstable();
            r.dedup();
        }
        CausalMonitor {
            recorder,
            reads,
            phase_of: None,
            scratch: Vec::new(),
        }
    }

    /// Label every event with the phase projected from the new state.
    pub fn with_phase(mut self, f: CausalPhaseProjector<S>) -> CausalMonitor<S> {
        self.phase_of = Some(f);
        self
    }

    /// The recorder events are flowing into (cloneable handle).
    pub fn recorder(&self) -> &CausalRecorder {
        &self.recorder
    }

    fn observe(&mut self, now: Time, pid: Pid, label: &str, new: &S) {
        if !self.recorder.is_enabled() {
            return;
        }
        self.scratch.clear();
        for &q in &self.reads[pid] {
            if let Some(id) = self.recorder.last(q) {
                self.scratch.push(id);
            }
        }
        let phase = self.phase_of.as_ref().and_then(|f| f(new));
        self.recorder
            .record(pid, label, now.as_f64(), phase, &self.scratch);
    }

    fn observe_fault(&mut self, now: Time, pid: Pid, kind: FaultKind, new: &S) {
        if !self.recorder.is_enabled() {
            return;
        }
        let label = match kind {
            FaultKind::Detectable => "fault:detectable",
            FaultKind::Undetectable => "fault:undetectable",
        };
        self.scratch.clear();
        if let Some(id) = self.recorder.last(pid) {
            self.scratch.push(id);
        }
        let phase = self.phase_of.as_ref().and_then(|f| f(new));
        self.recorder
            .record(pid, label, now.as_f64(), phase, &self.scratch);
    }
}

impl<S> Monitor<S> for CausalMonitor<S> {
    fn on_transition(
        &mut self,
        now: Time,
        pid: Pid,
        _action: ActionId,
        name: &str,
        _old: &S,
        new: &S,
        _global: &[S],
    ) {
        self.observe(now, pid, name, new);
    }

    fn on_fault(&mut self, now: Time, pid: Pid, kind: FaultKind, _old: &S, new: &S, _global: &[S]) {
        self.observe_fault(now, pid, kind, new);
    }
}

impl<P: DenseProtocol> DenseMonitor<P> for CausalMonitor<P::State> {
    fn on_transition(
        &mut self,
        now: Time,
        pid: Pid,
        _action: ActionId,
        name: &'static str,
        _old: &P::State,
        new: &P::State,
        _dense: &P::Dense,
    ) {
        self.observe(now, pid, name, new);
    }

    fn on_fault(
        &mut self,
        now: Time,
        pid: Pid,
        kind: FaultKind,
        _old: &P::State,
        new: &P::State,
        _dense: &P::Dense,
    ) {
        self.observe_fault(now, pid, kind, new);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, EngineConfig};
    use crate::fault::NoFaults;
    use crate::protocol::testutil::DijkstraRing;

    fn run_ring(recorder: CausalRecorder) -> CausalRecorder {
        let ring = DijkstraRing {
            n: 4,
            k: 7,
            cost: Time::new(0.1),
        };
        let mut monitor = CausalMonitor::from_protocol(&ring, recorder.clone());
        let mut engine = Engine::new(&ring, 7);
        let cfg = EngineConfig {
            seed: 7,
            max_time: Some(Time::new(5.0)),
            ..Default::default()
        };
        engine.run(&cfg, &mut NoFaults, &mut monitor);
        recorder
    }

    #[test]
    fn read_sets_invert_into_causal_edges() {
        let rec = run_ring(CausalRecorder::bounded(4096));
        let g = rec.snapshot();
        assert!(!g.events.is_empty());
        // Every event's predecessors were recorded before it, and each
        // pred's pid is either the event's own pid (program order) or a
        // ring neighbor (the only states a DijkstraRing guard reads).
        let mut seen = std::collections::BTreeSet::new();
        for e in &g.events {
            for p in &e.preds {
                assert!(seen.contains(p), "dangling pred {p:?}");
                let (a, b) = (e.id.pid as i64, p.pid as i64);
                let d = (a - b).rem_euclid(4);
                assert!(d == 0 || d == 1, "p{b} is not read by p{a}'s guards");
            }
            seen.insert(e.id);
        }
        // The run's critical path is a real chain with positive span.
        let path = g.critical_path();
        assert!(path.len > 1);
        assert!(path.elapsed > 0.0);
    }

    #[test]
    fn off_recorder_records_nothing() {
        let rec = run_ring(CausalRecorder::off());
        assert!(rec.snapshot().events.is_empty());
    }

    #[test]
    fn same_seed_yields_identical_dumps() {
        let a = run_ring(CausalRecorder::bounded(4096))
            .snapshot()
            .to_flight_json("dijkstra", 4, "test", "end");
        let b = run_ring(CausalRecorder::bounded(4096))
            .snapshot()
            .to_flight_json("dijkstra", 4, "test", "end");
        assert_eq!(a, b);
    }
}
