//! Fault modeling.
//!
//! The paper represents each fault as an action that perturbs the variables
//! of one process: a *detectable* fault assigns flagged "reset" values (the
//! process knows it was hit — `cp := error`, `sn := ⊥`), an *undetectable*
//! fault assigns arbitrary values from the variable domains.
//!
//! What perturbation to apply is protocol-specific, so it is supplied as a
//! [`FaultAction`] by the protocol crate. *When* and *where* faults strike is
//! the environment's choice, captured by a [`FaultPlan`]:
//!
//! * [`PoissonFaults`] — arrivals with rate `λ = -ln(1-f)` per time unit,
//!   which reproduces the paper's survival function `(1-f)^d` for "no fault
//!   during a duration-`d` phase" exactly.
//! * [`ScriptedFaults`] — a fixed schedule, for deterministic tests.

use crate::protocol::Pid;
use crate::rng::SimRng;
use crate::time::Time;

/// The paper's two fault classes (§2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// State is reset to flagged values before any process accesses it
    /// (message loss, fail-stop, reboot, FP exceptions, …).
    Detectable,
    /// State is corrupted to arbitrary values without any flag (design
    /// errors, memory corruption, hanging processes, …).
    Undetectable,
}

/// A protocol-specific fault perturbation applied to one process's state.
pub trait FaultAction<S> {
    fn kind(&self) -> FaultKind;
    fn apply(&self, pid: Pid, state: &mut S, rng: &mut SimRng);
}

/// Record of an applied fault, reported back to the executor for monitors.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultHit<S> {
    pub pid: Pid,
    pub kind: FaultKind,
    /// The reported victim's state immediately before the perturbation,
    /// captured by the plan so the executor never has to snapshot the whole
    /// global state around a fault.
    pub old: S,
}

/// Chooses which process a fault strikes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VictimPolicy {
    /// Uniformly random process (the paper: "at any process").
    Random,
    /// Always the same process.
    Fixed(Pid),
}

impl VictimPolicy {
    fn pick(&self, n: usize, rng: &mut SimRng) -> Pid {
        match *self {
            VictimPolicy::Random => rng.below(n),
            VictimPolicy::Fixed(pid) => {
                assert!(pid < n, "fixed victim {pid} out of range (n={n})");
                pid
            }
        }
    }
}

/// Environment that decides when/where faults strike during a timed run.
pub trait FaultPlan<S> {
    /// The time of the next fault at or after `now`, if any. Must be stable
    /// between calls until [`FaultPlan::fire`] consumes it.
    fn peek(&mut self, now: Time, rng: &mut SimRng) -> Option<Time>;

    /// Apply the fault previously returned by `peek`. Mutates the state of
    /// one or more processes, pushes every perturbed pid into `touched`
    /// (the executor uses this to dirty-mark dependent guards), and reports
    /// the primary victim together with its pre-fault state.
    fn fire(
        &mut self,
        at: Time,
        global: &mut [S],
        rng: &mut SimRng,
        touched: &mut Vec<Pid>,
    ) -> FaultHit<S>;
}

/// The empty fault environment.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoFaults;

impl<S> FaultPlan<S> for NoFaults {
    fn peek(&mut self, _now: Time, _rng: &mut SimRng) -> Option<Time> {
        None
    }

    fn fire(
        &mut self,
        _at: Time,
        _global: &mut [S],
        _rng: &mut SimRng,
        _touched: &mut Vec<Pid>,
    ) -> FaultHit<S> {
        unreachable!("NoFaults never schedules a fault")
    }
}

/// Convert the paper's per-unit-time fault frequency `f` into a Poisson rate
/// `λ` such that `P(no arrival in duration d) = (1-f)^d`.
///
/// Panics if `f` is not in `[0, 1)`.
pub fn rate_for_frequency(f: f64) -> f64 {
    assert!(
        (0.0..1.0).contains(&f),
        "fault frequency must be in [0,1), got {f}"
    );
    -(1.0 - f).ln()
}

/// Poisson fault arrivals applying one fixed [`FaultAction`].
pub struct PoissonFaults<A> {
    rate: f64,
    victims: VictimPolicy,
    action: A,
    next: Option<Time>,
}

impl<A> PoissonFaults<A> {
    /// Build from a Poisson rate (arrivals per time unit).
    pub fn with_rate(rate: f64, victims: VictimPolicy, action: A) -> Self {
        assert!(rate >= 0.0, "rate must be non-negative");
        PoissonFaults {
            rate,
            victims,
            action,
            next: None,
        }
    }

    /// Build from the paper's fault frequency `f` (see [`rate_for_frequency`]).
    pub fn with_frequency(f: f64, victims: VictimPolicy, action: A) -> Self {
        Self::with_rate(rate_for_frequency(f), victims, action)
    }
}

impl<S: Clone, A: FaultAction<S>> FaultPlan<S> for PoissonFaults<A> {
    fn peek(&mut self, now: Time, rng: &mut SimRng) -> Option<Time> {
        if self.rate == 0.0 {
            return None;
        }
        if self.next.is_none() {
            let dt = rng.exponential(self.rate);
            if !dt.is_finite() {
                return None;
            }
            self.next = Some(now + Time::new(dt));
        }
        self.next
    }

    fn fire(
        &mut self,
        _at: Time,
        global: &mut [S],
        rng: &mut SimRng,
        touched: &mut Vec<Pid>,
    ) -> FaultHit<S> {
        let pid = self.victims.pick(global.len(), rng);
        let old = global[pid].clone();
        self.action.apply(pid, &mut global[pid], rng);
        self.next = None;
        touched.push(pid);
        FaultHit {
            pid,
            kind: self.action.kind(),
            old,
        }
    }
}

/// One entry of a scripted fault schedule.
pub struct ScriptedFault<S> {
    pub at: Time,
    pub pid: Pid,
    pub action: Box<dyn FaultAction<S>>,
}

/// A deterministic fault schedule, fired in time order.
pub struct ScriptedFaults<S> {
    script: Vec<ScriptedFault<S>>,
    cursor: usize,
}

impl<S> ScriptedFaults<S> {
    pub fn new(mut script: Vec<ScriptedFault<S>>) -> Self {
        script.sort_by_key(|e| e.at);
        ScriptedFaults { script, cursor: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.script.len() - self.cursor
    }
}

impl<S: Clone> FaultPlan<S> for ScriptedFaults<S> {
    fn peek(&mut self, _now: Time, _rng: &mut SimRng) -> Option<Time> {
        self.script.get(self.cursor).map(|e| e.at)
    }

    fn fire(
        &mut self,
        _at: Time,
        global: &mut [S],
        rng: &mut SimRng,
        touched: &mut Vec<Pid>,
    ) -> FaultHit<S> {
        let entry = &self.script[self.cursor];
        self.cursor += 1;
        let old = global[entry.pid].clone();
        entry.action.apply(entry.pid, &mut global[entry.pid], rng);
        touched.push(entry.pid);
        FaultHit {
            pid: entry.pid,
            kind: entry.action.kind(),
            old,
        }
    }
}

// Dense counterparts. These must make exactly the same RNG draws in exactly
// the same order as the slice impls above, so a dense run's fault schedule
// matches the classic engine's draw for draw.

impl<D, A> crate::dense::DenseFaultPlan<D> for PoissonFaults<A>
where
    D: crate::dense::DenseState,
    A: FaultAction<D::Elem>,
{
    fn peek(&mut self, now: Time, rng: &mut SimRng) -> Option<Time> {
        if self.rate == 0.0 {
            return None;
        }
        if self.next.is_none() {
            let dt = rng.exponential(self.rate);
            if !dt.is_finite() {
                return None;
            }
            self.next = Some(now + Time::new(dt));
        }
        self.next
    }

    fn fire(
        &mut self,
        _at: Time,
        dense: &mut D,
        rng: &mut SimRng,
        touched: &mut Vec<Pid>,
    ) -> FaultHit<D::Elem> {
        let pid = self.victims.pick(dense.len(), rng);
        let old = dense.get(pid);
        let mut state = old;
        self.action.apply(pid, &mut state, rng);
        dense.set(pid, state);
        self.next = None;
        touched.push(pid);
        FaultHit {
            pid,
            kind: self.action.kind(),
            old,
        }
    }
}

impl<D> crate::dense::DenseFaultPlan<D> for ScriptedFaults<D::Elem>
where
    D: crate::dense::DenseState,
{
    fn peek(&mut self, _now: Time, _rng: &mut SimRng) -> Option<Time> {
        self.script.get(self.cursor).map(|e| e.at)
    }

    fn fire(
        &mut self,
        _at: Time,
        dense: &mut D,
        rng: &mut SimRng,
        touched: &mut Vec<Pid>,
    ) -> FaultHit<D::Elem> {
        let entry = &self.script[self.cursor];
        self.cursor += 1;
        let old = dense.get(entry.pid);
        let mut state = old;
        entry.action.apply(entry.pid, &mut state, rng);
        dense.set(entry.pid, state);
        touched.push(entry.pid);
        FaultHit {
            pid: entry.pid,
            kind: entry.action.kind(),
            old,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Zap;
    impl FaultAction<u64> for Zap {
        fn kind(&self) -> FaultKind {
            FaultKind::Detectable
        }
        fn apply(&self, _pid: Pid, state: &mut u64, _rng: &mut SimRng) {
            *state = 999;
        }
    }

    #[test]
    fn rate_matches_survival_function() {
        // P(no fault in d) = exp(-λ d) must equal (1-f)^d.
        for &f in &[0.001, 0.01, 0.1, 0.5] {
            let lambda = rate_for_frequency(f);
            for &d in &[0.5, 1.0, 2.0, 7.3] {
                let poisson = (-lambda * d).exp();
                let paper = (1.0 - f).powf(d);
                assert!((poisson - paper).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn zero_frequency_never_fires() {
        let mut plan = PoissonFaults::with_frequency(0.0, VictimPolicy::Random, Zap);
        let mut rng = SimRng::seed_from_u64(0);
        assert_eq!(
            FaultPlan::<u64>::peek(&mut plan, Time::ZERO, &mut rng),
            None
        );
    }

    #[test]
    fn poisson_peek_is_stable_until_fired() {
        let mut plan = PoissonFaults::with_frequency(0.5, VictimPolicy::Fixed(1), Zap);
        let mut rng = SimRng::seed_from_u64(0);
        let t1 = FaultPlan::<u64>::peek(&mut plan, Time::ZERO, &mut rng).unwrap();
        let t2 = FaultPlan::<u64>::peek(&mut plan, Time::ZERO, &mut rng).unwrap();
        assert_eq!(t1, t2);
        let mut global = vec![7u64, 5, 3];
        let mut touched = Vec::new();
        let hit = plan.fire(t1, &mut global, &mut rng, &mut touched);
        assert_eq!(hit.pid, 1);
        assert_eq!(hit.old, 5);
        assert_eq!(touched, vec![1]);
        assert_eq!(global, vec![7, 999, 3]);
        let t3 = FaultPlan::<u64>::peek(&mut plan, t1, &mut rng).unwrap();
        assert!(t3 > t1);
    }

    #[test]
    fn poisson_interarrival_mean() {
        let mut plan = PoissonFaults::with_frequency(0.2, VictimPolicy::Random, Zap);
        let mut rng = SimRng::seed_from_u64(11);
        let lambda = rate_for_frequency(0.2);
        let mut now = Time::ZERO;
        let n = 5000;
        for _ in 0..n {
            let at = FaultPlan::<u64>::peek(&mut plan, now, &mut rng).unwrap();
            let mut g = vec![0u64; 4];
            plan.fire(at, &mut g, &mut rng, &mut Vec::new());
            now = at;
        }
        let mean = now.as_f64() / n as f64;
        assert!(
            (mean - 1.0 / lambda).abs() < 0.15,
            "mean {mean}, want {}",
            1.0 / lambda
        );
    }

    #[test]
    fn scripted_fires_in_time_order() {
        let script = vec![
            ScriptedFault {
                at: Time::new(2.0),
                pid: 0,
                action: Box::new(Zap) as Box<dyn FaultAction<u64>>,
            },
            ScriptedFault {
                at: Time::new(1.0),
                pid: 1,
                action: Box::new(Zap),
            },
        ];
        let mut plan = ScriptedFaults::new(script);
        let mut rng = SimRng::seed_from_u64(0);
        let mut global = vec![0u64; 2];
        let mut touched = Vec::new();
        assert_eq!(plan.peek(Time::ZERO, &mut rng), Some(Time::new(1.0)));
        let hit = plan.fire(Time::new(1.0), &mut global, &mut rng, &mut touched);
        assert_eq!(hit.pid, 1);
        assert_eq!(hit.old, 0);
        assert_eq!(plan.peek(Time::ZERO, &mut rng), Some(Time::new(2.0)));
        assert_eq!(plan.remaining(), 1);
        plan.fire(Time::new(2.0), &mut global, &mut rng, &mut touched);
        assert_eq!(touched, vec![1, 0]);
        assert_eq!(plan.peek(Time::ZERO, &mut rng), None);
    }

    #[test]
    #[should_panic]
    fn frequency_must_be_below_one() {
        let _ = rate_for_frequency(1.0);
    }
}
