//! Telemetry bridge for the simulation substrate: a [`Monitor`] that
//! mirrors every transition and fault into an `ftbarrier-telemetry`
//! recorder, stamped in virtual [`Time`].
//!
//! The monitor is a pure observer — it only *reads* the states handed to
//! every monitor and never touches the engine's RNG or event queue — so
//! runs with it attached are byte-identical to runs without (asserted by
//! the differential tests in `ftbarrier-core`).

use crate::fault::FaultKind;
use crate::monitor::Monitor;
use crate::protocol::{ActionId, Pid};
use crate::stats::RunStats;
use crate::time::Time;
use ftbarrier_telemetry::{MetricsRegistry, Telemetry, TrackId};

fn fault_kind_label(kind: FaultKind) -> &'static str {
    match kind {
        FaultKind::Detectable => "detectable",
        FaultKind::Undetectable => "undetectable",
    }
}

/// Projects a per-process state to its barrier phase number, if the state
/// is currently *in* a phase. Returning `None` means "not executing" and
/// closes any open phase span.
pub type PhaseProjector<S> = Box<dyn Fn(&S) -> Option<u32>>;

/// A monitor that records per-action counters, per-process phase spans,
/// and fault instants into a [`Telemetry`] handle.
pub struct TelemetryMonitor<S> {
    telemetry: Telemetry,
    tracks: Vec<TrackId>,
    /// `(phase, start)` of the currently open span per process.
    open: Vec<Option<(u32, Time)>>,
    projector: Option<PhaseProjector<S>>,
    last_now: Time,
}

impl<S> TelemetryMonitor<S> {
    /// A monitor over `n` processes. With a disabled handle every hook is a
    /// cheap no-op.
    pub fn new(telemetry: Telemetry, n: usize) -> Self {
        let tracks = (0..n)
            .map(|p| telemetry.track(&format!("proc {p}")))
            .collect();
        TelemetryMonitor {
            telemetry,
            tracks,
            open: vec![None; n],
            projector: None,
            last_now: Time::ZERO,
        }
    }

    /// Attach a phase projector; each process then gets a `phase <k>` span
    /// on its track for every interval the projector reports it in phase
    /// `k`.
    pub fn with_phase_projector(mut self, projector: PhaseProjector<S>) -> Self {
        self.projector = Some(projector);
        self
    }

    fn track(&self, pid: Pid) -> TrackId {
        self.tracks.get(pid).copied().unwrap_or(TrackId::NONE)
    }

    fn update_phase(&mut self, now: Time, pid: Pid, new: &S) {
        let Some(projector) = &self.projector else {
            return;
        };
        let new_phase = projector(new);
        let open = self.open[pid];
        if open.map(|(ph, _)| ph) == new_phase && new_phase.is_some() {
            return;
        }
        if let Some((ph, start)) = open {
            self.telemetry.span(
                self.track(pid),
                &format!("phase {ph}"),
                start.as_f64(),
                now.as_f64(),
            );
            self.open[pid] = None;
        }
        if let Some(ph) = new_phase {
            self.open[pid] = Some((ph, now));
        }
    }

    /// Close any still-open phase spans at `end` (defaults to the last
    /// observed event time) and return the handle.
    pub fn finish(mut self, end: Option<Time>) -> Telemetry {
        let end = end.unwrap_or(self.last_now);
        for pid in 0..self.open.len() {
            if let Some((ph, start)) = self.open[pid].take() {
                self.telemetry.span(
                    self.track(pid),
                    &format!("phase {ph}"),
                    start.as_f64(),
                    end.max(start).as_f64(),
                );
            }
        }
        self.telemetry
    }
}

impl<S> Monitor<S> for TelemetryMonitor<S> {
    fn on_transition(
        &mut self,
        now: Time,
        pid: Pid,
        _action: ActionId,
        name: &str,
        _old: &S,
        new: &S,
        _global: &[S],
    ) {
        if !self.telemetry.is_enabled() {
            return;
        }
        self.last_now = self.last_now.max(now);
        self.telemetry
            .counter("engine_actions_total", &[("action", name)], 1);
        self.update_phase(now, pid, new);
    }

    fn on_fault(&mut self, now: Time, pid: Pid, kind: FaultKind, _old: &S, new: &S, _global: &[S]) {
        if !self.telemetry.is_enabled() {
            return;
        }
        self.last_now = self.last_now.max(now);
        let label = fault_kind_label(kind);
        self.telemetry
            .counter("engine_faults_total", &[("kind", label)], 1);
        self.telemetry.instant_with(
            self.track(pid),
            &format!("fault:{label}"),
            now.as_f64(),
            &[("pid", &pid.to_string())],
        );
        self.update_phase(now, pid, new);
    }
}

impl RunStats {
    /// Bridge the run's aggregate counters into a telemetry registry, so
    /// `repro bench` outputs and the trace exporters share one schema.
    pub fn to_metrics(&self) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        for (name, count) in &self.by_action {
            reg.add_counter("engine_actions_total", &[("action", name)], *count);
        }
        reg.add_counter("engine_actions_executed_total", &[], self.actions_executed);
        reg.add_counter("engine_commits_dropped_total", &[], self.commits_dropped);
        reg.add_counter("engine_faults_total", &[], self.faults);
        let attempts = self.actions_executed + self.commits_dropped;
        reg.set_gauge(
            "engine_commit_drop_ratio",
            &[],
            if attempts == 0 {
                0.0
            } else {
                self.commits_dropped as f64 / attempts as f64
            },
        );
        reg.set_gauge("engine_elapsed_time", &[], self.elapsed.as_f64());
        reg.set_gauge("engine_steps", &[], self.steps as f64);
        reg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftbarrier_telemetry::{TimeDomain, TimelineEvent};

    #[test]
    fn run_stats_bridge_to_metrics() {
        let mut stats = RunStats::default();
        stats.record_action("tok");
        stats.record_action("tok");
        stats.record_action("chk");
        stats.commits_dropped = 1;
        stats.faults = 2;
        stats.elapsed = Time::new(12.5);
        let reg = stats.to_metrics();
        assert_eq!(reg.counter("engine_actions_total", &[("action", "tok")]), 2);
        assert_eq!(reg.counter("engine_actions_total", &[("action", "chk")]), 1);
        assert_eq!(reg.counter("engine_actions_executed_total", &[]), 3);
        assert_eq!(reg.counter("engine_commits_dropped_total", &[]), 1);
        assert_eq!(reg.counter("engine_faults_total", &[]), 2);
        assert_eq!(reg.gauge("engine_commit_drop_ratio", &[]), Some(0.25));
        assert_eq!(reg.gauge("engine_elapsed_time", &[]), Some(12.5));
    }

    #[test]
    fn empty_stats_drop_ratio_is_zero() {
        let reg = RunStats::default().to_metrics();
        assert_eq!(reg.gauge("engine_commit_drop_ratio", &[]), Some(0.0));
    }

    #[test]
    fn monitor_counts_actions_and_emits_phase_spans() {
        let tele = Telemetry::recording(TimeDomain::Virtual);
        let mut mon = TelemetryMonitor::<u32>::new(tele, 2)
            .with_phase_projector(Box::new(|s: &u32| if *s > 0 { Some(*s) } else { None }));
        let g = [0u32, 0];
        // pid 0 enters phase 1 at t=1, moves to phase 2 at t=3.
        mon.on_transition(Time::new(1.0), 0, 0, "tok", &0, &1, &g);
        mon.on_transition(Time::new(3.0), 0, 0, "tok", &1, &2, &g);
        mon.on_fault(Time::new(4.0), 1, FaultKind::Detectable, &0, &0, &g);
        let snap = mon.finish(Some(Time::new(5.0))).snapshot();
        assert_eq!(
            snap.metrics
                .counter("engine_actions_total", &[("action", "tok")]),
            2
        );
        assert_eq!(
            snap.metrics
                .counter("engine_faults_total", &[("kind", "detectable")]),
            1
        );
        let spans: Vec<&TimelineEvent> = snap
            .events
            .iter()
            .filter(|e| matches!(e, TimelineEvent::Span { .. }))
            .collect();
        // phase 1 [1,3] and phase 2 [3,5] on proc 0's track.
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name(), "phase 1");
        let instants: Vec<&TimelineEvent> = snap
            .events
            .iter()
            .filter(|e| matches!(e, TimelineEvent::Instant { .. }))
            .collect();
        assert_eq!(instants.len(), 1);
        assert_eq!(instants[0].name(), "fault:detectable");
    }

    #[test]
    fn disabled_monitor_is_inert() {
        let mut mon = TelemetryMonitor::<u32>::new(Telemetry::off(), 2);
        let g = [0u32, 0];
        mon.on_transition(Time::new(1.0), 0, 0, "tok", &0, &1, &g);
        let snap = mon.finish(None).snapshot();
        assert!(snap.events.is_empty());
        assert!(snap.metrics.is_empty());
    }
}
