//! Deterministic simulation randomness.
//!
//! Every stochastic choice in the simulator (scheduler tie-breaks, fault
//! arrival times, fault perturbation values) flows through [`SimRng`] so that
//! a run is fully reproducible from its seed. Internally this is a thin
//! wrapper over `rand`'s `SmallRng` (xoshiro256++), which is plenty for
//! simulation purposes and fast.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Seeded simulation RNG. Cheap to fork for independent substreams.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
}

impl SimRng {
    pub fn seed_from_u64(seed: u64) -> SimRng {
        SimRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Fork an independent substream (e.g. one per process, one for faults)
    /// so adding consumers does not perturb existing streams.
    pub fn fork(&mut self) -> SimRng {
        SimRng::seed_from_u64(self.inner.gen())
    }

    /// Uniform integer in `[0, bound)`. Panics if `bound == 0`.
    #[inline]
    pub fn below(&mut self, bound: usize) -> usize {
        self.inner.gen_range(0..bound)
    }

    /// Uniform integer in `[lo, hi)`.
    #[inline]
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        self.inner.gen_range(lo..hi)
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0,1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.inner.gen::<f64>() < p
    }

    /// Exponentially distributed duration with the given rate (events per
    /// time unit). Used for Poisson fault arrivals. Returns `f64::INFINITY`
    /// when `rate <= 0` (no events ever).
    #[inline]
    pub fn exponential(&mut self, rate: f64) -> f64 {
        if rate <= 0.0 {
            return f64::INFINITY;
        }
        // Inverse transform; `1 - unit()` avoids ln(0).
        -(1.0 - self.unit()).ln() / rate
    }

    /// Choose a uniformly random element of a slice. Panics on empty input.
    #[inline]
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len())]
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.below(1000), b.below(1000));
        }
    }

    #[test]
    fn forks_are_independent_of_later_draws() {
        let mut a = SimRng::seed_from_u64(7);
        let mut fork1 = a.fork();
        let x: Vec<usize> = (0..10).map(|_| fork1.below(100)).collect();

        let mut b = SimRng::seed_from_u64(7);
        let mut fork2 = b.fork();
        // Draw extra values from the parent; fork stream must be unaffected.
        let _ = b.below(100);
        let y: Vec<usize> = (0..10).map(|_| fork2.below(100)).collect();
        assert_eq!(x, y);
    }

    #[test]
    fn exponential_mean_close_to_inverse_rate() {
        let mut rng = SimRng::seed_from_u64(1);
        let rate = 4.0;
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(rate)).sum::<f64>() / n as f64;
        assert!((mean - 1.0 / rate).abs() < 0.01, "mean was {mean}");
    }

    #[test]
    fn exponential_zero_rate_is_never() {
        let mut rng = SimRng::seed_from_u64(1);
        assert!(rng.exponential(0.0).is_infinite());
        assert!(rng.exponential(-1.0).is_infinite());
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from_u64(3);
        assert!((0..100).all(|_| !rng.chance(0.0)));
        assert!((0..100).all(|_| rng.chance(1.1)));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
