//! Deterministic simulation randomness.
//!
//! Every stochastic choice in the simulator (scheduler tie-breaks, fault
//! arrival times, fault perturbation values) flows through [`SimRng`] so that
//! a run is fully reproducible from its seed. Internally this is a
//! self-contained xoshiro256++ generator (the same algorithm `rand`'s
//! `SmallRng` uses on 64-bit targets) seeded through splitmix64, so the
//! simulator has no external RNG dependency and the stream for a given seed
//! is stable forever.

/// Seeded simulation RNG. Cheap to fork for independent substreams.
#[derive(Debug, Clone)]
pub struct SimRng {
    state: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    pub fn seed_from_u64(seed: u64) -> SimRng {
        // splitmix64 expansion, the reference recipe for filling xoshiro
        // state from one word; it cannot produce the all-zero state.
        let mut s = seed;
        SimRng {
            state: [
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
            ],
        }
    }

    /// Fork an independent substream (e.g. one per process, one for faults)
    /// so adding consumers does not perturb existing streams.
    pub fn fork(&mut self) -> SimRng {
        SimRng::seed_from_u64(self.next_u64())
    }

    /// The xoshiro256++ core step: a uniform draw over the **full** 64-bit
    /// domain (every `u64` value, including `u64::MAX`, is reachable).
    ///
    /// This is the right call for deriving seeds of forked generators.
    /// `range_u64(0, u64::MAX)` is *not* equivalent: the range is half-open,
    /// so it can never yield `u64::MAX`, and the Lemire mapping collapses it
    /// to `next_u64() - 1` — a silent off-by-one over the seed domain.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s2 = s2 ^ s0;
        let mut s3 = s3 ^ s1;
        let s1 = s1 ^ s2;
        let s0 = s0 ^ s3;
        s2 ^= t;
        s3 = s3.rotate_left(45);
        self.state = [s0, s1, s2, s3];
        result
    }

    /// Uniform integer in `[0, bound)`. Panics if `bound == 0`.
    #[inline]
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "below(0)");
        // Lemire's multiply-shift bounded mapping (bias is < 2^-64 * bound,
        // irrelevant at simulation scales and branch-free).
        ((u128::from(self.next_u64()) * bound as u128) >> 64) as usize
    }

    /// Uniform integer in the **half-open** range `[lo, hi)`: `lo` is
    /// reachable, `hi` never is. For a draw over all of `u64` use
    /// [`SimRng::next_u64`]; there is no `hi` that makes this span the full
    /// domain.
    #[inline]
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + ((u128::from(self.next_u64()) * u128::from(hi - lo)) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn unit(&mut self) -> f64 {
        // 53 random mantissa bits, the standard double-precision recipe.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0,1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }

    /// Exponentially distributed duration with the given rate (events per
    /// time unit). Used for Poisson fault arrivals. Returns `f64::INFINITY`
    /// when `rate <= 0` (no events ever).
    #[inline]
    pub fn exponential(&mut self, rate: f64) -> f64 {
        if rate <= 0.0 {
            return f64::INFINITY;
        }
        // Inverse transform; `1 - unit()` avoids ln(0).
        -(1.0 - self.unit()).ln() / rate
    }

    /// Choose a uniformly random element of a slice. Panics on empty input.
    #[inline]
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len())]
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.below(1000), b.below(1000));
        }
    }

    #[test]
    fn forks_are_independent_of_later_draws() {
        let mut a = SimRng::seed_from_u64(7);
        let mut fork1 = a.fork();
        let x: Vec<usize> = (0..10).map(|_| fork1.below(100)).collect();

        let mut b = SimRng::seed_from_u64(7);
        let mut fork2 = b.fork();
        // Draw extra values from the parent; fork stream must be unaffected.
        let _ = b.below(100);
        let y: Vec<usize> = (0..10).map(|_| fork2.below(100)).collect();
        assert_eq!(x, y);
    }

    #[test]
    fn exponential_mean_close_to_inverse_rate() {
        let mut rng = SimRng::seed_from_u64(1);
        let rate = 4.0;
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(rate)).sum::<f64>() / n as f64;
        assert!((mean - 1.0 / rate).abs() < 0.01, "mean was {mean}");
    }

    #[test]
    fn exponential_zero_rate_is_never() {
        let mut rng = SimRng::seed_from_u64(1);
        assert!(rng.exponential(0.0).is_infinite());
        assert!(rng.exponential(-1.0).is_infinite());
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from_u64(3);
        assert!((0..100).all(|_| !rng.chance(0.0)));
        assert!((0..100).all(|_| rng.chance(1.1)));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn unit_is_half_open_and_roughly_uniform() {
        let mut rng = SimRng::seed_from_u64(11);
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| {
                let u = rng.unit();
                assert!((0.0..1.0).contains(&u));
                u
            })
            .sum::<f64>()
            / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean was {mean}");
    }

    #[test]
    fn range_u64_is_half_open() {
        // The contract is [lo, hi): both endpoints of a two-element range
        // must appear, and hi itself never may.
        let mut rng = SimRng::seed_from_u64(17);
        let (lo, hi) = (u64::MAX - 2, u64::MAX);
        let mut seen_lo = false;
        let mut seen_mid = false;
        for _ in 0..200 {
            match rng.range_u64(lo, hi) {
                x if x == lo => seen_lo = true,
                x if x == lo + 1 => seen_mid = true,
                x => panic!("range_u64({lo}, {hi}) produced out-of-range {x}"),
            }
        }
        assert!(
            seen_lo && seen_mid,
            "both values of a 2-wide range reachable"
        );
    }

    #[test]
    fn range_u64_covers_small_domains() {
        let mut rng = SimRng::seed_from_u64(19);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[(rng.range_u64(10, 15) - 10) as usize] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "range_u64(10,15) must reach every value"
        );
    }

    #[test]
    fn next_u64_spans_the_full_domain() {
        // range_u64(0, u64::MAX) degenerates to next_u64() - 1 under the
        // Lemire mapping and can never produce u64::MAX. Seed derivation
        // must use next_u64, which reaches every 64-bit value; check that
        // the top bucket (values range_u64 could only hit via the excluded
        // endpoint) occurs at the expected ~1/16 rate.
        let mut rng = SimRng::seed_from_u64(23);
        let n = 4_000;
        let top = (0..n)
            .filter(|_| rng.next_u64() >= u64::MAX / 16 * 15)
            .count();
        let expect = n / 16;
        assert!(
            top > expect / 2 && top < expect * 2,
            "top-sixteenth frequency {top} far from {expect}"
        );
    }

    #[test]
    fn below_covers_small_domains() {
        let mut rng = SimRng::seed_from_u64(13);
        let mut seen = [false; 7];
        for _ in 0..500 {
            seen[rng.below(7)] = true;
        }
        assert!(seen.iter().all(|&s| s), "below(7) must reach every value");
    }
}
