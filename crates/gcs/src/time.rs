//! Simulation time: a non-negative, totally ordered wrapper over `f64`.
//!
//! The paper measures everything in units of one phase execution; the
//! communication latency `c` and fault frequency `f` are expressed relative to
//! that unit. `Time` keeps the convenience of floating point while providing
//! the total order required by the event queue (NaN is rejected at
//! construction, so `Ord` is sound).

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A point in (or duration of) simulation time. Never NaN, never negative.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct Time(f64);

impl Time {
    pub const ZERO: Time = Time(0.0);

    /// Construct a time value; panics on NaN or negative input, which would
    /// corrupt the event queue ordering.
    #[inline]
    pub fn new(value: f64) -> Time {
        assert!(
            value.is_finite() && value >= 0.0,
            "Time must be finite and non-negative, got {value}"
        );
        Time(value)
    }

    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0
    }

    #[inline]
    pub fn max(self, other: Time) -> Time {
        if self >= other {
            self
        } else {
            other
        }
    }

    #[inline]
    pub fn min(self, other: Time) -> Time {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Saturating subtraction: durations never go negative.
    #[inline]
    pub fn saturating_sub(self, other: Time) -> Time {
        Time((self.0 - other.0).max(0.0))
    }
}

impl Eq for Time {}

impl PartialOrd for Time {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Time {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        // Constructor guarantees no NaN.
        self.0.partial_cmp(&other.0).expect("Time is never NaN")
    }
}

impl Add for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Time) -> Time {
        Time::new(self.0 + rhs.0)
    }
}

impl AddAssign for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Time) {
        *self = *self + rhs;
    }
}

impl Sub for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: Time) -> Time {
        Time::new(self.0 - rhs.0)
    }
}

impl Mul<f64> for Time {
    type Output = Time;
    #[inline]
    fn mul(self, rhs: f64) -> Time {
        Time::new(self.0 * rhs)
    }
}

impl Div<Time> for Time {
    type Output = f64;
    #[inline]
    fn div(self, rhs: Time) -> f64 {
        self.0 / rhs.0
    }
}

impl From<f64> for Time {
    #[inline]
    fn from(value: f64) -> Time {
        Time::new(value)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.0)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_total() {
        let a = Time::new(1.0);
        let b = Time::new(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    #[test]
    fn arithmetic() {
        let a = Time::new(1.5);
        let b = Time::new(0.5);
        assert_eq!((a + b).as_f64(), 2.0);
        assert_eq!((a - b).as_f64(), 1.0);
        assert_eq!((a * 2.0).as_f64(), 3.0);
        assert_eq!(a / b, 3.0);
    }

    #[test]
    fn saturating_sub_clamps() {
        let a = Time::new(1.0);
        let b = Time::new(2.0);
        assert_eq!(a.saturating_sub(b), Time::ZERO);
        assert_eq!(b.saturating_sub(a), Time::new(1.0));
    }

    #[test]
    #[should_panic]
    fn rejects_negative() {
        let _ = Time::new(-1.0);
    }

    #[test]
    #[should_panic]
    fn rejects_nan() {
        let _ = Time::new(f64::NAN);
    }

    #[test]
    #[should_panic]
    fn sub_underflow_panics() {
        let _ = Time::new(1.0) - Time::new(2.0);
    }
}
