//! Byzantine fault environment (§7's `good` processes, made concrete).
//!
//! The paper's §7 sketches Byzantine tolerance with an auxiliary variable
//! `good.j`: a process that is not good may write *arbitrary* values to its
//! own variables, arbitrarily often. This module supplies the environment
//! side of that model as a [`FaultPlan`]: a fixed set of Byzantine processes
//! ([`ByzantineProcess`]), each with a *corruption budget* bounding how many
//! adversarial writes it gets, attacking at Poisson arrival times with an
//! *arsenal* of [`FaultAction`]s to draw from (in-domain scrambles,
//! out-of-domain forgeries, protocol-specific corruption — the plan does not
//! care).
//!
//! Two deliberate modeling choices:
//!
//! * **Equivocation.** A Byzantine process that owns several state slots
//!   (the §5 refinement's real variable plus local copies, a double tree's
//!   up/down positions) gets an *independent* corruption draw per slot, so
//!   it can present *different* lies to different readers — the shared-state
//!   rendering of equivocation. (Message-level equivocation lives in
//!   `ftbarrier_mp::sweep_sim`'s forgery hooks.)
//! * **Budgets.** Self-stabilization arguments are relative to faults
//!   eventually ceasing; an unbounded adversary can trivially deny progress
//!   forever. The per-process budget is the knob that separates "transient
//!   Byzantine" (stabilization applies) from "persistent Byzantine"
//!   (quarantine must win the race instead).
//!
//! Like every plan in this crate, the slice ([`FaultPlan`]) and dense
//! ([`DenseFaultPlan`]) implementations make exactly the same RNG draws in
//! exactly the same order: the attacker draw, the arsenal draw, then the
//! action's own draws per slot ascending.

use crate::dense::{DenseFaultPlan, DenseState};
use crate::fault::{FaultAction, FaultHit, FaultPlan};
use crate::protocol::Pid;
use crate::rng::SimRng;
use crate::time::Time;

/// One Byzantine process: who it is, which state slots it may corrupt, and
/// how many corruption events it has left.
#[derive(Debug, Clone)]
pub struct ByzantineProcess {
    /// The process identity, passed to [`FaultAction::apply`] and useful for
    /// mapping hits back to the attacker.
    pub pid: Pid,
    /// The state slots (indices into the global state) this process may
    /// write. Sorted ascending at construction.
    pub positions: Vec<usize>,
    /// Corruption events remaining; the plan falls silent when every
    /// attacker's budget reaches zero.
    pub budget: usize,
}

impl ByzantineProcess {
    /// An attacker owning exactly its own slot (`positions = [pid]`).
    pub fn new(pid: Pid, budget: usize) -> ByzantineProcess {
        ByzantineProcess {
            pid,
            positions: vec![pid],
            budget,
        }
    }

    /// An attacker owning several slots (multi-position processes).
    pub fn with_positions(pid: Pid, mut positions: Vec<usize>, budget: usize) -> ByzantineProcess {
        assert!(!positions.is_empty(), "attacker needs at least one slot");
        positions.sort_unstable();
        positions.dedup();
        ByzantineProcess {
            pid,
            positions,
            budget,
        }
    }
}

/// Poisson-timed Byzantine corruption by a budgeted set of attackers, each
/// event applying one arsenal action to every slot of one attacker (with
/// independent draws per slot — equivocation).
pub struct ByzantineFaults<S> {
    rate: f64,
    attackers: Vec<ByzantineProcess>,
    arsenal: Vec<Box<dyn FaultAction<S>>>,
    next: Option<Time>,
    spent: usize,
}

impl<S> ByzantineFaults<S> {
    /// Build from a Poisson rate (corruption events per time unit), the
    /// attacker set, and the corruption arsenal (uniformly drawn per event).
    pub fn new(
        rate: f64,
        attackers: Vec<ByzantineProcess>,
        arsenal: Vec<Box<dyn FaultAction<S>>>,
    ) -> ByzantineFaults<S> {
        assert!(rate >= 0.0, "rate must be non-negative");
        assert!(!arsenal.is_empty(), "arsenal must not be empty");
        ByzantineFaults {
            rate,
            attackers,
            arsenal,
            next: None,
            spent: 0,
        }
    }

    /// Corruption events fired so far.
    pub fn spent(&self) -> usize {
        self.spent
    }

    /// Remaining budget per attacker, as `(pid, remaining)` pairs in the
    /// attacker order given at construction.
    pub fn budgets(&self) -> Vec<(Pid, usize)> {
        self.attackers.iter().map(|a| (a.pid, a.budget)).collect()
    }

    /// Indices of attackers that still have budget, ascending.
    fn armed(&self) -> Vec<usize> {
        (0..self.attackers.len())
            .filter(|&i| self.attackers[i].budget > 0)
            .collect()
    }

    /// Shared peek logic (identical for slice and dense paths).
    fn peek_impl(&mut self, now: Time, rng: &mut SimRng) -> Option<Time> {
        if self.rate == 0.0 || self.armed().is_empty() {
            return None;
        }
        if self.next.is_none() {
            let dt = rng.exponential(self.rate);
            if !dt.is_finite() {
                return None;
            }
            self.next = Some(now + Time::new(dt));
        }
        self.next
    }

    /// Draw the attacker and arsenal indices for the pending event. The two
    /// draws happen in this order on both the slice and dense paths.
    fn draw_attack(&mut self, rng: &mut SimRng) -> (usize, usize) {
        let armed = self.armed();
        let attacker = armed[rng.below(armed.len())];
        let weapon = rng.below(self.arsenal.len());
        self.attackers[attacker].budget -= 1;
        self.spent += 1;
        self.next = None;
        (attacker, weapon)
    }
}

impl<S: Clone> FaultPlan<S> for ByzantineFaults<S> {
    fn peek(&mut self, now: Time, rng: &mut SimRng) -> Option<Time> {
        self.peek_impl(now, rng)
    }

    fn fire(
        &mut self,
        _at: Time,
        global: &mut [S],
        rng: &mut SimRng,
        touched: &mut Vec<Pid>,
    ) -> FaultHit<S> {
        let (attacker, weapon) = self.draw_attack(rng);
        let a = &self.attackers[attacker];
        let action = &self.arsenal[weapon];
        let old = global[a.positions[0]].clone();
        for &pos in &a.positions {
            action.apply(a.pid, &mut global[pos], rng);
            touched.push(pos);
        }
        FaultHit {
            pid: a.positions[0],
            kind: action.kind(),
            old,
        }
    }
}

// Dense counterpart: identical RNG draws in identical order (attacker,
// arsenal, then the action's draws per slot ascending).
impl<D, S> DenseFaultPlan<D> for ByzantineFaults<S>
where
    D: DenseState<Elem = S>,
    S: Copy + PartialEq + std::fmt::Debug + Send + Sync,
{
    fn peek(&mut self, now: Time, rng: &mut SimRng) -> Option<Time> {
        self.peek_impl(now, rng)
    }

    fn fire(
        &mut self,
        _at: Time,
        dense: &mut D,
        rng: &mut SimRng,
        touched: &mut Vec<Pid>,
    ) -> FaultHit<S> {
        let (attacker, weapon) = self.draw_attack(rng);
        let a = &self.attackers[attacker];
        let action = &self.arsenal[weapon];
        let old = dense.get(a.positions[0]);
        for &pos in &a.positions {
            let mut s = dense.get(pos);
            action.apply(a.pid, &mut s, rng);
            dense.set(pos, s);
            touched.push(pos);
        }
        FaultHit {
            pid: a.positions[0],
            kind: action.kind(),
            old,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultKind;

    /// Writes a fresh random value — distinct draws per slot show up as
    /// distinct values (the equivocation property).
    struct Scramble;
    impl FaultAction<u64> for Scramble {
        fn kind(&self) -> FaultKind {
            FaultKind::Undetectable
        }
        fn apply(&self, _pid: Pid, state: &mut u64, rng: &mut SimRng) {
            *state = rng.range_u64(1_000, 1_000_000);
        }
    }

    fn plan(attackers: Vec<ByzantineProcess>) -> ByzantineFaults<u64> {
        ByzantineFaults::new(0.5, attackers, vec![Box::new(Scramble)])
    }

    #[test]
    fn budget_exhaustion_silences_the_plan() {
        let mut plan = plan(vec![ByzantineProcess::new(1, 2)]);
        let mut rng = SimRng::seed_from_u64(3);
        let mut g = vec![0u64; 4];
        for fired in 0..2 {
            let at = FaultPlan::peek(&mut plan, Time::ZERO, &mut rng).unwrap();
            let hit = FaultPlan::fire(&mut plan, at, &mut g, &mut rng, &mut Vec::new());
            assert_eq!(hit.pid, 1);
            assert_eq!(plan.spent(), fired + 1);
        }
        assert_eq!(FaultPlan::peek(&mut plan, Time::ZERO, &mut rng), None);
        assert_eq!(plan.budgets(), vec![(1, 0)]);
    }

    #[test]
    fn zero_rate_never_fires() {
        let mut plan: ByzantineFaults<u64> = ByzantineFaults::new(
            0.0,
            vec![ByzantineProcess::new(1, 5)],
            vec![Box::new(Scramble)],
        );
        let mut rng = SimRng::seed_from_u64(0);
        assert_eq!(FaultPlan::peek(&mut plan, Time::ZERO, &mut rng), None);
    }

    #[test]
    fn multi_slot_attacker_equivocates() {
        // One attacker owning three slots: a single corruption event writes
        // three independently drawn values.
        let mut plan = plan(vec![ByzantineProcess::with_positions(2, vec![3, 4, 5], 1)]);
        let mut rng = SimRng::seed_from_u64(9);
        let mut g = vec![0u64; 6];
        let mut touched = Vec::new();
        let at = FaultPlan::peek(&mut plan, Time::ZERO, &mut rng).unwrap();
        let hit = FaultPlan::fire(&mut plan, at, &mut g, &mut rng, &mut touched);
        assert_eq!(hit.pid, 3, "hit reports the first slot");
        assert_eq!(touched, vec![3, 4, 5]);
        assert!(g[3] >= 1_000 && g[4] >= 1_000 && g[5] >= 1_000);
        assert!(
            !(g[3] == g[4] && g[4] == g[5]),
            "independent draws per slot: {g:?}"
        );
        assert_eq!(g[..3], [0, 0, 0], "non-owned slots untouched");
    }

    #[test]
    fn only_armed_attackers_are_drawn() {
        let mut plan = plan(vec![
            ByzantineProcess::new(0, 0), // exhausted from the start
            ByzantineProcess::new(2, 8),
        ]);
        let mut rng = SimRng::seed_from_u64(17);
        let mut g = vec![0u64; 4];
        for _ in 0..8 {
            let at = FaultPlan::peek(&mut plan, Time::ZERO, &mut rng).unwrap();
            let hit = FaultPlan::fire(&mut plan, at, &mut g, &mut rng, &mut Vec::new());
            assert_eq!(hit.pid, 2);
        }
        assert_eq!(g[0], 0);
    }

    #[test]
    fn classic_and_dense_schedules_match_draw_for_draw() {
        let attackers = || {
            vec![
                ByzantineProcess::with_positions(1, vec![1, 4], 3),
                ByzantineProcess::new(2, 2),
            ]
        };
        let mut classic = plan(attackers());
        let mut dense_plan = plan(attackers());
        let mut rng_c = SimRng::seed_from_u64(42);
        let mut rng_d = SimRng::seed_from_u64(42);
        let mut g: Vec<u64> = vec![0; 5];
        let mut d: Vec<u64> = DenseState::from_states(&g);
        let mut now = Time::ZERO;
        loop {
            let tc = FaultPlan::peek(&mut classic, now, &mut rng_c);
            let td = DenseFaultPlan::<Vec<u64>>::peek(&mut dense_plan, now, &mut rng_d);
            assert_eq!(tc, td);
            let Some(at) = tc else { break };
            let mut touched_c = Vec::new();
            let mut touched_d = Vec::new();
            let hc = FaultPlan::fire(&mut classic, at, &mut g, &mut rng_c, &mut touched_c);
            let hd = DenseFaultPlan::fire(&mut dense_plan, at, &mut d, &mut rng_d, &mut touched_d);
            assert_eq!(hc, hd);
            assert_eq!(touched_c, touched_d);
            assert_eq!(g, d.to_states());
            now = at;
        }
        assert_eq!(classic.spent(), 5, "both budgets fully drained");
        assert_eq!(classic.budgets(), dense_plan.budgets());
    }
}
